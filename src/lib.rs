//! # lopram — umbrella crate
//!
//! Reproduction of *"Optimal Speedup on a Low-Degree Multi-Core Parallel
//! Architecture (LoPRAM)"* (Dorrigiv, López-Ortiz, Salinger; SPAA 2008 /
//! TR CS-2007-48).
//!
//! This crate simply re-exports the workspace members so downstream users can
//! depend on a single crate:
//!
//! * [`core`] — the LoPRAM model, `p = O(log n)` processor
//!   policy and the pal-thread runtime;
//! * [`sim`] — a deterministic LoPRAM machine simulator
//!   (CREW memory, pal-thread scheduler, execution-tree traces);
//! * [`analysis`] — the sequential and parallel Master
//!   theorems, recurrence evaluators and DAG/antichain toolkit;
//! * [`dnc`] — the divide-and-conquer framework and algorithm
//!   suite (§4.1);
//! * [`dp`] — the dynamic-programming framework, Algorithm 1
//!   scheduler, wavefront executor and parallel memoization (§4.2–4.6);
//! * [`graph`] — irregular graph workloads (CSR graphs,
//!   scan/pack-based frontier BFS, connected components, counting
//!   kernels), each with a sequential twin for differential testing;
//! * [`serve`] — a fault-tolerant multi-tenant job service over one
//!   shared pal-thread pool: bounded admission with backpressure,
//!   per-tenant §3.1 token budgets, deadlines with cooperative
//!   cancellation, and deterministic fault injection.
//!
//! The graph prelude is deliberately *not* folded into [`prelude`] — its
//! short generator names (`path`, `star`, …) would collide too easily;
//! use `lopram::graph::prelude` explicitly.

#![warn(missing_docs)]

// Doc-test the README's quickstart snippet so the manifest wiring it
// exercises (umbrella re-exports, prelude, cross-crate deps) cannot rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use lopram_analysis as analysis;
pub use lopram_core as core;
pub use lopram_dnc as dnc;
pub use lopram_dp as dp;
pub use lopram_graph as graph;
pub use lopram_serve as serve;
pub use lopram_sim as sim;

/// Convenience prelude pulling in the most commonly used items from every
/// sub-crate.
///
/// The divide-and-conquer framework entry points (`lopram_dnc::solve`,
/// `lopram_dnc::solve_sequential`) are re-exported under the names
/// [`solve_dnc`](prelude::solve_dnc) / [`solve_dnc_sequential`](prelude::solve_dnc_sequential)
/// to avoid clashing with the dynamic-programming solvers of the same name.
pub mod prelude {
    pub use lopram_analysis::prelude::*;
    pub use lopram_core::prelude::*;
    pub use lopram_dnc::prelude::{
        closest_pair, closest_pair_seq, cross_product_sum, cross_product_sum_seq, karatsuba_mul,
        karatsuba_mul_seq, max_subarray, max_subarray_seq, merge_sort, merge_sort_parallel_merge,
        merge_sort_seq, polymul_four_way, polymul_seq, quick_sort, quick_sort_seq, schoolbook_mul,
        strassen_mul, strassen_mul_seq, CrossMergeMode, DncProblem, DncRun, Matrix, Point,
    };
    pub use lopram_dnc::{solve as solve_dnc, solve_sequential as solve_dnc_sequential};
    pub use lopram_dp::prelude::*;
    pub use lopram_sim::prelude::*;
}
