//! Smoke test for the umbrella crate's manifest wiring: every sub-crate must
//! be reachable through `lopram::prelude` (and the `solve_dnc` renames must
//! keep pointing at the divide-and-conquer framework).  A failure here means
//! a workspace manifest or re-export regressed, not an algorithm.

use lopram::prelude::*;

#[test]
fn prelude_reexports_resolve_across_every_subcrate() {
    // core: policy + pool.
    let p = processors_for(1 << 10, ProcessorPolicy::LogN);
    assert!((1..=10).contains(&p));
    let pool = PalPool::new(2).expect("two processors");
    assert_eq!(pool.processors(), 2);

    // dnc: algorithm entry point via the prelude re-export.
    let mut data = vec![5i64, 1, 4, 2, 3];
    merge_sort(&pool, &mut data);
    assert_eq!(data, vec![1, 2, 3, 4, 5]);

    // analysis: recurrence + Master classification.
    let rec = Recurrence::new(2, 2, Growth::linear(1.0));
    let bound = parallel_master_bound(&rec, MergeMode::Sequential);
    assert_eq!(bound.speedup, SpeedupClass::Linear);

    // dp: one problem through the sequential and one parallel solver.
    let problem = Lcs::new(b"lopram".to_vec(), b"program".to_vec());
    let seq = solve_sequential(&problem).goal;
    assert_eq!(seq, solve_wavefront(&problem, &pool).goal);

    // sim: a tiny cost tree through the step-accurate scheduler.
    let costs = CostSpec {
        divide: Box::new(|_| 0),
        merge: Box::new(|s| s as u64),
        base: Box::new(|_| 1),
    };
    let tree = TaskTree::divide_and_conquer(1 << 6, 2, 2, 1, &costs);
    let sim = TreeSimulator::new(&tree).run(2);
    assert!(sim.makespan > 0);
}

#[test]
fn dnc_framework_renames_avoid_dp_name_clash() {
    // `solve_dnc`/`solve_dnc_sequential` are the renamed dnc framework entry
    // points; `solve_sequential` (no suffix) must stay the dp solver.
    struct SumProblem;

    impl DncProblem for SumProblem {
        type Input = Vec<u64>;
        type Output = u64;

        fn size(&self, input: &Vec<u64>) -> usize {
            input.len()
        }

        fn is_base(&self, input: &Vec<u64>) -> bool {
            input.len() <= 4
        }

        fn solve_base(&self, input: Vec<u64>) -> u64 {
            input.iter().sum()
        }

        fn divide(&self, input: Vec<u64>) -> Vec<Vec<u64>> {
            let mid = input.len() / 2;
            let (lo, hi) = input.split_at(mid);
            vec![lo.to_vec(), hi.to_vec()]
        }

        fn merge(&self, _size: usize, outputs: Vec<u64>) -> u64 {
            outputs.iter().sum()
        }

        fn recurrence(&self) -> Recurrence {
            Recurrence::new(2, 2, Growth::constant(1.0))
        }
    }

    let data: Vec<u64> = (0..64).collect();
    let expected: u64 = data.iter().sum();
    assert_eq!(solve_dnc_sequential(&SumProblem, data.clone()), expected);

    let pool = PalPool::new(2).expect("two processors");
    let stats = DncRun::new();
    assert_eq!(solve_dnc(&SumProblem, &pool, data, &stats), expected);
    assert!(stats.total_nodes() > 0);
}
