//! Cross-crate integration tests for Theorem 1: the analysis crate's
//! predictions, the simulator's schedules and the real pal-thread runtime
//! must tell the same story for all three Master-theorem cases.

use lopram::analysis::{parallel_master_bound, recurrence::catalog, MergeMode, SpeedupClass};
use lopram::core::{PalPool, SeqExecutor};
use lopram::dnc::case3::{cross_product_sum, pair_sum_oracle, CrossMergeMode};
use lopram::dnc::karatsuba::{karatsuba_mul, schoolbook_mul};
use lopram::dnc::mergesort::merge_sort;
use lopram::sim::{CostSpec, TaskTree, TreeSimulator};

#[test]
fn case2_simulated_schedule_achieves_the_promised_speedup() {
    // Mergesort-shaped cost tree, p = 4: Theorem 1 case 2 promises O(T/p).
    let rec = catalog::mergesort();
    let bound = parallel_master_bound(&rec, MergeMode::Sequential);
    assert_eq!(bound.speedup, SpeedupClass::Linear);

    let n = 1usize << 12;
    let costs = CostSpec::merge_dominated(|s| s as u64);
    let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
    let result = TreeSimulator::new(&tree).run(4);
    // The simulated makespan should be within a small factor of Eq. 3.
    let predicted = rec.parallel_time_eq3(n, 4);
    let ratio = result.makespan as f64 / predicted;
    assert!(
        (0.7..1.3).contains(&ratio),
        "simulated {} vs Eq.3 {predicted}",
        result.makespan
    );
    // And the speedup over the same tree on one processor should be > 2.5.
    let seq = TreeSimulator::new(&tree).run(1);
    let speedup = seq.makespan as f64 / result.makespan as f64;
    assert!(speedup > 2.5, "speedup {speedup}");
}

#[test]
fn case3_simulator_shows_no_speedup_but_parallel_merge_analysis_does() {
    let rec = catalog::quadratic_merge();
    // Sequential merge: Θ(f(n)) — no speedup class.
    let seq_bound = parallel_master_bound(&rec, MergeMode::Sequential);
    assert_eq!(seq_bound.speedup, SpeedupClass::None);
    // Parallel merge: Θ(f(n)/p).
    let par_bound = parallel_master_bound(&rec, MergeMode::Parallel);
    assert_eq!(par_bound.speedup, SpeedupClass::Linear);

    let n = 1usize << 8;
    let costs = CostSpec::merge_dominated(|s| (s * s) as u64);
    let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
    let r1 = TreeSimulator::new(&tree).run(1);
    let r8 = TreeSimulator::new(&tree).run(8);
    let speedup = r1.makespan as f64 / r8.makespan as f64;
    assert!(
        speedup < 2.2,
        "case 3 with sequential merges must not scale (got {speedup})"
    );
}

#[test]
fn real_runtime_results_match_sequential_for_every_case() {
    let pool = PalPool::new(4).unwrap();

    // Case 1: Karatsuba.
    let a: Vec<i64> = (0..600).map(|i| (i % 23) - 11).collect();
    let b: Vec<i64> = (0..500).map(|i| (i % 17) - 8).collect();
    assert_eq!(karatsuba_mul(&pool, &a, &b), schoolbook_mul(&a, &b));

    // Case 2: mergesort.
    let mut v: Vec<i64> = (0..10_000).map(|i| (i * 7919) % 104_729 - 50_000).collect();
    let mut expected = v.clone();
    expected.sort();
    merge_sort(&pool, &mut v);
    assert_eq!(v, expected);

    // Case 3: cross-product sum, both merge modes.
    let vals: Vec<i64> = (0..2000).map(|i| (i % 211) - 105).collect();
    let oracle = pair_sum_oracle(&vals);
    assert_eq!(
        cross_product_sum(&pool, &vals, CrossMergeMode::Sequential),
        oracle
    );
    assert_eq!(
        cross_product_sum(&pool, &vals, CrossMergeMode::Parallel),
        oracle
    );
    // The sequential executor gives the same answers.
    assert_eq!(
        cross_product_sum(&SeqExecutor, &vals, CrossMergeMode::Sequential),
        oracle
    );
}

#[test]
fn eq3_prediction_brackets_simulated_makespan_across_the_sweep() {
    let rec = catalog::mergesort();
    for exp in [8u32, 10, 12] {
        let n = 1usize << exp;
        let costs = CostSpec {
            divide: Box::new(|_| 0),
            merge: Box::new(|s| s as u64),
            base: Box::new(|_| 1),
        };
        let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
        for p in [1usize, 2, 4, 8] {
            let sim = TreeSimulator::new(&tree).run(p);
            let analytic = rec.parallel_time_eq3(n, p);
            let ratio = sim.makespan as f64 / analytic;
            assert!(
                (0.8..1.25).contains(&ratio),
                "n = {n}, p = {p}: simulated {} vs Eq.3 {analytic}",
                sim.makespan
            );
        }
    }
}

#[test]
fn figure2_cutoff_depth_matches_analysis() {
    // The recursion spawns pal-threads down to depth ⌊log_a p⌋ and the
    // sequential subproblem has size n / b^{⌊log_a p⌋}.
    let rec = catalog::mergesort();
    assert_eq!(rec.parallel_depth(8), 3);
    assert!((rec.sequential_subproblem_size(1 << 10, 8) - 128.0).abs() < 1e-9);

    let karatsuba = catalog::karatsuba();
    assert_eq!(karatsuba.parallel_depth(9), 2);
    assert_eq!(karatsuba.parallel_depth(8), 1);
}
