//! Cross-crate integration tests for the dynamic-programming pipeline:
//! problem specification → dependency DAG (analysis) → ideal schedule
//! (simulator) → real pal-thread execution (dp + core).

use lopram::core::{PalPool, SeqExecutor};
use lopram::dp::prelude::*;
use lopram::sim::simulate_dag_schedule;

#[test]
fn lcs_pipeline_from_spec_to_schedulers() {
    let a: Vec<u8> = (0..200).map(|i| (i % 4) as u8).collect();
    let b: Vec<u8> = (0..180).map(|i| (i % 3) as u8).collect();
    let problem = Lcs::new(a, b);

    // Dependency DAG and its antichain structure.
    let dag = dependency_dag(&problem, &SeqExecutor);
    assert_eq!(dag.len(), problem.num_cells());
    assert!(dag.is_acyclic());
    let levels = dag.levels();
    assert!(levels.validate(&dag));
    assert_eq!(levels.height(), 200 + 180);

    // The ideal p-processor schedule of that DAG scales with p.
    let costs = vec![1u64; dag.len()];
    let s2 = simulate_dag_schedule(&dag, &costs, 2).speedup();
    let s8 = simulate_dag_schedule(&dag, &costs, 8).speedup();
    assert!(s2 > 1.8);
    assert!(s8 > 6.0);

    // All real schedulers agree with the sequential reference.
    let expected = problem.reference();
    let pool = PalPool::new(4).unwrap();
    assert_eq!(solve_sequential(&problem).goal, expected);
    assert_eq!(solve_wavefront(&problem, &pool).goal, expected);
    assert_eq!(solve_counter(&problem, &pool).goal, expected);
    assert_eq!(solve_memoized(&problem, &pool).goal, expected);
}

#[test]
fn chain_dp_has_no_parallelism_but_stays_correct() {
    let problem = PrefixChain::new((0..3000).map(|i| (i % 997) as i64 - 498).collect());
    let dag = dependency_dag(&problem, &SeqExecutor);
    assert_eq!(dag.max_width(), 1);
    assert!((dag.max_speedup(8) - 1.0).abs() < 1e-12);

    let expected = problem.reference();
    let pool = PalPool::new(8).unwrap();
    assert_eq!(solve_counter(&problem, &pool).goal, expected);
    assert_eq!(solve_wavefront(&problem, &pool).goal, expected);
}

#[test]
fn every_problem_agrees_across_schedulers_and_processor_counts() {
    let pool2 = PalPool::new(2).unwrap();
    let pool8 = PalPool::new(8).unwrap();

    let lcs = Lcs::new(b"abracadabra".to_vec(), b"alakazam".to_vec());
    let ed = EditDistance::new(b"sunday".to_vec(), b"saturday".to_vec());
    let mc = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
    let bst = OptimalBst::new(vec![34, 8, 50, 21, 13]);
    let knap = Knapsack::new(vec![1, 3, 4, 5, 2], vec![1, 4, 5, 7, 3], 9);
    let coins = CoinChange::new(vec![1, 2, 5], 40);
    let rod = RodCutting::new(vec![1, 5, 8, 9, 10, 17, 17, 20], 17);
    let lis = Lis::new(vec![10, 9, 2, 5, 3, 7, 101, 18, 4, 6]);

    macro_rules! check {
        ($p:expr) => {{
            let expected = solve_sequential(&$p).goal;
            for pool in [&pool2, &pool8] {
                assert_eq!(solve_wavefront(&$p, pool).goal, expected);
                assert_eq!(solve_counter(&$p, pool).goal, expected);
                assert_eq!(solve_memoized(&$p, pool).goal, expected);
            }
        }};
    }
    check!(lcs);
    check!(ed);
    check!(mc);
    check!(bst);
    check!(knap);
    check!(coins);
    check!(rod);
    check!(lis);
}

/// The full solver cross-check matrix: all four solvers agree on **every**
/// problem in `dp::problems`, at every p in {1, 2, 4}.  The older tests
/// sampled this grid (p ∈ {2, 8}, no chain/Floyd–Warshall × memoized, no
/// p = 1 anywhere); this pins the whole thing, including the p = 1
/// degenerate pools whose cutoff elides every fork.
#[test]
fn all_four_solvers_agree_on_every_problem_at_small_p() {
    let pools: Vec<PalPool> = [1, 2, 4]
        .into_iter()
        .map(|p| PalPool::new(p).unwrap())
        .collect();

    macro_rules! check {
        ($name:literal, $p:expr) => {{
            let problem = $p;
            let sequential = solve_sequential(&problem);
            for pool in &pools {
                let p = pool.processors();
                let wavefront = solve_wavefront(&problem, pool);
                let counter = solve_counter(&problem, pool);
                // The two bottom-up parallel solvers fill the whole table:
                // compare every cell, not just the goal.
                assert_eq!(
                    wavefront.values, sequential.values,
                    "{}: wavefront table diverged at p = {p}",
                    $name
                );
                assert_eq!(
                    counter.values, sequential.values,
                    "{}: counter table diverged at p = {p}",
                    $name
                );
                // Top-down memoization only computes the cells the goal
                // needs: compare the goal value.
                assert_eq!(
                    solve_memoized(&problem, pool).goal,
                    sequential.goal,
                    "{}: memoized goal diverged at p = {p}",
                    $name
                );
            }
        }};
    }

    check!(
        "lcs",
        Lcs::new(b"abracadabra".to_vec(), b"alakazam".to_vec())
    );
    check!(
        "edit-distance",
        EditDistance::new(b"sunday".to_vec(), b"saturday".to_vec())
    );
    check!(
        "matrix-chain",
        MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25])
    );
    check!("optimal-bst", OptimalBst::new(vec![34, 8, 50, 21, 13]));
    check!(
        "knapsack",
        Knapsack::new(vec![1, 3, 4, 5, 2], vec![1, 4, 5, 7, 3], 9)
    );
    check!("coin-change", CoinChange::new(vec![1, 2, 5], 40));
    check!(
        "rod-cutting",
        RodCutting::new(vec![1, 5, 8, 9, 10, 17, 17, 20], 17)
    );
    check!("lis", Lis::new(vec![10, 9, 2, 5, 3, 7, 101, 18, 4, 6]));
    // The chain stays small: memoization recurses one frame per cell along
    // the single dependency chain.
    check!(
        "prefix-chain",
        PrefixChain::new((0..128).map(|i| (i % 23) as i64 - 11).collect())
    );
    check!(
        "floyd-warshall",
        FloydWarshall::from_edges(
            12,
            &(0..60)
                .map(|i| ((i * 5) % 12, (i * 7 + 2) % 12, ((i * 11) % 30 + 1) as u64))
                .collect::<Vec<_>>(),
        )
    );
}

#[test]
fn floyd_warshall_matches_reference_through_the_full_pipeline() {
    let edges: Vec<(usize, usize, u64)> = (0..120)
        .map(|i| ((i * 7) % 20, (i * 13 + 3) % 20, ((i * 31) % 50 + 1) as u64))
        .collect();
    let problem = FloydWarshall::from_edges(20, &edges);
    let expected = problem.reference();
    let pool = PalPool::new(4).unwrap();
    assert_eq!(
        problem.distances(&solve_counter(&problem, &pool).values),
        expected
    );
    assert_eq!(
        problem.distances(&solve_wavefront(&problem, &pool).values),
        expected
    );

    let dag = dependency_dag(&problem, &SeqExecutor);
    // One antichain per k-slab plus the base slab.
    assert_eq!(dag.longest_chain(), 21);
}
