//! Integration tests for the model layer: processor policy, pal-thread
//! runtime semantics, serialized cells and the CREW memory checker working
//! together the way §3 of the paper describes.

use std::sync::atomic::{AtomicUsize, Ordering};

use lopram::core::{palthreads, processors_for, PalPool, ProcessorPolicy, SerCell, ThrottledPool};
use lopram::sim::CrewMemory;

#[test]
fn processor_policy_is_logarithmic_in_n() {
    // §3.2: p = O(log n).  The unclamped policy is exactly ⌊log₂ n⌋.
    for exp in 1..=30u32 {
        let n = 1usize << exp;
        assert_eq!(ProcessorPolicy::LogN.processors_unclamped(n), exp as usize);
    }
    assert!(processors_for(1 << 16, ProcessorPolicy::LogN) >= 1);
}

#[test]
fn palthreads_macro_runs_children_and_waits() {
    let pool = PalPool::new(3).unwrap();
    let counter = AtomicUsize::new(0);
    palthreads!(pool => {
        counter.fetch_add(1, Ordering::SeqCst);
    }, {
        counter.fetch_add(2, Ordering::SeqCst);
    }, {
        counter.fetch_add(4, Ordering::SeqCst);
    });
    // The implicit wait of the palthreads block guarantees all children ran.
    assert_eq!(counter.load(Ordering::SeqCst), 7);
}

#[test]
fn serialized_cells_make_concurrent_writers_well_defined() {
    // §3: unserialized concurrent writes are undefined; SerCell is the
    // transparently serialized variable.
    let pool = PalPool::new(4).unwrap();
    let cell = SerCell::new(0u64);
    pool.for_each_index(0..10_000, |_| {
        cell.update(|v| *v += 1);
    });
    assert_eq!(cell.get(), 10_000);
}

#[test]
fn crew_memory_flags_concurrent_writes_but_not_concurrent_reads() {
    let mut mem = CrewMemory::new(16);
    // A wavefront-style step: every processor reads the same cell (legal) and
    // writes its own cell (legal).
    mem.write(0, 42);
    assert!(mem.end_step().is_empty());
    for i in 1..8 {
        let _ = mem.read(0);
        mem.write(i, i as i64);
    }
    assert!(mem.end_step().is_empty());
    // Two processors writing the same cell in one step violate CREW.
    mem.write(3, 1);
    mem.write(3, 2);
    let violations = mem.end_step();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].writers, 2);
}

#[test]
fn both_runtimes_compute_identical_results() {
    fn tree_sum<E: lopram::core::Executor>(exec: &E, data: &[u64]) -> u64 {
        if data.len() <= 16 {
            return data.iter().sum();
        }
        let (lo, hi) = data.split_at(data.len() / 2);
        let (a, b) = exec.join(|| tree_sum(exec, lo), || tree_sum(exec, hi));
        a + b
    }
    let data: Vec<u64> = (0..50_000).collect();
    let expected: u64 = data.iter().sum();
    let pal = PalPool::new(4).unwrap();
    let throttled = ThrottledPool::new(4).unwrap();
    assert_eq!(tree_sum(&pal, &data), expected);
    assert_eq!(tree_sum(&throttled, &data), expected);
}

#[test]
fn pool_sized_by_policy_runs_divide_and_conquer_correctly() {
    let n = 1usize << 15;
    let pool = PalPool::with_policy(n, ProcessorPolicy::LogN);
    assert!(pool.processors() >= 1);
    let mut v: Vec<i64> = (0..n as i64).rev().collect();
    lopram::dnc::mergesort::merge_sort(&pool, &mut v);
    assert!(v.windows(2).all(|w| w[0] <= w[1]));
}
