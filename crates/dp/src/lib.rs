//! # lopram-dp
//!
//! Parallel dynamic programming on the LoPRAM (paper §4.2–§4.6).
//!
//! A dynamic program is specified by [`DpProblem`]: a set of cells, the cells
//! each cell depends on, and how to compute a cell from its dependencies
//! (Eq. 6 of the paper).  From that specification the crate derives the
//! dependency DAG (§4.3) and offers four ways to evaluate it:
//!
//! * [`solve_sequential`] — bottom-up in topological order, the `T_1`
//!   baseline;
//! * [`solve_wavefront`] — partition the DAG into antichains (the dual of
//!   Dilworth's theorem) and evaluate each antichain in parallel, level by
//!   level;
//! * [`solve_counter`] — the paper's **Algorithm 1**: every cell carries a
//!   counter of outstanding dependencies, completed cells decrement their
//!   neighbours' counters, and cells whose counter reaches zero are handed to
//!   the available processors;
//! * [`solve_memoized`] — the top-down **parallel memoization** of §4.5, with
//!   "in progress" markers and wait-for-notification on cells another
//!   processor is already computing.
//!
//! The [`problems`] module provides classic dynamic programs covering the
//! spectrum of DAG shapes §4.6 discusses: two-dimensional tables with
//! anti-diagonal antichains (LCS, edit distance), interval tables (matrix
//! chain, optimal BST), row-independent tables (knapsack), a cube (Floyd–
//! Warshall) and the one-dimensional chain for which no speedup is possible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod memo;
pub mod problems;
pub mod solver;
pub mod spec;

pub use memo::{solve_memoized, MemoRun};
pub use solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront, DpSolution};
pub use spec::DpProblem;

/// Convenience prelude for the dynamic-programming crate.
pub mod prelude {
    pub use crate::memo::{solve_memoized, MemoRun};
    pub use crate::problems::chain::PrefixChain;
    pub use crate::problems::coin_change::CoinChange;
    pub use crate::problems::edit_distance::EditDistance;
    pub use crate::problems::floyd_warshall::FloydWarshall;
    pub use crate::problems::knapsack::Knapsack;
    pub use crate::problems::lcs::Lcs;
    pub use crate::problems::lis::Lis;
    pub use crate::problems::matrix_chain::MatrixChain;
    pub use crate::problems::optimal_bst::OptimalBst;
    pub use crate::problems::rod_cutting::RodCutting;
    pub use crate::solver::{
        dependency_dag, solve_counter, solve_sequential, solve_wavefront, DpSolution,
    };
    pub use crate::spec::DpProblem;
}
