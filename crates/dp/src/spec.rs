//! The dynamic-programming specification (Eq. 6 of the paper).
//!
//! The paper assumes the solution is given in the explicit form
//!
//! ```text
//! M[x] = f(x)                    if x is a base case
//! M[x] = f({M[y]}_{y ≺ x}, x)    otherwise
//! ```
//!
//! [`DpProblem`] is that specification with cells flattened to integer ids:
//! `dependencies(x)` lists the cells `y ≺ x`, and `compute(x, get)` evaluates
//! `f` with `get(y)` giving access to already-computed dependencies.  All
//! schedulers in this crate work for *any* implementation of this trait — the
//! point of §4.4's "general procedure that, given the specification of the
//! dynamic programming solution to a problem, generates a scheduling strategy
//! to solve it in parallel".

/// A dynamic-programming problem in the explicit form of Eq. 6.
pub trait DpProblem: Sync {
    /// Type of one table entry.
    type Value: Clone + Send + Sync;

    /// Total number of cells in the table `M`.
    fn num_cells(&self) -> usize;

    /// The cells this cell depends on (`y ≺ x`).  Base cases return an empty
    /// vector.  Every id must be smaller than [`num_cells`](Self::num_cells)
    /// and the induced graph must be acyclic.
    fn dependencies(&self, cell: usize) -> Vec<usize>;

    /// Compute the value of `cell`; `get(y)` returns the value of dependency
    /// `y` (calling it for a non-dependency is a contract violation and may
    /// panic in the schedulers).
    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> Self::Value) -> Self::Value;

    /// The cell holding the answer to the overall problem (`M[I]` in the
    /// paper).  Defaults to the last cell.
    fn goal_cell(&self) -> usize {
        self.num_cells().saturating_sub(1)
    }

    /// A short human-readable name used by the experiment harness.
    fn name(&self) -> &'static str {
        "dp-problem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fibonacci as the smallest possible DP: cell i depends on i-1, i-2.
    struct Fib(usize);

    impl DpProblem for Fib {
        type Value = u64;

        fn num_cells(&self) -> usize {
            self.0
        }

        fn dependencies(&self, cell: usize) -> Vec<usize> {
            match cell {
                0 | 1 => vec![],
                _ => vec![cell - 1, cell - 2],
            }
        }

        fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
            match cell {
                0 => 0,
                1 => 1,
                _ => get(cell - 1) + get(cell - 2),
            }
        }

        fn name(&self) -> &'static str {
            "fibonacci"
        }
    }

    #[test]
    fn default_goal_is_last_cell() {
        let f = Fib(10);
        assert_eq!(f.goal_cell(), 9);
        assert_eq!(f.name(), "fibonacci");
    }

    #[test]
    fn dependencies_of_base_cases_are_empty() {
        let f = Fib(10);
        assert!(f.dependencies(0).is_empty());
        assert!(f.dependencies(1).is_empty());
        assert_eq!(f.dependencies(5), vec![4, 3]);
    }

    #[test]
    fn compute_uses_lookup() {
        let f = Fib(10);
        let table = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34];
        let get = |i: usize| table[i];
        assert_eq!(f.compute(7, &get), 13);
    }
}
