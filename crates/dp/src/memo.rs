//! Parallel memoization (§4.5).
//!
//! The top-down strategy: a cell is computed the first time it is needed.
//! Each cell carries a state — *empty*, *in progress* or *done*.  A thread
//! that needs a cell claims it (empty → in progress) and computes it, first
//! resolving the cell's dependencies; dependencies that are not yet available
//! are either claimed recursively (possibly as new pal-threads) or, when
//! another thread has already claimed them, waited on via a notify condition
//! — exactly the protocol the paper describes, including the probe counters
//! that measure the extra lookups memoization pays compared to the bottom-up
//! schedulers.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

use lopram_core::Executor;
use parking_lot::{Condvar, Mutex};

use crate::spec::DpProblem;

const EMPTY: u8 = 0;
const IN_PROGRESS: u8 = 1;
const DONE: u8 = 2;

/// Result of a memoized evaluation.
#[derive(Debug, Clone)]
pub struct MemoRun<V> {
    /// Value of the goal cell.
    pub goal: V,
    /// Number of cells that were actually computed (memoization only touches
    /// cells reachable from the goal).
    pub computed_cells: usize,
    /// Number of probes that found a cell already computed or in progress —
    /// the overhead §4.5 discusses.
    pub repeated_probes: u64,
    /// Number of times a thread had to wait for a cell that another thread
    /// had marked "in progress".
    pub waits: u64,
}

struct MemoState<'a, P: DpProblem> {
    problem: &'a P,
    states: Vec<AtomicU8>,
    values: Vec<OnceLock<P::Value>>,
    lock: Mutex<()>,
    notify: Condvar,
    repeated_probes: AtomicU64,
    waits: AtomicU64,
    computed: AtomicU64,
}

/// Evaluate `problem` top-down from its goal cell with parallel memoization.
pub fn solve_memoized<P: DpProblem, E: Executor>(problem: &P, exec: &E) -> MemoRun<P::Value> {
    let n = problem.num_cells();
    assert!(n > 0, "a dynamic program needs at least one cell");
    let state = MemoState {
        problem,
        states: (0..n).map(|_| AtomicU8::new(EMPTY)).collect(),
        values: (0..n).map(|_| OnceLock::new()).collect(),
        lock: Mutex::new(()),
        notify: Condvar::new(),
        repeated_probes: AtomicU64::new(0),
        waits: AtomicU64::new(0),
        computed: AtomicU64::new(0),
    };
    let goal = problem.goal_cell();
    let value = resolve(&state, exec, goal);
    MemoRun {
        goal: value,
        computed_cells: state.computed.load(Ordering::Relaxed) as usize,
        repeated_probes: state.repeated_probes.load(Ordering::Relaxed),
        waits: state.waits.load(Ordering::Relaxed),
    }
}

fn resolve<P: DpProblem, E: Executor>(state: &MemoState<'_, P>, exec: &E, cell: usize) -> P::Value {
    // Fast paths: already computed, or already being computed by someone else.
    match state.states[cell].load(Ordering::Acquire) {
        DONE => {
            state.repeated_probes.fetch_add(1, Ordering::Relaxed);
            return state.values[cell]
                .get()
                .expect("done implies value")
                .clone();
        }
        IN_PROGRESS => {
            state.repeated_probes.fetch_add(1, Ordering::Relaxed);
            return wait_for(state, cell);
        }
        _ => {}
    }
    // Resolve the dependencies *before* claiming the cell.  The claim window
    // therefore contains only `problem.compute`, never a pal-thread join or a
    // wait, so no thread can block while it owns an in-progress cell — which
    // is what makes the wait below deadlock-free.
    let deps = state.problem.dependencies(cell);
    resolve_all(state, exec, &deps);
    match state.states[cell].compare_exchange(
        EMPTY,
        IN_PROGRESS,
        Ordering::AcqRel,
        Ordering::Acquire,
    ) {
        Ok(_) => {
            let get = |i: usize| {
                state.values[i]
                    .get()
                    .expect("dependency resolved before compute")
                    .clone()
            };
            let value = state.problem.compute(cell, &get);
            state.values[cell]
                .set(value.clone())
                .unwrap_or_else(|_| panic!("cell {cell} computed twice"));
            state.computed.fetch_add(1, Ordering::Relaxed);
            {
                let _guard = state.lock.lock();
                state.states[cell].store(DONE, Ordering::Release);
                state.notify.notify_all();
            }
            value
        }
        Err(_) => {
            // Another thread claimed the cell while we resolved its
            // dependencies: register a notify condition and wait for it.
            state.repeated_probes.fetch_add(1, Ordering::Relaxed);
            wait_for(state, cell)
        }
    }
}

fn resolve_all<P: DpProblem, E: Executor>(state: &MemoState<'_, P>, exec: &E, deps: &[usize]) {
    match deps.len() {
        0 => {}
        1 => {
            let _ = resolve(state, exec, deps[0]);
        }
        len => {
            let mid = len / 2;
            let (left, right) = deps.split_at(mid);
            exec.join(
                || resolve_all(state, exec, left),
                || resolve_all(state, exec, right),
            );
        }
    }
}

fn wait_for<P: DpProblem>(state: &MemoState<'_, P>, cell: usize) -> P::Value {
    let mut guard = state.lock.lock();
    while state.states[cell].load(Ordering::Acquire) != DONE {
        state.waits.fetch_add(1, Ordering::Relaxed);
        state.notify.wait(&mut guard);
    }
    drop(guard);
    state.values[cell]
        .get()
        .expect("done implies value")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_sequential;
    use crate::spec::DpProblem;
    use lopram_core::{PalPool, SeqExecutor};

    /// Binomial coefficients C(n, k) over a rectangular (n+1)×(k+1) table;
    /// only part of the table is reachable from the goal, which is exactly
    /// what memoization should exploit.
    struct Binomial {
        n: usize,
        k: usize,
    }

    impl Binomial {
        fn id(&self, i: usize, j: usize) -> usize {
            i * (self.k + 1) + j
        }
    }

    impl DpProblem for Binomial {
        type Value = u64;

        fn num_cells(&self) -> usize {
            (self.n + 1) * (self.k + 1)
        }

        fn dependencies(&self, cell: usize) -> Vec<usize> {
            let i = cell / (self.k + 1);
            let j = cell % (self.k + 1);
            if j == 0 || j >= i {
                vec![]
            } else {
                vec![self.id(i - 1, j - 1), self.id(i - 1, j)]
            }
        }

        fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
            let i = cell / (self.k + 1);
            let j = cell % (self.k + 1);
            if j == 0 || j >= i {
                if j == i || j == 0 {
                    1
                } else {
                    0
                }
            } else {
                get(self.id(i - 1, j - 1)) + get(self.id(i - 1, j))
            }
        }

        fn goal_cell(&self) -> usize {
            self.id(self.n, self.k)
        }

        fn name(&self) -> &'static str {
            "binomial"
        }
    }

    #[test]
    fn memoized_matches_bottom_up() {
        let p = Binomial { n: 20, k: 10 };
        let expected = solve_sequential(&p).goal;
        let pool = PalPool::new(4).unwrap();
        let run = solve_memoized(&p, &pool);
        assert_eq!(run.goal, expected);
        assert_eq!(run.goal, 184_756); // C(20, 10)
    }

    #[test]
    fn memoization_touches_only_reachable_cells() {
        let p = Binomial { n: 30, k: 3 };
        let run = solve_memoized(&p, &SeqExecutor);
        assert_eq!(run.goal, 4060); // C(30, 3)
        assert!(
            run.computed_cells < p.num_cells(),
            "memoization should skip unreachable cells ({} of {})",
            run.computed_cells,
            p.num_cells()
        );
    }

    #[test]
    fn probe_counters_record_sharing() {
        let p = Binomial { n: 18, k: 9 };
        let pool = PalPool::new(4).unwrap();
        let run = solve_memoized(&p, &pool);
        // Overlapping subproblems guarantee repeated probes.
        assert!(run.repeated_probes > 0);
        assert_eq!(run.goal, 48_620); // C(18, 9)
    }

    #[test]
    fn results_identical_for_any_p() {
        let p = Binomial { n: 24, k: 12 };
        let expected = solve_sequential(&p).goal;
        for procs in [1usize, 2, 4, 8] {
            let pool = PalPool::new(procs).unwrap();
            assert_eq!(solve_memoized(&p, &pool).goal, expected, "p = {procs}");
        }
    }

    #[test]
    fn single_cell_problem() {
        struct One;
        impl DpProblem for One {
            type Value = i32;
            fn num_cells(&self) -> usize {
                1
            }
            fn dependencies(&self, _: usize) -> Vec<usize> {
                vec![]
            }
            fn compute(&self, _: usize, _: &dyn Fn(usize) -> i32) -> i32 {
                41
            }
        }
        let run = solve_memoized(&One, &SeqExecutor);
        assert_eq!(run.goal, 41);
        assert_eq!(run.computed_cells, 1);
    }
}
