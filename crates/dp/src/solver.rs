//! Bottom-up schedulers for [`DpProblem`]s: sequential, wavefront
//! (antichain-by-antichain) and the counter-based Algorithm 1.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use lopram_analysis::Dag;
use lopram_core::Executor;
use parking_lot::Mutex;

use crate::spec::DpProblem;

/// The fully evaluated table of a dynamic program plus its goal value.
#[derive(Debug, Clone)]
pub struct DpSolution<V> {
    /// Value of every cell, indexed by cell id.
    pub values: Vec<V>,
    /// Value of the goal cell.
    pub goal: V,
}

/// Build the dependency DAG of `problem` (§4.3): edge `y → x` for every
/// dependency `y ≺ x`, i.e. edges point in the direction of computation.
///
/// The graph construction itself is embarrassingly parallel (§4.4 notes it
/// takes `O(m·n^d / p)`); here the per-cell dependency lists are gathered
/// with `exec` and assembled into the adjacency structure afterwards.
pub fn dependency_dag<P: DpProblem, E: Executor>(problem: &P, exec: &E) -> Dag {
    let n = problem.num_cells();
    let deps: Vec<Mutex<Vec<usize>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
    exec.for_each_index(0..n, |cell| {
        *deps[cell].lock() = problem.dependencies(cell);
    });
    let mut dag = Dag::new(n);
    for (cell, cell_deps) in deps.iter().enumerate() {
        for &d in cell_deps.lock().iter() {
            dag.add_edge(d, cell);
        }
    }
    dag
}

/// Evaluate the table bottom-up on one processor, in a topological order of
/// the dependency DAG.  This is the `T_1` baseline of §4.6.
pub fn solve_sequential<P: DpProblem>(problem: &P) -> DpSolution<P::Value> {
    let n = problem.num_cells();
    assert!(n > 0, "a dynamic program needs at least one cell");
    let dag = dependency_dag(problem, &lopram_core::SeqExecutor);
    let order = dag
        .topological_order()
        .expect("dependency graph must be acyclic");
    let mut values: Vec<Option<P::Value>> = vec![None; n];
    for cell in order {
        let get = |i: usize| {
            values[i]
                .clone()
                .expect("dependency computed before dependant in topological order")
        };
        let v = problem.compute(cell, &get);
        values[cell] = Some(v);
    }
    finish(
        problem,
        values
            .into_iter()
            .map(|v| v.expect("all cells computed"))
            .collect(),
    )
}

/// Evaluate the table antichain by antichain (§4.3): the cells of one level
/// of the Mirsky decomposition are mutually independent and are computed in
/// parallel with `exec`; levels are processed in order.
pub fn solve_wavefront<P: DpProblem, E: Executor>(problem: &P, exec: &E) -> DpSolution<P::Value> {
    let n = problem.num_cells();
    assert!(n > 0, "a dynamic program needs at least one cell");
    let dag = dependency_dag(problem, exec);
    let levels = dag.levels();
    let table: Vec<OnceLock<P::Value>> = (0..n).map(|_| OnceLock::new()).collect();
    for antichain in &levels.antichains {
        exec.for_each_index(0..antichain.len(), |k| {
            let cell = antichain[k];
            let get = |i: usize| {
                table[i]
                    .get()
                    .expect("dependency belongs to an earlier antichain")
                    .clone()
            };
            let value = problem.compute(cell, &get);
            table[cell]
                .set(value)
                .unwrap_or_else(|_| panic!("cell {cell} computed twice"));
        });
    }
    collect(problem, table)
}

/// The paper's Algorithm 1: every cell carries a counter of outstanding
/// dependencies; when a processor finishes a cell it decrements the counters
/// of the cells that depend on it and ready cells are picked up by the
/// available processors in creation order.
pub fn solve_counter<P: DpProblem, E: Executor>(problem: &P, exec: &E) -> DpSolution<P::Value> {
    let n = problem.num_cells();
    assert!(n > 0, "a dynamic program needs at least one cell");
    let dag = dependency_dag(problem, exec);
    assert!(dag.is_acyclic(), "dependency graph must be acyclic");

    // cv ← in-degree of v (number of vertices v depends on).
    let counters: Vec<AtomicUsize> = dag.in_degrees().into_iter().map(AtomicUsize::new).collect();
    let table: Vec<OnceLock<P::Value>> = (0..n).map(|_| OnceLock::new()).collect();
    // Ready queue seeded with the base cases (in-degree 0), in creation order.
    let ready: Mutex<std::collections::VecDeque<usize>> = Mutex::new(
        counters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) == 0)
            .map(|(v, _)| v)
            .collect(),
    );
    let remaining = AtomicUsize::new(n);

    let p = exec.processors();
    // One worker loop per processor: each worker repeatedly takes a ready
    // cell, computes it and releases the cells that become ready — the
    // `computeVertex` routine of Algorithm 1 executed by whichever processor
    // is available.
    exec.for_each_index(0..p, |_| loop {
        if remaining.load(Ordering::Acquire) == 0 {
            break;
        }
        let next = ready.lock().pop_front();
        let Some(cell) = next else {
            std::thread::yield_now();
            continue;
        };
        let get = |i: usize| {
            table[i]
                .get()
                .expect("counter reached zero only after all dependencies completed")
                .clone()
        };
        let value = problem.compute(cell, &get);
        table[cell]
            .set(value)
            .unwrap_or_else(|_| panic!("cell {cell} computed twice"));
        remaining.fetch_sub(1, Ordering::AcqRel);
        for &succ in dag.successors(cell) {
            if counters[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.lock().push_back(succ);
            }
        }
    });
    collect(problem, table)
}

fn collect<P: DpProblem>(problem: &P, table: Vec<OnceLock<P::Value>>) -> DpSolution<P::Value> {
    let values: Vec<P::Value> = table
        .into_iter()
        .enumerate()
        .map(|(i, cell)| {
            cell.into_inner()
                .unwrap_or_else(|| panic!("cell {i} was never computed"))
        })
        .collect();
    finish(problem, values)
}

fn finish<P: DpProblem>(problem: &P, values: Vec<P::Value>) -> DpSolution<P::Value> {
    let goal = values[problem.goal_cell()].clone();
    DpSolution { values, goal }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};

    /// Pascal's triangle laid out row by row: C(r, c) = C(r-1, c-1) + C(r-1, c).
    struct Pascal {
        rows: usize,
    }

    impl Pascal {
        fn id(&self, r: usize, c: usize) -> usize {
            r * (r + 1) / 2 + c
        }
    }

    impl DpProblem for Pascal {
        type Value = u64;

        fn num_cells(&self) -> usize {
            self.rows * (self.rows + 1) / 2
        }

        fn dependencies(&self, cell: usize) -> Vec<usize> {
            let (r, c) = row_col(cell);
            if c == 0 || c == r {
                vec![]
            } else {
                vec![self.id(r - 1, c - 1), self.id(r - 1, c)]
            }
        }

        fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
            let (r, c) = row_col(cell);
            if c == 0 || c == r {
                1
            } else {
                get(self.id(r - 1, c - 1)) + get(self.id(r - 1, c))
            }
        }

        fn name(&self) -> &'static str {
            "pascal"
        }
    }

    fn row_col(cell: usize) -> (usize, usize) {
        let mut r = 0usize;
        let mut acc = 0usize;
        while acc + r < cell {
            acc += r + 1;
            r += 1;
        }
        (r, cell - acc)
    }

    #[test]
    fn sequential_computes_pascal() {
        let p = Pascal { rows: 10 };
        let sol = solve_sequential(&p);
        // C(9, 4) = 126.
        assert_eq!(sol.values[p.id(9, 4)], 126);
        // Goal cell (last) = C(9,9) = 1.
        assert_eq!(sol.goal, 1);
    }

    #[test]
    fn all_schedulers_agree_on_pascal() {
        let p = Pascal { rows: 16 };
        let seq = solve_sequential(&p);
        let pool = PalPool::new(4).unwrap();
        let wave = solve_wavefront(&p, &pool);
        let counter = solve_counter(&p, &pool);
        assert_eq!(seq.values, wave.values);
        assert_eq!(seq.values, counter.values);
    }

    #[test]
    fn schedulers_work_on_sequential_executor() {
        let p = Pascal { rows: 8 };
        let seq = solve_sequential(&p);
        let wave = solve_wavefront(&p, &SeqExecutor);
        let counter = solve_counter(&p, &SeqExecutor);
        assert_eq!(seq.values, wave.values);
        assert_eq!(seq.values, counter.values);
    }

    #[test]
    fn dependency_dag_matches_specification() {
        let p = Pascal { rows: 6 };
        let dag = dependency_dag(&p, &SeqExecutor);
        assert_eq!(dag.len(), p.num_cells());
        // Interior cell (3, 1) depends on (2, 0) and (2, 1).
        let cell = p.id(3, 1);
        assert!(dag.successors(p.id(2, 0)).contains(&cell));
        assert!(dag.successors(p.id(2, 1)).contains(&cell));
        // The two outer diagonals of the triangle are base cases (level 0);
        // interior cells of row r sit at level r − 1, so 6 rows give a
        // longest chain of 5.
        assert_eq!(dag.longest_chain(), 5);
    }

    #[test]
    fn results_identical_for_any_p() {
        let p = Pascal { rows: 20 };
        let expected = solve_sequential(&p);
        for procs in [1usize, 2, 3, 4, 8] {
            let pool = PalPool::new(procs).unwrap();
            assert_eq!(
                solve_counter(&p, &pool).values,
                expected.values,
                "p = {procs}"
            );
            assert_eq!(
                solve_wavefront(&p, &pool).values,
                expected.values,
                "p = {procs}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_problem_rejected() {
        struct Empty;
        impl DpProblem for Empty {
            type Value = u8;
            fn num_cells(&self) -> usize {
                0
            }
            fn dependencies(&self, _: usize) -> Vec<usize> {
                vec![]
            }
            fn compute(&self, _: usize, _: &dyn Fn(usize) -> u8) -> u8 {
                0
            }
        }
        let _ = solve_sequential(&Empty);
    }
}
