//! Optimal matrix-chain multiplication order (Bradford's flagship problem,
//! cited in §4.2).
//!
//! Interval DP: cell `(i, j)` is the minimum number of scalar multiplications
//! needed for the product `A_i ⋯ A_j`.  The antichains of the dependency DAG
//! are the diagonals of fixed chain length, so the available parallelism
//! grows and then shrinks as the evaluation proceeds — a different profile
//! from the rectangular string problems.

use crate::spec::DpProblem;

/// Matrix-chain ordering as a dynamic program over intervals.
#[derive(Debug, Clone)]
pub struct MatrixChain {
    /// Matrix `A_k` has dimensions `dims[k] × dims[k+1]`.
    dims: Vec<u64>,
}

impl MatrixChain {
    /// Create the problem from the dimension vector (`n+1` entries for `n`
    /// matrices).  Panics when fewer than two entries are supplied.
    pub fn new(dims: Vec<u64>) -> Self {
        assert!(dims.len() >= 2, "need at least one matrix (two dimensions)");
        MatrixChain { dims }
    }

    /// Number of matrices in the chain.
    pub fn matrices(&self) -> usize {
        self.dims.len() - 1
    }

    fn cell(&self, i: usize, j: usize) -> usize {
        i * self.matrices() + j
    }

    fn coords(&self, cell: usize) -> (usize, usize) {
        (cell / self.matrices(), cell % self.matrices())
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u64 {
        let n = self.matrices();
        let mut dp = vec![vec![0u64; n]; n];
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                dp[i][j] = u64::MAX;
                for k in i..j {
                    let cost = dp[i][k]
                        + dp[k + 1][j]
                        + self.dims[i] * self.dims[k + 1] * self.dims[j + 1];
                    dp[i][j] = dp[i][j].min(cost);
                }
            }
        }
        dp[0][n - 1]
    }
}

impl DpProblem for MatrixChain {
    type Value = u64;

    fn num_cells(&self) -> usize {
        self.matrices() * self.matrices()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let (i, j) = self.coords(cell);
        if i >= j {
            return vec![];
        }
        let mut deps = Vec::with_capacity(2 * (j - i));
        for k in i..j {
            deps.push(self.cell(i, k));
            deps.push(self.cell(k + 1, j));
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        let (i, j) = self.coords(cell);
        if i >= j {
            return 0;
        }
        let mut best = u64::MAX;
        for k in i..j {
            let cost = get(self.cell(i, k))
                + get(self.cell(k + 1, j))
                + self.dims[i] * self.dims[k + 1] * self.dims[j + 1];
            best = best.min(cost);
        }
        best
    }

    fn goal_cell(&self) -> usize {
        self.cell(0, self.matrices() - 1)
    }

    fn name(&self) -> &'static str {
        "matrix-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    #[test]
    fn clrs_example() {
        // CLRS 15.2: dimensions 30x35, 35x15, 15x5, 5x10, 10x20, 20x25 → 15125.
        let p = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25]);
        assert_eq!(p.reference(), 15_125);
    }

    #[test]
    fn single_matrix_costs_nothing() {
        let p = MatrixChain::new(vec![10, 20]);
        assert_eq!(p.reference(), 0);
        assert_eq!(solve_sequential(&p).goal, 0);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = MatrixChain::new(vec![30, 35, 15, 5, 10, 20, 25, 40, 8, 12]);
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn memoization_skips_lower_triangle() {
        let p = MatrixChain::new(vec![4, 5, 6, 7, 8, 9, 10, 11]);
        let run = solve_memoized(&p, &SeqExecutor);
        assert_eq!(run.goal, p.reference());
        // Only the upper triangle (including diagonal) is reachable.
        let n = p.matrices();
        assert!(run.computed_cells <= n * (n + 1) / 2);
    }

    #[test]
    fn dag_height_equals_chain_length() {
        let p = MatrixChain::new(vec![2; 9]); // 8 matrices
        let dag = dependency_dag(&p, &SeqExecutor);
        // Levels correspond to interval lengths 1..=8.
        assert_eq!(dag.longest_chain(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_parallel_matches_reference(dims in proptest::collection::vec(1u64..30, 2..12)) {
            let p = MatrixChain::new(dims);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
            prop_assert_eq!(solve_memoized(&p, &pool).goal, expected);
        }
    }
}
