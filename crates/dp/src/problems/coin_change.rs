//! Coin change: count the ways to make an amount from a set of coin
//! denominations (order-insensitive).
//!
//! The `(coins+1) × (amount+1)` table is row-staged like knapsack but the
//! in-row dependency (`same row, amount − coin`) makes each row a chain of
//! its own — a DAG whose width depends on the denominations, exercising the
//! less regular shapes §4.6 anticipates.

use crate::spec::DpProblem;

/// Coin-change counting as a dynamic program.
#[derive(Debug, Clone)]
pub struct CoinChange {
    coins: Vec<usize>,
    amount: usize,
}

impl CoinChange {
    /// Create the problem; coins must be non-zero.
    pub fn new(coins: Vec<usize>, amount: usize) -> Self {
        assert!(coins.iter().all(|&c| c > 0), "coin values must be positive");
        CoinChange { coins, amount }
    }

    fn cols(&self) -> usize {
        self.amount + 1
    }

    fn cell(&self, coin: usize, amt: usize) -> usize {
        coin * self.cols() + amt
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u64 {
        let mut dp = vec![0u64; self.amount + 1];
        dp[0] = 1;
        for &c in &self.coins {
            for amt in c..=self.amount {
                dp[amt] += dp[amt - c];
            }
        }
        dp[self.amount]
    }
}

impl DpProblem for CoinChange {
    type Value = u64;

    fn num_cells(&self) -> usize {
        (self.coins.len() + 1) * self.cols()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let coin = cell / self.cols();
        let amt = cell % self.cols();
        if coin == 0 {
            return vec![];
        }
        let mut deps = vec![self.cell(coin - 1, amt)];
        let c = self.coins[coin - 1];
        if c <= amt {
            deps.push(self.cell(coin, amt - c));
        }
        deps
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        let coin = cell / self.cols();
        let amt = cell % self.cols();
        if coin == 0 {
            return u64::from(amt == 0);
        }
        let without = get(self.cell(coin - 1, amt));
        let c = self.coins[coin - 1];
        if c <= amt {
            without + get(self.cell(coin, amt - c))
        } else {
            without
        }
    }

    fn goal_cell(&self) -> usize {
        self.cell(self.coins.len(), self.amount)
    }

    fn name(&self) -> &'static str {
        "coin-change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::PalPool;
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(CoinChange::new(vec![1, 2, 5], 5).reference(), 4);
        assert_eq!(CoinChange::new(vec![2], 3).reference(), 0);
        assert_eq!(CoinChange::new(vec![1, 2, 3], 4).reference(), 4);
        assert_eq!(CoinChange::new(vec![5], 0).reference(), 1);
        assert_eq!(CoinChange::new(vec![], 0).reference(), 1);
        assert_eq!(CoinChange::new(vec![], 3).reference(), 0);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = CoinChange::new(vec![1, 2, 5, 10, 20], 60);
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn duplicate_denominations_count_separately() {
        // Two identical coins double-count combinations that use them, by design
        // of the row-staged formulation; the reference and the DP must agree.
        let p = CoinChange::new(vec![2, 2], 4);
        assert_eq!(solve_sequential(&p).goal, p.reference());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_parallel_matches_reference(
            coins in proptest::collection::vec(1usize..10, 0..5),
            amount in 0usize..40
        ) {
            let p = CoinChange::new(coins, amount);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }
    }
}
