//! 0/1 knapsack.
//!
//! The `(items+1) × (capacity+1)` table where row `i` depends only on row
//! `i−1`: every row is an antichain of width `capacity+1`, so the DAG is wide
//! and shallow — the friendliest shape for the paper's schedulers.

use crate::spec::DpProblem;

/// 0/1 knapsack as a dynamic program.
#[derive(Debug, Clone)]
pub struct Knapsack {
    weights: Vec<usize>,
    values: Vec<u64>,
    capacity: usize,
}

impl Knapsack {
    /// Create the problem; panics when `weights` and `values` differ in length.
    pub fn new(weights: Vec<usize>, values: Vec<u64>, capacity: usize) -> Self {
        assert_eq!(
            weights.len(),
            values.len(),
            "weights and values must pair up"
        );
        Knapsack {
            weights,
            values,
            capacity,
        }
    }

    fn cols(&self) -> usize {
        self.capacity + 1
    }

    fn cell(&self, item: usize, cap: usize) -> usize {
        item * self.cols() + cap
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u64 {
        let mut dp = vec![0u64; self.cols()];
        for i in 0..self.weights.len() {
            for cap in (0..=self.capacity).rev() {
                if self.weights[i] <= cap {
                    dp[cap] = dp[cap].max(dp[cap - self.weights[i]] + self.values[i]);
                }
            }
        }
        dp[self.capacity]
    }
}

impl DpProblem for Knapsack {
    type Value = u64;

    fn num_cells(&self) -> usize {
        (self.weights.len() + 1) * self.cols()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let item = cell / self.cols();
        let cap = cell % self.cols();
        if item == 0 {
            return vec![];
        }
        let mut deps = vec![self.cell(item - 1, cap)];
        let w = self.weights[item - 1];
        if w <= cap {
            deps.push(self.cell(item - 1, cap - w));
        }
        deps
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        let item = cell / self.cols();
        let cap = cell % self.cols();
        if item == 0 {
            return 0;
        }
        let without = get(self.cell(item - 1, cap));
        let w = self.weights[item - 1];
        if w <= cap {
            without.max(get(self.cell(item - 1, cap - w)) + self.values[item - 1])
        } else {
            without
        }
    }

    fn goal_cell(&self) -> usize {
        self.cell(self.weights.len(), self.capacity)
    }

    fn name(&self) -> &'static str {
        "knapsack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        let p = Knapsack::new(vec![1, 3, 4, 5], vec![1, 4, 5, 7], 7);
        assert_eq!(p.reference(), 9);
        let trivial = Knapsack::new(vec![], vec![], 10);
        assert_eq!(trivial.reference(), 0);
        let too_heavy = Knapsack::new(vec![10, 20], vec![100, 200], 5);
        assert_eq!(too_heavy.reference(), 0);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = Knapsack::new(
            vec![2, 3, 4, 5, 9, 7, 1, 6],
            vec![3, 4, 5, 8, 10, 7, 1, 6],
            20,
        );
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn dag_is_row_staged() {
        let p = Knapsack::new(vec![2, 3], vec![5, 6], 6);
        let dag = dependency_dag(&p, &SeqExecutor);
        // Longest chain = number of item rows + 1.
        assert_eq!(dag.longest_chain(), 3);
        // Width equals the number of capacity columns.
        assert_eq!(dag.max_width(), 7);
    }

    #[test]
    fn zero_capacity() {
        let p = Knapsack::new(vec![1, 2], vec![10, 20], 0);
        assert_eq!(p.reference(), 0);
        assert_eq!(solve_sequential(&p).goal, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_parallel_matches_reference(
            items in proptest::collection::vec((1usize..8, 1u64..30), 0..8),
            capacity in 0usize..25
        ) {
            let (weights, values): (Vec<usize>, Vec<u64>) = items.into_iter().unzip();
            let p = Knapsack::new(weights, values, capacity);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }

        #[test]
        fn prop_value_monotone_in_capacity(
            items in proptest::collection::vec((1usize..6, 1u64..20), 1..6),
            capacity in 1usize..20
        ) {
            let (weights, values): (Vec<usize>, Vec<u64>) = items.into_iter().unzip();
            let smaller = Knapsack::new(weights.clone(), values.clone(), capacity - 1).reference();
            let larger = Knapsack::new(weights, values, capacity).reference();
            prop_assert!(larger >= smaller);
        }
    }
}
