//! All-pairs shortest paths (Floyd–Warshall) as a three-dimensional DP.
//!
//! Cell `(k, i, j)` is the shortest `i → j` distance using only intermediate
//! vertices `< k`.  Each `k`-slab depends only on slab `k−1`, so the
//! antichains are the `n²`-cell slabs — a deep DAG (`n+1` levels) whose
//! levels are individually very wide.

use crate::spec::DpProblem;

/// Large-but-safe "infinity" for missing edges.
pub const INF: u64 = u64::MAX / 4;

/// Floyd–Warshall as a dynamic program over `(k, i, j)` cells.
#[derive(Debug, Clone)]
pub struct FloydWarshall {
    n: usize,
    /// Adjacency matrix with `INF` for missing edges, 0 on the diagonal.
    adj: Vec<u64>,
}

impl FloydWarshall {
    /// Create the problem from an adjacency matrix given in row-major order
    /// (`INF` for missing edges).
    pub fn new(n: usize, adj: Vec<u64>) -> Self {
        assert!(n > 0, "need at least one vertex");
        assert_eq!(adj.len(), n * n, "adjacency matrix must be n×n");
        FloydWarshall { n, adj }
    }

    /// Build from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> Self {
        let mut adj = vec![INF; n * n];
        for i in 0..n {
            adj[i * n + i] = 0;
        }
        for &(u, v, w) in edges {
            let slot = &mut adj[u * n + v];
            *slot = (*slot).min(w);
        }
        FloydWarshall::new(n, adj)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.n
    }

    fn cell(&self, k: usize, i: usize, j: usize) -> usize {
        (k * self.n + i) * self.n + j
    }

    fn coords(&self, cell: usize) -> (usize, usize, usize) {
        let j = cell % self.n;
        let rest = cell / self.n;
        (rest / self.n, rest % self.n, j)
    }

    /// Plain sequential reference implementation (in-place relaxation).
    pub fn reference(&self) -> Vec<u64> {
        let n = self.n;
        let mut d = self.adj.clone();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i * n + k].saturating_add(d[k * n + j]);
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        d
    }

    /// Extract the final distance matrix from a full DP solution.
    pub fn distances(&self, values: &[u64]) -> Vec<u64> {
        let base = self.n * self.n * self.n;
        values[base..base + self.n * self.n].to_vec()
    }
}

impl DpProblem for FloydWarshall {
    type Value = u64;

    fn num_cells(&self) -> usize {
        (self.n + 1) * self.n * self.n
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let (k, i, j) = self.coords(cell);
        if k == 0 {
            return vec![];
        }
        let mut deps = vec![
            self.cell(k - 1, i, j),
            self.cell(k - 1, i, k - 1),
            self.cell(k - 1, k - 1, j),
        ];
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        let (k, i, j) = self.coords(cell);
        if k == 0 {
            return self.adj[i * self.n + j];
        }
        let direct = get(self.cell(k - 1, i, j));
        let via = get(self.cell(k - 1, i, k - 1)).saturating_add(get(self.cell(k - 1, k - 1, j)));
        direct.min(via)
    }

    fn goal_cell(&self) -> usize {
        self.cell(self.n, self.n - 1, self.n - 1)
    }

    fn name(&self) -> &'static str {
        "floyd-warshall"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    fn sample_graph() -> FloydWarshall {
        FloydWarshall::from_edges(
            5,
            &[
                (0, 1, 3),
                (0, 3, 7),
                (1, 2, 1),
                (2, 3, 2),
                (3, 4, 1),
                (4, 0, 8),
                (1, 4, 9),
            ],
        )
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // row-major `row * n + col` indexing
    fn reference_shortest_paths() {
        let g = sample_graph();
        let d = g.reference();
        let n = g.vertices();
        assert_eq!(d[0 * n + 2], 4); // 0→1→2
        assert_eq!(d[0 * n + 3], 6); // 0→1→2→3
        assert_eq!(d[0 * n + 4], 7); // 0→1→2→3→4
        assert_eq!(d[4 * n + 2], 12); // 4→0→1→2
        assert_eq!(d[1 * n + 1], 0);
    }

    #[test]
    fn dp_formulation_matches_reference() {
        let g = sample_graph();
        let sol = solve_sequential(&g);
        assert_eq!(g.distances(&sol.values), g.reference());
    }

    #[test]
    fn all_schedulers_match_reference() {
        let g = sample_graph();
        let expected = g.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(g.distances(&solve_wavefront(&g, &pool).values), expected);
        assert_eq!(g.distances(&solve_counter(&g, &pool).values), expected);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)] // row-major `row * n + col` indexing
    fn disconnected_vertices_stay_at_infinity() {
        let g = FloydWarshall::from_edges(3, &[(0, 1, 5)]);
        let d = g.reference();
        assert_eq!(d[0 * 3 + 2], INF);
        assert_eq!(d[2 * 3 + 0], INF);
        let sol = solve_sequential(&g);
        assert_eq!(g.distances(&sol.values), d);
    }

    #[test]
    fn dag_has_one_level_per_k_slab() {
        let g = FloydWarshall::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let dag = dependency_dag(&g, &SeqExecutor);
        assert_eq!(dag.longest_chain(), 5); // k = 0..=4
        assert_eq!(dag.max_width(), 16);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_parallel_matches_reference(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 1u64..20), 0..20)
        ) {
            let g = FloydWarshall::from_edges(6, &edges);
            let expected = g.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(g.distances(&solve_counter(&g, &pool).values), expected.clone());
            prop_assert_eq!(g.distances(&solve_wavefront(&g, &pool).values), expected);
        }

        #[test]
        fn prop_triangle_inequality_holds(
            edges in proptest::collection::vec((0usize..5, 0usize..5, 1u64..20), 0..15)
        ) {
            let g = FloydWarshall::from_edges(5, &edges);
            let d = g.reference();
            let n = 5;
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        prop_assert!(d[i * n + j] <= d[i * n + k].saturating_add(d[k * n + j]));
                    }
                }
            }
        }
    }
}
