//! The one-dimensional chain DP — the paper's explicit *negative* example.
//!
//! §4.3: "In certain cases, such as one dimensional dynamic programming the
//! DAG is a path and hence there is no speedup possible."  [`PrefixChain`]
//! computes running prefix aggregates where every cell depends only on its
//! predecessor, so the dependency DAG is a path: the antichain decomposition
//! has width 1 and every scheduler degenerates to sequential execution.  The
//! experiment harness uses it to show measured speedup ≈ 1 regardless of `p`.

use crate::spec::DpProblem;

/// A strictly sequential prefix-recurrence `M[i] = g(M[i−1], a_i)`.
#[derive(Debug, Clone)]
pub struct PrefixChain {
    values: Vec<i64>,
}

impl PrefixChain {
    /// Create the chain over the given inputs.
    pub fn new(values: Vec<i64>) -> Self {
        assert!(!values.is_empty(), "need at least one element");
        PrefixChain { values }
    }

    /// Reference implementation of the recurrence
    /// `M[i] = M[i−1] ⊕ a_i` where `⊕` mixes the running state non-linearly
    /// (so the recurrence cannot be trivially reassociated).
    pub fn reference(&self) -> i64 {
        let mut state = 0i64;
        for &v in &self.values {
            state = step(state, v);
        }
        state
    }

    /// Number of input elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the chain has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

fn step(state: i64, value: i64) -> i64 {
    // A non-associative mixing step: order matters, so the chain cannot be
    // parallelised by re-association.
    state
        .wrapping_mul(31)
        .wrapping_add(value)
        .rotate_left(7)
        .wrapping_sub(state >> 3)
}

impl DpProblem for PrefixChain {
    type Value = i64;

    fn num_cells(&self) -> usize {
        self.values.len()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        if cell == 0 {
            vec![]
        } else {
            vec![cell - 1]
        }
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> i64) -> i64 {
        let prev = if cell == 0 { 0 } else { get(cell - 1) };
        step(prev, self.values[cell])
    }

    fn name(&self) -> &'static str {
        "prefix-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    #[test]
    fn dp_matches_reference() {
        let p = PrefixChain::new((0..1000).map(|i| i * 3 - 500).collect());
        let expected = p.reference();
        assert_eq!(solve_sequential(&p).goal, expected);
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn dag_is_a_path_with_no_parallelism() {
        let p = PrefixChain::new(vec![1; 200]);
        let dag = dependency_dag(&p, &SeqExecutor);
        assert_eq!(dag.longest_chain(), 200);
        assert_eq!(dag.max_width(), 1);
        assert!((dag.max_speedup(8) - 1.0).abs() < 1e-12);
        assert_eq!(dag.greedy_schedule_length(8), 200);
    }

    #[test]
    fn order_sensitivity_of_the_recurrence() {
        let forward = PrefixChain::new(vec![1, 2, 3, 4, 5]).reference();
        let backward = PrefixChain::new(vec![5, 4, 3, 2, 1]).reference();
        assert_ne!(forward, backward, "the chain must not be reassociable");
    }

    proptest! {
        #[test]
        fn prop_all_schedulers_agree(values in proptest::collection::vec(-1000i64..1000, 1..120)) {
            let p = PrefixChain::new(values);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_sequential(&p).goal, expected);
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }
    }
}
