//! Longest common subsequence.
//!
//! The `(|a|+1) × (|b|+1)` table with the north/west/north-west dependency
//! pattern: its antichains are the anti-diagonals, so the DAG has width
//! `Θ(min(|a|, |b|))` and the paper's schedulers obtain `O(T(n)/p)` for
//! `p = O(log n)`.

use crate::spec::DpProblem;

/// Longest-common-subsequence length as a dynamic program.
#[derive(Debug, Clone)]
pub struct Lcs {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl Lcs {
    /// Create the problem for two byte strings.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        Lcs {
            a: a.into(),
            b: b.into(),
        }
    }

    fn cols(&self) -> usize {
        self.b.len() + 1
    }

    fn cell(&self, i: usize, j: usize) -> usize {
        i * self.cols() + j
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u32 {
        let (n, m) = (self.a.len(), self.b.len());
        let mut dp = vec![vec![0u32; m + 1]; n + 1];
        for i in 1..=n {
            for j in 1..=m {
                dp[i][j] = if self.a[i - 1] == self.b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[n][m]
    }
}

impl DpProblem for Lcs {
    type Value = u32;

    fn num_cells(&self) -> usize {
        (self.a.len() + 1) * self.cols()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let i = cell / self.cols();
        let j = cell % self.cols();
        if i == 0 || j == 0 {
            return vec![];
        }
        vec![
            self.cell(i - 1, j - 1),
            self.cell(i - 1, j),
            self.cell(i, j - 1),
        ]
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u32) -> u32 {
        let i = cell / self.cols();
        let j = cell % self.cols();
        if i == 0 || j == 0 {
            return 0;
        }
        if self.a[i - 1] == self.b[j - 1] {
            get(self.cell(i - 1, j - 1)) + 1
        } else {
            get(self.cell(i - 1, j)).max(get(self.cell(i, j - 1)))
        }
    }

    fn goal_cell(&self) -> usize {
        self.cell(self.a.len(), self.b.len())
    }

    fn name(&self) -> &'static str {
        "lcs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(Lcs::new(*b"ABCBDAB", *b"BDCABA").reference(), 4);
        assert_eq!(Lcs::new(*b"", *b"anything").reference(), 0);
        assert_eq!(Lcs::new(*b"same", *b"same").reference(), 4);
        assert_eq!(Lcs::new(*b"abc", *b"def").reference(), 0);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = Lcs::new(
            *b"parallel algorithmic threads",
            *b"low degree parallel ram",
        );
        let expected = p.reference();
        assert_eq!(solve_sequential(&p).goal, expected);
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
        assert_eq!(solve_wavefront(&p, &SeqExecutor).goal, expected);
    }

    #[test]
    fn dag_antichains_are_antidiagonals() {
        let p = Lcs::new(*b"abcd", *b"xyz");
        let dag = dependency_dag(&p, &SeqExecutor);
        // All border cells are base cases (level 0); interior cell (i, j)
        // sits at level i + j − 1, so the longest chain has |a| + |b| levels.
        assert_eq!(dag.longest_chain(), 4 + 3);
        assert!(dag.levels().validate(&dag));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_parallel_matches_reference(
            a in proptest::collection::vec(0u8..4, 0..24),
            b in proptest::collection::vec(0u8..4, 0..24)
        ) {
            let p = Lcs::new(a, b);
            let pool = PalPool::new(3).unwrap();
            let expected = p.reference();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
            prop_assert_eq!(solve_memoized(&p, &pool).goal, expected);
        }
    }
}
