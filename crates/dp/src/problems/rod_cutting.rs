//! Rod cutting: maximise revenue from cutting a rod of length `n` given a
//! price per piece length.
//!
//! Cell `i` depends on all cells `< i`, like LIS, but each cell also reads a
//! price table — a second dense-dependency problem with different work per
//! cell, useful for exercising load balancing in the schedulers.

use crate::spec::DpProblem;

/// Rod cutting as a dynamic program.
#[derive(Debug, Clone)]
pub struct RodCutting {
    prices: Vec<u64>,
    length: usize,
}

impl RodCutting {
    /// `prices[k]` is the price of a piece of length `k + 1`; `length` is the
    /// rod length to cut.
    pub fn new(prices: Vec<u64>, length: usize) -> Self {
        assert!(!prices.is_empty(), "need at least one piece price");
        RodCutting { prices, length }
    }

    fn price(&self, piece: usize) -> u64 {
        if piece == 0 {
            0
        } else {
            self.prices.get(piece - 1).copied().unwrap_or(0)
        }
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u64 {
        let mut dp = vec![0u64; self.length + 1];
        for len in 1..=self.length {
            for cut in 1..=len {
                dp[len] = dp[len].max(self.price(cut) + dp[len - cut]);
            }
        }
        dp[self.length]
    }
}

impl DpProblem for RodCutting {
    type Value = u64;

    fn num_cells(&self) -> usize {
        self.length + 1
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        (0..cell).collect()
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        if cell == 0 {
            return 0;
        }
        let mut best = 0;
        for cut in 1..=cell {
            best = best.max(self.price(cut) + get(cell - cut));
        }
        best
    }

    fn name(&self) -> &'static str {
        "rod-cutting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::PalPool;
    use proptest::prelude::*;

    #[test]
    fn clrs_example() {
        // CLRS prices for lengths 1..10; rod of length 10 → 30, length 7 → 18.
        let prices = vec![1, 5, 8, 9, 10, 17, 17, 20, 24, 30];
        assert_eq!(RodCutting::new(prices.clone(), 10).reference(), 30);
        assert_eq!(RodCutting::new(prices.clone(), 7).reference(), 18);
        assert_eq!(RodCutting::new(prices, 0).reference(), 0);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = RodCutting::new(vec![1, 5, 8, 9, 10, 17, 17, 20, 24, 30], 25);
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn lengths_beyond_price_table_use_combinations() {
        // Only length-1 pieces priced: revenue = length × price.
        let p = RodCutting::new(vec![3], 9);
        assert_eq!(p.reference(), 27);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_parallel_matches_reference(
            prices in proptest::collection::vec(0u64..40, 1..10),
            length in 0usize..40
        ) {
            let p = RodCutting::new(prices, length);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }

        #[test]
        fn prop_revenue_monotone_in_length(
            prices in proptest::collection::vec(0u64..40, 1..10),
            length in 1usize..30
        ) {
            let shorter = RodCutting::new(prices.clone(), length - 1).reference();
            let longer = RodCutting::new(prices, length).reference();
            prop_assert!(longer >= shorter);
        }
    }
}
