//! Levenshtein edit distance — the string-editing problem of Apostolico,
//! Atallah, Larmore and McFaddin that the paper cites as the classical
//! parallel-DP benchmark (§4.2).
//!
//! Same anti-diagonal DAG as LCS, with unit insert/delete/substitute costs.

use crate::spec::DpProblem;

/// Edit distance between two byte strings as a dynamic program.
#[derive(Debug, Clone)]
pub struct EditDistance {
    a: Vec<u8>,
    b: Vec<u8>,
}

impl EditDistance {
    /// Create the problem for two byte strings.
    pub fn new(a: impl Into<Vec<u8>>, b: impl Into<Vec<u8>>) -> Self {
        EditDistance {
            a: a.into(),
            b: b.into(),
        }
    }

    fn cols(&self) -> usize {
        self.b.len() + 1
    }

    fn cell(&self, i: usize, j: usize) -> usize {
        i * self.cols() + j
    }

    /// Plain sequential reference implementation.
    pub fn reference(&self) -> u32 {
        let (n, m) = (self.a.len(), self.b.len());
        let mut dp = vec![vec![0u32; m + 1]; n + 1];
        for (i, row) in dp.iter_mut().enumerate() {
            row[0] = i as u32;
        }
        for (j, cell) in dp[0].iter_mut().enumerate() {
            *cell = j as u32;
        }
        for i in 1..=n {
            for j in 1..=m {
                let sub = if self.a[i - 1] == self.b[j - 1] { 0 } else { 1 };
                dp[i][j] = (dp[i - 1][j] + 1)
                    .min(dp[i][j - 1] + 1)
                    .min(dp[i - 1][j - 1] + sub);
            }
        }
        dp[n][m]
    }
}

impl DpProblem for EditDistance {
    type Value = u32;

    fn num_cells(&self) -> usize {
        (self.a.len() + 1) * self.cols()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let i = cell / self.cols();
        let j = cell % self.cols();
        if i == 0 || j == 0 {
            return vec![];
        }
        vec![
            self.cell(i - 1, j - 1),
            self.cell(i - 1, j),
            self.cell(i, j - 1),
        ]
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u32) -> u32 {
        let i = cell / self.cols();
        let j = cell % self.cols();
        if i == 0 {
            return j as u32;
        }
        if j == 0 {
            return i as u32;
        }
        let sub = if self.a[i - 1] == self.b[j - 1] { 0 } else { 1 };
        (get(self.cell(i - 1, j)) + 1)
            .min(get(self.cell(i, j - 1)) + 1)
            .min(get(self.cell(i - 1, j - 1)) + sub)
    }

    fn goal_cell(&self) -> usize {
        self.cell(self.a.len(), self.b.len())
    }

    fn name(&self) -> &'static str {
        "edit-distance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::PalPool;
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(EditDistance::new(*b"kitten", *b"sitting").reference(), 3);
        assert_eq!(EditDistance::new(*b"", *b"abc").reference(), 3);
        assert_eq!(EditDistance::new(*b"abc", *b"").reference(), 3);
        assert_eq!(EditDistance::new(*b"same", *b"same").reference(), 0);
        assert_eq!(EditDistance::new(*b"flaw", *b"lawn").reference(), 2);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = EditDistance::new(*b"divide and conquer", *b"dynamic programming");
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn edit_distance_is_a_metric_on_samples() {
        let words: [&[u8]; 4] = [b"abc", b"abd", b"xyz", b""];
        for &a in &words {
            assert_eq!(EditDistance::new(a, a).reference(), 0);
            for &b in &words {
                let ab = EditDistance::new(a, b).reference();
                let ba = EditDistance::new(b, a).reference();
                assert_eq!(ab, ba);
                for &c in &words {
                    let ac = EditDistance::new(a, c).reference();
                    let cb = EditDistance::new(c, b).reference();
                    assert!(ab <= ac + cb, "triangle inequality");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_parallel_matches_reference(
            a in proptest::collection::vec(0u8..3, 0..20),
            b in proptest::collection::vec(0u8..3, 0..20)
        ) {
            let p = EditDistance::new(a, b);
            let pool = PalPool::new(3).unwrap();
            let expected = p.reference();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }

        #[test]
        fn prop_distance_bounded_by_longer_string(
            a in proptest::collection::vec(0u8..5, 0..20),
            b in proptest::collection::vec(0u8..5, 0..20)
        ) {
            let d = EditDistance::new(a.clone(), b.clone()).reference();
            prop_assert!(d as usize <= a.len().max(b.len()));
            prop_assert!(d as usize >= a.len().abs_diff(b.len()));
        }
    }
}
