//! Classic dynamic programs expressed as [`DpProblem`](crate::DpProblem)s.
//!
//! The suite covers the DAG shapes §4.3/§4.6 of the paper distinguishes:
//!
//! * two-dimensional tables whose antichains are anti-diagonals — [`lcs`],
//!   [`edit_distance`] (the string-editing family of Apostolico et al. that
//!   the paper cites);
//! * interval ("parenthesisation") tables whose antichains are diagonals of
//!   fixed interval length — [`matrix_chain`], [`optimal_bst`] (the problems
//!   Bradford's technical report targets);
//! * row-staged tables where each row only depends on the previous one —
//!   [`knapsack`], [`coin_change`], [`rod_cutting`];
//! * a three-dimensional cube — [`floyd_warshall`];
//! * an all-pairs-dependent table — [`lis`];
//! * the one-dimensional chain with **no** parallelism, the paper's explicit
//!   negative example — [`chain`].

pub mod chain;
pub mod coin_change;
pub mod edit_distance;
pub mod floyd_warshall;
pub mod knapsack;
pub mod lcs;
pub mod lis;
pub mod matrix_chain;
pub mod optimal_bst;
pub mod rod_cutting;
