//! Optimal binary search tree construction — the second problem Bradford's
//! parallel-DP work targets (§4.2).
//!
//! Interval DP over key ranges: `e(i, j)` is the expected search cost of an
//! optimal BST over keys `i..j` with access probabilities `p`.  The DAG has
//! the same diagonal antichain structure as matrix-chain ordering.

use crate::spec::DpProblem;

/// Optimal BST expected-cost table as a dynamic program.
///
/// Costs are scaled to integers (frequencies rather than probabilities), as
/// is conventional for exact comparisons in tests.
#[derive(Debug, Clone)]
pub struct OptimalBst {
    freq: Vec<u64>,
    prefix: Vec<u64>,
}

impl OptimalBst {
    /// Create the problem from per-key access frequencies.
    pub fn new(freq: Vec<u64>) -> Self {
        assert!(!freq.is_empty(), "need at least one key");
        let mut prefix = vec![0u64; freq.len() + 1];
        for (i, &f) in freq.iter().enumerate() {
            prefix[i + 1] = prefix[i] + f;
        }
        OptimalBst { freq, prefix }
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.freq.len()
    }

    fn range_sum(&self, i: usize, j: usize) -> u64 {
        self.prefix[j + 1] - self.prefix[i]
    }

    fn cell(&self, i: usize, j: usize) -> usize {
        i * self.keys() + j
    }

    fn coords(&self, cell: usize) -> (usize, usize) {
        (cell / self.keys(), cell % self.keys())
    }

    /// Plain sequential reference implementation (`O(n³)`).
    pub fn reference(&self) -> u64 {
        let n = self.keys();
        let mut dp = vec![vec![0u64; n]; n];
        for (i, row) in dp.iter_mut().enumerate() {
            row[i] = self.freq[i];
        }
        for len in 2..=n {
            for i in 0..=n - len {
                let j = i + len - 1;
                let mut best = u64::MAX;
                for r in i..=j {
                    let left = if r > i { dp[i][r - 1] } else { 0 };
                    let right = if r < j { dp[r + 1][j] } else { 0 };
                    best = best.min(left + right);
                }
                dp[i][j] = best + self.range_sum(i, j);
            }
        }
        dp[0][n - 1]
    }
}

impl DpProblem for OptimalBst {
    type Value = u64;

    fn num_cells(&self) -> usize {
        self.keys() * self.keys()
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        let (i, j) = self.coords(cell);
        if i >= j {
            return vec![];
        }
        let mut deps = Vec::new();
        for r in i..=j {
            if r > i {
                deps.push(self.cell(i, r - 1));
            }
            if r < j {
                deps.push(self.cell(r + 1, j));
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u64) -> u64 {
        let (i, j) = self.coords(cell);
        if i > j {
            return 0;
        }
        if i == j {
            return self.freq[i];
        }
        let mut best = u64::MAX;
        for r in i..=j {
            let left = if r > i { get(self.cell(i, r - 1)) } else { 0 };
            let right = if r < j { get(self.cell(r + 1, j)) } else { 0 };
            best = best.min(left + right);
        }
        best + self.range_sum(i, j)
    }

    fn goal_cell(&self) -> usize {
        self.cell(0, self.keys() - 1)
    }

    fn name(&self) -> &'static str {
        "optimal-bst"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::PalPool;
    use proptest::prelude::*;

    #[test]
    fn textbook_example() {
        // Keys with frequencies 34, 8, 50: optimal cost 142 (classic example).
        let p = OptimalBst::new(vec![34, 8, 50]);
        assert_eq!(p.reference(), 142);
    }

    #[test]
    fn single_key_costs_its_frequency() {
        let p = OptimalBst::new(vec![7]);
        assert_eq!(p.reference(), 7);
        assert_eq!(solve_sequential(&p).goal, 7);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = OptimalBst::new(vec![34, 8, 50, 21, 13, 5, 40, 2]);
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn uniform_frequencies_give_balanced_cost() {
        // For 7 equal-frequency keys the optimal BST is the balanced tree:
        // cost = Σ freq · depth = 1·1 + 2·2 + 4·3 = 17 with freq 1.
        let p = OptimalBst::new(vec![1; 7]);
        assert_eq!(p.reference(), 17);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn prop_parallel_matches_reference(freq in proptest::collection::vec(1u64..50, 1..10)) {
            let p = OptimalBst::new(freq);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
            prop_assert_eq!(solve_memoized(&p, &pool).goal, expected);
        }
    }
}
