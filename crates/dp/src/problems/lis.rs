//! Longest increasing subsequence.
//!
//! Cell `i` = length of the longest increasing subsequence ending at index
//! `i`; it depends on **all** earlier cells, so the dependency DAG is the
//! transitive tournament: longest chain `n`, yet each level is computed from
//! `O(n)` reads — a stress test for schedulers on dense dependency lists.

use crate::spec::DpProblem;

/// Longest increasing subsequence as a dynamic program.
#[derive(Debug, Clone)]
pub struct Lis {
    values: Vec<i64>,
}

impl Lis {
    /// Create the problem for a sequence of values.
    pub fn new(values: Vec<i64>) -> Self {
        assert!(!values.is_empty(), "need at least one element");
        Lis { values }
    }

    /// Plain sequential reference implementation (`O(n²)`).
    pub fn reference(&self) -> u32 {
        let n = self.values.len();
        let mut dp = vec![1u32; n];
        let mut best = 1;
        for i in 1..n {
            for j in 0..i {
                if self.values[j] < self.values[i] {
                    dp[i] = dp[i].max(dp[j] + 1);
                }
            }
            best = best.max(dp[i]);
        }
        best
    }
}

impl DpProblem for Lis {
    type Value = u32;

    fn num_cells(&self) -> usize {
        // One cell per element plus a final aggregation cell.
        self.values.len() + 1
    }

    fn dependencies(&self, cell: usize) -> Vec<usize> {
        if cell == self.values.len() {
            return (0..self.values.len()).collect();
        }
        (0..cell).collect()
    }

    fn compute(&self, cell: usize, get: &dyn Fn(usize) -> u32) -> u32 {
        let n = self.values.len();
        if cell == n {
            return (0..n).map(get).max().unwrap_or(0);
        }
        let mut best = 1;
        for j in 0..cell {
            if self.values[j] < self.values[cell] {
                best = best.max(get(j) + 1);
            }
        }
        best
    }

    fn goal_cell(&self) -> usize {
        self.values.len()
    }

    fn name(&self) -> &'static str {
        "lis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::solve_memoized;
    use crate::solver::{dependency_dag, solve_counter, solve_sequential, solve_wavefront};
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;

    #[test]
    fn known_cases() {
        assert_eq!(Lis::new(vec![10, 9, 2, 5, 3, 7, 101, 18]).reference(), 4);
        assert_eq!(Lis::new(vec![1, 2, 3, 4]).reference(), 4);
        assert_eq!(Lis::new(vec![4, 3, 2, 1]).reference(), 1);
        assert_eq!(Lis::new(vec![7]).reference(), 1);
        assert_eq!(Lis::new(vec![2, 2, 2]).reference(), 1);
    }

    #[test]
    fn all_schedulers_match_reference() {
        let p = Lis::new(vec![
            3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4,
        ]);
        let expected = p.reference();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(solve_sequential(&p).goal, expected);
        assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        assert_eq!(solve_counter(&p, &pool).goal, expected);
        assert_eq!(solve_memoized(&p, &pool).goal, expected);
    }

    #[test]
    fn dag_is_a_transitive_tournament() {
        let p = Lis::new(vec![5, 1, 8, 2]);
        let dag = dependency_dag(&p, &SeqExecutor);
        // Every cell depends on all previous ones: longest chain = n + 1.
        assert_eq!(dag.longest_chain(), 5);
        assert_eq!(dag.max_width(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_parallel_matches_reference(values in proptest::collection::vec(-50i64..50, 1..40)) {
            let p = Lis::new(values);
            let expected = p.reference();
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(solve_counter(&p, &pool).goal, expected);
            prop_assert_eq!(solve_wavefront(&p, &pool).goal, expected);
        }

        #[test]
        fn prop_lis_of_sorted_is_distinct_count(mut values in proptest::collection::vec(-50i64..50, 1..40)) {
            values.sort();
            let expected = {
                let mut v = values.clone();
                v.dedup();
                v.len() as u32
            };
            prop_assert_eq!(Lis::new(values).reference(), expected);
        }
    }
}
