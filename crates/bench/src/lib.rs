//! # lopram-bench
//!
//! Experiment harness for the LoPRAM reproduction.  Every figure and
//! analytical claim of the paper has a binary in `src/bin/` that regenerates
//! it (see DESIGN.md §3 for the experiment index, and EXPERIMENTS.md for the
//! recorded paper-vs-measured comparison), plus Criterion benchmarks in
//! `benches/` for the wall-clock measurements:
//!
//! | binary | experiment |
//! |--------|------------|
//! | `fig1_mergesort_tree`  | Figure 1: mergesort pal-thread activation tree |
//! | `fig2_cutoff_depth`    | Figure 2: parallel cutoff depth `log_a p` |
//! | `table_master_case1`   | Theorem 1 case 1 (Karatsuba, Strassen, 4-way polymul) |
//! | `table_master_case2`   | Theorem 1 case 2 (mergesort, max subarray, closest pair) |
//! | `table_master_case3`   | Theorem 1 case 3 + Eq. 5 (dominant merge, seq vs parallel) |
//! | `table_eq3_validation` | Eq. 3 vs the step-accurate simulator |
//! | `table_dp_speedup`     | §4.4 Algorithm 1 / wavefront speedups on classic DPs |
//! | `table_dag_width`      | §4.3/§4.6 antichain widths and speedup bounds |
//! | `table_memoization`    | §4.5 parallel memoization vs bottom-up |
//! | `table_varying_p`      | §3.2 correctness and time as a function of p |
//! | `table_scheduler_ablation` | E12: work-stealing `PalPool` (cutoff on/off) vs eager `ThrottledPool` (steal/spawn/inline/elided counters, `--smoke` asserts divergence) |
//! | `table_sim_speedup`    | simulator speedup sweep |
//! | `bench_join_overhead`  | E13: ns/fork baseline — legacy mutex path vs lock-free deque vs α·log p cutoff, steal throughput, end-to-end matrix; emits `BENCH_join_overhead.json` (`--smoke` asserts the ≥5× gate) |
//! | `table_graph_speedup`  | E14: irregular graph kernels (scan/pack BFS, connected components, histogram, triangles) × shapes × p ∈ {1, 2, 4}; `--smoke` asserts parallel ≡ sequential, nonzero steals at p ≥ 2, exact fork accounting |
//! | `bench_primitive_overhead` | E15: steady-state primitive cost — ns/element and allocs/call for scan/pack/BFS-level, unfused allocation-per-call twins vs the fused arena-backed production path; emits `BENCH_primitive_overhead.json` (`--smoke` asserts the ≥2× per-level allocation gate) |
//! | `bench_trace_replay`   | E16: trace capture + deterministic replay — BFS traces captured at p ∈ {1, 2, 4} replayed across every (p, grain) via `lopram_sim::TraceReplay`; emits `BENCH_trace_replay.json` (`--smoke` asserts replay-predicted fork counts equal measured fork counts on every cell and p = 1 predictions are steal-free) |
//! | `bench_partition_fuse` | E17: partition-and-fuse engine ablation — flat vs partitioned BFS/CC on a streamed-build `G(n, m)` and a grid, p ∈ {1, 2, 4} × parts ∈ {1, 2, 4}; emits `BENCH_partition_fuse.json` (`--smoke` asserts twin equality, exact per-phase fork closed forms, zero warmed arena growth, and ≤ 0.5 allocs/level for p = 1 partitioned BFS) |
//! | `bench_serve`          | E18: multi-tenant job service under seeded traffic ([`traffic::TrafficPlan`]) — differential fault injection (faulted vs fault-free run, digest equality on every non-faulted job), saturation burst against the bounded queue, and an exclusive throughput phase with per-job fork conservation; emits `BENCH_serve.json` (`--smoke` gates zero differential mismatches, nonzero rejections with bounded depth, bounded tenant fairness ratio, and exact fork accounting) |
//!
//! This crate is an internal tool (`publish = false`); its library half holds
//! the shared measurement and pretty-printing helpers.

pub mod traffic;

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use lopram_core::{PalPool, ProcessorPolicy};
use rand::prelude::*;

/// Default processor counts swept by the experiment binaries.
pub const PROCESSOR_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Allocation events (alloc + realloc, across all threads) observed by
/// [`CountingAlloc`] since process start.
static ALLOCATION_EVENTS: AtomicU64 = AtomicU64::new(0);

/// A delegating global allocator that counts allocation events, used by
/// `bench_primitive_overhead` to measure allocs/call of the primitives.
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;` and read
/// the counter with [`CountingAlloc::events`]; the difference across a
/// call window divided by the call count is the allocs-per-call figure in
/// `BENCH_primitive_overhead.json`.  `realloc` counts as an event too —
/// buffer growth is exactly the traffic the workspace arena exists to
/// eliminate — while `dealloc` is free.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Total allocation events (alloc + realloc) so far.
    pub fn events() -> u64 {
        ALLOCATION_EVENTS.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates verbatim to `System`; the counter is a side effect
// with no influence on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Measure the median wall-clock time of `f` over `runs` executions
/// (after one warm-up run).
pub fn measure<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    assert!(runs >= 1);
    f(); // warm-up
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// A measured speedup row: one workload at one processor count.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label.
    pub label: String,
    /// Input size.
    pub n: usize,
    /// Processor count.
    pub p: usize,
    /// Sequential wall-clock time.
    pub sequential: Duration,
    /// Parallel wall-clock time.
    pub parallel: Duration,
    /// Speedup predicted by the analysis (Eq. 3 / Eq. 5), if applicable.
    pub predicted: Option<f64>,
}

impl SpeedupRow {
    /// Observed speedup `T_1 / T_p`.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.parallel.as_secs_f64().max(1e-12)
    }

    /// Observed efficiency `speedup / p`.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.p as f64
    }
}

/// Print a table of speedup rows with a title.
pub fn print_speedup_table(title: &str, rows: &[SpeedupRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>10} {:>4} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "workload", "n", "p", "T_1", "T_p", "speedup", "eff", "predicted"
    );
    for row in rows {
        println!(
            "{:<22} {:>10} {:>4} {:>12.3?} {:>12.3?} {:>9.2} {:>9.2} {:>10}",
            row.label,
            row.n,
            row.p,
            row.sequential,
            row.parallel,
            row.speedup(),
            row.efficiency(),
            row.predicted
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
}

/// Build a [`PalPool`] with exactly `p` processors.
pub fn pool_with(p: usize) -> PalPool {
    PalPool::new(p).expect("p >= 1")
}

/// The paper's default processor count for an input of size `n`.
pub fn logn_processors(n: usize) -> usize {
    ProcessorPolicy::LogN.processors(n)
}

/// Deterministic random vector of `i64`.
pub fn random_vec(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(-1_000_000..1_000_000))
        .collect()
}

/// Deterministic random byte string drawn from a small alphabet.
pub fn random_string(n: usize, alphabet: u8, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// Deterministic random square matrix.
pub fn random_matrix(n: usize, seed: u64) -> lopram_dnc::Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    lopram_dnc::Matrix::from_fn(n, |_, _| rng.gen_range(-1.0..1.0))
}

/// Deterministic random weighted edge list on `n` vertices.
pub fn random_edges(n: usize, edges: usize, seed: u64) -> Vec<(usize, usize, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(1..100),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_duration() {
        let d = measure(3, || {
            let v: u64 = (0..10_000u64).sum();
            std::hint::black_box(v);
        });
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn speedup_row_arithmetic() {
        let row = SpeedupRow {
            label: "x".into(),
            n: 100,
            p: 4,
            sequential: Duration::from_millis(100),
            parallel: Duration::from_millis(25),
            predicted: Some(4.0),
        };
        assert!((row.speedup() - 4.0).abs() < 1e-9);
        assert!((row.efficiency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn workload_generators_are_deterministic() {
        assert_eq!(random_vec(100, 7), random_vec(100, 7));
        assert_eq!(random_string(50, 4, 1), random_string(50, 4, 1));
        assert_eq!(random_edges(10, 20, 3), random_edges(10, 20, 3));
        assert_eq!(random_matrix(8, 5).data(), random_matrix(8, 5).data());
    }

    #[test]
    fn logn_processors_is_positive_and_logarithmic() {
        assert!(logn_processors(2) >= 1);
        assert!(logn_processors(1 << 20) <= 20);
    }
}
