//! Experiment E19 — the connected-components shootout: every CC kernel
//! family ablated on the shapes that separate them.
//!
//! Kernels: `components_label_prop` and `components_hook` (the
//! round-synchronous O(diameter) baselines), `components_partitioned`
//! (the partition-and-fuse engine at `parts = 4`), and
//! `components_union_find` (sampled concurrent union-find — CAS hooking,
//! path splitting, Afforest edge sampling; constant blocked passes).
//!
//! Graphs × `p ∈ {1, 2, 4}`:
//!
//! * **path** — a *permuted* path ([`path_permuted`]): isomorphic to the
//!   chain but with ids shuffled along it, so the round-synchronous
//!   kernels cannot shortcut the diameter with an ascending in-chunk
//!   zip — label propagation really pays Θ(diameter) rounds of Θ(n)
//!   work, the quadratic blow-up union-find exists to remove.  (On the
//!   identity-layout chain the scan order itself resolves the component
//!   in ~2 rounds, which benchmarks the memory allocator, not the
//!   algorithm.)
//! * **star** — maximal degree skew: one hub edge list dominates every
//!   blocked pass.
//! * **gnm** — a streamed `G(n, m)` at ~10⁶ edges in the full run (built
//!   without materializing the edge list), the low-diameter heavy-traffic
//!   shape.
//!
//! Per cell the binary records rounds (fixpoint-confirming round
//! included; union-find's pass count is the static `sample_edges + 1`;
//! the partitioned kernel is not round-synchronous and reports 0),
//! forks, ns/edge, and whether the labels matched `components_seq`
//! (always asserted, so a mismatch aborts the run).
//!
//! `--smoke` (and the full run — the checks are cheap) asserts:
//! * every kernel's labels ≡ the sequential twin on every cell;
//! * union-find's fork count equals the exact closed form
//!   [`union_find_forks`] on every cell (schedule-independent);
//! * a warmed union-find run grows the arena by zero bytes (the
//!   workspace-checked-out parent/sample buffers are reused).
//!
//! Everything lands in `BENCH_cc_shootout.json`, the committed cross-PR
//! baseline the `bench-baseline` CI job gates on — in particular
//! union-find must beat label propagation on ns/edge on every
//! path-graph row.

use lopram_bench::measure;
use lopram_core::PalPool;
use lopram_graph::cc::{components_hook_rounds, components_label_prop_rounds};
use lopram_graph::prelude::*;
use lopram_graph::uf::components_union_find_metered;

/// One shootout cell: a (graph, kernel, p) configuration.
struct Row {
    graph: &'static str,
    kernel: &'static str,
    p: usize,
    rounds: u64,
    forks: u64,
    ns_per_edge: f64,
    matches_seq: bool,
}

fn ns_per_edge(d: std::time::Duration, edges: usize) -> f64 {
    d.as_nanos() as f64 / edges.max(1) as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (path_n, star_n, gnm_n, gnm_m, runs) = if smoke {
        (512usize, 1024usize, 2048usize, 8192usize, 2usize)
    } else {
        (8192, 1 << 16, 1 << 19, 1 << 20, 3)
    };
    let graphs: Vec<(&'static str, CsrGraph)> = vec![
        ("path", path_permuted(path_n, 7)),
        ("star", star(star_n)),
        ("gnm", gnm_streamed(gnm_n, gnm_m, 42)),
    ];
    println!(
        "CC shootout — permuted path({path_n}), star({star_n}), streamed G({gnm_n}, {gnm_m}); \
         kernels label_prop/hook/partitioned/union_find, p in {{1, 2, 4}}\n"
    );

    let uf_config = UnionFindConfig::default();
    let mut rows: Vec<Row> = Vec::new();
    for (gname, g) in &graphs {
        let n = g.vertices();
        let edges = g.edges();
        let expected = components_seq(g);
        for &p in &[1usize, 2, 4] {
            // ---- label propagation --------------------------------------
            let pool = PalPool::new(p).unwrap();
            let ((labels, lp_rounds), delta) =
                pool.scoped_metrics(|| components_label_prop_rounds(g, &pool));
            assert_eq!(&labels, &expected, "label_prop diverged: {gname}, p = {p}");
            let lp_time = measure(runs, || {
                std::hint::black_box(components_label_prop(g, &pool));
            });
            rows.push(Row {
                graph: gname,
                kernel: "label_prop",
                p,
                rounds: lp_rounds as u64,
                forks: delta.forks(),
                ns_per_edge: ns_per_edge(lp_time, edges),
                matches_seq: true,
            });

            // ---- tree hooking -------------------------------------------
            let pool = PalPool::new(p).unwrap();
            let ((labels, hook_rounds), delta) =
                pool.scoped_metrics(|| components_hook_rounds(g, &pool));
            assert_eq!(&labels, &expected, "hook diverged: {gname}, p = {p}");
            let hook_time = measure(runs, || {
                std::hint::black_box(components_hook(g, &pool));
            });
            rows.push(Row {
                graph: gname,
                kernel: "hook",
                p,
                rounds: hook_rounds as u64,
                forks: delta.forks(),
                ns_per_edge: ns_per_edge(hook_time, edges),
                matches_seq: true,
            });

            // ---- partitioned (parts = 4) --------------------------------
            let pool = PalPool::new(p).unwrap();
            let (labels, delta) = pool.scoped_metrics(|| components_partitioned(g, &pool, 4));
            assert_eq!(&labels, &expected, "partitioned diverged: {gname}, p = {p}");
            let part_time = measure(runs, || {
                std::hint::black_box(components_partitioned(g, &pool, 4));
            });
            rows.push(Row {
                graph: gname,
                kernel: "partitioned",
                p,
                rounds: 0, // not round-synchronous: one tree + flatten
                forks: delta.forks(),
                ns_per_edge: ns_per_edge(part_time, edges),
                matches_seq: true,
            });

            // ---- union-find ---------------------------------------------
            let pool = PalPool::new(p).unwrap();
            let (labels, phases) = components_union_find_metered(g, &pool, &uf_config);
            assert_eq!(&labels, &expected, "union_find diverged: {gname}, p = {p}");
            let forks = phases.sample.forks() + phases.finish.forks();
            assert_eq!(
                forks,
                union_find_forks(&pool, n, uf_config.sample_edges),
                "union-find fork closed form: {gname}, p = {p}"
            );
            // Warm to the arena fixpoint (schedule-dependent buffer-role
            // shuffling at p > 1; monotone, so convergent), then require
            // a zero-growth round.
            let mut arena_warm = i64::MAX;
            for _ in 0..50 {
                let before = pool.metrics().snapshot();
                std::hint::black_box(components_union_find(g, &pool));
                let delta = pool.metrics().snapshot().delta_since(&before);
                if delta.arena_bytes == 0 {
                    arena_warm = 0;
                    break;
                }
            }
            assert_eq!(
                arena_warm, 0,
                "union-find arena growth never settled to zero: {gname}, p = {p}"
            );
            let uf_time = measure(runs, || {
                std::hint::black_box(components_union_find(g, &pool));
            });
            rows.push(Row {
                graph: gname,
                kernel: "union_find",
                p,
                rounds: uf_config.sample_edges as u64 + 1,
                forks,
                ns_per_edge: ns_per_edge(uf_time, edges),
                matches_seq: true,
            });
        }
    }

    println!(
        "{:<6} {:<12} {:>3} {:>8} {:>8} {:>12} {:>8}",
        "graph", "kernel", "p", "rounds", "forks", "ns/edge", "seq=="
    );
    for r in &rows {
        println!(
            "{:<6} {:<12} {:>3} {:>8} {:>8} {:>12.2} {:>8}",
            r.graph, r.kernel, r.p, r.rounds, r.forks, r.ns_per_edge, r.matches_seq
        );
    }
    println!(
        "\nReading: on the permuted path the round-synchronous kernels pay O(diameter)\n\
         rounds of O(n) work (watch label_prop's rounds column track n), while\n\
         union-find stays at sample_edges + 1 = {} blocked passes with the exact\n\
         closed-form fork count on every row — work-efficiency, not scheduling, is\n\
         what separates the columns.",
        uf_config.sample_edges + 1
    );

    // -- JSON baseline -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"cc_shootout\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"workloads\": [{{\"name\": \"path\", \"n\": {path_n}, \"build\": \"permuted\"}}, \
         {{\"name\": \"star\", \"n\": {star_n}}}, \
         {{\"name\": \"gnm\", \"n\": {gnm_n}, \"m\": {gnm_m}, \"build\": \"streamed\"}}],\n"
    ));
    json.push_str(&format!(
        "  \"union_find_config\": {{\"sample_edges\": {}, \"sample_vertices\": {}}},\n",
        uf_config.sample_edges, uf_config.sample_vertices
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"kernel\": \"{}\", \"p\": {}, \"rounds\": {}, \
             \"forks\": {}, \"ns_per_edge\": {:.2}, \"matches_seq\": {}}}{comma}\n",
            r.graph, r.kernel, r.p, r.rounds, r.forks, r.ns_per_edge, r.matches_seq,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_cc_shootout.json is the full-size baseline.
    let default_out = if smoke {
        "BENCH_cc_shootout.smoke.json"
    } else {
        "BENCH_cc_shootout.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        println!(
            "smoke: OK ({} cells, every kernel ≡ sequential twin, union-find forks exact \
             and arena growth zero on every cell)",
            rows.len()
        );
    }
}
