//! Experiment E11 — §3.2: "The algorithm must execute properly for any value
//! of p.  The running time is, of course, a function of n and p."
//!
//! Runs mergesort and LCS for every `p` from 1 to twice the paper's
//! `⌈log₂ n⌉`, checks the results are identical, and prints how the running
//! time responds to `p` — including beyond the `O(log n)` regime the model
//! assumes.

use lopram_bench::{logn_processors, measure, pool_with, random_string, random_vec};
use lopram_dnc::mergesort::{merge_sort, merge_sort_seq};
use lopram_dp::prelude::*;

fn main() {
    let runs = 3;

    // Mergesort under varying p.
    let n = 1usize << 20;
    let logn = logn_processors(n);
    let data = random_vec(n, 1);
    let mut expected = data.clone();
    merge_sort_seq(&mut expected);

    println!("Varying p (§3.2) — mergesort, n = {n}, log2(n)-policy p = {logn}\n");
    println!(
        "{:>4} {:>12} {:>9} {:>11}",
        "p", "T_p", "speedup", "correct?"
    );
    let t1 = measure(runs, || {
        let mut v = data.clone();
        merge_sort_seq(&mut v);
        std::hint::black_box(v);
    });
    for p in 1..=(2 * logn).max(8) {
        let pool = pool_with(p);
        let mut check = data.clone();
        merge_sort(&pool, &mut check);
        let correct = check == expected;
        let tp = measure(runs, || {
            let mut v = data.clone();
            merge_sort(&pool, &mut v);
            std::hint::black_box(v);
        });
        println!(
            "{:>4} {:>12.3?} {:>9.2} {:>11}",
            p,
            tp,
            t1.as_secs_f64() / tp.as_secs_f64().max(1e-12),
            correct
        );
    }

    // LCS under varying p.
    let a = random_string(700, 4, 2);
    let b = random_string(700, 4, 3);
    let lcs = Lcs::new(a, b);
    let expected = solve_sequential(&lcs).goal;
    let t1 = measure(runs, || {
        std::hint::black_box(solve_sequential(&lcs));
    });
    println!("\nVarying p — LCS 700x700 (Algorithm 1)\n");
    println!(
        "{:>4} {:>12} {:>9} {:>11}",
        "p", "T_p", "speedup", "correct?"
    );
    for p in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let pool = pool_with(p);
        let correct = solve_counter(&lcs, &pool).goal == expected;
        let tp = measure(runs, || {
            std::hint::black_box(solve_counter(&lcs, &pool));
        });
        println!(
            "{:>4} {:>12.3?} {:>9.2} {:>11}",
            p,
            tp,
            t1.as_secs_f64() / tp.as_secs_f64().max(1e-12),
            correct
        );
    }
    println!("\nPaper claim (§3.2): results are identical for every p; time improves with p up");
    println!("to the available parallelism and the O(log n) bound keeps the schedule efficient.");
}
