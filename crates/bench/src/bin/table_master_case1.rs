//! Experiment E3 — Theorem 1, case 1 (`f(n) = O(n^{log_b a − ε})`).
//!
//! Karatsuba (`3T(n/2)+n`), four-way polynomial multiplication (`4T(n/2)+n`)
//! and Strassen (`7T(n/2)+n²`) are all case 1, so the paper predicts
//! `T_p(n) = O(T(n)/p)`.  The table reports measured wall-clock speedups on
//! the pal-thread pool next to the speedup predicted by the exact Eq. 3
//! evaluation.

use lopram_analysis::recurrence::catalog;
use lopram_bench::{
    measure, pool_with, print_speedup_table, random_matrix, random_vec, SpeedupRow, PROCESSOR_SWEEP,
};
use lopram_dnc::karatsuba::{karatsuba_mul, karatsuba_mul_seq};
use lopram_dnc::polymul::{polymul_four_way, polymul_seq};
use lopram_dnc::strassen::{strassen_mul, strassen_mul_seq};

fn main() {
    let runs = 3;
    let mut rows = Vec::new();

    // Karatsuba.
    let n = 1usize << 14;
    let a = random_vec(n, 1);
    let b = random_vec(n, 2);
    let seq = measure(runs, || {
        std::hint::black_box(karatsuba_mul_seq(&a, &b));
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(karatsuba_mul(&pool, &a, &b));
        });
        rows.push(SpeedupRow {
            label: "karatsuba (3T(n/2)+n)".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::karatsuba().predicted_speedup(n, p)),
        });
    }

    // Four-way polynomial multiplication.
    let n = 1usize << 13;
    let a = random_vec(n, 3);
    let b = random_vec(n, 4);
    let seq = measure(runs, || {
        std::hint::black_box(polymul_seq(&a, &b));
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(polymul_four_way(&pool, &a, &b));
        });
        rows.push(SpeedupRow {
            label: "polymul (4T(n/2)+n)".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::poly_mul_four_way().predicted_speedup(n, p)),
        });
    }

    // Strassen.
    let n = 512usize;
    let ma = random_matrix(n, 5);
    let mb = random_matrix(n, 6);
    let seq = measure(runs, || {
        std::hint::black_box(strassen_mul_seq(&ma, &mb));
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(strassen_mul(&pool, &ma, &mb));
        });
        rows.push(SpeedupRow {
            label: "strassen (7T(n/2)+n^2)".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::strassen().predicted_speedup(n, p)),
        });
    }

    print_speedup_table(
        "Theorem 1, case 1: work-optimal speedup T_p = O(T/p)",
        &rows,
    );
    println!("\nPaper claim: speedup grows linearly in p (efficiency stays near 1).");
}
