//! Experiment E8 — parallel dynamic programming (§4.4, Algorithm 1).
//!
//! Measures the wall-clock speedup of the wavefront and counter (Algorithm 1)
//! schedulers over the sequential bottom-up evaluation for the classic DP
//! problems, and prints next to them the ideal speedup of a greedy
//! `p`-processor schedule of the same dependency DAG (from `lopram-sim`).

use lopram_bench::{measure, pool_with, random_string, SpeedupRow, PROCESSOR_SWEEP};
use lopram_core::SeqExecutor;
use lopram_dp::prelude::*;
use lopram_sim::simulate_dag_schedule;

fn bench_problem<P: DpProblem>(problem: &P, label: &str, rows: &mut Vec<SpeedupRow>) {
    let runs = 3;
    let n = problem.num_cells();
    let seq = measure(runs, || {
        std::hint::black_box(solve_sequential(problem));
    });
    let dag = dependency_dag(problem, &SeqExecutor);
    let costs = vec![1u64; dag.len()];
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(solve_counter(problem, &pool));
        });
        let ideal = simulate_dag_schedule(&dag, &costs, p).speedup();
        rows.push(SpeedupRow {
            label: format!("{label} (counter)"),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(ideal),
        });
    }
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(solve_wavefront(problem, &pool));
        });
        let ideal = simulate_dag_schedule(&dag, &costs, p).speedup();
        rows.push(SpeedupRow {
            label: format!("{label} (wavefront)"),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(ideal),
        });
    }
}

fn main() {
    let mut rows = Vec::new();

    let lcs = Lcs::new(random_string(900, 4, 1), random_string(900, 4, 2));
    bench_problem(&lcs, "lcs 900x900", &mut rows);

    let ed = EditDistance::new(random_string(900, 4, 3), random_string(900, 4, 4));
    bench_problem(&ed, "edit-dist 900x900", &mut rows);

    let knap = Knapsack::new(
        (0..220).map(|i| (i % 13) + 1).collect(),
        (0..220).map(|i| ((i * 7) % 50 + 1) as u64).collect(),
        2200,
    );
    bench_problem(&knap, "knapsack 220x2200", &mut rows);

    let mc = MatrixChain::new((0..140).map(|i| ((i * 17) % 40 + 2) as u64).collect());
    bench_problem(&mc, "matrix-chain 139", &mut rows);

    let fw = FloydWarshall::from_edges(48, &lopram_bench::random_edges(48, 400, 9));
    bench_problem(&fw, "floyd-warshall 48", &mut rows);

    let chain = PrefixChain::new((0..20_000).map(|i| i as i64 % 977 - 488).collect());
    bench_problem(&chain, "1-D chain (no par.)", &mut rows);

    lopram_bench::print_speedup_table(
        "Parallel dynamic programming (§4.4): measured vs ideal DAG-schedule speedup",
        &rows,
    );
    println!("\nPaper claim: 2-D and 3-D tables give speedup ≈ p (bounded by the ideal greedy");
    println!("schedule of the dependency DAG); the 1-D chain gives no speedup regardless of p.");
}
