//! Experiments E3–E6 on the simulated LoPRAM.
//!
//! The measurement host may have fewer physical cores than the `p` values the
//! paper reasons about (the paper itself targets a hypothetical 64–128-core
//! chip), so this binary reproduces the *shape* of Theorem 1 on the
//! step-accurate simulator: for one representative recurrence per Master
//! case it reports the simulated speedup `T_1 / T_p` for `p ∈ {1, 2, 4, 8, 16}`
//! next to the speedup predicted by the exact Eq. 3 / Eq. 5 evaluation.

use lopram_analysis::recurrence::catalog;
use lopram_analysis::Recurrence;
use lopram_sim::{CostSpec, TaskTree, TreeSimulator};

fn simulate(label: &str, rec: &Recurrence, tree: &TaskTree, parallel_merge_analytic: bool) {
    let n = tree.node(tree.root()).size;
    let base = TreeSimulator::new(tree).run(1).makespan as f64;
    for &p in &[2usize, 4, 8, 16] {
        let sim = TreeSimulator::new(tree).run(p);
        let speedup = base / sim.makespan as f64;
        let predicted = if parallel_merge_analytic {
            rec.predicted_speedup_parallel_merge(n, p)
        } else {
            rec.predicted_speedup(n, p)
        };
        println!(
            "{:<28} {:>8} {:>4} {:>12} {:>9.2} {:>10.2}",
            label, n, p, sim.makespan, speedup, predicted
        );
    }
}

fn main() {
    println!("Theorem 1 on the simulated LoPRAM: speedup shape per Master case\n");
    println!(
        "{:<28} {:>8} {:>4} {:>12} {:>9} {:>10}",
        "workload", "n", "p", "sim T_p", "speedup", "Eq.3/Eq.5"
    );

    // Case 1: Karatsuba shape, 3T(n/2) + n.
    let n = 1usize << 12;
    let tree = TaskTree::divide_and_conquer(n, 3, 2, 1, &CostSpec::merge_dominated(|s| s as u64));
    simulate("case 1: 3T(n/2)+n", &catalog::karatsuba(), &tree, false);

    // Case 2: mergesort shape, 2T(n/2) + n.
    let n = 1usize << 14;
    let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &CostSpec::merge_dominated(|s| s as u64));
    simulate("case 2: 2T(n/2)+n", &catalog::mergesort(), &tree, false);

    // Case 3 with sequential merges: 2T(n/2) + n².
    let n = 1usize << 9;
    let tree =
        TaskTree::divide_and_conquer(n, 2, 2, 1, &CostSpec::merge_dominated(|s| (s * s) as u64));
    simulate(
        "case 3: 2T(n/2)+n^2 (seq)",
        &catalog::quadratic_merge(),
        &tree,
        false,
    );

    // Case 3 with parallel merges (Eq. 5): the merge of size s is spread over
    // min(p, ...) processors; model it by charging ceil(s²/p) steps per merge.
    for &p in &[2usize, 4, 8, 16] {
        let tree = TaskTree::divide_and_conquer(
            n,
            2,
            2,
            1,
            &CostSpec::merge_dominated(move |s| ((s * s) as u64).div_ceil(p as u64)),
        );
        let base = {
            let seq_tree = TaskTree::divide_and_conquer(
                n,
                2,
                2,
                1,
                &CostSpec::merge_dominated(|s| (s * s) as u64),
            );
            TreeSimulator::new(&seq_tree).run(1).makespan as f64
        };
        let sim = TreeSimulator::new(&tree).run(p);
        println!(
            "{:<28} {:>8} {:>4} {:>12} {:>9.2} {:>10.2}",
            "case 3: parallel merge (Eq.5)",
            n,
            p,
            sim.makespan,
            base / sim.makespan as f64,
            catalog::quadratic_merge().predicted_speedup_parallel_merge(n, p)
        );
    }

    println!("\nPaper claim: cases 1 and 2 scale linearly in p, case 3 with sequential merges");
    println!("saturates at a constant, and parallelising the merge restores linear scaling.");
}
