//! Experiment E18 — the `lopram-serve` multi-tenant job service under
//! seeded many-client traffic ([`lopram_bench::traffic::TrafficPlan`]).
//!
//! Three phases, each against a fresh service over a shared 2-processor
//! `PalPool`:
//!
//! 1. **Differential fault injection** — the same seeded traffic runs
//!    once fault-free and once under a seeded [`FaultPlan`] (panics,
//!    cancels, deadline stalls at chosen steps of chosen jobs).  Every
//!    non-faulted job must produce the digest the plan predicts — bit
//!    identical to the fault-free run — and every faulted job must fail
//!    with exactly its planned failure mode.
//! 2. **Saturation burst** — one client thread per tenant floods a
//!    small bounded queue without retrying.  The queue must bounce the
//!    excess with [`SubmitError::Rejected`] (backpressure, never
//!    unbounded buffering), every admitted job must complete, and the
//!    max/min per-tenant completion ratio — the fairness number — must
//!    stay bounded.
//! 3. **Exclusive throughput** — a single executor drains the full mix
//!    while clients retry-until-admitted.  Reports throughput, p50/p99
//!    queue wait and the **fork conservation** check: with one executor
//!    every job's metrics are exclusive, so the per-job fork counts
//!    must sum exactly to the pool's aggregate fork delta.
//!
//! `--smoke` (and the full run — the checks are cheap) asserts the
//! gates listed per phase; everything lands in `BENCH_serve.json`, the
//! committed cross-PR baseline the `bench-baseline` CI job parses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lopram_bench::traffic::TrafficPlan;
use lopram_serve::{Fault, FaultPlan, JobError, JobReport, JobService, ServeConfig, SubmitError};

const TENANTS: usize = 3;

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx]
}

struct DifferentialResult {
    jobs: u64,
    faulted: usize,
    mismatches: u64,
    wrong_failure_modes: u64,
    panicked: u64,
    cancelled: u64,
    deadline_exceeded: u64,
}

/// Phase 1: faulted vs fault-free run of the same seeded traffic.
fn run_differential(seed: u64, jobs: u64, rate: f64) -> DifferentialResult {
    let traffic = TrafficPlan::seeded(seed, jobs, TENANTS);
    let faults = FaultPlan::seeded(seed ^ 0xFA17_ED00, jobs, rate);
    let none = FaultPlan::none();
    let mut outcomes: Vec<Vec<Result<u64, JobError>>> = Vec::new();
    for plan in [&none, &faults] {
        let service = JobService::start(ServeConfig {
            tenants: TENANTS,
            tenant_budget: 2,
            queue_capacity: jobs as usize,
            executors: 2,
            processors: 2,
            fault_plan: (*plan).clone(),
            ..ServeConfig::default()
        });
        // Retry on quota rejection: the seeded mix draws tenants
        // unevenly, so a tenant can transiently exceed its admission
        // quota before the executors drain it.  Retrying preserves
        // submission order, so service job ids still match plan indices.
        let tickets: Vec<_> = (0..jobs)
            .map(|i| loop {
                match service.submit(traffic.spec(i, plan)) {
                    Ok(t) => break t,
                    Err(SubmitError::Rejected { .. }) => std::thread::yield_now(),
                    Err(other) => panic!("unexpected submit error: {other}"),
                }
            })
            .collect();
        outcomes.push(tickets.into_iter().map(|t| t.wait().outcome).collect());
        service.shutdown();
    }
    let (clean, faulted_run) = (&outcomes[0], &outcomes[1]);

    let mut result = DifferentialResult {
        jobs,
        faulted: faults.len(),
        mismatches: 0,
        wrong_failure_modes: 0,
        panicked: 0,
        cancelled: 0,
        deadline_exceeded: 0,
    };
    for i in 0..jobs {
        let expected = traffic.expected(i);
        match faults.fault_for(i) {
            None => {
                // Clean runs must hit the plan's predicted digest, and the
                // faulted run must agree on every non-faulted job.
                if clean[i as usize] != Ok(expected) || faulted_run[i as usize] != Ok(expected) {
                    result.mismatches += 1;
                }
            }
            Some(fault) => {
                let ok = match (fault, &faulted_run[i as usize]) {
                    (Fault::Panic { .. }, Err(JobError::Panicked(_))) => {
                        result.panicked += 1;
                        true
                    }
                    (Fault::Cancel { .. }, Err(JobError::Cancelled)) => {
                        result.cancelled += 1;
                        true
                    }
                    (Fault::Deadline { .. }, Err(JobError::DeadlineExceeded)) => {
                        result.deadline_exceeded += 1;
                        true
                    }
                    _ => false,
                };
                if !ok {
                    result.wrong_failure_modes += 1;
                }
            }
        }
    }
    result
}

struct SaturationResult {
    offered: u64,
    admitted: u64,
    rejected_local: u64,
    queue_capacity: usize,
    queue_peak: usize,
    fairness_ratio: f64,
    per_tenant_completed: Vec<u64>,
}

/// Phase 2: closed-loop clients keep the bounded queue saturated for a
/// fixed window.  Each tenant maintains a fixed in-flight backlog
/// larger than its fair share of the queue (3 backlogs > capacity), so
/// every tenant's subqueue stays non-empty, the queue stays full, and
/// the fairness number measures the service's round-robin dispatcher —
/// not OS scheduling of the client threads.
fn run_saturation(seed: u64, window: Duration, capacity: usize) -> SaturationResult {
    let traffic = Arc::new(TrafficPlan::seeded(seed, 64, TENANTS));
    let service = Arc::new(JobService::start(ServeConfig {
        tenants: TENANTS,
        tenant_budget: 1,
        queue_capacity: capacity,
        executors: 2,
        processors: 2,
        ..ServeConfig::default()
    }));
    let none = FaultPlan::none();
    let backlog = capacity * 2 / TENANTS; // 3 backlogs = 2x capacity
    let (offered, rejected_local) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| {
                let service = Arc::clone(&service);
                let traffic = Arc::clone(&traffic);
                let none = none.clone();
                s.spawn(move || {
                    let end = Instant::now() + window;
                    let mut offered = 0u64;
                    let mut rejected = 0u64;
                    let mut outstanding = std::collections::VecDeque::new();
                    let mut k = 0u64;
                    while Instant::now() < end {
                        // Refill the backlog.  Clients re-route their
                        // planned mix onto their own tenant id so offered
                        // load is exactly balanced.
                        while outstanding.len() < backlog && Instant::now() < end {
                            let i = k % traffic.len();
                            k += 1;
                            let spec = traffic.spec(i, &none).for_tenant(tenant);
                            offered += 1;
                            match service.submit(spec) {
                                Ok(t) => outstanding.push_back(t),
                                Err(SubmitError::Rejected { queue_depth }) => {
                                    assert!(queue_depth <= capacity, "depth bound violated");
                                    rejected += 1;
                                    break;
                                }
                                Err(other) => panic!("unexpected submit error: {other}"),
                            }
                        }
                        // Block on the oldest ticket instead of burning CPU
                        // re-offering: the backlog is the offered pressure.
                        match outstanding.pop_front() {
                            Some(t) => {
                                assert!(t.wait().outcome.is_ok(), "admitted job failed");
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    for t in outstanding {
                        assert!(t.wait().outcome.is_ok(), "admitted job failed");
                    }
                    (offered, rejected)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(o, r), (po, pr)| (o + po, r + pr))
    });
    let service = Arc::into_inner(service).expect("clients done");
    let stats = service.shutdown();
    SaturationResult {
        offered,
        admitted: stats.submitted,
        rejected_local,
        queue_capacity: capacity,
        queue_peak: stats.queue_peak,
        fairness_ratio: stats.fairness_ratio(),
        per_tenant_completed: stats.per_tenant_completed,
    }
}

struct ThroughputResult {
    jobs: u64,
    wall: Duration,
    jobs_per_sec: f64,
    queue_wait_p50: Duration,
    queue_wait_p99: Duration,
    exclusive_fraction: f64,
    fork_total: u64,
    fork_sum: u64,
}

/// Phase 3: one executor, clients retry until admitted, fork
/// conservation over the whole phase.
fn run_throughput(seed: u64, jobs: u64) -> ThroughputResult {
    let traffic = Arc::new(TrafficPlan::seeded(seed, jobs, TENANTS));
    let service = Arc::new(JobService::start(ServeConfig {
        tenants: TENANTS,
        tenant_budget: 1,
        queue_capacity: 16,
        executors: 1,
        processors: 2,
        ..ServeConfig::default()
    }));
    let none = FaultPlan::none();
    let before = service.pool().metrics().snapshot();
    let started = Instant::now();
    let reports: Vec<JobReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| {
                let service = Arc::clone(&service);
                let traffic = Arc::clone(&traffic);
                let none = none.clone();
                s.spawn(move || {
                    let mut reports = Vec::new();
                    for i in 0..traffic.len() {
                        if traffic.job(i).tenant != tenant {
                            continue;
                        }
                        loop {
                            match service.submit(traffic.spec(i, &none)) {
                                Ok(t) => {
                                    reports.push((i, t));
                                    break;
                                }
                                Err(SubmitError::Rejected { .. }) => std::thread::yield_now(),
                                Err(other) => panic!("unexpected submit error: {other}"),
                            }
                        }
                    }
                    reports
                        .into_iter()
                        .map(|(i, t)| {
                            let report = t.wait();
                            assert_eq!(
                                report.outcome,
                                Ok(traffic.expected(i)),
                                "job {i} digest under throughput load"
                            );
                            report
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = started.elapsed();
    let after = service.pool().metrics().snapshot();
    let fork_total = after.delta_since(&before).forks();
    let fork_sum: u64 = reports.iter().map(|r| r.metrics.forks()).sum();
    let exclusive = reports.iter().filter(|r| r.metrics_exclusive).count();
    let mut waits: Vec<Duration> = reports.iter().map(|r| r.queue_wait).collect();
    waits.sort_unstable();
    let completed = reports.len() as u64;
    let service = Arc::into_inner(service).expect("clients done");
    service.shutdown();
    ThroughputResult {
        jobs: completed,
        wall,
        jobs_per_sec: completed as f64 / wall.as_secs_f64(),
        queue_wait_p50: percentile(&waits, 50.0),
        queue_wait_p99: percentile(&waits, 99.0),
        exclusive_fraction: exclusive as f64 / completed.max(1) as f64,
        fork_total,
        fork_sum,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Injected faults panic on purpose and in volume; keep the default
    // hook's backtraces for *unexpected* panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let (diff_jobs, diff_rounds, sat_window, sat_capacity, tput_jobs) = if smoke {
        (48u64, 1u64, Duration::from_millis(150), 12usize, 60u64)
    } else {
        (160, 3, Duration::from_millis(1000), 24, 400)
    };
    println!(
        "E18: lopram-serve under seeded traffic — {TENANTS} tenants, shared 2-processor pool\n"
    );

    // ---- Phase 1: differential fault injection -------------------------
    let mut diffs = Vec::new();
    for round in 0..diff_rounds {
        let diff = run_differential(0xE18_0003 + round, diff_jobs, 0.35);
        println!(
            "differential round {round}: {} jobs, {} faulted ({} panic / {} cancel / {} deadline), \
             {} digest mismatches, {} wrong failure modes",
            diff.jobs,
            diff.faulted,
            diff.panicked,
            diff.cancelled,
            diff.deadline_exceeded,
            diff.mismatches,
            diff.wrong_failure_modes,
        );
        assert_eq!(
            diff.mismatches, 0,
            "a faulted neighbour perturbed a clean job"
        );
        assert_eq!(
            diff.wrong_failure_modes, 0,
            "a fault fired with the wrong mode"
        );
        assert!(diff.faulted > 0, "seeded plan must fault some jobs");
        diffs.push(diff);
    }
    // Across the rounds, every failure mode must actually have fired.
    assert!(
        diffs.iter().map(|d| d.panicked).sum::<u64>() > 0,
        "no panic fault fired"
    );
    assert!(
        diffs.iter().map(|d| d.cancelled).sum::<u64>() > 0,
        "no cancel fault fired"
    );
    assert!(
        diffs.iter().map(|d| d.deadline_exceeded).sum::<u64>() > 0,
        "no deadline fault fired"
    );

    // ---- Phase 2: sustained saturation ---------------------------------
    let sat = run_saturation(0xE18_5A7, sat_window, sat_capacity);
    println!(
        "\nsaturation ({} ms window): offered {}, admitted {}, rejected {}, \
         queue peak {}/{}, per-tenant completed {:?}, fairness {:.3}",
        sat_window.as_millis(),
        sat.offered,
        sat.admitted,
        sat.rejected_local,
        sat.queue_peak,
        sat.queue_capacity,
        sat.per_tenant_completed,
        sat.fairness_ratio,
    );
    assert!(
        sat.rejected_local > 0,
        "the burst must overflow the bounded queue"
    );
    assert_eq!(
        sat.admitted + sat.rejected_local,
        sat.offered,
        "every submission either admitted or rejected"
    );
    assert!(sat.queue_peak <= sat.queue_capacity, "queue bound held");
    assert_eq!(
        sat.queue_peak, sat.queue_capacity,
        "a sustained flood must fill the bounded queue"
    );
    assert!(
        sat.per_tenant_completed.iter().all(|&c| c > 0),
        "no tenant may starve: {:?}",
        sat.per_tenant_completed
    );
    assert!(
        sat.fairness_ratio <= 3.0,
        "fairness ratio {:.3} above the 3.0 gate",
        sat.fairness_ratio
    );

    // ---- Phase 3: exclusive throughput ---------------------------------
    let tput = run_throughput(0xE18_791, tput_jobs);
    println!(
        "\nthroughput: {} jobs in {:.1} ms — {:.0} jobs/s, queue wait p50 {:?} p99 {:?}, \
         exclusive {:.0}%, forks {} (sum of per-job reports {})",
        tput.jobs,
        tput.wall.as_secs_f64() * 1e3,
        tput.jobs_per_sec,
        tput.queue_wait_p50,
        tput.queue_wait_p99,
        tput.exclusive_fraction * 100.0,
        tput.fork_total,
        tput.fork_sum,
    );
    assert_eq!(
        tput.exclusive_fraction, 1.0,
        "one executor must make every job's metrics exclusive"
    );
    assert_eq!(
        tput.fork_sum, tput.fork_total,
        "per-job fork accounting must conserve the pool's aggregate forks"
    );

    println!(
        "\nReading: non-faulted digests are bit-identical between faulted and fault-free\n\
         runs (isolation), the bounded queue rejects the overflow instead of buffering\n\
         it (backpressure), no tenant starves (round-robin + budgets), and per-job fork\n\
         counts sum exactly to the pool's aggregate (exact attribution)."
    );

    // ---- JSON baseline -------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"serve\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"tenants\": {TENANTS},\n"));
    json.push_str("  \"differential\": [\n");
    for (i, d) in diffs.iter().enumerate() {
        let comma = if i + 1 == diffs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"jobs\": {}, \"faulted\": {}, \"panicked\": {}, \"cancelled\": {}, \
             \"deadline_exceeded\": {}, \"mismatches\": {}, \"wrong_failure_modes\": {}}}{comma}\n",
            d.jobs,
            d.faulted,
            d.panicked,
            d.cancelled,
            d.deadline_exceeded,
            d.mismatches,
            d.wrong_failure_modes,
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"saturation\": {{\"offered\": {}, \"admitted\": {}, \"rejected\": {}, \
         \"rejection_rate\": {:.4}, \"queue_capacity\": {}, \"queue_peak\": {}, \
         \"fairness_ratio\": {:.4}, \"per_tenant_completed\": {:?}}},\n",
        sat.offered,
        sat.admitted,
        sat.rejected_local,
        sat.rejected_local as f64 / sat.offered as f64,
        sat.queue_capacity,
        sat.queue_peak,
        sat.fairness_ratio,
        sat.per_tenant_completed,
    ));
    json.push_str(&format!(
        "  \"throughput\": {{\"jobs\": {}, \"wall_ms\": {:.2}, \"jobs_per_sec\": {:.1}, \
         \"queue_wait_p50_us\": {:.1}, \"queue_wait_p99_us\": {:.1}, \
         \"exclusive_fraction\": {:.4}, \"fork_total\": {}, \"fork_sum\": {}}}\n",
        tput.jobs,
        tput.wall.as_secs_f64() * 1e3,
        tput.jobs_per_sec,
        tput.queue_wait_p50.as_secs_f64() * 1e6,
        tput.queue_wait_p99.as_secs_f64() * 1e6,
        tput.exclusive_fraction,
        tput.fork_total,
        tput.fork_sum,
    ));
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_serve.json is the full-size baseline.
    let default_out = if smoke {
        "BENCH_serve.smoke.json"
    } else {
        "BENCH_serve.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        println!(
            "smoke: OK (differential clean, backpressure bounded, fairness {:.3} <= 3.0, \
             fork accounting conserved)",
            sat.fairness_ratio
        );
    }
}
