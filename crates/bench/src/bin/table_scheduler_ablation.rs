//! Experiment E12 — scheduler ablation.
//!
//! Compares three executors on the same pal-thread mergesort:
//!
//! * the default [`PalPool`] (bounded work-stealing pool — pending
//!   pal-threads stay available to idle processors, the property the paper's
//!   scheduler relies on);
//! * the [`ThrottledPool`] ablation (spawn-or-inline decided eagerly at
//!   creation time, no pending queue);
//! * raw rayon with the same number of threads (the modern work-stealing
//!   baseline named in the reproduction notes).
//!
//! Caveat for offline builds: `rayon` currently resolves to the workspace
//! shim (`shims/rayon`), so the "rayon" column measures the shim — not
//! upstream rayon.  The printed note repeats this.
//!
//! The gap between the first two quantifies how much the paper's "pending
//! pal-threads are activated … as resources become available" rule matters.

use std::time::Duration;

use lopram_bench::{measure, random_vec, PROCESSOR_SWEEP};
use lopram_core::{PalPool, ThrottledPool};
use lopram_dnc::mergesort::{merge_sort, merge_sort_seq};

fn main() {
    let runs = 3;
    let n = 1usize << 21;
    let data = random_vec(n, 1);

    let t1 = measure(runs, || {
        let mut v = data.clone();
        merge_sort_seq(&mut v);
        std::hint::black_box(v);
    });

    println!("Scheduler ablation — mergesort, n = {n}, T_1 = {t1:.3?}\n");
    println!(
        "{:>4} {:>14} {:>9} {:>14} {:>9} {:>14} {:>9}",
        "p", "PalPool", "speedup", "Throttled", "speedup", "rayon", "speedup"
    );
    for &p in &PROCESSOR_SWEEP {
        let pal = PalPool::new(p).expect("p >= 1");
        let t_pal = measure(runs, || {
            let mut v = data.clone();
            merge_sort(&pal, &mut v);
            std::hint::black_box(v);
        });

        let throttled = ThrottledPool::new(p).expect("p >= 1");
        let t_throttled = measure(runs, || {
            let mut v = data.clone();
            merge_sort(&throttled, &mut v);
            std::hint::black_box(v);
        });

        let rayon_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(p)
            .build()
            .expect("rayon pool");
        let t_rayon = measure(runs, || {
            let mut v = data.clone();
            rayon_pool.install(|| rayon_merge_sort(&mut v));
            std::hint::black_box(v);
        });

        let s = |t: Duration| t1.as_secs_f64() / t.as_secs_f64().max(1e-12);
        println!(
            "{:>4} {:>14.3?} {:>9.2} {:>14.3?} {:>9.2} {:>14.3?} {:>9.2}",
            p,
            t_pal,
            s(t_pal),
            t_throttled,
            s(t_throttled),
            t_rayon,
            s(t_rayon)
        );
    }
    println!("\nReading: PalPool tracks raw rayon closely (both keep pending work available to");
    println!("idle processors); the eager ThrottledPool loses speedup because a pal-thread that");
    println!("was folded into its parent can never migrate to a processor that frees up later.");
    println!("NOTE: in offline builds the rayon column is the workspace shim (shims/rayon),");
    println!("not upstream rayon — swap in the real crate before quoting it as a baseline.");
}

fn rayon_merge_sort(data: &mut [i64]) {
    if data.len() <= 64 {
        data.sort_unstable();
        return;
    }
    let mid = data.len() / 2;
    let mut temp = data.to_vec();
    {
        let (dl, dr) = data.split_at_mut(mid);
        rayon::join(|| rayon_merge_sort(dl), || rayon_merge_sort(dr));
        lopram_dnc::mergesort::merge_into(dl, dr, &mut temp);
    }
    data.copy_from_slice(&temp);
}
