//! Experiment E12 — scheduler ablation.
//!
//! Compares executors on the same pal-thread mergesort:
//!
//! * the default [`PalPool`] (lock-free work-stealing pool: pending
//!   pal-threads stay in per-worker Chase–Lev deques and idle processors
//!   steal the oldest first — the §3.1 activation rule Theorem 1 relies on
//!   — plus the α·log p depth throttle that elides forks below the top
//!   `⌈2·log₂ p⌉` recursion levels);
//! * `Pal-nocut`, the same runtime with the throttle disabled, isolating
//!   the migration rule on identical deque primitives;
//! * the [`ThrottledPool`] ablation (spawn-or-inline decided eagerly at
//!   creation time, never revisited, no migration — `steals` is zero by
//!   construction; since the lock-free runtime landed it ships committed
//!   pal-threads through the *same* deques and parking, so this really
//!   compares scheduling policies, not data structures);
//! * raw `rayon` with the same number of threads (in this offline workspace
//!   that resolves to `shims/rayon`, which *is* the bounded work-stealing
//!   runtime `PalPool` wraps — so this column is a sanity baseline, not an
//!   upstream-rayon measurement).
//!
//! Besides wall-clock times the table reports each scheduler's
//! spawned/inlined/steal counters on an *unbalanced* divide-and-conquer
//! workload, where the schedulers genuinely diverge: `PalPool` keeps
//! migrating the heavy pending subtree to whichever processor frees up,
//! while `ThrottledPool` grants a processor once and then runs the rest of
//! the chain inline.  `--smoke` runs a reduced grid and asserts the
//! divergence (CI gates on it).

use std::time::Duration;

use lopram_bench::{measure, random_vec, PROCESSOR_SWEEP};
use lopram_core::{Executor, PalPool, ThrottledPool};
use lopram_dnc::mergesort::{merge_sort, merge_sort_seq};

/// An unbalanced divide-and-conquer tree: each level forks one light leaf
/// (`a`, runs immediately on the forking processor) and one heavy pending
/// subtree (`b`, the rest of the chain).  Under the eager scheduler the
/// first fork takes the free processor and everything below it is inlined;
/// under work stealing the pending chain keeps migrating to freed
/// processors.
fn unbalanced<E: Executor>(exec: &E, depth: u32) {
    if depth == 0 {
        std::thread::sleep(Duration::from_millis(2));
        return;
    }
    exec.join(
        || std::thread::sleep(Duration::from_millis(1)),
        || unbalanced(exec, depth - 1),
    );
}

struct SchedulerRow {
    label: &'static str,
    p: usize,
    time: Duration,
    spawned: u64,
    inlined: u64,
    steals: u64,
    elided: u64,
}

fn print_rows(rows: &[SchedulerRow]) {
    println!(
        "{:>10} {:>4} {:>12} {:>9} {:>9} {:>8} {:>8}",
        "scheduler", "p", "time", "spawned", "inlined", "steals", "elided"
    );
    for r in rows {
        println!(
            "{:>10} {:>4} {:>12.3?} {:>9} {:>9} {:>8} {:>8}",
            r.label, r.p, r.time, r.spawned, r.inlined, r.steals, r.elided
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { 1 } else { 3 };
    let n = if smoke { 1usize << 15 } else { 1usize << 21 };
    let depth = if smoke { 10 } else { 14 };
    let data = random_vec(n, 1);

    // -- Part 1: wall-clock on the paper's mergesort ----------------------
    let t1 = measure(runs, || {
        let mut v = data.clone();
        merge_sort_seq(&mut v);
        std::hint::black_box(v);
    });

    println!("Scheduler ablation — mergesort, n = {n}, T_1 = {t1:.3?}\n");
    println!(
        "{:>4} {:>14} {:>9} {:>14} {:>9} {:>14} {:>9}",
        "p", "PalPool", "speedup", "Throttled", "speedup", "rayon", "speedup"
    );
    for &p in &PROCESSOR_SWEEP {
        // Each pool is dropped before the next scheduler is timed: since
        // the runtime rewrite, pools own persistent workers that idle-poll,
        // and a lingering pool would skew the next measurement on a
        // small-core host.
        let t_pal = {
            let pal = PalPool::new(p).expect("p >= 1");
            measure(runs, || {
                let mut v = data.clone();
                merge_sort(&pal, &mut v);
                std::hint::black_box(v);
            })
        };

        let t_throttled = {
            let throttled = ThrottledPool::new(p).expect("p >= 1");
            measure(runs, || {
                let mut v = data.clone();
                merge_sort(&throttled, &mut v);
                std::hint::black_box(v);
            })
        };

        let t_rayon = {
            let rayon_pool = rayon::ThreadPoolBuilder::new()
                .num_threads(p)
                .build()
                .expect("rayon pool");
            measure(runs, || {
                let mut v = data.clone();
                rayon_pool.install(|| rayon_merge_sort(&mut v));
                std::hint::black_box(v);
            })
        };

        let s = |t: Duration| t1.as_secs_f64() / t.as_secs_f64().max(1e-12);
        println!(
            "{:>4} {:>14.3?} {:>9.2} {:>14.3?} {:>9.2} {:>14.3?} {:>9.2}",
            p,
            t_pal,
            s(t_pal),
            t_throttled,
            s(t_throttled),
            t_rayon,
            s(t_rayon)
        );
    }

    // -- Part 2: scheduling divergence on an unbalanced tree --------------
    println!("\nUnbalanced divide-and-conquer chain, depth = {depth} (per-scheduler counters):\n");
    let mut rows = Vec::new();
    let mut pal_default_steals = 0;
    let mut pal_nocut_steals = 0;
    let mut throttled_steals_total = 0;
    // One timed run per scheduler, by hand rather than through `measure`:
    // its hidden warm-up execution would double every counter and pair a
    // 1-run time with 2-run spawn/steal columns.
    for &p in &[2usize, 4] {
        // Production configuration: work stealing plus the α·log p depth
        // throttle — forks below the cutoff never reach the scheduler
        // (the `elided` column), yet the top-of-tree pending subtrees still
        // migrate.
        {
            let pal = PalPool::new(p).expect("p >= 1");
            let start = std::time::Instant::now();
            unbalanced(&pal, depth);
            let t = start.elapsed();
            let m = pal.metrics().snapshot();
            pal_default_steals += m.steals;
            rows.push(SchedulerRow {
                label: "PalPool",
                p,
                time: t,
                spawned: m.spawned,
                inlined: m.inlined,
                steals: m.steals,
                elided: m.elided,
            });
        }

        // Raw work-stealing runtime with the throttle off: every fork is a
        // scheduler job, so this row isolates the migration rule itself on
        // the same deque primitives the other two rows use.
        {
            let pal = PalPool::builder()
                .processors(p)
                .no_cutoff()
                .build()
                .expect("p >= 1");
            let start = std::time::Instant::now();
            unbalanced(&pal, depth);
            let t = start.elapsed();
            let m = pal.metrics().snapshot();
            pal_nocut_steals += m.steals;
            rows.push(SchedulerRow {
                label: "Pal-nocut",
                p,
                time: t,
                spawned: m.spawned,
                inlined: m.inlined,
                steals: m.steals,
                elided: m.elided,
            });
        }

        let throttled = ThrottledPool::new(p).expect("p >= 1");
        let start = std::time::Instant::now();
        unbalanced(&throttled, depth);
        let t = start.elapsed();
        let m = throttled.metrics().snapshot();
        throttled_steals_total += m.steals;
        rows.push(SchedulerRow {
            label: "Throttled",
            p,
            time: t,
            spawned: m.spawned,
            inlined: m.inlined,
            steals: m.steals,
            elided: m.elided,
        });
    }
    print_rows(&rows);

    println!("\nReading: the work-stealing PalPool keeps the heavy pending subtree available and");
    println!("migrates it to whichever processor frees up (steals > 0), so pal-threads created");
    println!("while all processors were busy still end up running in parallel.  With the");
    println!("default α·log p throttle, forks below the cutoff depth never even become");
    println!("scheduler jobs (elided > 0); Pal-nocut shows the same runtime scheduling every");
    println!("fork.  The eager ThrottledPool decides spawn-vs-inline once, at creation:");
    println!("steals is structurally 0 and everything below its first spawn runs");
    println!("sequentially in the parent.");

    if smoke {
        // E12's reason to exist: the schedulers must actually diverge.
        // (Before PR 2 the rayon shim was itself eager, so this experiment
        // compared the no-migration rule against itself.)  The default
        // (cutoff-on) configuration is asserted separately from the
        // no-cutoff one: a throttle regression that elides everything
        // must not hide behind the raw runtime's steals.
        assert!(
            pal_default_steals >= 1,
            "default PalPool (with the α·log p cutoff) recorded no steals on an \
             unbalanced workload — the production configuration is not migrating \
             pending pal-threads above the cutoff"
        );
        assert!(
            pal_nocut_steals >= 1,
            "no-cutoff PalPool recorded no steals on an unbalanced workload — the \
             work-stealing runtime is not migrating pending pal-threads"
        );
        assert_eq!(
            throttled_steals_total, 0,
            "ThrottledPool is the no-migration ablation; it must never steal"
        );
        println!(
            "\nsmoke: OK (PalPool steals = {pal_default_steals}, \
             Pal-nocut steals = {pal_nocut_steals}, Throttled steals = 0)"
        );
    }
}

fn rayon_merge_sort(data: &mut [i64]) {
    if data.len() <= 64 {
        data.sort_unstable();
        return;
    }
    let mid = data.len() / 2;
    let mut temp = data.to_vec();
    {
        let (dl, dr) = data.split_at_mut(mid);
        rayon::join(|| rayon_merge_sort(dl), || rayon_merge_sort(dr));
        lopram_dnc::mergesort::merge_into(dl, dr, &mut temp);
    }
    data.copy_from_slice(&temp);
}
