//! Experiment E1 — Figure 1 of the paper.
//!
//! Rebuilds the mergesort pal-thread execution tree for `n = 16`, `p = 4`,
//! prints the per-level activation times (the numbers printed next to the
//! nodes in the figure) and the snapshot at `t = 6` (the colours of the
//! figure).

use lopram_sim::{render_activation_tree, render_figure1_snapshot, TaskTree, TreeSimulator};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let tree = TaskTree::mergesort_figure1(n);
    let sim = TreeSimulator::new(&tree);
    let result = sim.run(p);

    println!("Figure 1 reproduction: mergesort execution tree, n = {n}, p = {p}");
    println!("(paper: level activation times 1 / 2 2 / 3 3 3 3 / 4 7 ... / 5 6 8 9 ...)\n");
    print!("{}", render_activation_tree(&tree, &result));
    println!();
    print!("{}", render_figure1_snapshot(&tree, &result, 6));
    println!();
    println!(
        "makespan T_p = {} steps, total work T_1 = {} steps, speedup = {:.2}, efficiency = {:.2}",
        result.makespan,
        result.total_work,
        result.speedup(),
        result.efficiency()
    );
}
