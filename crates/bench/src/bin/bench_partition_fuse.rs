//! Experiment E17 — the partition-and-fuse execution engine ablated
//! against the flat kernels: `bfs_partitioned` / `components_partitioned`
//! (cache-sized contiguous partitions, local kernels, balanced fusion
//! tree) versus `bfs_par` / `components_hook` (one global CSR).
//!
//! The sweep: two graphs (a `gnm_streamed` `G(n, m)` — built without ever
//! materializing the edge list, which is what lets the full run reach
//! ~10⁶ edges — and a diameter-heavy grid) × two kernels (BFS, CC) ×
//! `p ∈ {1, 2, 4}` × `parts ∈ {1, 2, 4}`.  Per cell the binary records
//! ns/arc for flat and partitioned, the plan's boundary-arc fraction, the
//! per-phase fork counts attributed with `PalPool::scoped_metrics`, the
//! warmed per-phase arena growth, and (for BFS) allocations per level
//! under the [`CountingAlloc`] global allocator.
//!
//! `--smoke` (and the full run — the checks are cheap) asserts:
//! * partitioned output ≡ the sequential twin ≡ the flat kernel on every
//!   cell;
//! * **exact** schedule-independent fork accounting per phase: the plan
//!   costs [`plan_forks`], the BFS solve `(levels + 1)(parts − 1)`, the
//!   CC solve `(parts − 1) + (chunk_count(n) − 1)`;
//! * a warmed partitioned run grows the arena by zero bytes in both
//!   phases — "warmed" means run-to-fixpoint: at `p > 1` concurrent
//!   checkouts shuffle same-typed shelf buffers between roles
//!   schedule-dependently, and since capacities only grow, the shuffle
//!   converges but not in a fixed number of rounds — and at `p = 1` —
//!   where every fork is inlined, so the
//!   scheduler is silent and the count is deterministic — warmed
//!   partitioned BFS stays under 0.5 allocations per level (the
//!   per-call result collect amortized over the levels).  At `p > 1`
//!   the same column additionally counts one heap job per spawn the
//!   scheduler *granted*, which is schedule-dependent by design, so
//!   those rows are reported but not gated;
//! * `boundary_fraction ∈ [0, 1]`, exactly `0` at `parts = 1`.
//!
//! Everything lands in `BENCH_partition_fuse.json`, the committed
//! cross-PR baseline the `bench-baseline` CI job gates on.

use lopram_bench::{measure, CountingAlloc};
use lopram_core::PalPool;
use lopram_graph::bfs::{bfs_partitioned_metered, bfs_partitioned_with};
use lopram_graph::cc::{components_partitioned_metered, components_partitioned_with};
use lopram_graph::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One ablation cell: a (graph, kernel, p, parts) configuration.
struct Row {
    graph: &'static str,
    kernel: &'static str,
    p: usize,
    parts: usize,
    boundary_frac: f64,
    plan_forks: u64,
    expected_plan_forks: u64,
    solve_forks: u64,
    expected_solve_forks: u64,
    flat_ns_per_arc: f64,
    part_ns_per_arc: f64,
    arena_bytes_warm: i64,
    /// Allocations per BFS level of a warmed partitioned run; `-1` for
    /// CC rows (no level structure to amortize over).
    allocs_per_level: f64,
}

fn ns_per_arc(d: std::time::Duration, arcs: usize) -> f64 {
    d.as_nanos() as f64 / arcs.max(1) as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (gnm_n, gnm_m, grid_r, grid_c, runs, alloc_runs) = if smoke {
        (2048usize, 8192usize, 24usize, 48usize, 2usize, 3usize)
    } else {
        (1 << 17, 1 << 20, 384, 384, 3, 4)
    };
    let graphs: Vec<(&'static str, CsrGraph)> = vec![
        ("gnm", gnm_streamed(gnm_n, gnm_m, 42)),
        ("grid", grid(grid_r, grid_c)),
    ];
    println!(
        "Partition-and-fuse ablation — G({gnm_n}, {gnm_m}) (streamed build) and \
         {grid_r}x{grid_c} grid; kernels bfs/cc, p in {{1, 2, 4}}, parts in {{1, 2, 4}}\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (gname, g) in &graphs {
        let n = g.vertices();
        let arcs = g.arcs();
        let expected_dist = bfs_seq(g, 0);
        let expected_labels = components_seq(g);
        let depth = levels(&expected_dist);
        for &p in &[1usize, 2, 4] {
            // Flat twins, one measurement per (graph, kernel, p).
            let flat_pool = PalPool::new(p).unwrap();
            let flat_dist = bfs_par(g, &flat_pool, 0);
            assert_eq!(flat_dist, expected_dist, "flat BFS diverged at p = {p}");
            let flat_labels = components_hook(g, &flat_pool);
            assert_eq!(flat_labels, expected_labels, "flat CC diverged at p = {p}");
            let flat_bfs = measure(runs, || {
                std::hint::black_box(bfs_par(g, &flat_pool, 0));
            });
            let flat_cc = measure(runs, || {
                std::hint::black_box(components_hook(g, &flat_pool));
            });

            for &parts in &[1usize, 2, 4] {
                // ---- BFS cell ------------------------------------------
                let pool = PalPool::new(p).unwrap();
                // Warm to fixpoint: at p > 1 the leaves' concurrent outbox
                // checkouts shuffle same-typed shelf buffers between roles
                // schedule-dependently; capacities are monotone, so the
                // shuffle converges — loop until one full metered run grows
                // the arena by zero bytes, then report that round.
                let (mut dist, mut phases) = bfs_partitioned_metered(g, &pool, 0, parts);
                let mut arena_warm = i64::MAX;
                for _ in 0..50 {
                    if phases.plan.arena_bytes == 0 && phases.solve.arena_bytes == 0 {
                        arena_warm = 0;
                        break;
                    }
                    (dist, phases) = bfs_partitioned_metered(g, &pool, 0, parts);
                }
                assert_eq!(
                    dist, expected_dist,
                    "partitioned BFS diverged: {gname}, p = {p}, parts = {parts}"
                );
                let expected_plan = plan_forks(&pool, n);
                let expected_solve = (depth as u64 + 1) * (parts as u64 - 1);
                assert_eq!(phases.plan.forks(), expected_plan, "BFS plan forks");
                assert_eq!(phases.solve.forks(), expected_solve, "BFS solve forks");
                assert_eq!(
                    arena_warm, 0,
                    "partitioned BFS arena growth never settled to zero: \
                     {gname}, p = {p}, parts = {parts}"
                );

                let plan = PartitionPlan::new(g, &pool, parts);
                let frac = plan.boundary_fraction();
                assert!((0.0..=1.0).contains(&frac), "boundary fraction in range");
                if parts == 1 {
                    assert_eq!(frac, 0.0, "one partition has no boundary");
                }
                std::hint::black_box(bfs_partitioned_with(g, &pool, &plan, 0));
                let ev0 = CountingAlloc::events();
                for _ in 0..alloc_runs {
                    std::hint::black_box(bfs_partitioned_with(g, &pool, &plan, 0));
                }
                let allocs_per_call = (CountingAlloc::events() - ev0) as f64 / alloc_runs as f64;
                let allocs_per_level = allocs_per_call / (depth as f64 + 1.0);
                // At p = 1 the scheduler inlines every fork, so the count is
                // the kernel's alone and deterministic; p > 1 adds one heap
                // job per granted spawn (schedule-dependent, not gated).
                if p == 1 {
                    assert!(
                        allocs_per_level <= 0.5,
                        "warmed partitioned BFS allocates {allocs_per_level:.3}/level \
                         ({gname}, parts = {parts})"
                    );
                }
                let part_bfs = measure(runs, || {
                    std::hint::black_box(bfs_partitioned_with(g, &pool, &plan, 0));
                });
                rows.push(Row {
                    graph: gname,
                    kernel: "bfs",
                    p,
                    parts,
                    boundary_frac: frac,
                    plan_forks: phases.plan.forks(),
                    expected_plan_forks: expected_plan,
                    solve_forks: phases.solve.forks(),
                    expected_solve_forks: expected_solve,
                    flat_ns_per_arc: ns_per_arc(flat_bfs, arcs),
                    part_ns_per_arc: ns_per_arc(part_bfs, arcs),
                    arena_bytes_warm: arena_warm,
                    allocs_per_level,
                });

                // ---- CC cell -------------------------------------------
                let pool = PalPool::new(p).unwrap();
                // Same warm-to-fixpoint loop as the BFS cell (the CC solve
                // checks out only on the caller thread, so it settles in a
                // couple of rounds even at p > 1).
                let (mut labels, mut phases) = components_partitioned_metered(g, &pool, parts);
                let mut arena_warm = i64::MAX;
                for _ in 0..50 {
                    if phases.plan.arena_bytes == 0 && phases.solve.arena_bytes == 0 {
                        arena_warm = 0;
                        break;
                    }
                    (labels, phases) = components_partitioned_metered(g, &pool, parts);
                }
                assert_eq!(
                    labels, expected_labels,
                    "partitioned CC diverged: {gname}, p = {p}, parts = {parts}"
                );
                let expected_solve = (parts as u64 - 1) + (pool.chunk_count(n) as u64 - 1);
                assert_eq!(phases.plan.forks(), expected_plan, "CC plan forks");
                assert_eq!(phases.solve.forks(), expected_solve, "CC solve forks");
                assert_eq!(
                    arena_warm, 0,
                    "partitioned CC arena growth never settled to zero: \
                     {gname}, p = {p}, parts = {parts}"
                );
                let plan = PartitionPlan::new(g, &pool, parts);
                let part_cc = measure(runs, || {
                    std::hint::black_box(components_partitioned_with(g, &pool, &plan));
                });
                rows.push(Row {
                    graph: gname,
                    kernel: "cc",
                    p,
                    parts,
                    boundary_frac: plan.boundary_fraction(),
                    plan_forks: phases.plan.forks(),
                    expected_plan_forks: expected_plan,
                    solve_forks: phases.solve.forks(),
                    expected_solve_forks: expected_solve,
                    flat_ns_per_arc: ns_per_arc(flat_cc, arcs),
                    part_ns_per_arc: ns_per_arc(part_cc, arcs),
                    arena_bytes_warm: arena_warm,
                    allocs_per_level: -1.0,
                });
            }
        }
    }

    println!(
        "{:<6} {:<6} {:>3} {:>6} {:>10} {:>10} {:>11} {:>11} {:>12} {:>12}",
        "graph",
        "kernel",
        "p",
        "parts",
        "plan_fork",
        "solve_fork",
        "flat ns/arc",
        "part ns/arc",
        "boundary",
        "allocs/lvl"
    );
    for r in &rows {
        println!(
            "{:<6} {:<6} {:>3} {:>6} {:>10} {:>10} {:>11.2} {:>11.2} {:>12.4} {:>12}",
            r.graph,
            r.kernel,
            r.p,
            r.parts,
            r.plan_forks,
            r.solve_forks,
            r.flat_ns_per_arc,
            r.part_ns_per_arc,
            r.boundary_frac,
            if r.allocs_per_level < 0.0 {
                "-".to_string()
            } else {
                format!("{:.3}", r.allocs_per_level)
            },
        );
    }
    println!(
        "\nReading: fork columns are exact closed forms on every row (plan = 8(C-1);\n\
         BFS solve = (levels+1)(parts-1); CC solve = (parts-1)+(C-1)) — the partition\n\
         pass, the local kernels and the fusion tree are all counted, schedule-free.\n\
         boundary is the cut-arc fraction the fusion tree replays; the local phase\n\
         touches the rest with zero cross-partition traffic and zero allocations\n\
         (arena growth 0 bytes on every warmed cell)."
    );

    // -- JSON baseline -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"partition_fuse\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"workloads\": [{{\"name\": \"gnm\", \"n\": {gnm_n}, \"m\": {gnm_m}, \"build\": \"streamed\"}}, \
         {{\"name\": \"grid\", \"rows\": {grid_r}, \"cols\": {grid_c}}}],\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"graph\": \"{}\", \"kernel\": \"{}\", \"p\": {}, \"parts\": {}, \
             \"boundary_frac\": {:.6}, \"plan_forks\": {}, \"expected_plan_forks\": {}, \
             \"solve_forks\": {}, \"expected_solve_forks\": {}, \"flat_ns_per_arc\": {:.2}, \
             \"part_ns_per_arc\": {:.2}, \"arena_bytes_warm\": {}, \"allocs_per_level\": {:.4}, \
             \"exact\": {}}}{comma}\n",
            r.graph,
            r.kernel,
            r.p,
            r.parts,
            r.boundary_frac,
            r.plan_forks,
            r.expected_plan_forks,
            r.solve_forks,
            r.expected_solve_forks,
            r.flat_ns_per_arc,
            r.part_ns_per_arc,
            r.arena_bytes_warm,
            r.allocs_per_level,
            r.plan_forks == r.expected_plan_forks && r.solve_forks == r.expected_solve_forks,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_partition_fuse.json is the full-size baseline.
    let default_out = if smoke {
        "BENCH_partition_fuse.smoke.json"
    } else {
        "BENCH_partition_fuse.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        println!(
            "smoke: OK ({} cells, fork accounting exact and arena growth zero on every cell)",
            rows.len()
        );
    }
}
