//! Experiment E9 — antichain structure of DP dependency DAGs (§4.3, §4.6).
//!
//! For every problem in the suite, prints the quantities §4.6 says govern the
//! achievable speedup: total work (cells), longest chain, number of
//! antichains (equal to the longest chain by the dual of Dilworth's theorem),
//! maximum and average antichain width, and the resulting speedup bound
//! `work / max(chain, work/p)` for `p = 8`.

use lopram_bench::{random_edges, random_string};
use lopram_core::SeqExecutor;
use lopram_dp::prelude::*;

fn report<P: DpProblem>(problem: &P, label: &str) {
    let dag = dependency_dag(problem, &SeqExecutor);
    let levels = dag.levels();
    assert!(
        levels.validate(&dag),
        "antichain decomposition must be valid"
    );
    println!(
        "{:<22} {:>9} {:>8} {:>11} {:>10} {:>10.1} {:>12.2}",
        label,
        dag.work(),
        dag.longest_chain(),
        levels.height(),
        dag.max_width(),
        dag.average_width(),
        dag.max_speedup(8),
    );
}

fn main() {
    println!("Dependency-DAG structure of the DP suite (speedup bound for p = 8)\n");
    println!(
        "{:<22} {:>9} {:>8} {:>11} {:>10} {:>10} {:>12}",
        "problem", "cells", "chain", "antichains", "max width", "avg width", "bound (p=8)"
    );

    report(
        &Lcs::new(random_string(300, 4, 1), random_string(300, 4, 2)),
        "lcs 300x300",
    );
    report(
        &EditDistance::new(random_string(300, 4, 3), random_string(300, 4, 4)),
        "edit-distance 300x300",
    );
    report(
        &MatrixChain::new((0..80).map(|i| ((i * 13) % 30 + 2) as u64).collect()),
        "matrix-chain 79",
    );
    report(
        &OptimalBst::new((0..80).map(|i| ((i * 7) % 40 + 1) as u64).collect()),
        "optimal-bst 80",
    );
    report(
        &Knapsack::new(
            (0..60).map(|i| (i % 9) + 1).collect(),
            (0..60).map(|i| ((i * 3) % 20 + 1) as u64).collect(),
            600,
        ),
        "knapsack 60x600",
    );
    report(
        &CoinChange::new(vec![1, 2, 5, 10, 20, 50], 500),
        "coin-change 6x500",
    );
    report(
        &RodCutting::new((1..=30).map(|i| i * 2).collect(), 300),
        "rod-cutting 300",
    );
    report(
        &Lis::new((0..300).map(|i| ((i * 37) % 101) as i64).collect()),
        "lis 300",
    );
    report(
        &FloydWarshall::from_edges(24, &random_edges(24, 150, 7)),
        "floyd-warshall 24",
    );
    report(
        &PrefixChain::new((0..500).map(|i| i as i64).collect()),
        "1-D chain 500",
    );

    println!("\nPaper claim (§4.3/§4.6): the speedup is governed by the antichain structure;");
    println!("wide, shallow DAGs (grids, slabs) support speedup ≈ p while the 1-D chain,");
    println!("whose DAG is a path (max width 1), supports none.");
}
