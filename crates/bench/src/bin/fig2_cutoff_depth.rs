//! Experiment E2 — Figure 2 of the paper.
//!
//! For divide-and-conquer recurrences with different branching factors `a`
//! and processor counts `p`, prints the recursion depth `⌊log_a p⌋` at which
//! thread creation stops and the size `n / b^{log_a p}` of the subproblem
//! each processor then solves sequentially, and checks both against the
//! step-accurate simulator (the depth at which pal-threads stop being granted
//! fresh processors).
//!
//! Since the work-stealing runtime landed, the same cutoff is observable on
//! the *real* pool: occupying one extra processor means stealing one pending
//! pal-thread, so a balanced binary recursion should record about `p − 1`
//! steals in `RunMetrics` — the second table cross-checks that.

use std::time::Duration;

use lopram_analysis::{Growth, Recurrence};
use lopram_core::PalPool;
use lopram_sim::{CostSpec, TaskTree, TreeSimulator};

/// Balanced binary pal-thread recursion with sleep leaves (sleeps, not
/// spins, so the check also works on a single-core host).
fn balanced(pool: &PalPool, depth: u32) {
    if depth == 0 {
        std::thread::sleep(Duration::from_millis(2));
        return;
    }
    pool.join(|| balanced(pool, depth - 1), || balanced(pool, depth - 1));
}

fn main() {
    let n = 1usize << 12;
    println!("Figure 2 reproduction: parallel cutoff depth of divide-and-conquer recursion");
    println!("input size n = {n}\n");
    println!(
        "{:>3} {:>3} {:>4} {:>14} {:>20} {:>22}",
        "a", "b", "p", "floor(log_a p)", "seq. subproblem", "sim: deepest new proc"
    );
    for &(a, b) in &[(2u32, 2u32), (3, 2), (4, 2), (4, 4)] {
        for &p in &[2usize, 4, 8, 16] {
            let rec = Recurrence::new(a, b, Growth::linear(1.0));
            let depth = rec.parallel_depth(p);
            let subproblem = rec.sequential_subproblem_size(n, p);

            // Simulator cross-check: the deepest tree level whose nodes were
            // activated while another node of the same level was still
            // running (i.e. levels that received genuinely parallel service).
            let tree = TaskTree::divide_and_conquer(n.min(1 << 10), a, b, 1, &CostSpec::unit());
            let result = TreeSimulator::new(&tree).run(p);
            let mut deepest_parallel = 0u32;
            for level in tree.levels().iter().skip(1) {
                let times: Vec<u64> = level
                    .iter()
                    .map(|&id| result.records[id].activated_at)
                    .collect();
                let all_same = times.windows(2).all(|w| w[0] == w[1]);
                if all_same && level.len() > 1 {
                    deepest_parallel = tree.node(level[0]).depth;
                }
            }
            println!(
                "{:>3} {:>3} {:>4} {:>14} {:>20.1} {:>22}",
                a, b, p, depth, subproblem, deepest_parallel
            );
        }
    }
    println!("\nReading: thread creation occupies processors down to depth floor(log_a p); below");
    println!(
        "that depth every processor runs its subproblem of size n / b^(log_a p) sequentially."
    );

    // Real-pool cross-check: on the work-stealing PalPool, occupying one
    // extra processor = stealing one pending pal-thread, so a balanced
    // binary tree (a = b = 2) should show roughly p − 1 steals — the
    // runtime analogue of "processors are acquired down to depth log_2 p".
    // The pool's own α·log p throttle is the same cutoff enforced up front:
    // joins below depth ⌈2·log₂ p⌉ are elided (plain sequential calls), so
    // the `elided` column counts exactly the forks Figure 2 says can never
    // be granted a processor.
    println!("\nReal-pool cross-check (balanced binary recursion, depth 5, sleep leaves):\n");
    println!(
        "{:>4} {:>14} {:>10} {:>8} {:>8}",
        "p", "pool steals", "expect ≈", "cutoff", "elided"
    );
    for &p in &[2usize, 4, 8] {
        let pool = PalPool::new(p).expect("p >= 1");
        balanced(&pool, 5);
        let m = pool.metrics();
        println!(
            "{:>4} {:>14} {:>10} {:>8} {:>8}",
            p,
            m.steals(),
            p - 1,
            pool.cutoff_depth().expect("default pool has a cutoff"),
            m.elided()
        );
    }
    println!("\n(steals can exceed p − 1 when a processor finishes its subtree early and");
    println!("grabs another pending leaf — that is the §3.1 rule working as intended.)");
}
