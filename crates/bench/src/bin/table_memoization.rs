//! Experiment E10 — parallel memoization (§4.5).
//!
//! Compares the top-down memoized evaluation with the bottom-up schedulers on
//! problems where memoization has an advantage (only part of the table is
//! reachable from the goal) and reports the probe/wait counters that §4.5
//! identifies as memoization's overhead.

use std::time::Duration;

use lopram_bench::{measure, pool_with, random_string, PROCESSOR_SWEEP};
use lopram_dp::prelude::*;

struct Row {
    label: String,
    p: usize,
    bottom_up: Duration,
    memoized: Duration,
    computed: usize,
    total_cells: usize,
    probes: u64,
    waits: u64,
}

fn bench_problem<P: DpProblem>(problem: &P, label: &str, rows: &mut Vec<Row>) {
    let runs = 3;
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let bottom_up = measure(runs, || {
            std::hint::black_box(solve_counter(problem, &pool));
        });
        let memoized = measure(runs, || {
            std::hint::black_box(solve_memoized(problem, &pool));
        });
        let run = solve_memoized(problem, &pool);
        rows.push(Row {
            label: label.to_string(),
            p,
            bottom_up,
            memoized,
            computed: run.computed_cells,
            total_cells: problem.num_cells(),
            probes: run.repeated_probes,
            waits: run.waits,
        });
    }
}

fn main() {
    let mut rows = Vec::new();

    let mc = MatrixChain::new((0..110).map(|i| ((i * 11) % 35 + 2) as u64).collect());
    bench_problem(&mc, "matrix-chain 109", &mut rows);

    let lcs = Lcs::new(random_string(600, 4, 1), random_string(600, 4, 2));
    bench_problem(&lcs, "lcs 600x600", &mut rows);

    let knap = Knapsack::new(
        (0..150).map(|i| (i % 17) + 1).collect(),
        (0..150).map(|i| ((i * 5) % 40 + 1) as u64).collect(),
        1500,
    );
    bench_problem(&knap, "knapsack 150x1500", &mut rows);

    println!("\n=== Parallel memoization (§4.5) vs bottom-up Algorithm 1 ===");
    println!(
        "{:<20} {:>4} {:>12} {:>12} {:>9} {:>16} {:>10} {:>8}",
        "problem", "p", "bottom-up", "memoized", "ratio", "cells computed", "probes", "waits"
    );
    for r in &rows {
        println!(
            "{:<20} {:>4} {:>12.3?} {:>12.3?} {:>9.2} {:>7}/{:<8} {:>10} {:>8}",
            r.label,
            r.p,
            r.bottom_up,
            r.memoized,
            r.memoized.as_secs_f64() / r.bottom_up.as_secs_f64().max(1e-12),
            r.computed,
            r.total_cells,
            r.probes,
            r.waits
        );
    }
    println!("\nPaper claim (§4.5): memoization reaches the same answers while touching only the");
    println!("cells reachable from the goal; the price is the repeated probes (and occasional");
    println!("waits on in-progress cells), an overhead the paper bounds by O(log p) per access.");
}
