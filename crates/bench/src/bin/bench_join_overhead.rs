//! Experiment E13 — fork/join overhead baseline.
//!
//! The LoPRAM argument only works if a pal-thread fork that is never stolen
//! costs ~a function call: with `p = O(log n)` processors, all but the top
//! `O(log p)` recursion levels fork in vain, and a scheduler that pays a
//! lock + allocation + wake-up per fork pays it `Θ(n)` times.  This binary
//! pins the cost in ns/fork across four paths:
//!
//! * `sequential` — the same recursion as plain function calls (the floor);
//! * `legacy_mutex_condvar` — a faithful replica of the PR 2 fork path:
//!   one `Arc<Mutex + Condvar>` latch allocation, a `Mutex<VecDeque>`
//!   push + `notify_all`, a locked pop-back identity check, and a locked
//!   latch set + second `notify_all`, per fork (see [`legacy`]);
//! * `lockfree_no_cutoff` — the current runtime with the α·log p throttle
//!   disabled: every fork goes through the Chase–Lev deque (push + pop +
//!   pointer compare, no lock, no allocation, no wake-up when nobody
//!   sleeps);
//! * `lockfree_cutoff` — the production default: forks below the
//!   `⌈α·log₂ p⌉` depth are elided to plain calls, so the measured tree
//!   (all of it below the cutoff on `p = 1`) costs a thread-local read and
//!   a counter per fork.
//!
//! It also measures raw Chase–Lev steal throughput and mergesort/Karatsuba
//! end-to-end times at `p ∈ {1, 2, 4}` with the cutoff on and off, and
//! writes everything to `BENCH_join_overhead.json` so future runtime PRs
//! have a recorded baseline to regress against.  `--smoke` runs a reduced
//! grid and asserts the headline ratios (CI gates on it):
//! the production path must be ≥ 5× cheaper per un-stolen fork than the
//! legacy path, and the raw scheduler path must beat legacy with headroom.

use std::hint::black_box;
use std::time::{Duration, Instant};

use lopram_bench::{measure, random_vec};
use lopram_core::PalPool;
use lopram_dnc::karatsuba::{karatsuba_mul, karatsuba_mul_seq};
use lopram_dnc::mergesort::{merge_sort, merge_sort_seq};

/// A faithful replica of the PR 2 (mutex + condvar) un-stolen fork path,
/// kept here so the old cost stays measurable after the runtime it belonged
/// to is gone.  Single-threaded on purpose: we are pricing the *un-stolen*
/// fast path, which never involved a second processor.
mod legacy {
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Condvar, Mutex};

    /// PR 2's completion latch: mutex + condvar, allocated per fork.
    #[derive(Default)]
    pub struct Latch {
        done: Mutex<bool>,
        cvar: Condvar,
    }

    impl Latch {
        fn set(&self) {
            *self.done.lock().unwrap() = true;
            self.cvar.notify_all();
        }
    }

    /// PR 2's per-worker pending queue and idle-wakeup machinery.
    #[derive(Default)]
    pub struct Runtime {
        deque: Mutex<VecDeque<usize>>,
        idle_cvar: Condvar,
    }

    /// One un-stolen fork, operation for operation: allocate the latch,
    /// lock-push the pending job and `notify_all` the (empty) idle set, run
    /// `a`, lock-pop the job back with the identity check, execute `b`
    /// under `catch_unwind` with an `Arc` clone, and set the latch (lock +
    /// `notify_all` again).
    pub fn join(rt: &Runtime, token: usize, a: impl FnOnce(), b: impl FnOnce()) {
        let latch = Arc::new(Latch::default());
        rt.deque.lock().unwrap().push_back(token);
        rt.idle_cvar.notify_all();
        let ra = catch_unwind(AssertUnwindSafe(a));
        let popped = {
            let mut deque = rt.deque.lock().unwrap();
            if deque.back() == Some(&token) {
                deque.pop_back()
            } else {
                None
            }
        };
        assert!(
            popped.is_some(),
            "single-threaded: the fork is never stolen"
        );
        let executed = Arc::clone(&latch);
        let rb = catch_unwind(AssertUnwindSafe(b));
        executed.set();
        drop(executed);
        ra.unwrap();
        rb.unwrap();
    }
}

/// Number of forks in a full binary join tree of the given depth.
fn forks(depth: u32) -> u64 {
    (1u64 << depth) - 1
}

fn seq_tree(depth: u32) {
    if depth == 0 {
        black_box(depth);
        return;
    }
    seq_tree(depth - 1);
    seq_tree(depth - 1);
}

fn legacy_tree(rt: &legacy::Runtime, depth: u32) {
    if depth == 0 {
        black_box(depth);
        return;
    }
    legacy::join(
        rt,
        depth as usize,
        || legacy_tree(rt, depth - 1),
        || legacy_tree(rt, depth - 1),
    );
}

fn pool_tree(pool: &PalPool, depth: u32) {
    if depth == 0 {
        black_box(depth);
        return;
    }
    pool.join(|| pool_tree(pool, depth - 1), || pool_tree(pool, depth - 1));
}

/// Best-of-`runs` wall clock for `f`, after one warm-up (ns/fork wants the
/// uncontended cost, so the minimum is the right statistic).
fn best_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    f();
    (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("runs >= 1")
}

fn ns_per_fork(total: Duration, forks: u64) -> f64 {
    total.as_nanos() as f64 / forks as f64
}

/// Raw Chase–Lev throughput: one owner pre-fills the deque, one thief
/// drains it; returns steals per second.
fn steal_throughput(items: usize) -> f64 {
    let (worker, stealer) = rayon::deque::deque::<usize>();
    for i in 0..items {
        worker.push(i);
    }
    let start = Instant::now();
    let stolen = std::thread::scope(|s| {
        s.spawn(move || {
            let mut stolen = 0usize;
            loop {
                match stealer.steal() {
                    rayon::deque::Steal::Success(v) => {
                        black_box(v);
                        stolen += 1;
                    }
                    rayon::deque::Steal::Retry => {}
                    rayon::deque::Steal::Empty => break,
                }
            }
            stolen
        })
        .join()
        .expect("thief thread")
    });
    assert_eq!(stolen, items, "thief must drain the whole deque");
    items as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

struct EndToEndRow {
    workload: &'static str,
    n: usize,
    p: usize,
    cutoff: bool,
    ms: f64,
    seq_ms: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { 3 } else { 5 };
    let micro_depth: u32 = if smoke { 11 } else { 14 };
    let micro_forks = forks(micro_depth);

    println!("Join overhead baseline — {micro_forks} forks per micro run\n");

    // -- Part 1: ns per un-stolen fork ------------------------------------
    let t_seq = best_of(runs, || seq_tree(micro_depth));
    let rt = legacy::Runtime::default();
    let t_legacy = best_of(runs, || legacy_tree(&rt, micro_depth));
    let no_cutoff_pool = PalPool::builder()
        .processors(1)
        .no_cutoff()
        .build()
        .expect("p = 1");
    let t_lockfree = best_of(runs, || pool_tree(&no_cutoff_pool, micro_depth));
    let cutoff_pool = PalPool::new(1).expect("p = 1");
    let t_cutoff = best_of(runs, || pool_tree(&cutoff_pool, micro_depth));

    let seq_ns = ns_per_fork(t_seq, micro_forks);
    let legacy_ns = ns_per_fork(t_legacy, micro_forks);
    let lockfree_ns = ns_per_fork(t_lockfree, micro_forks);
    let cutoff_ns = ns_per_fork(t_cutoff, micro_forks);

    println!("{:>24} {:>12}", "path", "ns/fork");
    for (label, ns) in [
        ("sequential", seq_ns),
        ("legacy mutex+condvar", legacy_ns),
        ("lock-free (no cutoff)", lockfree_ns),
        ("lock-free + cutoff", cutoff_ns),
    ] {
        println!("{label:>24} {ns:>12.1}");
    }
    println!(
        "\nlegacy / lock-free = {:.2}x,  legacy / cutoff = {:.2}x",
        legacy_ns / lockfree_ns,
        legacy_ns / cutoff_ns
    );
    // Sanity: the scheduler really ran the no-cutoff forks and elided the
    // cutoff ones.
    assert!(no_cutoff_pool.metrics().inlined() >= micro_forks);
    assert!(cutoff_pool.metrics().elided() >= micro_forks);

    // -- Part 2: Chase–Lev steal throughput -------------------------------
    let steal_items = if smoke { 20_000 } else { 200_000 };
    let steals_per_sec = steal_throughput(steal_items);
    println!("\nsteal throughput: {steals_per_sec:.0} steals/s ({steal_items} items, 1 thief)");

    // -- Part 3: end-to-end, p x cutoff matrix ----------------------------
    let sort_n = if smoke { 1usize << 14 } else { 1usize << 19 };
    let kara_n = if smoke { 1usize << 8 } else { 1usize << 12 };
    let e2e_runs = if smoke { 1 } else { 3 };
    let sort_data = random_vec(sort_n, 42);
    let kara_a = random_vec(kara_n, 7);
    let kara_b = random_vec(kara_n, 8);

    let sort_seq = measure(e2e_runs, || {
        let mut v = sort_data.clone();
        merge_sort_seq(&mut v);
        black_box(v);
    });
    let kara_seq = measure(e2e_runs, || {
        black_box(karatsuba_mul_seq(&kara_a, &kara_b));
    });

    let mut rows: Vec<EndToEndRow> = Vec::new();
    println!(
        "\n{:>10} {:>8} {:>3} {:>7} {:>10} {:>10}",
        "workload", "n", "p", "cutoff", "T_p ms", "T_1 ms"
    );
    for &p in &[1usize, 2, 4] {
        for cutoff in [true, false] {
            let builder = PalPool::builder().processors(p);
            let pool = if cutoff { builder } else { builder.no_cutoff() }
                .build()
                .expect("p >= 1");

            let t_sort = measure(e2e_runs, || {
                let mut v = sort_data.clone();
                merge_sort(&pool, &mut v);
                black_box(v);
            });
            let t_kara = measure(e2e_runs, || {
                black_box(karatsuba_mul(&pool, &kara_a, &kara_b));
            });
            for (workload, n, t, seq) in [
                ("mergesort", sort_n, t_sort, sort_seq),
                ("karatsuba", kara_n, t_kara, kara_seq),
            ] {
                let row = EndToEndRow {
                    workload,
                    n,
                    p,
                    cutoff,
                    ms: t.as_secs_f64() * 1e3,
                    seq_ms: seq.as_secs_f64() * 1e3,
                };
                println!(
                    "{:>10} {:>8} {:>3} {:>7} {:>10.3} {:>10.3}",
                    row.workload, row.n, row.p, row.cutoff, row.ms, row.seq_ms
                );
                rows.push(row);
            }
        }
    }

    // -- JSON baseline -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"join_overhead\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"micro_forks\": {micro_forks},\n"));
    json.push_str("  \"ns_per_fork\": {\n");
    json.push_str(&format!("    \"sequential\": {seq_ns:.2},\n"));
    json.push_str(&format!("    \"legacy_mutex_condvar\": {legacy_ns:.2},\n"));
    json.push_str(&format!("    \"lockfree_no_cutoff\": {lockfree_ns:.2},\n"));
    json.push_str(&format!("    \"lockfree_cutoff\": {cutoff_ns:.2}\n"));
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"ratio_legacy_over_lockfree\": {:.3},\n",
        legacy_ns / lockfree_ns
    ));
    json.push_str(&format!(
        "  \"ratio_legacy_over_cutoff\": {:.3},\n",
        legacy_ns / cutoff_ns
    ));
    json.push_str("  \"steal_throughput\": {\n");
    json.push_str(&format!("    \"items\": {steal_items},\n"));
    json.push_str("    \"thieves\": 1,\n");
    json.push_str(&format!("    \"steals_per_sec\": {steals_per_sec:.0}\n"));
    json.push_str("  },\n");
    json.push_str("  \"end_to_end_ms\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"p\": {}, \"cutoff\": {}, \"ms\": {:.3}, \"seq_ms\": {:.3}}}{comma}\n",
            r.workload, r.n, r.p, r.cutoff, r.ms, r.seq_ms
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Smoke runs write to their own file: the committed
    // BENCH_join_overhead.json is the full-matrix baseline, and running the
    // CI gate locally must not silently replace it with smoke data.
    let default_out = if smoke {
        "BENCH_join_overhead.smoke.json"
    } else {
        "BENCH_join_overhead.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        // The acceptance gates.  The production path — cutoff on, which is
        // what every PalPool::new fork below the top α·log p levels takes —
        // must be >= 5x cheaper per un-stolen fork than the PR 2
        // mutex+condvar path (measured ~40x: ample headroom for any
        // hardware).  The raw scheduler path measures ~6.5x at baseline;
        // it is gated at 4x so a genuine regression (any lock, allocation
        // or wake-up creeping back costs >100 ns against ~60 ns) still
        // trips it, while a CI host with a cheaper allocator/futex path
        // than the baseline machine does not.
        assert!(
            legacy_ns >= 5.0 * cutoff_ns,
            "cutoff fork path must be >= 5x cheaper than legacy \
             (legacy {legacy_ns:.1} ns, cutoff {cutoff_ns:.1} ns)"
        );
        assert!(
            legacy_ns >= 4.0 * lockfree_ns,
            "lock-free fork path must stay >= 4x cheaper than legacy \
             (legacy {legacy_ns:.1} ns, lock-free {lockfree_ns:.1} ns)"
        );
        println!(
            "smoke: OK (legacy/cutoff = {:.1}x, legacy/lockfree = {:.2}x)",
            legacy_ns / cutoff_ns,
            legacy_ns / lockfree_ns
        );
    }
}
