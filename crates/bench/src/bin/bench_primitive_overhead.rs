//! Experiment E15 — steady-state primitive overhead.
//!
//! PR 3 made an un-stolen fork cost ~13 ns, so the remaining hot-path tax
//! of the data-parallel layer is **memory**: the PR 4 primitives allocated
//! fresh `Vec`s for block sums, survivor counts, offsets and outputs on
//! every call, and a level-synchronous BFS re-paid that bill per level.
//! This binary prices the fix.  For each of `scan`, `pack` and a
//! steady-state BFS level it measures, on the same pool:
//!
//! * **before** — a faithful replica of the PR 4 unfused primitives (full
//!   element-wise offset scan inside `expand`, fresh scratch and output
//!   vectors per call), kept here so the old cost stays measurable after
//!   the implementation it belonged to is gone;
//! * **after** — the production path: fused count+scatter `pack`, block-sum
//!   `expand`, the `Copy` fast-path scan, all scratch through the
//!   [`Workspace`] arena and all outputs through `_in` caller buffers.
//!
//! Reported as ns/element (ns/edge for BFS) and allocation events per
//! call (per level for BFS), measured with the [`CountingAlloc`] global
//! allocator.  A grain ablation rides along: the same small-`n` scan on
//! the adaptive-grain pool vs the legacy fixed-`4p` pool, pricing the
//! cost-model floor.  Everything lands in `BENCH_primitive_overhead.json`
//! so future PRs regress against a recorded baseline; `--smoke` runs a
//! reduced grid, asserts output equality of every before/after pair, and
//! gates the headline claim: **≥ 2× fewer allocations per steady-state
//! BFS level** (CI `bench-baseline` re-checks the committed JSON).

use std::hint::black_box;
use std::time::Instant;

use lopram_bench::CountingAlloc;
use lopram_core::{PalPool, Workspace};
use lopram_graph::prelude::*;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A faithful replica of the PR 4 (unfused, allocation-per-call)
/// primitives, written against the public `PalPool::join`: balanced
/// bounds vectors materialized per call, two-pass scan with clone chains,
/// pack via a separate counts vector plus an `exclusive_bounds`
/// allocation, expand via a full element-wise offset scan, and a BFS that
/// re-allocates every level buffer per level.
mod unfused {
    use super::*;

    fn balanced_bounds(len: usize, chunks: usize) -> Vec<usize> {
        (0..=chunks).map(|c| c * len / chunks).collect()
    }

    fn unit_bounds(chunks: usize) -> Vec<usize> {
        (0..=chunks).collect()
    }

    fn exclusive_bounds(counts: &[usize]) -> Vec<usize> {
        let mut bounds = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        for &c in counts {
            bounds.push(acc);
            acc += c;
        }
        bounds.push(acc);
        bounds
    }

    fn blocked_uneven_mut<T, F>(pool: &PalPool, data: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        fn go<T, F>(
            pool: &PalPool,
            first: usize,
            count: usize,
            data: &mut [T],
            bounds: &[usize],
            f: &F,
        ) where
            T: Send,
            F: Fn(usize, &mut [T]) + Sync,
        {
            if count <= 1 {
                f(first, data);
                return;
            }
            let left = count / 2;
            let split = bounds[first + left] - bounds[first];
            let (lo, hi) = data.split_at_mut(split);
            pool.join(
                || go(pool, first, left, lo, bounds, f),
                || go(pool, first + left, count - left, hi, bounds, f),
            );
        }
        let count = bounds.len() - 1;
        if count == 0 {
            return;
        }
        go(pool, 0, count, data, bounds, &f);
    }

    /// PR 4 scan: fresh `sums`, `offsets` and `exclusive` vectors, clone
    /// chains in both passes.
    pub fn scan(pool: &PalPool, input: &[usize]) -> (Vec<usize>, usize) {
        let n = input.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        let chunks = pool.chunk_count(n);
        let bounds = balanced_bounds(n, chunks);
        let mut sums = vec![0usize; chunks];
        blocked_uneven_mut(pool, &mut sums, &unit_bounds(chunks), |chunk, slot| {
            let mut acc = 0usize;
            for x in &input[bounds[chunk]..bounds[chunk + 1]] {
                acc += *x;
            }
            slot[0] = acc;
        });
        let mut acc = 0usize;
        let offsets: Vec<usize> = sums
            .iter()
            .map(|s| {
                let before = acc;
                acc += *s;
                before
            })
            .collect();
        let total = acc;
        let mut exclusive = vec![0usize; n];
        blocked_uneven_mut(pool, &mut exclusive, &bounds, |chunk, out| {
            let mut acc = offsets[chunk];
            for (slot, x) in out.iter_mut().zip(&input[bounds[chunk]..]) {
                *slot = acc;
                acc += *x;
            }
        });
        (exclusive, total)
    }

    /// PR 4 pack: separate counts vector, `exclusive_bounds` allocation,
    /// fresh output.
    pub fn pack<F>(pool: &PalPool, input: &[usize], keep: F) -> Vec<usize>
    where
        F: Fn(usize, &usize) -> bool + Sync,
    {
        let n = input.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = pool.chunk_count(n);
        let bounds = balanced_bounds(n, chunks);
        let mut counts = vec![0usize; chunks];
        blocked_uneven_mut(pool, &mut counts, &unit_bounds(chunks), |chunk, slot| {
            let lo = bounds[chunk];
            slot[0] = input[lo..bounds[chunk + 1]]
                .iter()
                .enumerate()
                .filter(|(i, x)| keep(lo + i, x))
                .count();
        });
        let out_bounds = exclusive_bounds(&counts);
        let total = out_bounds[chunks];
        if total == 0 {
            return Vec::new();
        }
        let mut out = vec![input[0]; total];
        blocked_uneven_mut(pool, &mut out, &out_bounds, |chunk, region| {
            let lo = bounds[chunk];
            let mut slots = region.iter_mut();
            for (i, x) in input[lo..bounds[chunk + 1]].iter().enumerate() {
                if keep(lo + i, x) {
                    *slots.next().expect("pure keep") = *x;
                }
            }
        });
        out
    }

    /// PR 4 expand: a full element-wise offset scan (the `exclusive`
    /// vector of `scan`) plus fresh `out_bounds` and output vectors.
    pub fn expand<F>(pool: &PalPool, sizes: &[usize], fill: usize, write: F) -> Vec<usize>
    where
        F: Fn(usize, &mut [usize]) + Sync,
    {
        let n = sizes.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = pool.chunk_count(n);
        let item_bounds = balanced_bounds(n, chunks);
        let (offsets, total) = scan(pool, sizes);
        let mut out = vec![fill; total];
        let mut out_bounds: Vec<usize> = (0..chunks).map(|c| offsets[item_bounds[c]]).collect();
        out_bounds.push(total);
        blocked_uneven_mut(pool, &mut out, &out_bounds, |chunk, region| {
            let mut rest = region;
            let lo = item_bounds[chunk];
            for (i, &size) in sizes[lo..item_bounds[chunk + 1]].iter().enumerate() {
                let (head, tail) = rest.split_at_mut(size);
                write(lo + i, head);
                rest = tail;
            }
        });
        out
    }

    /// PR 4 map_collect: fresh output per call.
    pub fn map_collect<F>(pool: &PalPool, len: usize, map: F) -> Vec<usize>
    where
        F: Fn(usize) -> usize + Sync,
    {
        let mut out = vec![0usize; len];
        if len == 0 {
            return out;
        }
        let chunks = pool.chunk_count(len);
        let bounds = balanced_bounds(len, chunks);
        blocked_uneven_mut(pool, &mut out, &bounds, |chunk, slots| {
            let lo = bounds[chunk];
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = map(lo + k);
            }
        });
        out
    }

    /// PR 4 BFS: fresh dist / degrees / candidates / frontier vectors —
    /// roughly a dozen allocations per level.
    pub fn bfs(graph: &CsrGraph, pool: &PalPool, src: usize) -> Vec<usize> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dist: Vec<AtomicUsize> = (0..graph.vertices())
            .map(|_| AtomicUsize::new(UNREACHED))
            .collect();
        dist[src].store(0, Ordering::Relaxed);
        let mut frontier = vec![src];
        let mut level = 0usize;
        while !frontier.is_empty() {
            level += 1;
            let frontier_ref = &frontier;
            let degrees = map_collect(pool, frontier.len(), |i| graph.degree(frontier_ref[i]));
            let candidates = expand(pool, &degrees, UNREACHED, |i, region| {
                for (slot, &v) in region.iter_mut().zip(graph.neighbors(frontier_ref[i])) {
                    let claimed = dist[v]
                        .compare_exchange(UNREACHED, level, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok();
                    *slot = if claimed { v } else { UNREACHED };
                }
            });
            frontier = pack(pool, &candidates, |_, &v| v != UNREACHED);
        }
        dist.into_iter().map(AtomicUsize::into_inner).collect()
    }
}

/// Allocation events and wall-clock for `runs` calls of `f`, after one
/// warm-up call (the warm-up pays the arena growth so the window measures
/// the steady state).
fn measure_calls<F: FnMut()>(runs: usize, mut f: F) -> (f64, f64) {
    f();
    let allocs_before = CountingAlloc::events();
    let start = Instant::now();
    for _ in 0..runs {
        f();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let allocs = (CountingAlloc::events() - allocs_before) as f64;
    (allocs / runs as f64, elapsed / runs as f64)
}

struct Row {
    primitive: &'static str,
    variant: &'static str,
    n: usize,
    p: usize,
    ns_per_element: f64,
    allocs_per_call: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { 5 } else { 20 };
    let n: usize = if smoke { 1 << 15 } else { 1 << 19 };
    let grid_side = if smoke { 48 } else { 96 };

    let input: Vec<usize> = (0..n).map(|i| (i * 2_654_435_761) % 1009).collect();
    let graph = grid(grid_side, grid_side);
    let src = 0usize;
    let expected_dist = bfs_seq(&graph, src);
    let bfs_levels = levels(&expected_dist).max(1);
    let edges = graph.edges();

    println!("Primitive steady-state overhead — n = {n}, grid {grid_side}x{grid_side} ({bfs_levels} BFS levels)\n");

    let mut rows: Vec<Row> = Vec::new();
    let mut bfs_alloc: Vec<(usize, f64, f64)> = Vec::new(); // (p, before, after) allocs/level
    for &p in &[1usize, 2, 4] {
        let pool = PalPool::new(p).expect("p >= 1");

        // -- scan ---------------------------------------------------------
        let (before_out, before_total) = unfused::scan(&pool, &input);
        let after = pool.scan_copy(&input, 0usize, |a, b| a + b);
        assert_eq!(after.exclusive, before_out, "scan diverged at p = {p}");
        assert_eq!(after.total, before_total, "scan total diverged at p = {p}");
        let (allocs, ns) = measure_calls(runs, || {
            black_box(unfused::scan(&pool, &input));
        });
        rows.push(Row {
            primitive: "scan",
            variant: "before",
            n,
            p,
            ns_per_element: ns / n as f64,
            allocs_per_call: allocs,
        });
        let mut scanned: Vec<usize> = Vec::new();
        let (allocs, ns) = measure_calls(runs, || {
            black_box(pool.scan_copy_in(&input, 0usize, |a, b| a + b, &mut scanned));
        });
        assert_eq!(scanned, before_out, "scan_copy_in diverged at p = {p}");
        rows.push(Row {
            primitive: "scan",
            variant: "after",
            n,
            p,
            ns_per_element: ns / n as f64,
            allocs_per_call: allocs,
        });

        // -- pack ---------------------------------------------------------
        let keep = |_: usize, x: &usize| x.is_multiple_of(3);
        let before_out = unfused::pack(&pool, &input, keep);
        assert_eq!(
            pool.pack(&input, keep),
            before_out,
            "pack diverged at p = {p}"
        );
        let (allocs, ns) = measure_calls(runs, || {
            black_box(unfused::pack(&pool, &input, keep));
        });
        rows.push(Row {
            primitive: "pack",
            variant: "before",
            n,
            p,
            ns_per_element: ns / n as f64,
            allocs_per_call: allocs,
        });
        let mut packed: Vec<usize> = Vec::new();
        let (allocs, ns) = measure_calls(runs, || {
            pool.pack_in(&input, keep, &mut packed);
            black_box(&packed);
        });
        assert_eq!(packed, before_out, "pack_in diverged at p = {p}");
        rows.push(Row {
            primitive: "pack",
            variant: "after",
            n,
            p,
            ns_per_element: ns / n as f64,
            allocs_per_call: allocs,
        });

        // -- BFS level ----------------------------------------------------
        let bfs_runs = runs.div_ceil(4).max(2);
        assert_eq!(
            unfused::bfs(&graph, &pool, src),
            expected_dist,
            "unfused BFS diverged at p = {p}"
        );
        assert_eq!(
            bfs_par(&graph, &pool, src),
            expected_dist,
            "fused BFS diverged at p = {p}"
        );
        let (allocs_before, ns) = measure_calls(bfs_runs, || {
            black_box(unfused::bfs(&graph, &pool, src));
        });
        rows.push(Row {
            primitive: "bfs_level",
            variant: "before",
            n: graph.vertices(),
            p,
            ns_per_element: ns / edges as f64,
            allocs_per_call: allocs_before / bfs_levels as f64,
        });
        let (allocs_after, ns) = measure_calls(bfs_runs, || {
            black_box(bfs_par(&graph, &pool, src));
        });
        rows.push(Row {
            primitive: "bfs_level",
            variant: "after",
            n: graph.vertices(),
            p,
            ns_per_element: ns / edges as f64,
            allocs_per_call: allocs_after / bfs_levels as f64,
        });
        bfs_alloc.push((
            p,
            allocs_before / bfs_levels as f64,
            allocs_after / bfs_levels as f64,
        ));
    }

    println!(
        "{:<10} {:>8} {:>9} {:>4} {:>14} {:>16}",
        "primitive", "variant", "n", "p", "ns/element", "allocs/call"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>9} {:>4} {:>14.3} {:>16.3}",
            r.primitive, r.variant, r.n, r.p, r.ns_per_element, r.allocs_per_call
        );
    }
    println!("\n(bfs_level rows: ns/element is ns per edge, allocs/call is allocs per level)");

    // -- grain ablation: the cost-model floor on a small input ------------
    let small: Vec<usize> = input[..100].to_vec();
    let adaptive = PalPool::new(4).expect("p = 4");
    let legacy = PalPool::builder()
        .processors(4)
        .no_adaptive_grain()
        .build()
        .expect("p = 4");
    let grain_runs = runs * 50;
    let mut buf: Vec<usize> = Vec::new();
    let (_, adaptive_ns) = measure_calls(grain_runs, || {
        black_box(adaptive.scan_copy_in(&small, 0usize, |a, b| a + b, &mut buf));
    });
    let (_, legacy_ns) = measure_calls(grain_runs, || {
        black_box(legacy.scan_copy_in(&small, 0usize, |a, b| a + b, &mut buf));
    });
    println!(
        "\ngrain ablation (scan of 100 elements, p = 4): adaptive {adaptive_ns:.0} ns/call \
         ({} block), legacy 4p {legacy_ns:.0} ns/call ({} blocks)",
        adaptive.chunk_count(100),
        legacy.chunk_count(100)
    );

    // -- arena sanity ------------------------------------------------------
    let ws_probe = Workspace::new();
    drop(ws_probe.checkout::<usize>());
    drop(ws_probe.checkout::<usize>());
    assert_eq!(ws_probe.stats().hits, 1, "workspace hit counting is live");

    // -- JSON baseline -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"primitive_overhead\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"n\": {n},\n"));
    json.push_str(&format!(
        "  \"bfs_shape\": {{\"grid\": [{grid_side}, {grid_side}], \"levels\": {bfs_levels}, \"edges\": {edges}}},\n"
    ));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"primitive\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"p\": {}, \"ns_per_element\": {:.4}, \"allocs_per_call\": {:.3}}}{comma}\n",
            r.primitive, r.variant, r.n, r.p, r.ns_per_element, r.allocs_per_call
        ));
    }
    json.push_str("  ],\n");
    let worst_reduction = bfs_alloc
        .iter()
        .map(|&(_, before, after)| before / after.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    json.push_str(&format!(
        "  \"bfs_level_alloc_reduction_min\": {worst_reduction:.2},\n"
    ));
    json.push_str(&format!(
        "  \"grain_ablation\": {{\"small_n\": 100, \"p\": 4, \"adaptive_ns_per_call\": {adaptive_ns:.1}, \"legacy_4p_ns_per_call\": {legacy_ns:.1}}}\n"
    ));
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_primitive_overhead.json is the full-matrix baseline.
    let default_out = if smoke {
        "BENCH_primitive_overhead.smoke.json"
    } else {
        "BENCH_primitive_overhead.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        // The acceptance gate: every steady-state BFS level must allocate
        // at least 2x less than the unfused twin (measured ~12 allocs per
        // level before vs ~a fraction of one after — the headroom is
        // enormous; 2x just guards the property, not the exact figure).
        for &(p, before, after) in &bfs_alloc {
            assert!(
                before >= 2.0 * after,
                "p = {p}: steady-state BFS level must allocate >= 2x less than \
                 the unfused twin (before {before:.2}, after {after:.2} allocs/level)"
            );
        }
        println!(
            "smoke: OK (min BFS-level alloc reduction {:.1}x across p)",
            worst_reduction
        );
    }
}
