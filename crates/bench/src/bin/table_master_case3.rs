//! Experiments E5/E6 — Theorem 1, case 3 and the Eq. 5 refinement.
//!
//! The cross-product-sum workload follows `T(n) = 2T(n/2) + Θ(n²)`: the root
//! merge dominates.  With a sequential merge the paper predicts
//! `T_p(n) = Θ(f(n))` — no speedup — and with a parallel merge
//! `T_p(n) = Θ(f(n)/p)` — linear speedup restored.

use lopram_analysis::recurrence::catalog;
use lopram_bench::{
    measure, pool_with, print_speedup_table, random_vec, SpeedupRow, PROCESSOR_SWEEP,
};
use lopram_dnc::case3::{cross_product_sum, cross_product_sum_seq, CrossMergeMode};

fn main() {
    let runs = 3;
    let n = 1usize << 13;
    let data = random_vec(n, 1);
    let rec = catalog::quadratic_merge();

    let seq = measure(runs, || {
        std::hint::black_box(cross_product_sum_seq(&data));
    });

    let mut rows = Vec::new();
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(cross_product_sum(&pool, &data, CrossMergeMode::Sequential));
        });
        rows.push(SpeedupRow {
            label: "case3 seq-merge".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(rec.predicted_speedup(n, p)),
        });
    }
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(cross_product_sum(&pool, &data, CrossMergeMode::Parallel));
        });
        rows.push(SpeedupRow {
            label: "case3 par-merge (Eq.5)".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(rec.predicted_speedup_parallel_merge(n, p)),
        });
    }

    print_speedup_table("Theorem 1, case 3: dominant merge (2T(n/2) + n^2)", &rows);
    println!("\nPaper claim: with a sequential merge the speedup is bounded by a constant");
    println!("(T_p = Θ(f(n)), here ≈ 2 because T(n) ≈ 2·f(n)); parallelising the merge");
    println!("restores T_p = Θ(f(n)/p), i.e. speedup growing linearly in p.");
}
