//! Experiment E14 — graph-kernel speedups on the pal-thread runtime.
//!
//! The LoPRAM claim is exercised on the *irregular* workload family: the
//! scan/pack-based graph kernels of `lopram-graph` (level-synchronous BFS,
//! connected components by label propagation and tree hooking, degree
//! histogram, triangle count) over four graph shapes (seeded `G(n, m)`,
//! grid, star, complete binary tree), at `p ∈ {1, 2, 4}`.
//!
//! Every parallel run is checked against its sequential twin — the table
//! refuses to print a speedup for a wrong answer — and the per-pool
//! `RunMetrics` counters are reported so the §3.1 schedule stays
//! observable: `spawned`/`steals` (pal-threads granted to / migrated to a
//! freed processor), `inlined`, and `elided` (forks below the `⌈α·log₂ p⌉`
//! cutoff that never became scheduler jobs).
//!
//! `--smoke` runs a reduced grid and asserts (CI-gated):
//! * parallel == sequential for **every** kernel × shape × p;
//! * nonzero `spawned` and nonzero `steals` at every `p >= 2` (the
//!   work-stealing runtime really migrates irregular work; retried a few
//!   times to absorb scheduling noise on a single-core host);
//! * exact `spawned + inlined + elided` fork accounting for the scan and
//!   pack primitives via [`assert_metrics_consistent`];
//! * exact BFS and CC fork counts under the adaptive grain policy, on a
//!   path graph where the per-level counts are closed-form — both on the
//!   default adaptive pool (cost floor ⇒ zero forks) and with the grain
//!   pinned to 1 via [`PalPoolBuilder::grain`] (legacy 4p blocking ⇒
//!   `2·(n − 2)` forks), proving the policy stays a pure function of
//!   `(len, p, configuration)` and never of the schedule.
//!
//! [`PalPoolBuilder::grain`]: lopram_core::PalPoolBuilder::grain

use std::time::Duration;

use lopram_bench::measure;
use lopram_core::{assert_metrics_consistent, MetricsSnapshot, PalPool};
use lopram_graph::prelude::*;

/// One measured cell: a kernel on a shape at a processor count.
struct Row {
    kernel: &'static str,
    shape: &'static str,
    p: usize,
    sequential: Duration,
    parallel: Duration,
    metrics: MetricsSnapshot,
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:<12} {:<10} {:>3} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "kernel", "shape", "p", "T_1", "T_p", "speedup", "spawned", "inlined", "steals", "elided"
    );
    for r in rows {
        let speedup = r.sequential.as_secs_f64() / r.parallel.as_secs_f64().max(1e-12);
        println!(
            "{:<12} {:<10} {:>3} {:>12.3?} {:>12.3?} {:>8.2} {:>9} {:>9} {:>8} {:>8}",
            r.kernel,
            r.shape,
            r.p,
            r.sequential,
            r.parallel,
            speedup,
            r.metrics.spawned,
            r.metrics.inlined,
            r.metrics.steals,
            r.metrics.elided,
        );
    }
}

/// A graph kernel with its sequential twin; `run_par` must equal `run_seq`
/// for any schedule, and both sides reduce their answer to a `u64`
/// fingerprint so the harness can compare heterogeneous outputs uniformly.
struct Kernel {
    name: &'static str,
    run_seq: fn(&CsrGraph) -> u64,
    run_par: fn(&CsrGraph, &PalPool) -> u64,
}

fn fingerprint(values: impl IntoIterator<Item = u64>) -> u64 {
    // Order-sensitive FNV-1a fold: identical sequences, identical prints.
    values.into_iter().fold(0xcbf2_9ce4_8422_2325, |h, v| {
        (h ^ v).wrapping_mul(0x100_0000_01b3)
    })
}

const KERNELS: [Kernel; 5] = [
    Kernel {
        name: "bfs",
        run_seq: |g| fingerprint(bfs_seq(g, 0).into_iter().map(|d| d as u64)),
        run_par: |g, pool| fingerprint(bfs_par(g, pool, 0).into_iter().map(|d| d as u64)),
    },
    Kernel {
        name: "cc-labelprop",
        run_seq: |g| fingerprint(components_seq(g).into_iter().map(|l| l as u64)),
        run_par: |g, pool| {
            fingerprint(components_label_prop(g, pool).into_iter().map(|l| l as u64))
        },
    },
    Kernel {
        name: "cc-hook",
        run_seq: |g| fingerprint(components_seq(g).into_iter().map(|l| l as u64)),
        run_par: |g, pool| fingerprint(components_hook(g, pool).into_iter().map(|l| l as u64)),
    },
    Kernel {
        name: "degree-hist",
        run_seq: |g| fingerprint(degree_histogram_seq(g)),
        run_par: |g, pool| fingerprint(degree_histogram(g, pool)),
    },
    Kernel {
        name: "triangles",
        run_seq: triangle_count_seq,
        run_par: triangle_count,
    },
];

fn shapes(smoke: bool) -> Vec<(&'static str, CsrGraph)> {
    if smoke {
        vec![
            ("gnm", gnm(4096, 16384, 42)),
            ("grid", grid(48, 48)),
            ("star", star(4096)),
            ("tree", binary_tree(4095)),
        ]
    } else {
        vec![
            ("gnm", gnm(1 << 16, 1 << 18, 42)),
            ("grid", grid(256, 256)),
            ("star", star(1 << 16)),
            ("tree", binary_tree((1 << 16) - 1)),
        ]
    }
}

/// One full sweep; returns the rows plus (spawned, steals) totals per p.
fn sweep(shapes: &[(&'static str, CsrGraph)], runs: usize) -> (Vec<Row>, Vec<(usize, u64, u64)>) {
    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for &p in &[1usize, 2, 4] {
        let (mut spawned, mut steals) = (0u64, 0u64);
        for &(shape, ref graph) in shapes {
            for kernel in &KERNELS {
                let expected = (kernel.run_seq)(graph);
                let sequential = measure(runs, || {
                    std::hint::black_box((kernel.run_seq)(graph));
                });
                // A fresh pool per cell isolates both the timing and the
                // counters (pools own persistent workers that idle-poll).
                let pool = PalPool::new(p).expect("p >= 1");
                let got = (kernel.run_par)(graph, &pool);
                assert_eq!(
                    got, expected,
                    "{} on {} diverged from its sequential twin at p = {p}",
                    kernel.name, shape
                );
                let parallel = measure(runs, || {
                    std::hint::black_box((kernel.run_par)(graph, &pool));
                });
                let metrics = pool.metrics().snapshot();
                assert!(
                    metrics.steals <= metrics.spawned,
                    "steals can never exceed processor grants"
                );
                spawned += metrics.spawned;
                steals += metrics.steals;
                rows.push(Row {
                    kernel: kernel.name,
                    shape,
                    p,
                    sequential,
                    parallel,
                    metrics,
                });
            }
        }
        totals.push((p, spawned, steals));
    }
    (rows, totals)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let runs = if smoke { 1 } else { 3 };
    let shapes = shapes(smoke);

    println!(
        "Graph-kernel speedups — {} kernels x {} shapes x p in {{1, 2, 4}}\n",
        KERNELS.len(),
        shapes.len()
    );

    // On a loaded single-core CI host a sweep can, rarely, complete
    // without a single steal; the schedule is racy even though every
    // result is checked deterministic.  Retry the sweep a few times
    // before declaring the migration rule broken.
    let mut attempt = 0;
    let (rows, totals) = loop {
        let (rows, totals) = sweep(&shapes, runs);
        let migrated = totals.iter().all(|&(p, s, st)| p < 2 || (s > 0 && st > 0));
        if migrated || !smoke || attempt >= 2 {
            break (rows, totals);
        }
        attempt += 1;
        eprintln!("attempt {attempt}: a p >= 2 sweep saw no steals - retrying");
    };
    print_rows(&rows);

    println!("\nReading: BFS and the packs/scans underneath it fork balanced block trees, so");
    println!("the elided column tracks the alpha*log p cutoff while spawned/steals show the");
    println!("top-of-tree blocks migrating; label propagation and hooking are flat for_each");
    println!("sweeps (injected, not stolen); p = 1 pools elide everything by construction.");

    if smoke {
        for &(p, spawned, steals) in &totals {
            if p >= 2 {
                assert!(
                    spawned > 0,
                    "p = {p}: no pal-thread was ever granted a processor across a full sweep"
                );
                assert!(
                    steals > 0,
                    "p = {p}: the runtime migrated nothing across a full sweep of \
                     irregular kernels — the §3.1 activation rule is not reaching them"
                );
            } else {
                assert_eq!(steals, 0, "a one-processor pool cannot migrate work");
            }
        }

        // Exact fork accounting for the primitives the kernels are built
        // on: block trees fork chunk_count - 1 times per parallel pass,
        // independent of the schedule.
        let input: Vec<u64> = (0..10_000).collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).expect("p >= 1");
            let per_pass = pool.chunk_count(input.len()) as u64 - 1;
            let scan = pool.scan(&input, 0u64, |a, b| a + b);
            assert_eq!(scan.total, 9_999 * 10_000 / 2);
            assert_metrics_consistent(pool.metrics(), 2 * per_pass);

            let pool = PalPool::new(p).expect("p >= 1");
            let kept = pool.pack(&input, |_, x| x % 2 == 0);
            assert_eq!(kept.len(), 5_000);
            assert_metrics_consistent(pool.metrics(), 2 * per_pass);
        }

        // BFS/CC fork counts stay exact under the adaptive grain policy.
        // On a path graph every frontier is a single vertex and every
        // candidate buffer holds at most two entries, so the per-level
        // block counts — and hence the whole kernel's fork count — are
        // closed-form.
        let n = 64usize;
        let path_graph = path(n);
        let expected_dist = bfs_seq(&path_graph, 0);
        for p in [1usize, 2, 4] {
            // Default adaptive pool: every per-level input sits below the
            // cost-model floor — one block per pass, zero forks, end to
            // end, at every p.
            let pool = PalPool::new(p).expect("p >= 1");
            assert_eq!(bfs_par(&path_graph, &pool, 0), expected_dist);
            assert_metrics_consistent(pool.metrics(), 0);

            // Grain pinned to 1 via the builder (the legacy 4p blocking):
            // the only multi-block pass is the pack over the 2-candidate
            // buffer of each of the n − 2 interior levels — 2 blocks × 2
            // passes = 2 forks per level, independent of p and schedule.
            let pool = PalPool::builder()
                .processors(p)
                .grain(1)
                .build()
                .expect("p >= 1");
            assert_eq!(bfs_par(&path_graph, &pool, 0), expected_dist);
            assert_metrics_consistent(pool.metrics(), 2 * (n as u64 - 2));
        }
        // CC fork accounting: at p = 1 the elided spawns run in creation
        // (ascending-index) order, so label propagation on a path
        // converges in exactly two sweeps (one propagating, one
        // confirming the fixpoint) of 4 chunk spawns each.
        let pool = PalPool::new(1).expect("p = 1");
        assert_eq!(
            components_label_prop(&path_graph, &pool),
            components_seq(&path_graph)
        );
        assert_metrics_consistent(pool.metrics(), 2 * 4);

        println!(
            "\nsmoke: OK (per-p spawned/steals: {:?}; scan/pack + BFS/CC fork accounting \
             exact under adaptive grain)",
            totals
        );
    }
}
