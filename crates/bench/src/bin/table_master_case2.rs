//! Experiment E4 — Theorem 1, case 2 (`f(n) = Θ(n^{log_b a})`).
//!
//! Mergesort, maximum subarray and closest pair all follow
//! `T(n) = 2T(n/2) + Θ(n)`, the paper's flagship case (its own example is the
//! mergesort listing of §3.1).  Theorem 1 predicts `T_p(n) = O(T(n)/p)`; the
//! Eq. 3 prediction shows the constant-factor loss from the merge terms at
//! finite n.

use lopram_analysis::recurrence::catalog;
use lopram_bench::{
    measure, pool_with, print_speedup_table, random_vec, SpeedupRow, PROCESSOR_SWEEP,
};
use lopram_dnc::closest_pair::{closest_pair, closest_pair_seq, Point};
use lopram_dnc::max_subarray::{max_subarray, max_subarray_seq};
use lopram_dnc::mergesort::{merge_sort, merge_sort_seq};
use rand::prelude::*;

fn main() {
    let runs = 3;
    let mut rows = Vec::new();

    // Mergesort.
    let n = 1usize << 21;
    let data = random_vec(n, 1);
    let seq = measure(runs, || {
        let mut v = data.clone();
        merge_sort_seq(&mut v);
        std::hint::black_box(v);
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            let mut v = data.clone();
            merge_sort(&pool, &mut v);
            std::hint::black_box(v);
        });
        rows.push(SpeedupRow {
            label: "mergesort (2T(n/2)+n)".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::mergesort().predicted_speedup(n, p)),
        });
    }

    // Maximum subarray.
    let n = 1usize << 23;
    let data = random_vec(n, 2);
    let seq = measure(runs, || {
        std::hint::black_box(max_subarray_seq(&data));
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(max_subarray(&pool, &data));
        });
        rows.push(SpeedupRow {
            label: "max-subarray".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::max_subarray().predicted_speedup(n, p)),
        });
    }

    // Closest pair.
    let n = 1usize << 17;
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(-1e6..1e6), rng.gen_range(-1e6..1e6)))
        .collect();
    let seq = measure(runs, || {
        std::hint::black_box(closest_pair_seq(&points));
    });
    for &p in &PROCESSOR_SWEEP {
        let pool = pool_with(p);
        let par = measure(runs, || {
            std::hint::black_box(closest_pair(&pool, &points));
        });
        rows.push(SpeedupRow {
            label: "closest-pair".into(),
            n,
            p,
            sequential: seq,
            parallel: par,
            predicted: Some(catalog::max_subarray().predicted_speedup(n, p)),
        });
    }

    print_speedup_table(
        "Theorem 1, case 2: work-optimal speedup T_p = O(T/p)",
        &rows,
    );
    println!("\nPaper claim: speedup grows with p; Eq. 3 predicts the finite-n efficiency loss");
    println!("caused by the sequential merges near the root of the recursion tree.");
}
