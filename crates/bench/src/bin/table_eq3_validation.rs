//! Experiment E7 — exactness of Eq. 3.
//!
//! Theorem 1 derives `T_p(n) = T(n / b^{log_a p}) + Σ_{i<log_a p} f(n/b^i)`.
//! This binary compares that closed form against the step-accurate
//! pal-thread scheduler of `lopram-sim` on merge-dominated cost trees for a
//! grid of `(n, p)` values.

use lopram_analysis::recurrence::catalog;
use lopram_sim::{CostSpec, TaskTree, TreeSimulator};

fn main() {
    // `--smoke` runs a reduced grid; CI uses it to keep the paper-table
    // harness exercised without paying for the full sweep.
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("Eq. 3 validation: simulated pal-thread makespan vs analytic prediction");
    println!("(workload: T(n) = 2T(n/2) + n, unit leaves, merge cost n)\n");
    println!(
        "{:>8} {:>4} {:>14} {:>14} {:>8}",
        "n", "p", "simulated T_p", "Eq.3 T_p", "ratio"
    );
    let rec = catalog::mergesort();
    let exps: &[u32] = if smoke { &[8, 10] } else { &[8, 10, 12, 14] };
    for &exp in exps {
        let n = 1usize << exp;
        let costs = CostSpec {
            divide: Box::new(|_| 0),
            merge: Box::new(|s| s as u64),
            base: Box::new(|_| 1),
        };
        let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
        for &p in &[1usize, 2, 4, 8, 16] {
            let sim = TreeSimulator::new(&tree).run(p);
            let analytic = rec.parallel_time_eq3(n, p);
            println!(
                "{:>8} {:>4} {:>14} {:>14.0} {:>8.3}",
                n,
                p,
                sim.makespan,
                analytic,
                sim.makespan as f64 / analytic
            );
        }
    }
    println!("\nPaper claim: the schedule produced by the pal-thread scheduler realises Eq. 3");
    println!("exactly (ratios ≈ 1); deviations reflect only the +1 divide step per level that");
    println!("the analytic recurrence does not charge.");
}
