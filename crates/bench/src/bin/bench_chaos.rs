//! Experiment E20 — the runtime self-healing stack under scheduler
//! chaos: seeded worker kills, dropped/delayed wakeups and forced steal
//! retries injected into the shared pool while a full `bench_serve`-
//! style traffic round runs through `lopram-serve` with retries on.
//!
//! Five scenarios, each a fresh service over a 2-processor pool running
//! the same seeded [`TrafficPlan`]:
//!
//! * **clean** — no chaos, no faults: the digest baseline.
//! * **kill-respawn** — worker 1 is chaos-killed mid-traffic and the
//!   supervisor respawns it; every job must still complete with its
//!   expected digest and [`lopram_core::PoolHealth`] must report both the kill and
//!   the respawn.
//! * **kill-degrade** — same kill, no respawn: the pool degrades to the
//!   survivor, which must drain the whole round alone.
//! * **faults-retried** — a third of the jobs are panic-/cancel-faulted
//!   and healed by retry-with-backoff: every digest must come out
//!   bit-identical to the clean run's, with `attempts > 1` on exactly
//!   the faulted jobs.
//! * **dropped-wakeups** / **steal-retries** — wakeup and steal chaos
//!   that must cost latency, never results.
//!
//! Every scenario asserts its gates inline (`--smoke` and full runs
//! alike); everything lands in `BENCH_chaos.json`, the committed
//! cross-PR baseline the `bench-baseline` CI job parses.

use std::time::{Duration, Instant};

use lopram_bench::traffic::TrafficPlan;
use lopram_core::{ChaosConfig, SelfHeal};
use lopram_serve::{Fault, FaultPlan, JobService, RetryPolicy, ServeConfig, SubmitError};

const TENANTS: usize = 3;

struct Scenario {
    name: &'static str,
    chaos: ChaosConfig,
    self_heal: SelfHeal,
    /// Inject panic/cancel faults into every third job (healed by
    /// retry) instead of running fault-free.
    faulted: bool,
}

struct Row {
    name: &'static str,
    jobs: u64,
    completed_ok: u64,
    digests_ok: bool,
    retried_jobs: u64,
    max_attempts: u32,
    retries: u64,
    killed: u64,
    respawned: u64,
    alive_end: usize,
}

/// Panic/cancel faults on every third job — the retryable subset (a
/// deadline fault is a verdict, not a transient, and is never retried).
fn retryable_plan(seed: u64, jobs: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for i in (0..jobs).step_by(3) {
        let fault = if (seed + i).is_multiple_of(2) {
            Fault::Panic {
                at_step: 1 + (seed + i) % 16,
            }
        } else {
            Fault::Cancel {
                at_step: 1 + (seed + i) % 16,
            }
        };
        plan = plan.inject(i, fault);
    }
    plan
}

/// Poll health until `ok` holds (observing health drives supervision,
/// so this loop is the watchdog), failing the run after 10s.
fn wait_health(service: &JobService, what: &str, ok: impl Fn(usize, u64, u64) -> bool) {
    let start = Instant::now();
    loop {
        let h = service.health();
        if ok(h.alive_workers, h.killed, h.respawned) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pool health never reached: {what}; last {h:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn run_scenario(sc: &Scenario, seed: u64, jobs: u64) -> Row {
    let traffic = TrafficPlan::seeded(seed, jobs, TENANTS);
    let faults = if sc.faulted {
        retryable_plan(seed, jobs)
    } else {
        FaultPlan::none()
    };
    let service = JobService::start(ServeConfig {
        tenants: TENANTS,
        tenant_budget: 2,
        queue_capacity: jobs as usize,
        executors: 2,
        processors: 2,
        fault_plan: faults.clone(),
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            ..RetryPolicy::default()
        },
        chaos: sc.chaos,
        self_heal: sc.self_heal,
        ..ServeConfig::default()
    });
    // Retry on quota rejection (the seeded mix draws tenants unevenly);
    // retrying preserves submission order so ids match plan indices.
    let tickets: Vec<_> = (0..jobs)
        .map(|i| loop {
            match service.submit(traffic.spec(i, &faults)) {
                Ok(t) => break t,
                Err(SubmitError::Rejected { .. }) => std::thread::yield_now(),
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        })
        .collect();
    let mut completed_ok = 0u64;
    let mut digests_ok = true;
    let mut retried_jobs = 0u64;
    let mut max_attempts = 0u32;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let report = ticket.wait();
        max_attempts = max_attempts.max(report.attempts);
        if report.attempts > 1 {
            retried_jobs += 1;
        }
        // Liveness + correctness gate: under every chaos mix, every
        // admitted job completes with its expected digest (faulted jobs
        // via retry).
        if report.outcome == Ok(traffic.expected(i as u64)) {
            completed_ok += 1;
        } else {
            digests_ok = false;
            eprintln!(
                "{}: job {i} came back {:?} after {} attempts",
                sc.name, report.outcome, report.attempts
            );
        }
    }
    // Let the watchdog observe the terminal pool state before snapshot.
    match (sc.chaos.kill_worker, sc.self_heal) {
        (Some(_), SelfHeal::Degrade) => {
            wait_health(&service, "degraded to 1 alive", |alive, killed, _| {
                alive == 1 && killed >= 1
            });
        }
        (Some(_), SelfHeal::Respawn) => {
            wait_health(
                &service,
                "respawned back to 2 alive",
                |alive, killed, respawned| alive == 2 && killed >= 1 && respawned >= 1,
            );
        }
        _ => {}
    }
    let health = service.health();
    let stats = service.shutdown();
    Row {
        name: sc.name,
        jobs,
        completed_ok,
        digests_ok,
        retried_jobs,
        max_attempts,
        retries: stats.retries,
        killed: health.killed,
        respawned: health.respawned,
        alive_end: health.alive_workers,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Injected faults panic on purpose and in volume; keep the default
    // hook's backtraces for *unexpected* panics only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("injected fault"))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    let jobs: u64 = if smoke { 24 } else { 120 };
    let seed = 0xE20_C405;
    println!(
        "E20: self-healing under scheduler chaos — {TENANTS} tenants, {jobs} jobs/scenario, \
         shared 2-processor pool\n"
    );

    let scenarios = [
        Scenario {
            name: "clean",
            chaos: ChaosConfig::none(),
            self_heal: SelfHeal::Respawn,
            faulted: false,
        },
        Scenario {
            name: "kill-respawn",
            chaos: ChaosConfig::none().kill(1, 4),
            self_heal: SelfHeal::Respawn,
            faulted: false,
        },
        Scenario {
            name: "kill-degrade",
            chaos: ChaosConfig::none().kill(1, 4),
            self_heal: SelfHeal::Degrade,
            faulted: false,
        },
        Scenario {
            name: "faults-retried",
            chaos: ChaosConfig::none().kill(1, 4),
            self_heal: SelfHeal::Respawn,
            faulted: true,
        },
        Scenario {
            name: "dropped-wakeups",
            chaos: ChaosConfig::none().drop_wakeup(1).delay_wakeup(2),
            self_heal: SelfHeal::Respawn,
            faulted: false,
        },
        Scenario {
            name: "steal-retries",
            chaos: ChaosConfig::none().force_steal_retries(3),
            self_heal: SelfHeal::Respawn,
            faulted: false,
        },
    ];

    let mut rows = Vec::new();
    for sc in &scenarios {
        let row = run_scenario(sc, seed, jobs);
        println!(
            "{:>15}: {}/{} ok, digests_ok {}, retried {} (max attempts {}, {} re-dispatches), \
             killed {}, respawned {}, alive at end {}",
            row.name,
            row.completed_ok,
            row.jobs,
            row.digests_ok,
            row.retried_jobs,
            row.max_attempts,
            row.retries,
            row.killed,
            row.respawned,
            row.alive_end,
        );
        // Universal gates: every admitted job completed with its
        // expected digest, under every chaos mix.
        assert!(row.digests_ok, "{}: digest divergence", row.name);
        assert_eq!(row.completed_ok, row.jobs, "{}: liveness", row.name);
        // Per-scenario gates.
        match row.name {
            "clean" => {
                assert_eq!(row.killed, 0);
                assert_eq!(row.retried_jobs, 0);
            }
            "kill-respawn" => {
                assert!(row.killed >= 1, "kill must fire");
                assert!(row.respawned >= 1, "supervisor must respawn");
                assert_eq!(row.alive_end, 2, "healed back to full width");
            }
            "kill-degrade" => {
                assert!(row.killed >= 1, "kill must fire");
                assert_eq!(row.respawned, 0);
                assert_eq!(row.alive_end, 1, "degraded to the survivor");
            }
            "faults-retried" => {
                assert!(row.max_attempts >= 2, "faulted jobs must retry");
                assert!(row.retried_jobs >= jobs / 3, "every faulted job retried");
            }
            _ => {}
        }
        rows.push(row);
    }

    println!(
        "\nReading: a chaos-killed worker is detected by the watchdog and either respawned\n\
         (back to full width) or degraded around (survivor drains everything); retry-with-\n\
         backoff heals panic/cancel faults to digests bit-identical to the clean run; and\n\
         wakeup/steal chaos costs latency, never results."
    );

    // ---- JSON baseline -------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"chaos\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"tenants\": {TENANTS},\n"));
    json.push_str(&format!("  \"jobs_per_scenario\": {jobs},\n"));
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"jobs\": {}, \"completed_ok\": {}, \"digests_ok\": {}, \
             \"retried_jobs\": {}, \"max_attempts\": {}, \"retries\": {}, \"killed\": {}, \
             \"respawned\": {}, \"alive_end\": {}}}{comma}\n",
            r.name,
            r.jobs,
            r.completed_ok,
            r.digests_ok,
            r.retried_jobs,
            r.max_attempts,
            r.retries,
            r.killed,
            r.respawned,
            r.alive_end,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_chaos.json is the full-size baseline.
    let default_out = if smoke {
        "BENCH_chaos.smoke.json"
    } else {
        "BENCH_chaos.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        println!("smoke: OK (all scenarios live, digests clean, kills healed, retries healed)");
    }
}
