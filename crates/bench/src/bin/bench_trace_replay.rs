//! Experiment E16 — trace capture and deterministic replay, closing the
//! loop between the real `PalPool` and the `crates/sim` scheduler model.
//!
//! The pool's tracer (`PalPoolBuilder::trace`) records every fork/spawn
//! call site, every scheduled child's Enter/Exit worker and one `Pass`
//! marker per blocked data-parallel pass.  That structure is
//! schedule-independent for the level-synchronous BFS of `lopram-graph`
//! (the E14 shape): frontier sets, candidate-buffer lengths and therefore
//! every pass's chunk count are pure functions of `(graph, src, p, grain)`.
//! So a trace captured at one configuration must *predict the fork count of
//! any other configuration exactly* — `lopram_sim::TraceReplay` recounts
//! each recorded pass under the new `(p, grain)` with the same
//! `policy::grain_size` the pool itself uses.  Steal and speedup
//! predictions come from replaying the capture through the step-accurate
//! §3.1 simulator (`migrations` is the model's steal counter); at `p = 1`
//! the prediction is structurally steal-free.
//!
//! The sweep: capture BFS on a seeded `G(n, m)` at `p ∈ {1, 2, 4}`
//! (adaptive grain), then predict every `(p′, grain′)` in
//! `{1, 2, 4} × {adaptive, fixed-64}` from every capture and run a fresh,
//! *measured* pool at the predicted configuration next to it.  Everything
//! lands in `BENCH_trace_replay.json`, the committed cross-PR baseline the
//! `bench-baseline` CI job gates on.
//!
//! `--smoke` (and the full run — the checks are cheap) asserts:
//! * every capture is complete (`dropped == 0`) and its
//!   [`DagTrace::summary`] reproduces the pool's `RunMetrics` exactly
//!   (forks / elided / spawned / inlined / steals);
//! * the text serialization round-trips losslessly;
//! * replay at the capture configuration returns the recorded fork and
//!   steal totals; replay at `p = 1` predicts zero steals;
//! * replay-predicted fork counts equal the measured fork counts of a
//!   fresh pool for **every** capture × prediction cell.
//!
//! [`DagTrace::summary`]: lopram_core::DagTrace::summary

use lopram_core::{DagTrace, PalPool, TraceConfig};
use lopram_graph::prelude::*;
use lopram_sim::replay::{ReplayGrain, TraceReplay};

/// One cross-validation cell: a capture replayed at a configuration next
/// to a fresh pool measured at that configuration.
struct Row {
    capture_p: usize,
    predict_p: usize,
    grain: &'static str,
    predicted_forks: u64,
    measured_forks: u64,
    predicted_steals: u64,
    measured_steals: u64,
    predicted_speedup: f64,
    at_capture_config: bool,
}

/// The two grain policies the sweep predicts under, with their pool-side
/// builders kept in lockstep with the replay-side [`ReplayGrain`].
const GRAINS: [(&str, ReplayGrain); 2] = [
    ("adaptive", ReplayGrain::Adaptive),
    ("fixed64", ReplayGrain::Fixed(64)),
];

fn pool_for(p: usize, grain: ReplayGrain, trace: bool) -> PalPool {
    let mut builder = PalPool::builder().processors(p);
    if let ReplayGrain::Fixed(min) = grain {
        builder = builder.grain(min);
    }
    if trace {
        builder = builder.trace(TraceConfig::default());
    }
    builder.build().expect("p >= 1")
}

/// Capture one traced BFS run; returns the verified trace.
fn capture(graph: &CsrGraph, p: usize, expected: &[usize]) -> DagTrace {
    let pool = pool_for(p, ReplayGrain::Adaptive, true);
    let dist = bfs_par(graph, &pool, 0);
    assert_eq!(dist, expected, "traced BFS diverged at p = {p}");
    let m = pool.metrics().snapshot();
    let trace = pool.take_trace().expect("pool was built with tracing on");
    assert!(
        trace.is_complete(),
        "capture at p = {p} dropped {} events — raise TraceConfig capacity",
        trace.dropped
    );
    let s = trace.summary();
    assert_eq!(s.forks, m.forks(), "p = {p}: trace forks vs RunMetrics");
    assert_eq!(s.elided, m.elided, "p = {p}: trace elided vs RunMetrics");
    assert_eq!(s.spawned, m.spawned, "p = {p}: trace spawned vs RunMetrics");
    assert_eq!(s.inlined, m.inlined, "p = {p}: trace inlined vs RunMetrics");
    assert_eq!(s.steals, m.steals, "p = {p}: trace steals vs RunMetrics");
    assert_eq!(
        s.unclassified, 0,
        "p = {p}: a quiesced capture classifies all"
    );
    // The serialized format is the stability contract: round-trip every
    // capture through it before replaying.
    let roundtrip = DagTrace::from_text(&trace.to_text()).expect("self-produced text parses");
    assert_eq!(
        roundtrip, trace,
        "p = {p}: text round-trip must be lossless"
    );
    trace
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, m) = if smoke {
        (2048, 8192)
    } else {
        (1 << 14, 1 << 16)
    };
    let graph = gnm(n, m, 42);
    let expected = bfs_seq(&graph, 0);
    let depth = levels(&expected);
    println!(
        "Trace replay — BFS on G({n}, {m}), {depth} levels; capture p in {{1, 2, 4}}, \
         predict (p, grain) in {{1, 2, 4}} x {{adaptive, fixed64}}\n"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut total_events = 0usize;
    for &capture_p in &[1usize, 2, 4] {
        let trace = capture(&graph, capture_p, &expected);
        total_events += trace.events.len();
        let replay = TraceReplay::from_trace(trace);
        let recorded = replay.recorded();

        // Replaying at the capture configuration is the identity.
        let same = replay.predict(capture_p, 2.0, ReplayGrain::Adaptive);
        assert!(
            same.at_capture_config,
            "capture p = {capture_p}: (p, cutoff, grain) must be recognised as the capture config"
        );
        assert_eq!(same.forks, recorded.forks, "identity replay: forks");
        assert_eq!(same.steals, recorded.steals, "identity replay: steals");

        for &(grain_name, grain) in &GRAINS {
            for &predict_p in &[1usize, 2, 4] {
                let prediction = replay.predict(predict_p, 2.0, grain);
                if predict_p == 1 {
                    assert_eq!(
                        prediction.steals, 0,
                        "one processor cannot steal, measured or replayed"
                    );
                    assert!(
                        (prediction.speedup() - 1.0).abs() < 1e-12,
                        "p = 1 replays sequentially"
                    );
                }
                // The measured twin: a fresh untraced pool at exactly the
                // predicted configuration.
                let pool = pool_for(predict_p, grain, false);
                let dist = bfs_par(&graph, &pool, 0);
                assert_eq!(dist, expected, "measured BFS diverged at p = {predict_p}");
                let measured = pool.metrics().snapshot();
                assert_eq!(
                    prediction.forks,
                    measured.forks(),
                    "capture p = {capture_p} -> predict (p = {predict_p}, {grain_name}): \
                     replay-predicted forks must match the schedule-independent accounting"
                );
                rows.push(Row {
                    capture_p,
                    predict_p,
                    grain: grain_name,
                    predicted_forks: prediction.forks,
                    measured_forks: measured.forks(),
                    predicted_steals: prediction.steals,
                    measured_steals: measured.steals,
                    predicted_speedup: prediction.speedup(),
                    at_capture_config: prediction.at_capture_config,
                });
            }
        }
    }

    println!(
        "{:<10} {:<10} {:<9} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "capture_p",
        "predict_p",
        "grain",
        "pred_fork",
        "meas_fork",
        "pred_stl",
        "meas_stl",
        "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:<10} {:<9} {:>10} {:>10} {:>9} {:>9} {:>8.2}",
            r.capture_p,
            r.predict_p,
            r.grain,
            r.predicted_forks,
            r.measured_forks,
            r.predicted_steals,
            r.measured_steals,
            r.predicted_speedup,
        );
    }
    println!("\nReading: pred_fork == meas_fork on every row because BFS pass lengths are pure");
    println!("functions of the input and every BFS fork is a blocked-pass fork the replayer");
    println!("recounts under the target (p, grain); steal columns agree only in expectation —");
    println!("the measured one is racy, the predicted one is the simulator's deterministic");
    println!("migration count (and the recorded total at the capture configuration).");

    // -- JSON baseline -----------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"experiment\": \"trace_replay\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!(
        "  \"workload\": {{\"kernel\": \"bfs\", \"graph\": \"gnm\", \"n\": {n}, \"m\": {m}, \"levels\": {depth}}},\n"
    ));
    json.push_str(&format!("  \"trace_events_total\": {total_events},\n"));
    json.push_str("  \"dropped\": 0,\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"capture_p\": {}, \"predict_p\": {}, \"grain\": \"{}\", \
             \"predicted_forks\": {}, \"measured_forks\": {}, \"predicted_steals\": {}, \
             \"measured_steals\": {}, \"predicted_speedup\": {:.4}, \"at_capture_config\": {}}}{comma}\n",
            r.capture_p,
            r.predict_p,
            r.grain,
            r.predicted_forks,
            r.measured_forks,
            r.predicted_steals,
            r.measured_steals,
            r.predicted_speedup,
            r.at_capture_config,
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    // Smoke runs write to their own (gitignored) file: the committed
    // BENCH_trace_replay.json is the full-size baseline.
    let default_out = if smoke {
        "BENCH_trace_replay.smoke.json"
    } else {
        "BENCH_trace_replay.json"
    };
    let out = std::env::var("LOPRAM_BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    std::fs::write(&out, &json).expect("write benchmark baseline");
    println!("\nwrote {out}");

    if smoke {
        println!(
            "smoke: OK ({} rows, {} trace events, fork prediction exact on every cell)",
            rows.len(),
            total_events
        );
    }
}
