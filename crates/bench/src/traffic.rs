//! Deterministic many-client traffic for the `lopram-serve` job
//! service (experiment E18).
//!
//! A [`TrafficPlan`] is a seeded job mix over `n` tenants:
//!
//! * **small scans** below the fork grain (zero forks — pure service
//!   overhead);
//! * **D&C mergesorts** (the paper's flagship divide-and-conquer
//!   workload);
//! * **heavy graph jobs** — BFS and connected components on one shared
//!   `Arc`'d CSR graph;
//! * **hostile jobs** — bounded compute loops polling
//!   [`JobContext::step`](lopram_serve::JobContext::step) every
//!   iteration, the cooperative hook a
//!   [`FaultPlan`] fires panics, cancels and
//!   deadline stalls through.
//!
//! Every job body starts with a fixed stepping prologue longer than the
//! largest seeded fault step, so **any** job index can be faulted and
//! the fault is guaranteed to land.  Every job's digest is a pure
//! function of its submission index ([`TrafficPlan::expected`]), which
//! is what makes the differential fault check possible: run the same
//! plan with and without faults and every non-faulted job must produce
//! the identical digest.

use std::sync::Arc;
use std::time::Duration;

use lopram_dnc::mergesort::merge_sort;
use lopram_graph::bfs::{bfs_par, bfs_seq};
use lopram_graph::cc::{components_hook, components_seq};
use lopram_graph::gen;
use lopram_graph::CsrGraph;
use lopram_serve::{Fault, FaultPlan, JobSpec};
use rand::{Rng, SeedableRng};

/// Steps every job body performs before its real work — strictly more
/// than the largest `at_step` [`FaultPlan::seeded`] draws (16), so a
/// seeded fault always fires.
pub const TRAFFIC_STEPS: u64 = 20;

/// Deadline given to jobs the fault plan deadline-faults: long enough
/// that a healthy job never trips it, short enough that the injected
/// stall resolves quickly.
pub const FAULTED_DEADLINE: Duration = Duration::from_millis(100);

/// The job families in the mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// A scan below the fork grain: zero forks, measures pure service
    /// overhead.
    SmallScan,
    /// A pal-thread mergesort of a seeded vector.
    Sort,
    /// Level-synchronous BFS on the shared graph.
    Bfs,
    /// Connected components (tree hooking) on the shared graph.
    Components,
    /// A bounded compute loop polling `cx.step()` every iteration —
    /// the natural fault-injection target.
    Hostile,
}

/// One planned job: its family, tenant, and per-job salt.
#[derive(Clone, Copy, Debug)]
pub struct TrafficJob {
    /// Which family the job belongs to.
    pub kind: JobKind,
    /// The submitting tenant, in `0..tenants`.
    pub tenant: usize,
    /// Per-job parameter seed (input sizes and contents derive from it).
    pub salt: u64,
}

/// A seeded, fully deterministic traffic mix.  Equal seeds give equal
/// plans, equal job bodies and equal expected digests.
pub struct TrafficPlan {
    jobs: Vec<TrafficJob>,
    graph: Arc<CsrGraph>,
    bfs_digest: u64,
    cc_digest: u64,
}

/// FNV-style fold of a `u64` stream into one digest word.
fn fold_digest(values: impl IntoIterator<Item = u64>) -> u64 {
    values.into_iter().fold(0xcbf2_9ce4_8422_2325, |h, v| {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The hostile job's pure compute kernel: what the digest is without
/// the interleaved `cx.step()` polls.
fn hostile_digest(salt: u64, iters: u64) -> u64 {
    let mut acc = salt | 1;
    for i in 0..iters {
        acc = acc.rotate_left(9).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ i;
    }
    acc
}

fn small_scan_input(salt: u64) -> Vec<u64> {
    let len = 8 + (salt % 24) as usize;
    (0..len as u64).map(|j| j.wrapping_mul(salt | 1)).collect()
}

fn sort_input(salt: u64) -> Vec<u64> {
    let len = 512 + (salt % 512) as usize;
    let mut x = salt;
    (0..len)
        .map(|_| {
            // SplitMix64 step: decorrelates adjacent salts.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

const HOSTILE_ITERS: u64 = 256;

impl TrafficPlan {
    /// Build a plan of `jobs` jobs over `tenants` tenants from `seed`.
    /// The mix: ~35% small scans, ~20% sorts, ~15% BFS, ~15%
    /// components, ~15% hostile.  The shared graph and both graph
    /// digests are derived from the same seed.
    pub fn seeded(seed: u64, jobs: u64, tenants: usize) -> Self {
        assert!(tenants >= 1, "need at least one tenant");
        let graph = Arc::new(gen::gnm(1500, 4500, seed ^ 0x5EED_06AF));
        let bfs_digest = fold_digest(bfs_seq(&graph, 0).iter().map(|&d| d as u64));
        let cc_digest = fold_digest(components_seq(&graph).iter().map(|&c| c as u64));
        let mut rng = rand::StdRng::seed_from_u64(seed);
        let jobs = (0..jobs)
            .map(|_| {
                let roll: u32 = rng.gen_range(0..100u32);
                let kind = match roll {
                    0..=34 => JobKind::SmallScan,
                    35..=54 => JobKind::Sort,
                    55..=69 => JobKind::Bfs,
                    70..=84 => JobKind::Components,
                    _ => JobKind::Hostile,
                };
                let tenant = rng.gen_range(0..tenants as u64) as usize;
                let salt = rng.gen_range(1..u64::MAX);
                TrafficJob { kind, tenant, salt }
            })
            .collect();
        TrafficPlan {
            jobs,
            graph,
            bfs_digest,
            cc_digest,
        }
    }

    /// Number of jobs in the plan.
    pub fn len(&self) -> u64 {
        self.jobs.len() as u64
    }

    /// Whether the plan holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The planned job at submission index `i`.
    pub fn job(&self, i: u64) -> TrafficJob {
        self.jobs[i as usize]
    }

    /// Count of jobs per family `[scan, sort, bfs, cc, hostile]`.
    pub fn kind_counts(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for job in &self.jobs {
            counts[match job.kind {
                JobKind::SmallScan => 0,
                JobKind::Sort => 1,
                JobKind::Bfs => 2,
                JobKind::Components => 3,
                JobKind::Hostile => 4,
            }] += 1;
        }
        counts
    }

    /// Build the [`JobSpec`] for submission index `i` under `faults`.
    /// Jobs the plan deadline-faults get [`FAULTED_DEADLINE`] so the
    /// injected stall has a deadline to blow; everything else runs
    /// undeadlined.  The body is deterministic: stepping prologue, then
    /// the family workload, digesting to [`expected`](Self::expected).
    pub fn spec(&self, i: u64, faults: &FaultPlan) -> JobSpec {
        let TrafficJob { kind, tenant, salt } = self.job(i);
        let graph = Arc::clone(&self.graph);
        let mut spec = JobSpec::new(tenant, move |cx| {
            for _ in 0..TRAFFIC_STEPS {
                cx.step();
            }
            match kind {
                JobKind::SmallScan => {
                    let data = small_scan_input(salt);
                    cx.pool().scan(&data, 0u64, |a, b| a.wrapping_add(*b)).total
                }
                JobKind::Sort => {
                    let mut data = sort_input(salt);
                    merge_sort(cx.pool(), &mut data);
                    fold_digest(data)
                }
                JobKind::Bfs => {
                    let dist = bfs_par(&graph, cx.pool(), 0);
                    fold_digest(dist.iter().map(|&d| d as u64)) ^ salt
                }
                JobKind::Components => {
                    let labels = components_hook(&graph, cx.pool());
                    fold_digest(labels.iter().map(|&c| c as u64)) ^ salt
                }
                JobKind::Hostile => {
                    let mut acc = salt | 1;
                    for i in 0..HOSTILE_ITERS {
                        cx.step();
                        acc = acc.rotate_left(9).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ i;
                    }
                    acc
                }
            }
        });
        if let Some(Fault::Deadline { .. }) = faults.fault_for(i) {
            spec = spec.deadline(FAULTED_DEADLINE);
        }
        spec
    }

    /// The digest a non-faulted run of job `i` must produce — computed
    /// sequentially, without the service or the pool.
    pub fn expected(&self, i: u64) -> u64 {
        let TrafficJob { kind, salt, .. } = self.job(i);
        match kind {
            JobKind::SmallScan => small_scan_input(salt)
                .iter()
                .fold(0u64, |a, b| a.wrapping_add(*b)),
            JobKind::Sort => {
                let mut data = sort_input(salt);
                data.sort_unstable();
                fold_digest(data)
            }
            JobKind::Bfs => self.bfs_digest ^ salt,
            JobKind::Components => self.cc_digest ^ salt,
            JobKind::Hostile => hostile_digest(salt, HOSTILE_ITERS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_serve::{JobService, ServeConfig};

    #[test]
    fn plans_are_seed_deterministic() {
        let a = TrafficPlan::seeded(11, 64, 3);
        let b = TrafficPlan::seeded(11, 64, 3);
        for i in 0..a.len() {
            assert_eq!(a.job(i).kind, b.job(i).kind);
            assert_eq!(a.job(i).tenant, b.job(i).tenant);
            assert_eq!(a.job(i).salt, b.job(i).salt);
            assert_eq!(a.expected(i), b.expected(i));
        }
        let counts = a.kind_counts();
        assert!(
            counts.iter().all(|&c| c > 0),
            "64 jobs hit every family: {counts:?}"
        );
        assert!(
            (0..a.len()).any(|i| a.job(i).tenant == 2),
            "all tenants drawn"
        );
    }

    #[test]
    fn every_family_digests_to_expected_through_the_service() {
        let plan = TrafficPlan::seeded(7, 24, 2);
        let service = JobService::start(ServeConfig {
            tenants: 2,
            // Generous: the seeded tenant draw is uneven, and the
            // per-tenant admission quota is capacity / tenants.
            queue_capacity: 64,
            processors: 2,
            ..ServeConfig::default()
        });
        let none = FaultPlan::none();
        let tickets: Vec<_> = (0..plan.len())
            .map(|i| service.submit(plan.spec(i, &none)).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().outcome,
                Ok(plan.expected(i as u64)),
                "job {i} ({:?})",
                plan.job(i as u64).kind
            );
        }
        service.shutdown();
    }
}
