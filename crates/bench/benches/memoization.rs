//! Criterion benchmarks for parallel memoization (§4.5, experiment E10):
//! top-down memoized evaluation vs the bottom-up Algorithm 1 scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopram_bench::{pool_with, random_string};
use lopram_dp::prelude::*;

const PROCS: [usize; 3] = [1, 4, 8];

fn bench_matrix_chain_memo(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_matrix_chain");
    let problem = MatrixChain::new((0..90).map(|i| ((i * 11) % 30 + 2) as u64).collect());
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("bottom_up", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_counter(&problem, &pool)));
        });
        group.bench_with_input(BenchmarkId::new("memoized", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_memoized(&problem, &pool)));
        });
    }
    group.finish();
}

fn bench_lcs_memo(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_lcs");
    let problem = Lcs::new(random_string(400, 4, 1), random_string(400, 4, 2));
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("bottom_up", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_counter(&problem, &pool)));
        });
        group.bench_with_input(BenchmarkId::new("memoized", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_memoized(&problem, &pool)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matrix_chain_memo, bench_lcs_memo
}
criterion_main!(benches);
