//! Criterion benchmarks for experiment E12: the pal-thread pool, the eager
//! throttled ablation and raw rayon on the same mergesort workload.
//!
//! Caveat for offline builds: `rayon` resolves to the workspace shim
//! (`shims/rayon`) — since PR 2 a real bounded work-stealing runtime with
//! `p` persistent workers, per-worker deques and help-first join, i.e. the
//! same runtime `PalPool` wraps.  The "rayon" rows are therefore a sanity
//! baseline for the pool plumbing, not an upstream-rayon measurement;
//! re-run against the published crate before quoting them as one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopram_bench::random_vec;
use lopram_core::{PalPool, ThrottledPool};
use lopram_dnc::mergesort::{merge_into, merge_sort};

const PROCS: [usize; 3] = [2, 4, 8];

fn rayon_merge_sort(data: &mut [i64]) {
    if data.len() <= 64 {
        data.sort_unstable();
        return;
    }
    let mid = data.len() / 2;
    let mut temp = data.to_vec();
    {
        let (dl, dr) = data.split_at_mut(mid);
        rayon::join(|| rayon_merge_sort(dl), || rayon_merge_sort(dr));
        merge_into(dl, dr, &mut temp);
    }
    data.copy_from_slice(&temp);
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_ablation");
    let n = 1usize << 19;
    let data = random_vec(n, 1);
    for &p in &PROCS {
        let pal = PalPool::new(p).expect("p >= 1");
        group.bench_with_input(BenchmarkId::new("palpool", p), &p, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                merge_sort(&pal, &mut v);
                std::hint::black_box(v);
            });
        });

        let throttled = ThrottledPool::new(p).expect("p >= 1");
        group.bench_with_input(BenchmarkId::new("throttled", p), &p, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                merge_sort(&throttled, &mut v);
                std::hint::black_box(v);
            });
        });

        let rayon_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(p)
            .build()
            .expect("rayon pool");
        group.bench_with_input(BenchmarkId::new("rayon", p), &p, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                rayon_pool.install(|| rayon_merge_sort(&mut v));
                std::hint::black_box(v);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedulers
}
criterion_main!(benches);
