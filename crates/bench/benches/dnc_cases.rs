//! Criterion benchmarks for the three Master-theorem cases (experiments
//! E3–E6): every group sweeps the processor count so the reported times can
//! be turned into the speedup curves of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopram_bench::{pool_with, random_matrix, random_vec};
use lopram_dnc::case3::{cross_product_sum, CrossMergeMode};
use lopram_dnc::karatsuba::karatsuba_mul;
use lopram_dnc::mergesort::merge_sort;
use lopram_dnc::strassen::strassen_mul;

const PROCS: [usize; 4] = [1, 2, 4, 8];

fn bench_case1(c: &mut Criterion) {
    let mut group = c.benchmark_group("case1");
    let n = 1usize << 13;
    let a = random_vec(n, 1);
    let b = random_vec(n, 2);
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("karatsuba", p), &p, |bench, _| {
            bench.iter(|| std::hint::black_box(karatsuba_mul(&pool, &a, &b)));
        });
    }
    let ma = random_matrix(256, 3);
    let mb = random_matrix(256, 4);
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("strassen256", p), &p, |bench, _| {
            bench.iter(|| std::hint::black_box(strassen_mul(&pool, &ma, &mb)));
        });
    }
    group.finish();
}

fn bench_case2(c: &mut Criterion) {
    let mut group = c.benchmark_group("case2");
    let n = 1usize << 19;
    let data = random_vec(n, 5);
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("mergesort", p), &p, |bench, _| {
            bench.iter(|| {
                let mut v = data.clone();
                merge_sort(&pool, &mut v);
                std::hint::black_box(v);
            });
        });
    }
    group.finish();
}

fn bench_case3(c: &mut Criterion) {
    let mut group = c.benchmark_group("case3");
    let n = 1usize << 12;
    let data = random_vec(n, 7);
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("seq_merge", p), &p, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(cross_product_sum(&pool, &data, CrossMergeMode::Sequential))
            });
        });
        group.bench_with_input(BenchmarkId::new("par_merge", p), &p, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(cross_product_sum(&pool, &data, CrossMergeMode::Parallel))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_case1, bench_case2, bench_case3
}
criterion_main!(benches);
