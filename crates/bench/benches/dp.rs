//! Criterion benchmarks for parallel dynamic programming (experiment E8):
//! wavefront and Algorithm 1 schedulers on LCS, knapsack and matrix chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lopram_bench::{pool_with, random_string};
use lopram_dp::prelude::*;

const PROCS: [usize; 4] = [1, 2, 4, 8];

fn bench_lcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_lcs");
    let problem = Lcs::new(random_string(500, 4, 1), random_string(500, 4, 2));
    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(solve_sequential(&problem)));
    });
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("counter", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_counter(&problem, &pool)));
        });
        group.bench_with_input(BenchmarkId::new("wavefront", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_wavefront(&problem, &pool)));
        });
    }
    group.finish();
}

fn bench_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_knapsack");
    let problem = Knapsack::new(
        (0..120).map(|i| (i % 11) + 1).collect(),
        (0..120).map(|i| ((i * 7) % 31 + 1) as u64).collect(),
        1200,
    );
    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(solve_sequential(&problem)));
    });
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("counter", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_counter(&problem, &pool)));
        });
    }
    group.finish();
}

fn bench_matrix_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_matrix_chain");
    let problem = MatrixChain::new((0..100).map(|i| ((i * 13) % 32 + 2) as u64).collect());
    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(solve_sequential(&problem)));
    });
    for &p in &PROCS {
        let pool = pool_with(p);
        group.bench_with_input(BenchmarkId::new("wavefront", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(solve_wavefront(&problem, &pool)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lcs, bench_knapsack, bench_matrix_chain
}
criterion_main!(benches);
