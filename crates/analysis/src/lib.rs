//! # lopram-analysis
//!
//! The analysis toolkit of the LoPRAM reproduction: everything §4 of the
//! paper states analytically, implemented so the experiment harness can put
//! predicted and measured numbers side by side.
//!
//! * [`growth`] — symbolic growth functions `c · n^k · log^j n`, the shape of
//!   every driving function `f(n)` the Master theorem handles;
//! * [`recurrence`] — divide-and-conquer recurrences `T(n) = a·T(n/b) + f(n)`
//!   with exact evaluators for the sequential time, for the parallel time of
//!   Eq. 3 (sequential merging) and for the parallel-merge variant of Eq. 5;
//! * [`master`] — the classical Master theorem and the paper's **parallel
//!   Master theorem** (Theorem 1): case classification, asymptotic bounds and
//!   the speedup class each case promises;
//! * [`dag`] — dependency DAGs for dynamic programming (§4.3): antichain
//!   (Mirsky) decompositions, longest chains, width profiles and the
//!   Brent-style bound on achievable speedup with `p` processors.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dag;
pub mod growth;
pub mod master;
pub mod recurrence;

pub use dag::{Dag, LevelDecomposition};
pub use growth::Growth;
pub use master::{
    parallel_master_bound, sequential_master_bound, MasterCase, MergeMode, ParallelBound,
    SpeedupClass,
};
pub use recurrence::Recurrence;

/// Convenience prelude for the analysis crate.
pub mod prelude {
    pub use crate::dag::{Dag, LevelDecomposition};
    pub use crate::growth::Growth;
    pub use crate::master::{
        parallel_master_bound, sequential_master_bound, MasterCase, MergeMode, ParallelBound,
        SpeedupClass,
    };
    pub use crate::recurrence::Recurrence;
}
