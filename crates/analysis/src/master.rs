//! The Master theorem and the paper's parallel Master theorem (Theorem 1).
//!
//! For a recurrence `T(n) = a·T(n/b) + f(n)` with `a ≥ 1`, `b > 1` the
//! classical Master theorem (paper Eq. 2) distinguishes three cases by
//! comparing `f(n)` with `n^{log_b a}`.  Theorem 1 of the paper re-derives
//! the three cases for the wall-clock time `T_p(n)` of the straightforward
//! pal-thread parallelization with `p = O(log n)` processors:
//!
//! | case | condition | sequential merge | parallel merge (Eq. 5) |
//! |------|-----------|------------------|------------------------|
//! | 1 | `f(n) = O(n^{log_b a − ε})` | `O(T(n)/p)` | `O(T(n)/p)` |
//! | 2 | `f(n) = Θ(n^{log_b a})` | `O(T(n)/p)` | `O(T(n)/p)` |
//! | 3 | `f(n) = Ω(n^{log_b a + ε})`, regularity | `Θ(f(n))` | `Θ(f(n)/p)` |
//!
//! The functions here classify a recurrence, produce the asymptotic bound as
//! a [`Growth`], and label the speedup class the paper promises so the
//! benches can compare prediction and measurement.

use crate::growth::Growth;
use crate::recurrence::Recurrence;

/// The case of the (sequential or parallel) Master theorem a recurrence
/// falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterCase {
    /// `f(n) = O(n^{log_b a − ε})`: the leaves dominate.
    Case1,
    /// `f(n) = Θ(n^{log_b a})`: every level contributes equally.
    Case2,
    /// `f(n) = Ω(n^{log_b a + ε})` with the regularity condition: the root
    /// dominates.
    Case3,
    /// The driving function sits in one of the polylogarithmic gaps the
    /// theorem does not cover (e.g. `f(n) = n^{log_b a} log n` for case-2/3
    /// boundaries, or a case-3 exponent whose regularity condition fails).
    Unclassified,
}

/// Whether the merge phase of the divide-and-conquer algorithm is executed
/// sequentially within each instance (Theorem 1) or in parallel with optimal
/// speedup (the Eq. 5 refinement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Only one processor works on a given merge.
    Sequential,
    /// The merge of one instance is spread over the available processors.
    Parallel,
}

/// The speedup class Theorem 1 promises for a recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedupClass {
    /// `T_p(n) = O(T(n)/p)`: work-optimal, linear speedup in `p`.
    Linear,
    /// `T_p(n) = Θ(f(n))`: the sequential merge at the root dominates and no
    /// asymptotic speedup is obtained.
    None,
    /// The theorem makes no claim for this recurrence.
    Unknown,
}

/// The conclusion of the parallel Master theorem for one recurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelBound {
    /// Which case of the theorem applied.
    pub case: MasterCase,
    /// The asymptotic sequential time `T(n)` (Θ-bound, paper Eq. 2).
    pub sequential: Growth,
    /// The asymptotic wall-clock time with `p` processors, as a function of
    /// `n`, *before* dividing by `p` where applicable; see `divide_by_p`.
    pub parallel: Growth,
    /// Whether `parallel` must additionally be divided by `p` (cases with
    /// linear speedup) or stands on its own (case 3 with sequential merge).
    pub divide_by_p: bool,
    /// The speedup class the theorem promises.
    pub speedup: SpeedupClass,
}

impl ParallelBound {
    /// Numerically evaluate the predicted wall-clock bound at `(n, p)`.
    pub fn eval(&self, n: f64, p: usize) -> f64 {
        let raw = self.parallel.eval(n);
        if self.divide_by_p {
            raw / p as f64
        } else {
            raw
        }
    }
}

/// Classify a recurrence according to the classical Master theorem.
pub fn classify(rec: &Recurrence) -> MasterCase {
    let crit = rec.critical_exponent();
    match rec.f.compare_exponent(crit) {
        std::cmp::Ordering::Less => MasterCase::Case1,
        std::cmp::Ordering::Equal => {
            if rec.f.log_power == 0 {
                MasterCase::Case2
            } else {
                MasterCase::Unclassified
            }
        }
        std::cmp::Ordering::Greater => {
            if regularity_holds(rec) {
                MasterCase::Case3
            } else {
                MasterCase::Unclassified
            }
        }
    }
}

/// The regularity condition of case 3: `a · f(n/b) ≤ c · f(n)` for some
/// `c < 1` and all sufficiently large `n`.  For `f(n) = n^k (log n)^j` this
/// holds exactly when `a / b^k < 1`.
pub fn regularity_holds(rec: &Recurrence) -> bool {
    (rec.a as f64) < (rec.b as f64).powf(rec.f.exponent)
}

/// The Θ-bound of the classical Master theorem (paper Eq. 2).
pub fn sequential_master_bound(rec: &Recurrence) -> Option<Growth> {
    let crit = rec.critical_exponent();
    match classify(rec) {
        MasterCase::Case1 => Some(Growth::polynomial(1.0, crit)),
        MasterCase::Case2 => Some(Growth::new(1.0, crit, rec.f.log_power + 1)),
        MasterCase::Case3 => Some(rec.f),
        MasterCase::Unclassified => None,
    }
}

/// The conclusion of the paper's parallel Master theorem (Theorem 1 and the
/// parallel-merging refinement of Eq. 5).
pub fn parallel_master_bound(rec: &Recurrence, merge: MergeMode) -> ParallelBound {
    let case = classify(rec);
    let sequential = sequential_master_bound(rec).unwrap_or(rec.f);
    match case {
        MasterCase::Case1 | MasterCase::Case2 => ParallelBound {
            case,
            sequential,
            parallel: sequential,
            divide_by_p: true,
            speedup: SpeedupClass::Linear,
        },
        MasterCase::Case3 => match merge {
            MergeMode::Sequential => ParallelBound {
                case,
                sequential,
                parallel: rec.f,
                divide_by_p: false,
                speedup: SpeedupClass::None,
            },
            MergeMode::Parallel => ParallelBound {
                case,
                sequential,
                parallel: rec.f,
                divide_by_p: true,
                speedup: SpeedupClass::Linear,
            },
        },
        MasterCase::Unclassified => ParallelBound {
            case,
            sequential,
            parallel: sequential,
            divide_by_p: false,
            speedup: SpeedupClass::Unknown,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recurrence::catalog;
    use proptest::prelude::*;

    #[test]
    fn classify_textbook_recurrences() {
        assert_eq!(classify(&catalog::karatsuba()), MasterCase::Case1);
        assert_eq!(classify(&catalog::strassen()), MasterCase::Case1);
        assert_eq!(classify(&catalog::poly_mul_four_way()), MasterCase::Case1);
        assert_eq!(classify(&catalog::mergesort()), MasterCase::Case2);
        assert_eq!(classify(&catalog::quadratic_merge()), MasterCase::Case3);
    }

    #[test]
    fn classify_binary_search_is_case2() {
        // T(n) = T(n/2) + 1: log_b a = 0 and f = Θ(1).
        let r = Recurrence::new(1, 2, Growth::constant(1.0));
        assert_eq!(classify(&r), MasterCase::Case2);
        let bound = sequential_master_bound(&r).unwrap();
        assert_eq!(bound.log_power, 1);
        assert!(bound.exponent.abs() < 1e-9);
    }

    #[test]
    fn polylog_gap_is_unclassified() {
        // f(n) = n log n with log_b a = 1 sits in the gap of the classical theorem.
        let r = Recurrence::new(2, 2, Growth::n_log_n(1.0));
        assert_eq!(classify(&r), MasterCase::Unclassified);
        assert_eq!(sequential_master_bound(&r), None);
    }

    #[test]
    fn regularity_condition() {
        assert!(regularity_holds(&catalog::quadratic_merge())); // 2 < 2² = 4
        let tight = Recurrence::new(4, 2, Growth::polynomial(1.0, 2.0)); // 4 = 2²
        assert!(!regularity_holds(&tight));
    }

    #[test]
    fn sequential_bounds_match_textbook() {
        let ms = sequential_master_bound(&catalog::mergesort()).unwrap();
        assert_eq!(ms.log_power, 1);
        assert!((ms.exponent - 1.0).abs() < 1e-9);

        let ka = sequential_master_bound(&catalog::karatsuba()).unwrap();
        assert!((ka.exponent - 1.585).abs() < 1e-3);
        assert_eq!(ka.log_power, 0);

        let q = sequential_master_bound(&catalog::quadratic_merge()).unwrap();
        assert!((q.exponent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_cases_1_and_2_promise_linear_speedup() {
        for rec in [
            catalog::karatsuba(),
            catalog::mergesort(),
            catalog::strassen(),
        ] {
            for merge in [MergeMode::Sequential, MergeMode::Parallel] {
                let bound = parallel_master_bound(&rec, merge);
                assert_eq!(bound.speedup, SpeedupClass::Linear);
                assert!(bound.divide_by_p);
            }
        }
    }

    #[test]
    fn theorem1_case3_sequential_merge_promises_no_speedup() {
        let bound = parallel_master_bound(&catalog::quadratic_merge(), MergeMode::Sequential);
        assert_eq!(bound.case, MasterCase::Case3);
        assert_eq!(bound.speedup, SpeedupClass::None);
        assert!(!bound.divide_by_p);
        // Θ(f(n)) = Θ(n²): identical prediction for p = 2 and p = 8.
        assert_eq!(bound.eval(4096.0, 2), bound.eval(4096.0, 8));
    }

    #[test]
    fn eq5_case3_parallel_merge_promises_f_over_p() {
        let bound = parallel_master_bound(&catalog::quadratic_merge(), MergeMode::Parallel);
        assert_eq!(bound.speedup, SpeedupClass::Linear);
        assert!(bound.divide_by_p);
        let at2 = bound.eval(4096.0, 2);
        let at8 = bound.eval(4096.0, 8);
        assert!((at2 / at8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_bound_tracks_recurrence_evaluation() {
        // The Θ-bound is only defined up to constants, so the meaningful
        // check is that the ratio between the exact Eq. 3 evaluation and the
        // predicted bound stays (roughly) constant as n grows.
        for (rec, p) in [
            (catalog::karatsuba(), 9usize),
            (catalog::mergesort(), 8usize),
        ] {
            let bound = parallel_master_bound(&rec, MergeMode::Sequential);
            let ratios: Vec<f64> = [14u32, 17, 20]
                .iter()
                .map(|&exp| {
                    let n = 1usize << exp;
                    rec.parallel_time_eq3(n, p) / bound.eval(n as f64, p)
                })
                .collect();
            let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ratios.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                max / min < 2.0,
                "Θ-bound does not track Eq. 3: ratios {ratios:?}"
            );
        }
    }

    proptest! {
        #[test]
        fn every_recurrence_gets_a_consistent_classification(
            a in 1u32..10, b in 2u32..6, k in 0.0f64..3.0, j in 0u32..2
        ) {
            let rec = Recurrence::new(a, b, Growth::new(1.0, k, j));
            let case = classify(&rec);
            let bound = parallel_master_bound(&rec, MergeMode::Sequential);
            prop_assert_eq!(bound.case, case);
            match case {
                MasterCase::Case1 | MasterCase::Case2 => {
                    prop_assert_eq!(bound.speedup, SpeedupClass::Linear)
                }
                MasterCase::Case3 => prop_assert_eq!(bound.speedup, SpeedupClass::None),
                MasterCase::Unclassified => prop_assert_eq!(bound.speedup, SpeedupClass::Unknown),
            }
        }

        #[test]
        fn case1_iff_exponent_below_critical(a in 1u32..10, b in 2u32..6, k in 0.0f64..3.0) {
            let rec = Recurrence::new(a, b, Growth::polynomial(1.0, k));
            let crit = rec.critical_exponent();
            let case = classify(&rec);
            if k < crit - 1e-6 {
                prop_assert_eq!(case, MasterCase::Case1);
            }
            if k > crit + 1e-6 && (a as f64) < (b as f64).powf(k) {
                prop_assert_eq!(case, MasterCase::Case3);
            }
        }
    }
}
