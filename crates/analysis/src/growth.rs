//! Symbolic growth functions of the form `c · n^k · (log₂ n)^j`.
//!
//! Every driving function the Master theorem covers (and every bound it
//! produces) has this shape, so a tiny symbolic representation is enough to
//! classify recurrences, evaluate them numerically and print the asymptotic
//! bounds of Theorem 1 next to measured numbers.

use std::fmt;

/// A growth function `c · n^k · (log₂ n)^j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Growth {
    /// Constant factor `c` (only used for numeric evaluation, never for
    /// asymptotic comparisons).
    pub coefficient: f64,
    /// Polynomial exponent `k`.
    pub exponent: f64,
    /// Power of the logarithm `j`.
    pub log_power: u32,
}

impl Growth {
    /// `c · n^k · log^j n`.
    pub fn new(coefficient: f64, exponent: f64, log_power: u32) -> Self {
        assert!(
            coefficient >= 0.0,
            "growth functions must be nonnegative (got coefficient {coefficient})"
        );
        Growth {
            coefficient,
            exponent,
            log_power,
        }
    }

    /// The constant function `c`.
    pub fn constant(c: f64) -> Self {
        Growth::new(c, 0.0, 0)
    }

    /// The linear function `c · n`.
    pub fn linear(c: f64) -> Self {
        Growth::new(c, 1.0, 0)
    }

    /// `c · n^k`.
    pub fn polynomial(c: f64, k: f64) -> Self {
        Growth::new(c, k, 0)
    }

    /// `c · n log n`.
    pub fn n_log_n(c: f64) -> Self {
        Growth::new(c, 1.0, 1)
    }

    /// Evaluate the function at `n` (with `log 0 = log 1 = 0` conventions so
    /// small inputs stay finite).
    pub fn eval(&self, n: f64) -> f64 {
        if n <= 0.0 {
            return 0.0;
        }
        let log = if n <= 1.0 { 0.0 } else { n.log2() };
        self.coefficient * n.powf(self.exponent) * log.powi(self.log_power as i32)
    }

    /// Multiply by a constant.
    pub fn scale(&self, factor: f64) -> Self {
        Growth::new(self.coefficient * factor, self.exponent, self.log_power)
    }

    /// Multiply by one extra `log n` factor (used by Master theorem case 2).
    pub fn times_log(&self) -> Self {
        Growth::new(self.coefficient, self.exponent, self.log_power + 1)
    }

    /// Asymptotic comparison against `n^k`: returns `Ordering::Less` when this
    /// function is `O(n^{k−ε})` for some `ε > 0`, `Equal` when it is
    /// `Θ(n^k · polylog)` with the *same* polynomial exponent, `Greater` when
    /// it is `Ω(n^{k+ε})`.
    pub fn compare_exponent(&self, k: f64) -> std::cmp::Ordering {
        const EPS: f64 = 1e-9;
        if self.exponent < k - EPS {
            std::cmp::Ordering::Less
        } else if self.exponent > k + EPS {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    }

    /// `true` when the function is exactly `Θ(n^k)` (no extra log factors).
    pub fn is_theta_of_poly(&self, k: f64) -> bool {
        self.compare_exponent(k) == std::cmp::Ordering::Equal && self.log_power == 0
    }
}

impl fmt::Display for Growth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if (self.coefficient - 1.0).abs() > 1e-12 {
            parts.push(format!("{}", self.coefficient));
        }
        if self.exponent.abs() > 1e-12 {
            if (self.exponent - 1.0).abs() < 1e-12 {
                parts.push("n".to_string());
            } else {
                parts.push(format!("n^{}", self.exponent));
            }
        }
        if self.log_power == 1 {
            parts.push("log n".to_string());
        } else if self.log_power > 1 {
            parts.push(format!("log^{} n", self.log_power));
        }
        if parts.is_empty() {
            parts.push("1".to_string());
        }
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Ordering;

    #[test]
    fn eval_constant_linear_quadratic() {
        assert_eq!(Growth::constant(3.0).eval(1000.0), 3.0);
        assert_eq!(Growth::linear(1.0).eval(64.0), 64.0);
        assert_eq!(Growth::polynomial(1.0, 2.0).eval(10.0), 100.0);
    }

    #[test]
    fn eval_n_log_n() {
        let f = Growth::n_log_n(1.0);
        assert!((f.eval(8.0) - 24.0).abs() < 1e-9);
        assert_eq!(f.eval(1.0), 0.0);
        assert_eq!(f.eval(0.0), 0.0);
    }

    #[test]
    fn eval_handles_nonpositive_inputs() {
        let f = Growth::polynomial(2.0, 1.5);
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(-5.0), 0.0);
    }

    #[test]
    fn compare_exponent_cases() {
        assert_eq!(Growth::linear(1.0).compare_exponent(1.585), Ordering::Less);
        assert_eq!(Growth::linear(1.0).compare_exponent(1.0), Ordering::Equal);
        assert_eq!(
            Growth::polynomial(1.0, 2.0).compare_exponent(1.0),
            Ordering::Greater
        );
    }

    #[test]
    fn is_theta_of_poly_rejects_log_factors() {
        assert!(Growth::linear(5.0).is_theta_of_poly(1.0));
        assert!(!Growth::n_log_n(1.0).is_theta_of_poly(1.0));
        assert!(!Growth::linear(1.0).is_theta_of_poly(2.0));
    }

    #[test]
    fn times_log_and_scale() {
        let f = Growth::linear(2.0).times_log();
        assert_eq!(f.log_power, 1);
        assert!((f.eval(8.0) - 2.0 * 8.0 * 3.0).abs() < 1e-9);
        let g = f.scale(0.5);
        assert!((g.eval(8.0) - 8.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Growth::constant(1.0).to_string(), "1");
        assert_eq!(Growth::linear(1.0).to_string(), "n");
        assert_eq!(Growth::n_log_n(1.0).to_string(), "n log n");
        assert_eq!(Growth::polynomial(1.0, 2.0).to_string(), "n^2");
        assert_eq!(Growth::new(1.0, 1.0, 2).to_string(), "n log^2 n");
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_coefficient_rejected() {
        let _ = Growth::new(-1.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn eval_is_monotone_in_n(c in 0.1f64..10.0, k in 0.0f64..3.0, j in 0u32..3,
                                 n in 2.0f64..1e6) {
            let f = Growth::new(c, k, j);
            prop_assert!(f.eval(n * 2.0) >= f.eval(n));
        }

        #[test]
        fn scale_is_linear(c in 0.1f64..10.0, k in 0.0f64..3.0, n in 1.0f64..1e5,
                           factor in 0.1f64..10.0) {
            let f = Growth::polynomial(c, k);
            let lhs = f.scale(factor).eval(n);
            let rhs = f.eval(n) * factor;
            prop_assert!((lhs - rhs).abs() <= 1e-9 * rhs.abs().max(1.0));
        }
    }
}
