//! Dependency DAGs, antichain decompositions and speedup bounds (§4.3, §4.6).
//!
//! The paper reduces parallel dynamic programming to evaluating the
//! dependency DAG of the recurrence (Eq. 6): subproblems in an antichain of
//! the dependency poset are independent and can be computed simultaneously,
//! and by the dual of Dilworth's theorem (Mirsky's theorem) the poset can be
//! partitioned into exactly `L` antichains where `L` is the length of the
//! longest chain.  [`Dag::levels`] computes that partition (cell `v` goes to
//! level = longest path ending at `v`), [`Dag::longest_chain`] the critical
//! path, and [`Dag::max_speedup`] the Brent-style bound
//! `speedup ≤ work / max(chain, work/p)` that §4.6 appeals to.

/// A directed acyclic graph over vertices `0..n`, stored as forward
/// adjacency lists.  Edge `u → v` means "`v` depends on `u`", i.e. `u` must
/// be computed before `v` (the *reversed* dependency graph of §4.4, which is
/// the order of computation).
#[derive(Debug, Clone, Default)]
pub struct Dag {
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

/// The antichain (Mirsky) decomposition of a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelDecomposition {
    /// `level[v]` = length of the longest path ending at `v` (0-based).
    pub level: Vec<usize>,
    /// The vertices of each level; level `k` is an antichain.
    pub antichains: Vec<Vec<usize>>,
}

impl Dag {
    /// Create a DAG with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Dag {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the DAG has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Add the edge `u → v` ("v depends on u").
    ///
    /// Panics when either endpoint is out of range or on a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        assert_ne!(u, v, "self-loops are not allowed in a dependency DAG");
        self.adj[u].push(v);
        self.edge_count += 1;
    }

    /// Successors of `u` (vertices that depend on `u`).
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// In-degree of every vertex (number of dependencies).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.len()];
        for targets in &self.adj {
            for &v in targets {
                deg[v] += 1;
            }
        }
        deg
    }

    /// Kahn topological sort; `None` when the graph contains a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut deg = self.in_degrees();
        let mut queue: std::collections::VecDeque<usize> = deg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(v, _)| v)
            .collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.adj[u] {
                deg[v] -= 1;
                if deg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if order.len() == self.len() {
            Some(order)
        } else {
            None
        }
    }

    /// `true` when the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// The Mirsky antichain decomposition: vertex `v` is assigned to the
    /// level equal to the length of the longest path ending at `v`.
    ///
    /// Panics if the graph contains a cycle.
    pub fn levels(&self) -> LevelDecomposition {
        let order = self
            .topological_order()
            .expect("levels() requires an acyclic graph");
        let mut level = vec![0usize; self.len()];
        for &u in &order {
            for &v in &self.adj[u] {
                level[v] = level[v].max(level[u] + 1);
            }
        }
        let height = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut antichains = vec![Vec::new(); height];
        for (v, &l) in level.iter().enumerate() {
            antichains[l].push(v);
        }
        LevelDecomposition { level, antichains }
    }

    /// Length of the longest chain (number of vertices on the longest path).
    /// Zero for an empty graph.
    pub fn longest_chain(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.levels().antichains.len()
    }

    /// Total work assuming unit cost per vertex.
    pub fn work(&self) -> usize {
        self.len()
    }

    /// Greedy (Brent) bound on the parallel time with `p` processors and unit
    /// vertex costs: processing the antichains level by level takes
    /// `Σ_k ⌈|A_k| / p⌉` steps.
    pub fn greedy_schedule_length(&self, p: usize) -> usize {
        assert!(p >= 1, "at least one processor is required");
        self.levels()
            .antichains
            .iter()
            .map(|a| a.len().div_ceil(p))
            .sum()
    }

    /// Upper bound on the speedup achievable with `p` processors:
    /// `work / max(longest_chain, work / p)`.
    pub fn max_speedup(&self, p: usize) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        let work = self.work() as f64;
        let chain = self.longest_chain() as f64;
        work / chain.max(work / p as f64)
    }

    /// Average antichain width `work / longest_chain`, the asymptotic ceiling
    /// on useful parallelism that §4.6 discusses.
    pub fn average_width(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.work() as f64 / self.longest_chain() as f64
    }

    /// Maximum antichain width over all levels of the decomposition.
    pub fn max_width(&self) -> usize {
        self.levels()
            .antichains
            .iter()
            .map(|a| a.len())
            .max()
            .unwrap_or(0)
    }
}

impl LevelDecomposition {
    /// Number of antichains (= longest chain length, by Mirsky's theorem).
    pub fn height(&self) -> usize {
        self.antichains.len()
    }

    /// Check that no level contains two comparable elements, i.e. that every
    /// level really is an antichain with respect to `dag`.
    pub fn validate(&self, dag: &Dag) -> bool {
        for (u, &lu) in self.level.iter().enumerate() {
            for &v in dag.successors(u) {
                if self.level[v] == lu {
                    return false;
                }
            }
        }
        true
    }
}

/// Build the dependency DAG of a rectangular 2-D dynamic-programming table
/// where cell `(i, j)` depends on its north, west and north-west neighbours
/// (the edit-distance / LCS pattern).  Returned vertex ids are `i * cols + j`.
pub fn grid_dag(rows: usize, cols: usize) -> Dag {
    let mut dag = Dag::new(rows * cols);
    let id = |i: usize, j: usize| i * cols + j;
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                dag.add_edge(id(i, j), id(i + 1, j));
            }
            if j + 1 < cols {
                dag.add_edge(id(i, j), id(i, j + 1));
            }
            if i + 1 < rows && j + 1 < cols {
                dag.add_edge(id(i, j), id(i + 1, j + 1));
            }
        }
    }
    dag
}

/// Build the dependency DAG of a one-dimensional chain DP of length `n`
/// (cell `i+1` depends on cell `i`) — the paper's example of a DAG that is a
/// path and therefore admits **no** speedup (§4.3).
pub fn chain_dag(n: usize) -> Dag {
    let mut dag = Dag::new(n);
    for i in 1..n {
        dag.add_edge(i - 1, i);
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_dag() {
        let dag = Dag::new(0);
        assert!(dag.is_empty());
        assert_eq!(dag.longest_chain(), 0);
        assert_eq!(dag.max_speedup(4), 1.0);
    }

    #[test]
    fn single_vertex() {
        let dag = Dag::new(1);
        assert_eq!(dag.longest_chain(), 1);
        assert_eq!(dag.greedy_schedule_length(4), 1);
        assert_eq!(dag.max_width(), 1);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let dag = chain_dag(100);
        assert_eq!(dag.longest_chain(), 100);
        assert_eq!(dag.max_width(), 1);
        assert!((dag.max_speedup(8) - 1.0).abs() < 1e-12);
        assert_eq!(dag.greedy_schedule_length(8), 100);
    }

    #[test]
    fn independent_vertices_are_one_antichain() {
        let dag = Dag::new(64);
        assert_eq!(dag.longest_chain(), 1);
        assert_eq!(dag.max_width(), 64);
        assert!((dag.max_speedup(8) - 8.0).abs() < 1e-12);
        assert_eq!(dag.greedy_schedule_length(8), 8);
    }

    #[test]
    fn diamond_dag_levels() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1);
        dag.add_edge(0, 2);
        dag.add_edge(1, 3);
        dag.add_edge(2, 3);
        let levels = dag.levels();
        assert_eq!(levels.level, vec![0, 1, 1, 2]);
        assert_eq!(levels.antichains, vec![vec![0], vec![1, 2], vec![3]]);
        assert!(levels.validate(&dag));
        assert_eq!(dag.longest_chain(), 3);
    }

    #[test]
    fn topological_order_respects_edges() {
        let dag = grid_dag(4, 5);
        let order = dag.topological_order().unwrap();
        let mut pos = vec![0usize; dag.len()];
        for (idx, &v) in order.iter().enumerate() {
            pos[v] = idx;
        }
        for u in 0..dag.len() {
            for &v in dag.successors(u) {
                assert!(pos[u] < pos[v]);
            }
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut dag = Dag::new(3);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        dag.add_edge(2, 0);
        assert!(!dag.is_acyclic());
        assert!(dag.topological_order().is_none());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut dag = Dag::new(2);
        dag.add_edge(1, 1);
    }

    #[test]
    fn grid_dag_diagonal_structure() {
        // An m×m grid with N/W/NW dependencies has longest chain 2m − 1 …
        let dag = grid_dag(8, 8);
        assert_eq!(dag.longest_chain(), 15);
        // … and its widest antichain is the main anti-diagonal.
        assert_eq!(dag.max_width(), 8);
        assert!(dag.levels().validate(&dag));
    }

    #[test]
    fn grid_dag_speedup_grows_with_p_up_to_width() {
        let dag = grid_dag(64, 64);
        let s2 = dag.max_speedup(2);
        let s4 = dag.max_speedup(4);
        let s8 = dag.max_speedup(8);
        assert!(s2 > 1.9 && s2 <= 2.0);
        assert!(s4 > 3.8 && s4 <= 4.0);
        assert!(s8 > 7.0 && s8 <= 8.0);
    }

    #[test]
    fn mirsky_height_equals_longest_chain_on_grid() {
        for (r, c) in [(1, 1), (3, 5), (6, 2), (10, 10)] {
            let dag = grid_dag(r, c);
            assert_eq!(dag.levels().height(), r + c - 1);
        }
    }

    #[test]
    fn greedy_schedule_bounded_by_brent() {
        let dag = grid_dag(32, 32);
        for p in [1usize, 2, 4, 8, 16] {
            let greedy = dag.greedy_schedule_length(p);
            let work = dag.work();
            let chain = dag.longest_chain();
            // Brent: greedy ≤ work/p + chain.
            assert!(greedy <= work.div_ceil(p) + chain);
            assert!(greedy >= chain);
            assert!(greedy >= work.div_ceil(p));
        }
    }

    fn arbitrary_dag(n: usize, edges: &[(usize, usize)]) -> Dag {
        let mut dag = Dag::new(n);
        for &(u, v) in edges {
            let (u, v) = (u % n, v % n);
            // Orient edges from smaller to larger index: always acyclic.
            if u < v {
                dag.add_edge(u, v);
            } else if v < u {
                dag.add_edge(v, u);
            }
        }
        dag
    }

    proptest! {
        #[test]
        fn random_dags_have_valid_level_decompositions(
            n in 1usize..60,
            edges in proptest::collection::vec((0usize..60, 0usize..60), 0..200)
        ) {
            let dag = arbitrary_dag(n, &edges);
            prop_assert!(dag.is_acyclic());
            let levels = dag.levels();
            prop_assert!(levels.validate(&dag));
            // Every vertex appears in exactly one antichain.
            let total: usize = levels.antichains.iter().map(|a| a.len()).sum();
            prop_assert_eq!(total, n);
            // Mirsky: number of antichains equals the longest chain.
            prop_assert_eq!(levels.height(), dag.longest_chain());
        }

        #[test]
        fn speedup_bounds_are_consistent(
            n in 1usize..60,
            edges in proptest::collection::vec((0usize..60, 0usize..60), 0..200),
            p in 1usize..16
        ) {
            let dag = arbitrary_dag(n, &edges);
            let s = dag.max_speedup(p);
            prop_assert!(s >= 1.0 - 1e-9);
            prop_assert!(s <= p as f64 + 1e-9);
            prop_assert!(s <= dag.average_width() + 1e-9);
            let greedy = dag.greedy_schedule_length(p);
            prop_assert!(greedy >= dag.longest_chain());
            prop_assert!(greedy <= dag.work().div_ceil(p) + dag.longest_chain());
        }
    }
}
