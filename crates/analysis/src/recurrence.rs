//! Divide-and-conquer recurrences and the exact evaluators behind Theorem 1.
//!
//! A recurrence `T(n) = a · T(n/b) + f(n)` (Eq. 1 in the paper) describes the
//! sequential running time of a divide-and-conquer algorithm.  Theorem 1
//! expresses the wall-clock time with `p` processors as
//!
//! ```text
//! T_p(n) = T(n / b^{log_a p}) + Σ_{i=0}^{log_a(p)−1} f(n / b^i)        (Eq. 3)
//! ```
//!
//! and the parallel-merging variant divides the merge term at level `i` by
//! the `min(a^i, p)` processors that can work on it (Eq. 5 context).  The
//! evaluators here compute those quantities *exactly* (by walking the
//! recursion levels), so experiment E7 can check that the step-accurate
//! simulator and the closed-form analysis agree.

use crate::growth::Growth;

/// A divide-and-conquer recurrence `T(n) = a·T(n/b) + f(n)` with a constant
/// cost for base cases of size at most `base_size`.
#[derive(Debug, Clone, PartialEq)]
pub struct Recurrence {
    /// Number of subproblems `a ≥ 1`.
    pub a: u32,
    /// Division factor `b > 1`.
    pub b: u32,
    /// Driving (divide + merge) cost `f(n)`.
    pub f: Growth,
    /// Size below which the problem is solved directly.
    pub base_size: usize,
    /// Cost charged for solving one base case.
    pub base_cost: f64,
}

impl Recurrence {
    /// Create a recurrence; panics when `a < 1` or `b < 2`.
    pub fn new(a: u32, b: u32, f: Growth) -> Self {
        assert!(a >= 1, "a must be at least 1");
        assert!(b >= 2, "b must be at least 2");
        Recurrence {
            a,
            b,
            f,
            base_size: 1,
            base_cost: 1.0,
        }
    }

    /// Set the base-case size (default 1).
    pub fn with_base_size(mut self, base_size: usize) -> Self {
        assert!(base_size >= 1, "base size must be at least 1");
        self.base_size = base_size;
        self
    }

    /// Set the base-case cost (default 1.0).
    pub fn with_base_cost(mut self, base_cost: f64) -> Self {
        self.base_cost = base_cost;
        self
    }

    /// The critical exponent `log_b a`.
    pub fn critical_exponent(&self) -> f64 {
        (self.a as f64).ln() / (self.b as f64).ln()
    }

    /// Number of recursion levels before the subproblem size drops to the
    /// base size: the smallest `d` with `n / b^d ≤ base_size`.
    pub fn depth(&self, n: usize) -> u32 {
        let mut d = 0u32;
        let mut size = n as f64;
        let b = self.b as f64;
        while size > self.base_size as f64 {
            size /= b;
            d += 1;
        }
        d
    }

    /// `⌊log_a p⌋`, the recursion depth at which the number of subproblems
    /// first reaches the processor count (Figure 2).  Returns 0 when `a = 1`
    /// or `p ≤ 1`.
    pub fn parallel_depth(&self, p: usize) -> u32 {
        if self.a <= 1 || p <= 1 {
            return 0;
        }
        let mut depth = 0u32;
        let mut subproblems = 1usize;
        while subproblems.saturating_mul(self.a as usize) <= p {
            subproblems *= self.a as usize;
            depth += 1;
        }
        depth
    }

    /// Size of the subproblem that is executed sequentially once the
    /// processors are exhausted: `n / b^{log_a p}` (Figure 2).
    pub fn sequential_subproblem_size(&self, n: usize, p: usize) -> f64 {
        let k = self.parallel_depth(p);
        n as f64 / (self.b as f64).powi(k as i32)
    }

    /// Exact sequential time `T(n)`: the full recursion-tree sum
    /// `Σ_i a^i · f(n/b^i)` plus the base-case contributions.
    pub fn sequential_time(&self, n: usize) -> f64 {
        if n <= self.base_size {
            return self.base_cost;
        }
        let depth = self.depth(n);
        let mut total = 0.0;
        let mut size = n as f64;
        let mut count = 1.0;
        for _ in 0..depth {
            total += count * self.f.eval(size);
            size /= self.b as f64;
            count *= self.a as f64;
        }
        total += count * self.base_cost;
        total
    }

    /// The parallel wall-clock time of Eq. 3 (sequential merging):
    /// `T_p(n) = T(n / b^{log_a p}) + Σ_{i=0}^{log_a(p)−1} f(n/b^i)`.
    pub fn parallel_time_eq3(&self, n: usize, p: usize) -> f64 {
        if n <= self.base_size || p <= 1 {
            return self.sequential_time(n);
        }
        let k = self.parallel_depth(p);
        let b = self.b as f64;
        let sequential_part = self.sequential_time((n as f64 / b.powi(k as i32)).ceil() as usize);
        let mut merge_part = 0.0;
        let mut size = n as f64;
        for _ in 0..k {
            merge_part += self.f.eval(size);
            size /= b;
        }
        sequential_part + merge_part
    }

    /// The parallel wall-clock time when the merge at every level is itself
    /// parallelised with optimal speedup (Eq. 5 context): the level-`i` merge
    /// costs `(a^i / p) · f(n/b^i)` spread over the processors that exist at
    /// that level, i.e. `f(n/b^i) · a^i / min(a^i·…, p)`; above the parallel
    /// depth every processor works on its own subtree so the sequential
    /// evaluator already accounts for those merges.
    pub fn parallel_time_parallel_merge(&self, n: usize, p: usize) -> f64 {
        if n <= self.base_size || p <= 1 {
            return self.sequential_time(n);
        }
        let k = self.parallel_depth(p);
        let b = self.b as f64;
        let sequential_part = self.sequential_time((n as f64 / b.powi(k as i32)).ceil() as usize);
        let mut merge_part = 0.0;
        let mut size = n as f64;
        let mut level_tasks = 1.0;
        for _ in 0..k {
            // a^i merge tasks of cost f(n/b^i) shared among p processors.
            let total_level_cost = level_tasks * self.f.eval(size);
            merge_part += total_level_cost / (p as f64).min(level_tasks.max(1.0) * p as f64);
            size /= b;
            level_tasks *= self.a as f64;
        }
        sequential_part + merge_part
    }

    /// Predicted speedup `T(n) / T_p(n)` under Eq. 3.
    pub fn predicted_speedup(&self, n: usize, p: usize) -> f64 {
        self.sequential_time(n) / self.parallel_time_eq3(n, p)
    }

    /// Predicted speedup when merging is parallelised (Eq. 5).
    pub fn predicted_speedup_parallel_merge(&self, n: usize, p: usize) -> f64 {
        self.sequential_time(n) / self.parallel_time_parallel_merge(n, p)
    }
}

/// Recurrences for the classic algorithms used throughout the paper and the
/// experiment harness.
pub mod catalog {
    use super::*;

    /// Mergesort: `T(n) = 2·T(n/2) + n` (Master case 2).
    pub fn mergesort() -> Recurrence {
        Recurrence::new(2, 2, Growth::linear(1.0))
    }

    /// Karatsuba multiplication: `T(n) = 3·T(n/2) + n` (Master case 1).
    pub fn karatsuba() -> Recurrence {
        Recurrence::new(3, 2, Growth::linear(1.0))
    }

    /// Strassen matrix multiplication: `T(n) = 7·T(n/2) + n²` (Master case 1).
    pub fn strassen() -> Recurrence {
        Recurrence::new(7, 2, Growth::polynomial(1.0, 2.0))
    }

    /// Maximum subarray / closest pair style: `T(n) = 2·T(n/2) + n` (case 2).
    pub fn max_subarray() -> Recurrence {
        Recurrence::new(2, 2, Growth::linear(1.0))
    }

    /// A dominant-merge workload: `T(n) = 2·T(n/2) + n²` (Master case 3).
    pub fn quadratic_merge() -> Recurrence {
        Recurrence::new(2, 2, Growth::polynomial(1.0, 2.0))
    }

    /// Four-way polynomial multiplication: `T(n) = 4·T(n/2) + n` (case 1).
    pub fn poly_mul_four_way() -> Recurrence {
        Recurrence::new(4, 2, Growth::linear(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::catalog;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn critical_exponent_matches_known_values() {
        assert!((catalog::mergesort().critical_exponent() - 1.0).abs() < 1e-12);
        assert!((catalog::karatsuba().critical_exponent() - 1.585).abs() < 1e-3);
        assert!((catalog::strassen().critical_exponent() - 2.807).abs() < 1e-3);
    }

    #[test]
    fn depth_counts_levels() {
        let r = catalog::mergesort();
        assert_eq!(r.depth(1), 0);
        assert_eq!(r.depth(2), 1);
        assert_eq!(r.depth(1024), 10);
        let r3 = Recurrence::new(2, 3, Growth::linear(1.0));
        assert_eq!(r3.depth(27), 3);
    }

    #[test]
    fn parallel_depth_is_floor_log_a_p() {
        let ms = catalog::mergesort();
        assert_eq!(ms.parallel_depth(1), 0);
        assert_eq!(ms.parallel_depth(2), 1);
        assert_eq!(ms.parallel_depth(3), 1);
        assert_eq!(ms.parallel_depth(4), 2);
        assert_eq!(ms.parallel_depth(8), 3);
        let strassen = catalog::strassen();
        assert_eq!(strassen.parallel_depth(7), 1);
        assert_eq!(strassen.parallel_depth(48), 1);
        assert_eq!(strassen.parallel_depth(49), 2);
    }

    #[test]
    fn sequential_time_mergesort_is_n_log_n_like() {
        let r = catalog::mergesort();
        // T(n) = n log2 n + n (base cost 1 per leaf).
        let t = r.sequential_time(1024);
        assert!((t - (1024.0 * 10.0 + 1024.0)).abs() < 1e-6);
    }

    #[test]
    fn sequential_time_base_case() {
        let r = catalog::mergesort().with_base_cost(5.0);
        assert_eq!(r.sequential_time(1), 5.0);
    }

    #[test]
    fn eq3_matches_hand_computation_for_mergesort() {
        // n = 1024, p = 4: T_p = T(256) + f(1024) + f(512)
        let r = catalog::mergesort();
        let expected = r.sequential_time(256) + 1024.0 + 512.0;
        assert!((r.parallel_time_eq3(1024, 4) - expected).abs() < 1e-9);
    }

    #[test]
    fn eq3_with_one_processor_is_sequential() {
        let r = catalog::karatsuba();
        assert_eq!(r.parallel_time_eq3(4096, 1), r.sequential_time(4096));
    }

    #[test]
    fn case1_and_case2_predict_near_linear_speedup() {
        // Eq. 3 uses ⌊log_a p⌋ levels of parallel recursion, so the cleanest
        // check is at processor counts that are powers of a.
        let configs: [(Recurrence, &str, [usize; 2]); 3] = [
            (catalog::karatsuba(), "karatsuba", [3, 9]),
            (catalog::strassen(), "strassen", [7, 49]),
            (catalog::mergesort(), "mergesort", [4, 8]),
        ];
        for (r, label, ps) in configs {
            let n = 1 << 20;
            for p in ps {
                let s = r.predicted_speedup(n, p);
                // The paper promises O(T/p); allow generous slack for the
                // lower-order merge terms at moderate n.
                assert!(
                    s > 0.5 * p as f64,
                    "{label}: speedup {s} too low for p = {p}"
                );
                assert!(s <= p as f64 + 1e-6, "{label}: speedup cannot exceed p");
            }
        }
    }

    #[test]
    fn case3_sequential_merge_has_no_speedup() {
        let r = catalog::quadratic_merge();
        let n = 1 << 14;
        let s = r.predicted_speedup(n, 8);
        // T_p is dominated by f(n) = n², so speedup tends to T(n)/f(n) ≈ 2.
        assert!(
            s < 2.5,
            "case 3 speedup should be bounded by a constant, got {s}"
        );
    }

    #[test]
    fn case3_parallel_merge_restores_speedup() {
        let r = catalog::quadratic_merge();
        let n = 1 << 14;
        for p in [2usize, 4, 8] {
            let s = r.predicted_speedup_parallel_merge(n, p);
            assert!(
                s > 0.6 * p as f64,
                "parallel merging should give Θ(f(n)/p); got {s} for p = {p}"
            );
        }
    }

    #[test]
    fn sequential_subproblem_size_matches_figure2() {
        let r = catalog::mergesort();
        assert!((r.sequential_subproblem_size(1024, 4) - 256.0).abs() < 1e-9);
        assert!((r.sequential_subproblem_size(1024, 8) - 128.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "b must be at least 2")]
    fn rejects_b_less_than_two() {
        let _ = Recurrence::new(2, 1, Growth::linear(1.0));
    }

    proptest! {
        #[test]
        fn parallel_time_never_exceeds_sequential(n in 2usize..100_000, p in 1usize..64) {
            let r = catalog::mergesort();
            prop_assert!(r.parallel_time_eq3(n, p) <= r.sequential_time(n) + 1e-6);
        }

        #[test]
        fn parallel_merge_never_slower_than_sequential_merge(n in 2usize..100_000, p in 1usize..64) {
            let r = catalog::quadratic_merge();
            prop_assert!(
                r.parallel_time_parallel_merge(n, p) <= r.parallel_time_eq3(n, p) + 1e-6
            );
        }

        #[test]
        fn speedup_bounded_by_p(n in 16usize..1_000_000, p in 1usize..64) {
            for r in [catalog::mergesort(), catalog::karatsuba(), catalog::strassen()] {
                let s = r.predicted_speedup(n, p);
                prop_assert!(s <= p as f64 + 1e-6);
                prop_assert!(s >= 1.0 - 1e-6);
            }
        }

        #[test]
        fn depth_times_b_covers_n(n in 1usize..1_000_000) {
            let r = catalog::mergesort();
            let d = r.depth(n);
            prop_assert!((n as f64) / 2f64.powi(d as i32) <= 1.0 + 1e-9);
        }
    }
}
