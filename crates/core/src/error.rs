//! Error type shared by the LoPRAM crates.

use std::fmt;

/// Errors produced while configuring or driving the LoPRAM runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A pool or machine was requested with zero processors.
    ZeroProcessors,
    /// The requested processor count exceeds the configured hard cap.
    TooManyProcessors {
        /// Number of processors that was requested.
        requested: usize,
        /// Maximum number of processors permitted by the configuration.
        limit: usize,
    },
    /// An input did not satisfy a documented precondition.
    InvalidInput(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroProcessors => write!(f, "a LoPRAM must have at least one processor"),
            Error::TooManyProcessors { requested, limit } => write!(
                f,
                "requested {requested} processors but the configured limit is {limit}"
            ),
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the LoPRAM crates.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_processors() {
        assert_eq!(
            Error::ZeroProcessors.to_string(),
            "a LoPRAM must have at least one processor"
        );
    }

    #[test]
    fn display_too_many() {
        let e = Error::TooManyProcessors {
            requested: 9,
            limit: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn display_invalid_input() {
        let e = Error::InvalidInput("n must be a power of two".into());
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
