//! Cooperative cancellation for pal-thread computations.
//!
//! A [`CancelToken`] is a shared flag (plus an optional deadline) that a
//! running computation polls at its natural yield points — every
//! [`PalPool::join`](super::PalPool::join) /
//! [`PalScope::spawn`](super::PalScope::spawn) fork boundary and every
//! blocked-pass chunk boundary of the data-parallel primitives.  When the
//! token fires, the poll unwinds the computation with a private payload
//! ([`CancelUnwind`]) that rides the pool's existing panic-propagation
//! machinery: every in-flight pal-thread of the computation unwinds at its
//! own next checkpoint, arena guards and depth counters restore via their
//! usual RAII drops, and [`run_cancellable`] catches the payload at the
//! entry point and turns it back into a [`CancelReason`].  Because the
//! checkpoints sit at fork and chunk granularity, a fired token costs at
//! most one grain of extra work per worker before the unwind starts —
//! the O(grain) cancellation bound the serving layer relies on.
//!
//! # Ambient propagation
//!
//! The active token travels in a thread-local, not in closure captures, so
//! the runtime's hot paths stay signature-compatible and zero-cost when no
//! token is installed: [`checkpoint`] is one thread-local flag read plus a
//! predictable branch.  [`run_cancellable`] installs the token on the
//! calling thread; the pool re-installs it on whichever worker executes a
//! *scheduled* fork (stolen pal-threads carry their token with them, like
//! they carry their recursion depth).  Crucially the pool installs the
//! fork's ambient state even when it is "no token": a help-first joining
//! worker can pick up an unrelated pending pal-thread mid-wait, and that
//! pal-thread must be checked against *its* computation's token — or
//! nothing — never against the token of the computation the worker happens
//! to be parked in.
//!
//! # Deadlines
//!
//! A token built with [`CancelToken::with_deadline`] self-fires: there is
//! no reaper thread; instead every poll checks the fired flag, and every
//! [`DEADLINE_STRIDE`]-th poll on a deadline-carrying token also reads the
//! monotonic clock.  Detection latency is therefore bounded by
//! `DEADLINE_STRIDE` checkpoints of work on the polling worker — still
//! O(grain)-ish in practice — while the hot path never pays a syscall-ish
//! `Instant::now()` per fork.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll stride for the deadline clock check: a deadline-carrying token
/// reads `Instant::now()` on every `DEADLINE_STRIDE`-th checkpoint (the
/// explicit polls of [`CancelToken::poll_now`] always read it).
pub const DEADLINE_STRIDE: u32 = 64;

/// Why a cancellable computation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client abandoned the job, the
    /// service shut down, a fault plan fired, …).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Cancelled => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The unwind payload [`checkpoint`] raises when the ambient token has
/// fired.
///
/// It deliberately does **not** go through `panic!`, so the global panic
/// hook never prints a backtrace for a routine cancellation; the payload
/// still propagates through `catch_unwind`-based machinery (the pool's
/// join/scope panic plumbing) exactly like a panic payload would.
/// [`run_cancellable`] downcasts it back at the computation's entry
/// point; an escaping `CancelUnwind` outside a cancellable region means a
/// checkpoint fired with no [`run_cancellable`] frame below it — a bug in
/// the caller's nesting, surfaced loudly.
#[derive(Debug)]
pub struct CancelUnwind {
    /// Why the computation unwound.
    pub reason: CancelReason,
}

/// `fired` encoding: still live.
const LIVE: u8 = 0;
/// `fired` encoding: [`CancelToken::cancel`] called.
const CANCELLED: u8 = 1;
/// `fired` encoding: deadline observed blown.
const DEADLINE: u8 = 2;

#[derive(Debug)]
struct Inner {
    /// `LIVE` / `CANCELLED` / `DEADLINE`; writes race benignly (first
    /// CAS winner decides the reason).
    fired: AtomicU8,
    /// Absolute deadline, fixed at construction.
    deadline: Option<Instant>,
    /// Checkpoint poll counter, used only to stride the deadline clock
    /// reads.
    polls: AtomicU32,
}

/// A shared cancellation flag with an optional deadline; see the
/// [module docs](self) for the propagation and unwind contract.
///
/// Cloning is cheap (an `Arc` bump) and all clones observe the same
/// state: typically one clone lives with the client (to call
/// [`cancel`](CancelToken::cancel)) and one is installed in the
/// computation via [`run_cancellable`].
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline: fires only via
    /// [`cancel`](CancelToken::cancel).
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicU8::new(LIVE),
                deadline: None,
                polls: AtomicU32::new(0),
            }),
        }
    }

    /// A token that self-fires once `deadline` of wall time has elapsed
    /// from now (checked lazily at checkpoints — see the module docs for
    /// the detection-latency bound).
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken::with_deadline_at(Instant::now() + deadline)
    }

    /// A token that self-fires at the absolute instant `deadline`.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                fired: AtomicU8::new(LIVE),
                deadline: Some(deadline),
                polls: AtomicU32::new(0),
            }),
        }
    }

    /// Fire the token: every computation polling it unwinds at its next
    /// checkpoint with [`CancelReason::Cancelled`].  Idempotent; a token
    /// that already fired (either way) keeps its first reason.
    pub fn cancel(&self) {
        let _ = self.inner.fired.compare_exchange(
            LIVE,
            CANCELLED,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The reason this token has fired, if it has.  Does not read the
    /// clock — a blown-but-unobserved deadline reports `None` until some
    /// poll observes it ([`poll_now`](CancelToken::poll_now) to force).
    pub fn fired(&self) -> Option<CancelReason> {
        match self.inner.fired.load(Ordering::Relaxed) {
            LIVE => None,
            CANCELLED => Some(CancelReason::Cancelled),
            _ => Some(CancelReason::DeadlineExceeded),
        }
    }

    /// The token's absolute deadline, if it carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Poll including an **unstrided** deadline clock read: the check a
    /// computation's entry/exit points use, where one `Instant::now()` is
    /// cheap relative to the work being bracketed.
    pub fn poll_now(&self) -> Option<CancelReason> {
        if self.inner.deadline.is_some() {
            self.poll_at(Instant::now())
        } else {
            self.fired()
        }
    }

    /// [`poll_now`](CancelToken::poll_now) against a caller-supplied
    /// clock reading: the deadline fires iff `now >= deadline`.
    ///
    /// This is the primitive for single-read dispatch paths: a caller
    /// that must make several timing decisions about one event (queue
    /// wait, deadline verdict, start stamp) takes **one** `Instant::now()`
    /// and derives all of them from it, instead of racing a sequence of
    /// clock reads against the deadline — where an earlier read can pass
    /// the check while a later read is already past it (the
    /// `lopram-serve` dispatch bug this replaced).
    pub fn poll_at(&self, now: Instant) -> Option<CancelReason> {
        if let Some(reason) = self.fired() {
            return Some(reason);
        }
        if let Some(deadline) = self.inner.deadline {
            if now >= deadline {
                let _ = self.inner.fired.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                // Re-read: a concurrent cancel() may have won the race and
                // its reason takes precedence.
                return self.fired();
            }
        }
        None
    }

    /// The strided checkpoint poll: always reads the fired flag, reads
    /// the clock only every [`DEADLINE_STRIDE`]-th call on a
    /// deadline-carrying token.
    fn poll(&self) -> Option<CancelReason> {
        if let Some(reason) = self.fired() {
            return Some(reason);
        }
        if self.inner.deadline.is_some() {
            let n = self.inner.polls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(DEADLINE_STRIDE) {
                return self.poll_now();
            }
        }
        None
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// Fast mirror of `AMBIENT.is_some()`: the only state [`checkpoint`]
    /// touches when no token is installed.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// The token of the computation currently running on this thread.
    static AMBIENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// RAII restore of the previous ambient token (also on unwind).
struct RestoreAmbient(Option<CancelToken>);

impl Drop for RestoreAmbient {
    fn drop(&mut self) {
        let prev = self.0.take();
        ACTIVE.with(|a| a.set(prev.is_some()));
        AMBIENT.with(|t| *t.borrow_mut() = prev);
    }
}

/// Run `f` with `token` installed as this thread's ambient cancellation
/// state, restoring the previous state afterwards (also on unwind).
///
/// `None` is installed *actively*: it clears any token the thread was
/// carrying, which is exactly what a scheduled pal-thread of an
/// un-cancellable computation needs when it runs on a worker that was
/// mid-checkpoint in a cancellable one (help-first joins make that
/// interleaving routine).
pub fn with_ambient<R>(token: Option<CancelToken>, f: impl FnOnce() -> R) -> R {
    let prev = AMBIENT.with(|t| t.borrow_mut().take());
    ACTIVE.with(|a| a.set(token.is_some()));
    AMBIENT.with(|t| *t.borrow_mut() = token);
    let _restore = RestoreAmbient(prev);
    f()
}

/// Clone of this thread's ambient token (what the pool attaches to a
/// scheduled fork so a thief inherits it).
pub(super) fn ambient() -> Option<CancelToken> {
    if !ACTIVE.with(Cell::get) {
        return None;
    }
    AMBIENT.with(|t| t.borrow().clone())
}

/// Poll the ambient cancellation token, unwinding with [`CancelUnwind`]
/// if it has fired.
///
/// This is the hook the runtime calls at every fork boundary and every
/// blocked-pass chunk boundary.  With no ambient token it is one
/// thread-local flag read and a never-taken branch; algorithm code with
/// natural sequential phases (a level loop, a pointer-jumping round) may
/// also call it directly to tighten its own cancellation latency.
#[inline]
pub fn checkpoint() {
    if ACTIVE.with(Cell::get) {
        poll_ambient();
    }
}

#[cold]
fn poll_ambient() {
    let token = AMBIENT.with(|t| t.borrow().clone());
    if let Some(token) = token {
        if let Some(reason) = token.poll() {
            std::panic::resume_unwind(Box::new(CancelUnwind { reason }));
        }
    }
}

/// Run `f` under `token`: install it as the ambient token, catch the
/// cancellation unwind at this boundary, and report how the computation
/// ended.
///
/// Returns `Ok(result)` when `f` completes, `Err(reason)` when a
/// checkpoint observed the token fired (including a token that was
/// already fired on entry — `f` is then never called).  A genuine panic
/// in `f` is **not** caught: it propagates to the caller unchanged, so a
/// service boundary stacking `catch_unwind` outside `run_cancellable`
/// can tell "cancelled" from "crashed" without inspecting payloads.
pub fn run_cancellable<R>(token: &CancelToken, f: impl FnOnce() -> R) -> Result<R, CancelReason> {
    if let Some(reason) = token.poll_now() {
        return Err(reason);
    }
    let result = with_ambient(Some(token.clone()), || {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
    });
    match result {
        Ok(value) => Ok(value),
        Err(payload) => match payload.downcast::<CancelUnwind>() {
            Ok(unwind) => Err(unwind.reason),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let token = CancelToken::new();
        assert_eq!(token.fired(), None);
        assert_eq!(token.poll_now(), None);
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_fires_once_and_sticks() {
        let token = CancelToken::new();
        token.cancel();
        token.cancel();
        assert_eq!(token.fired(), Some(CancelReason::Cancelled));
        assert_eq!(token.poll_now(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert_eq!(clone.fired(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn elapsed_deadline_fires_on_poll_now() {
        let token = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        // fired() alone never reads the clock.
        assert_eq!(token.fired(), None);
        assert_eq!(token.poll_now(), Some(CancelReason::DeadlineExceeded));
        // …and the observation sticks.
        assert_eq!(token.fired(), Some(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn explicit_cancel_beats_later_deadline_observation() {
        let token = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.poll_now(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn run_cancellable_completes_a_live_computation() {
        let token = CancelToken::new();
        assert_eq!(run_cancellable(&token, || 41 + 1), Ok(42));
    }

    #[test]
    fn run_cancellable_short_circuits_a_fired_token() {
        let token = CancelToken::new();
        token.cancel();
        let result = run_cancellable(&token, || panic!("must not run"));
        assert_eq!(result, Err(CancelReason::Cancelled));
    }

    #[test]
    fn checkpoint_unwinds_to_the_entry_point() {
        let token = CancelToken::new();
        let result = run_cancellable(&token, || {
            token.cancel();
            checkpoint();
            unreachable!("checkpoint must unwind");
        });
        assert_eq!(result, Err(CancelReason::Cancelled));
    }

    #[test]
    fn checkpoint_outside_a_cancellable_region_is_a_noop() {
        checkpoint(); // must not unwind or panic
    }

    #[test]
    fn genuine_panics_pass_through_run_cancellable() {
        let token = CancelToken::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run_cancellable(&token, || panic!("real bug"));
        }));
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"real bug"));
    }

    #[test]
    fn ambient_restores_after_nested_regions() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let result = run_cancellable(&outer, || {
            // Inner region fires; outer must survive it untouched.
            inner.cancel();
            let r = run_cancellable(&inner, || {
                checkpoint();
                unreachable!()
            });
            assert_eq!(r, Err(CancelReason::Cancelled));
            // Back in the outer region: its token is live, checkpoints
            // pass.
            checkpoint();
            7
        });
        assert_eq!(result, Ok(7));
        assert_eq!(outer.fired(), None);
    }

    #[test]
    fn with_ambient_none_masks_an_outer_token() {
        let token = CancelToken::new();
        let result = run_cancellable(&token, || {
            token.cancel();
            // A masked region models an unrelated pal-thread scheduled
            // onto this worker: the outer fired token must not reach it.
            with_ambient(None, || {
                checkpoint();
                11
            })
        });
        // The masked body ran to completion; the checkpoint after the
        // mask is the run_cancellable-internal poll on exit — none here —
        // so the region returns Ok.
        assert_eq!(result, Ok(11));
    }

    #[test]
    fn strided_poll_eventually_observes_a_deadline() {
        let token = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        let result = run_cancellable(&token, || unreachable!("entry poll is unstrided"));
        assert_eq!(result, Err(CancelReason::DeadlineExceeded));

        // And through checkpoints alone: at most DEADLINE_STRIDE + 1 of
        // them before the clock is read.
        let token = CancelToken::with_deadline_at(Instant::now() + Duration::from_millis(5));
        let result = run_cancellable(&token, || {
            let mut spins = 0u64;
            loop {
                checkpoint();
                spins += 1;
                if spins > 200_000_000 {
                    return spins; // would mean the deadline never fired
                }
                std::hint::spin_loop();
            }
        });
        assert_eq!(result, Err(CancelReason::DeadlineExceeded));
    }
}
