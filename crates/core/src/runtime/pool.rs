//! The [`PalPool`]: the default pal-thread executor for real hardware.
//!
//! The paper's scheduler keeps pending pal-threads in an ordered tree and
//! hands them to processors "in a manner consistent with order of creation as
//! resources become available" (§3.1).  The property that actually drives
//! Theorem 1 is that a pal-thread which could not be activated at creation
//! time is still *available* to any processor that frees up later, so the `p`
//! processors end up owning one subtree each of size `n / b^{log_a p}`
//! (Figure 2).  On real hardware the standard way to obtain exactly that
//! behaviour is a bounded work-stealing pool, and that is what backs this
//! type: the workspace [`rayon`] runtime keeps exactly `p` persistent worker
//! threads, one pending-task deque per worker, and has idle workers steal
//! the **oldest** pending pal-thread first (creation order).  A forking
//! worker pushes its second child as a *pending* task, runs the first child,
//! and on return either pops the pending child back (it was never granted a
//! processor: inline, as §3.1 prescribes) or — if the child migrated — helps
//! with other pending work instead of parking.  No OS thread is ever spawned
//! per fork.
//!
//! The runtime reports every spawn-vs-inline decision and every migration
//! through [`PalPool::metrics`] ([`RunMetrics`]): `spawned`/`steals` count
//! pal-threads picked up by a processor that freed up after their creation,
//! `inlined` counts pal-threads folded into their parent.  This makes the
//! recursion cutoff depth `log_a p` of Figure 2 observable on the real pool,
//! not just on the step-accurate `lopram-sim` simulator.  The
//! eagerly-scheduled [`ThrottledPool`](crate::runtime::ThrottledPool), which
//! deliberately lacks the migration rule, is kept as the experiment-E12
//! ablation.
//!
//! # The α·log p sequential cutoff
//!
//! Figure 2's other half is a *throttle*: with only `p = O(log n)`
//! processors, forks below recursion depth `log_a p` can never be granted a
//! fresh processor — the paper's scheduler runs them sequentially in their
//! parent.  Handing those forks to the work-stealing runtime anyway would
//! pay a deque push/pop per fork for jobs no processor will ever take, at
//! every one of the `Θ(n)` nodes of the recursion tree.  `PalPool`
//! therefore tracks the pal-thread recursion depth in a thread-local
//! counter (carried across steals, so a migrated subtree keeps its depth)
//! and, once the depth reaches `⌈α·log₂ p⌉` ([`cutoff_levels`]), runs
//! [`join`](PalPool::join) and [`PalScope::spawn`] as plain sequential
//! calls: no job, no latch, no scheduler at all.  Each elided fork is
//! counted in [`RunMetrics::elided`], so
//! `spawned + inlined + elided` still accounts for every creation point.
//!
//! The default `α = 2` keeps twice the exact binary cutoff depth, leaving
//! pending pal-threads for migration even on unbalanced trees; tune it with
//! [`PalPoolBuilder::alpha`] or disable the throttle entirely with
//! [`PalPoolBuilder::no_cutoff`] (the scheduler-ablation experiments do, to
//! measure the raw runtime).

use std::cell::Cell;
use std::ops::Range;

use parking_lot::Mutex;

use super::cancel;
use super::trace::{self, DagTrace, TraceConfig, TraceEvent, TraceState};
use super::workspace::Workspace;
use crate::error::{Error, Result};
use crate::metrics::{MetricsSnapshot, RunMetrics};
use crate::policy::{
    cutoff_levels, grain_size, ProcessorPolicy, DEFAULT_GRAIN, DEFAULT_STEAL_GRAIN,
};

/// Default headroom factor `α` for the sequential cutoff `⌈α·log₂ p⌉`.
pub const DEFAULT_CUTOFF_ALPHA: f64 = 2.0;

/// Sentinel stored in [`PalPool::cutoff`] when the depth throttle is
/// disabled (no real cutoff can reach it: depths are far below
/// `usize::MAX`).
const CUTOFF_DISABLED: usize = usize::MAX;

/// How a pool blocks its data-parallel primitives (see
/// [`PalPool::chunk_count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Grain {
    /// The full [`grain_size`] policy: cost-model floor of `min` elements
    /// per block, steal-informed `4p`→`8p` oversubscription on large
    /// inputs.
    Adaptive { min: usize },
    /// Pinned policy: at most `4p` blocks of at least `min` elements, no
    /// oversubscription adaptivity.  `min = 1` is exactly the legacy
    /// fixed-`4p` blocking.
    Fixed { min: usize },
}

impl Grain {
    fn chunks(self, len: usize, p: usize) -> usize {
        match self {
            Grain::Adaptive { min } => grain_size(len, p, min, DEFAULT_STEAL_GRAIN),
            Grain::Fixed { min } => grain_size(len, p, min, 0),
        }
    }
}

/// Source of unique pool identities for the thread-local depth counter
/// (0 is reserved for "no pool").
static POOL_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Thread-local pal-thread context: which pool's computation this thread
/// is currently inside, at which recursion depth, and — when that pool is
/// tracing — the running pal-thread's trace node id and the thread's
/// logical (Lamport) clock.  On an untraced pool `node` and `clock` stay
/// zero and only `(pool, depth)` carry meaning, exactly the old
/// depth-counter behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PalCtx {
    /// Owning pool's identity (0: no pool).
    pool: u64,
    /// Pal-thread recursion depth.
    depth: usize,
    /// Trace node id of the running pal-thread ([`trace::ROOT_NODE`]
    /// outside any traced pal-thread).
    node: u32,
    /// Logical clock, ticked once per recorded trace event.
    clock: u64,
}

const IDLE_CTX: PalCtx = PalCtx {
    pool: 0,
    depth: 0,
    node: trace::ROOT_NODE,
    clock: 0,
};

thread_local! {
    /// Context of the pal-thread computation currently running on this
    /// thread.  Stolen jobs carry their context with them (the closure
    /// wrapper below restores it on the thief), so depth and node follow
    /// the recursion *tree*, not the OS thread.  The pool identity keeps
    /// different pools from charging their depth against each other's
    /// cutoff: a pool that finds another pool's entry here is at its own
    /// logical root (depth 0).
    static PAL_CTX: Cell<PalCtx> = const { Cell::new(IDLE_CTX) };
}

/// Current pal-thread recursion depth of pool `pool_id` on this thread
/// (0 outside any computation of that pool — including inside a
/// computation of a *different* pool, which is that pool's business, not
/// ours).
fn current_depth(pool_id: u64) -> usize {
    let ctx = PAL_CTX.with(Cell::get);
    if ctx.pool == pool_id {
        ctx.depth
    } else {
        0
    }
}

/// Trace node id of the pal-thread of pool `pool_id` running on this
/// thread ([`trace::ROOT_NODE`] outside one: the external session).
fn current_node(pool_id: u64) -> u32 {
    let ctx = PAL_CTX.with(Cell::get);
    if ctx.pool == pool_id {
        ctx.node
    } else {
        trace::ROOT_NODE
    }
}

/// Advance this thread's logical clock for pool `pool_id` past `at_least`
/// and return the new stamp.
///
/// The clock persists in the thread-local slot so consecutive top-level
/// calls from one external thread stay ordered — but only when writing
/// cannot clobber another pool's live context (the slot is this pool's or
/// idle).  Inside a different pool's computation the stamp is still
/// correct (causality flows through the fork edges), it just restarts.
fn tick_clock(pool_id: u64, at_least: u64) -> u64 {
    PAL_CTX.with(|c| {
        let ctx = c.get();
        let base = if ctx.pool == pool_id { ctx.clock } else { 0 };
        let ts = base.max(at_least) + 1;
        if ctx.pool == pool_id {
            c.set(PalCtx { clock: ts, ..ctx });
        } else if ctx.pool == 0 {
            c.set(PalCtx {
                pool: pool_id,
                depth: 0,
                node: trace::ROOT_NODE,
                clock: ts,
            });
        }
        ts
    })
}

/// Fold a child's final clock back into the forking pal-thread after a
/// join, so events the parent records next are stamped after everything
/// its children did (same persistence rule as [`tick_clock`]).
fn merge_clock(pool_id: u64, at_least: u64) {
    PAL_CTX.with(|c| {
        let ctx = c.get();
        if ctx.pool == pool_id {
            c.set(PalCtx {
                clock: ctx.clock.max(at_least),
                ..ctx
            });
        } else if ctx.pool == 0 {
            c.set(PalCtx {
                pool: pool_id,
                depth: 0,
                node: trace::ROOT_NODE,
                clock: at_least,
            });
        }
    });
}

/// RAII restore of the previous thread-local context (also on unwind).
struct Restore(PalCtx);
impl Drop for Restore {
    fn drop(&mut self) {
        PAL_CTX.with(|c| c.set(self.0));
    }
}

/// Run `f` with the thread-local context set to depth `depth` in pool
/// `pool_id`, restoring the previous entry afterwards (also on unwind).
/// The untraced fast path: node and clock stay zero.
fn with_depth<R>(pool_id: u64, depth: usize, f: impl FnOnce() -> R) -> R {
    let prev = PAL_CTX.with(|c| {
        c.replace(PalCtx {
            pool: pool_id,
            depth,
            node: trace::ROOT_NODE,
            clock: 0,
        })
    });
    let _restore = Restore(prev);
    f()
}

/// Run `f` as traced pal-thread `node` of pool `pool_id` at `depth`, with
/// the thread's clock seeded just after the creation stamp `created_ts`.
/// Returns `f`'s result and the pal-thread's final clock, which the
/// forking side folds back with [`merge_clock`] (lost on unwind — a
/// panicking child leaves no `Exit` stamp either).
fn with_task<R>(
    pool_id: u64,
    depth: usize,
    node: u32,
    created_ts: u64,
    f: impl FnOnce() -> R,
) -> (R, u64) {
    let prev = PAL_CTX.with(|c| {
        c.replace(PalCtx {
            pool: pool_id,
            depth,
            node,
            clock: created_ts,
        })
    });
    let _restore = Restore(prev);
    let result = f();
    let end = PAL_CTX.with(Cell::get).clock;
    (result, end)
}

/// Trace worker id for a per-worker log slot (`None` ⇒ external).
fn worker_id(slot: Option<usize>) -> u16 {
    slot.map_or(trace::EXTERNAL_WORKER, |i| i as u16)
}

/// A LoPRAM processor pool with `p` processors.
///
/// All parallelism in the algorithm crates flows through this type: the
/// two-way [`join`](PalPool::join) (the paper's `palthreads { a; b; }`), the
/// multi-way [`scope`](PalPool::scope) used by the dynamic-programming
/// schedulers, and the data-parallel helpers
/// [`for_each_index`](PalPool::for_each_index) /
/// [`map_reduce`](PalPool::map_reduce) used for parallel merging (Eq. 5) and
/// wavefront execution.
#[derive(Debug)]
pub struct PalPool {
    processors: usize,
    pool: rayon::ThreadPool,
    metrics: RunMetrics,
    /// Identity for the thread-local depth counter (see [`PAL_DEPTH`]).
    id: u64,
    /// Recursion depth at which forks stop creating scheduler jobs
    /// (`⌈α·log₂ p⌉`); the sentinel [`CUTOFF_DISABLED`] disables the
    /// throttle.  Atomic because [`health`](PalPool::health) recomputes it
    /// for the *effective* processor count when workers die or respawn.
    cutoff: std::sync::atomic::AtomicUsize,
    /// The throttle headroom the pool was built with; `None` when the
    /// throttle is disabled.  Kept so a degraded pool can recompute
    /// `⌈α·log₂ p_alive⌉`.
    alpha: Option<f64>,
    /// Blocking policy for the data-parallel primitives.
    grain: Grain,
    /// Reusable scratch arena for the blocked primitives and the kernels
    /// built on them (see [`workspace`](PalPool::workspace)).
    workspace: Workspace,
    /// Execution tracer ([`PalPoolBuilder::trace`]); `None` — the default
    /// — keeps every hook a single `Option` branch.
    trace: Option<TraceState>,
    /// Last pool-level counters already folded into `metrics`, so repeated
    /// [`metrics`](PalPool::metrics) calls only add the delta.
    synced: Mutex<SyncedCounters>,
}

/// Baseline of externally-sourced counters already folded into
/// [`PalPool::metrics`]; see [`PalPool::sync_metrics`].
#[derive(Debug, Default)]
struct SyncedCounters {
    pool: rayon::PoolStats,
    arena_hits: u64,
    arena_bytes: u64,
}

impl PalPool {
    /// Create a pool with exactly `p` processors and the default
    /// `⌈α·log₂ p⌉` sequential cutoff (`α = 2`).
    ///
    /// Returns [`Error::ZeroProcessors`] when `p == 0`.
    pub fn new(p: usize) -> Result<Self> {
        PalPool::with_cutoff(
            p,
            Some(DEFAULT_CUTOFF_ALPHA),
            Grain::Adaptive { min: DEFAULT_GRAIN },
            None,
            rayon::ChaosConfig::default(),
            rayon::SelfHeal::default(),
        )
    }

    /// Create a pool with exactly `p` processors, an explicit throttle
    /// (`Some(alpha)` applies the `⌈α·log₂ p⌉` cutoff, `None` disables it),
    /// an explicit blocking policy, an optional execution tracer and the
    /// runtime's chaos/self-healing configuration.
    fn with_cutoff(
        p: usize,
        alpha: Option<f64>,
        grain: Grain,
        trace: Option<TraceConfig>,
        chaos: rayon::ChaosConfig,
        self_heal: rayon::SelfHeal,
    ) -> Result<Self> {
        if p == 0 {
            return Err(Error::ZeroProcessors);
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(p)
            .thread_name(|i| format!("lopram-proc-{i}"))
            .chaos(chaos)
            .self_heal(self_heal)
            .build()
            .map_err(|e| Error::InvalidInput(format!("failed to build thread pool: {e}")))?;
        let workspace = Workspace::new();
        // Event pages are preallocated through the arena here, at build
        // time, so a capture window itself allocates nothing.
        let trace = trace.map(|cfg| TraceState::new(p, cfg, &workspace));
        Ok(PalPool {
            processors: p,
            pool,
            metrics: RunMetrics::new(),
            id: POOL_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            cutoff: std::sync::atomic::AtomicUsize::new(
                alpha.map_or(CUTOFF_DISABLED, |a| cutoff_levels(a, p)),
            ),
            alpha,
            grain,
            workspace,
            trace,
            synced: Mutex::new(SyncedCounters::default()),
        })
    }

    /// Create a single-processor pool: every pal-thread runs on the same
    /// processor, so the execution is the sequential one.
    pub fn sequential() -> Self {
        PalPool::new(1).expect("1 > 0")
    }

    /// Create a pool sized by the paper's default policy `p = O(log n)` for
    /// an input of size `n` (capped by the host's core count).
    pub fn for_input_size(n: usize) -> Self {
        let p = ProcessorPolicy::LogN.processors(n);
        PalPool::new(p).expect("policy returns >= 1")
    }

    /// Create a pool sized by an explicit [`ProcessorPolicy`].
    pub fn with_policy(n: usize, policy: ProcessorPolicy) -> Self {
        PalPool::new(policy.processors(n)).expect("policy returns >= 1")
    }

    /// Start building a pool with non-default options.
    pub fn builder() -> PalPoolBuilder {
        PalPoolBuilder::default()
    }

    /// Number of processors `p` this pool models.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Recursion depth below which forks are elided (run as plain
    /// sequential calls), or `None` when the throttle is disabled.
    ///
    /// With the default `α = 2` this is `⌈2·log₂ p⌉`; a one-processor pool
    /// reports `Some(0)` — every fork elided.
    ///
    /// The value follows the pool's *effective* width: after
    /// [`health`](PalPool::health) observes dead (or respawned) workers it
    /// recomputes `⌈α·log₂ p_alive⌉`, keeping the §3.1 throttle optimal at
    /// the degraded processor count.
    pub fn cutoff_depth(&self) -> Option<usize> {
        match self.cutoff.load(std::sync::atomic::Ordering::Relaxed) {
            CUTOFF_DISABLED => None,
            depth => Some(depth),
        }
    }

    /// Snapshot the runtime's worker liveness and heartbeats, fold any
    /// kill/respawn counters into [`metrics`](PalPool::metrics), and
    /// re-throttle: the `⌈α·log₂ p⌉` cutoff is recomputed for the number
    /// of workers actually alive (Theorem 1 is parameterized by p, so a
    /// degraded pool should be optimal-at-`p_alive`, not hang at the old
    /// width).  Respawns restore the original cutoff the same way.
    pub fn health(&self) -> rayon::PoolHealth {
        let health = self.pool.health();
        self.sync_metrics();
        if let Some(alpha) = self.alpha {
            let effective = health.alive_workers.max(1);
            self.cutoff.store(
                cutoff_levels(alpha, effective),
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        health
    }

    /// The pool's scratch arena: reusable, grow-only typed buffers the
    /// blocked primitives (and kernels built on them, like the BFS in
    /// `lopram-graph`) check out instead of allocating.
    ///
    /// See [`Workspace`] for the checkout/check-in lifecycle; the arena's
    /// hit and growth counters surface through
    /// [`metrics`](PalPool::metrics) as `arena_hits` / `arena_bytes`.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// Scheduling counters for this pool.
    ///
    /// `spawned`/`steals` count pal-threads that migrated to a processor
    /// which freed up after their creation; `inlined` counts pal-threads
    /// popped back and executed by their creator.  The counters are pulled
    /// from the work-stealing runtime on every call, so they reflect all
    /// joins and scopes completed so far.
    pub fn metrics(&self) -> &RunMetrics {
        self.sync_metrics();
        &self.metrics
    }

    /// Run `f` and return its result together with the metrics delta it
    /// produced: a [`MetricsSnapshot`] whose counters cover exactly the
    /// window of the call (snapshot-before subtracted from
    /// snapshot-after, each synced through the same delta-sync path as
    /// [`metrics`](PalPool::metrics)).
    ///
    /// This is per-*call* attribution over the pool-global counters, not
    /// isolation: the window is only attributable to `f` when no other
    /// computation uses the pool concurrently (the single-client case
    /// every current caller — kernels metering their own phases — is in).
    /// Scoped deltas nest: an outer scope's delta includes every inner
    /// scope's.  `lopram-graph` uses this to attribute the partition
    /// pass, the per-partition local kernels and the fusion tree of its
    /// partitioned kernels separately.
    pub fn scoped_metrics<R>(&self, f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
        let before = self.metrics().snapshot();
        let result = f();
        let after = self.metrics().snapshot();
        (result, after.delta_since(&before))
    }

    /// Fold the runtime's stolen/inlined/injected counters and the
    /// workspace arena's hit/growth counters into `self.metrics`, adding
    /// only what accumulated since the previous sync.
    ///
    /// Attribution: a stolen fork was granted a processor *and* migrated
    /// (`spawned` + `steals`); a pal-thread injected from outside the pool
    /// always runs on a pool processor (`spawned`) but never migrated
    /// between processors — its creator was not one — so it does not count
    /// as a steal; an inlined fork is `inlined`.
    fn sync_metrics(&self) {
        use std::sync::atomic::Ordering;
        // Read the stats *after* taking the lock: two concurrent syncs
        // reading before locking could otherwise see each other's newer
        // baseline and underflow the delta.
        let mut last = self.synced.lock();
        let now = self.pool.stats();
        let arena = self.workspace.stats();
        let stolen = now.stolen - last.pool.stolen;
        let inlined = now.inlined - last.pool.inlined;
        let injected = now.injected - last.pool.injected;
        let killed = now.killed - last.pool.killed;
        let respawned = now.respawned - last.pool.respawned;
        let arena_hits = arena.hits - last.arena_hits;
        // Wrapping: grown_bytes is a signed (two's-complement) net, so it
        // can transiently decrease; the wrapped delta re-nets correctly
        // in the metrics accumulator.
        let arena_bytes = arena.grown_bytes.wrapping_sub(last.arena_bytes);
        last.pool = now;
        last.arena_hits = arena.hits;
        last.arena_bytes = arena.grown_bytes;
        drop(last);
        self.metrics
            .spawned
            .fetch_add(stolen + injected, Ordering::Relaxed);
        self.metrics.steals.fetch_add(stolen, Ordering::Relaxed);
        self.metrics.inlined.fetch_add(inlined, Ordering::Relaxed);
        self.metrics
            .workers_killed
            .fetch_add(killed, Ordering::Relaxed);
        self.metrics
            .workers_respawned
            .fetch_add(respawned, Ordering::Relaxed);
        self.metrics
            .arena_hits
            .fetch_add(arena_hits, Ordering::Relaxed);
        // fetch_add wraps on overflow, which is exactly the two's-
        // complement accumulation the signed delta needs.
        self.metrics
            .arena_bytes
            .fetch_add(arena_bytes, Ordering::Relaxed);
    }

    /// Run two pal-threads and wait for both — the `palthreads { a(); b(); }`
    /// construct of the paper's mergesort example (§3.1).
    ///
    /// Above the cutoff depth, `b` is created as a *pending* pal-thread
    /// while `a` runs; it is executed by whichever processor gets to it
    /// first — an idle processor that steals it, or `a`'s processor inline
    /// after `a` — so the spawn-vs-inline decision is made at activation
    /// time, not creation time.  Called from outside the pool (above the
    /// cutoff), both children run on pool workers and the caller blocks.
    /// Panics in either child propagate to the caller.
    ///
    /// At recursion depth `⌈α·log₂ p⌉` and below, the fork is **elided**:
    /// `a` and `b` run as plain sequential calls in creation order (the
    /// §3.1 "no free processors ⇒ the parent runs it" rule, applied at the
    /// depth where Figure 2 guarantees no processor can ever be free for
    /// it), recorded in [`RunMetrics::elided`].  Elided children execute on
    /// the calling thread itself — on a pool whose cutoff is 0 (`p = 1`)
    /// even an external caller runs them in place rather than shipping
    /// them to a worker; the execution is sequential either way.  Panic
    /// semantics match the scheduled path: `b` runs even when `a`
    /// panicked, and `a`'s panic takes precedence.
    ///
    /// Every join is also a cancellation checkpoint
    /// ([`cancel::checkpoint`]): inside a
    /// [`run_cancellable`](cancel::run_cancellable) region with a fired
    /// token, the fork unwinds instead of forking.  Scheduled children
    /// carry the region's token with them, so a stolen subtree keeps
    /// checkpointing against the right computation.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        cancel::checkpoint();
        let depth = current_depth(self.id);
        // Relaxed: the cutoff is a scheduling hint; a fork racing a
        // degraded-width recompute may use either width, both correct.
        let elide = depth >= self.cutoff.load(std::sync::atomic::Ordering::Relaxed);
        if let Some(trace) = &self.trace {
            return self.join_traced(trace, a, b, depth, elide);
        }
        if elide {
            self.metrics.record_elided();
            // Same contract as the scheduled path: b executes even when a
            // unwinds (a stolen b always runs), and a's panic wins.
            let ra = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));
            let rb = std::panic::catch_unwind(std::panic::AssertUnwindSafe(b));
            return match (ra, rb) {
                (Ok(ra), Ok(rb)) => (ra, rb),
                (Err(payload), _) => std::panic::resume_unwind(payload),
                (_, Err(payload)) => std::panic::resume_unwind(payload),
            };
        }
        let child = depth + 1;
        let id = self.id;
        // Scheduled children re-install the forking region's ambient
        // token on whichever worker runs them — *always*, even a `None`:
        // a help-first joining worker may execute an unrelated pending
        // pal-thread mid-wait, which must not inherit this thread's
        // token by accident.
        let token = cancel::ambient();
        let token_b = token.clone();
        self.pool.join(
            move || cancel::with_ambient(token, || with_depth(id, child, a)),
            move || cancel::with_ambient(token_b, || with_depth(id, child, b)),
        )
    }

    /// The recording twin of [`join`](PalPool::join): identical fork,
    /// elision and panic semantics, plus one `Fork` event at the call site
    /// and `Enter`/`Exit` stamps around each scheduled child.  Kept as a
    /// separate path so untraced joins pay exactly one branch.
    fn join_traced<RA, RB>(
        &self,
        trace: &TraceState,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
        depth: usize,
        elide: bool,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        let id = self.id;
        let parent = current_node(id);
        let ts = tick_clock(id, 0);
        let (left, right) = trace.alloc_pair();
        let slot = self.worker_slot();
        trace.record(
            slot,
            TraceEvent::Fork {
                ts,
                worker: worker_id(slot),
                parent,
                left,
                right,
                depth: depth as u32,
                elided: elide,
            },
        );
        let child = depth + 1;
        if elide {
            self.metrics.record_elided();
            // Children run inline but still get their own node context,
            // so nested traced forks attach to the right parent.  Their
            // depth is `depth + 1` (≥ cutoff, so elision decisions are
            // unchanged).
            let (ra, a_end) = with_task(id, child, left, ts, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(a))
            });
            let (rb, b_end) = with_task(id, child, right, ts, || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(b))
            });
            merge_clock(id, a_end.max(b_end));
            return match (ra, rb) {
                (Ok(ra), Ok(rb)) => (ra, rb),
                (Err(payload), _) => std::panic::resume_unwind(payload),
                (_, Err(payload)) => std::panic::resume_unwind(payload),
            };
        }
        let token = cancel::ambient();
        let token_b = token.clone();
        let ((ra, a_end), (rb, b_end)) = self.pool.join(
            move || {
                cancel::with_ambient(token, || {
                    with_task(id, child, left, ts, || {
                        let slot = self.worker_slot();
                        let w = worker_id(slot);
                        trace.record(
                            slot,
                            TraceEvent::Enter {
                                ts: tick_clock(id, 0),
                                worker: w,
                                node: left,
                            },
                        );
                        let r = a();
                        trace.record(
                            slot,
                            TraceEvent::Exit {
                                ts: tick_clock(id, 0),
                                worker: w,
                                node: left,
                            },
                        );
                        r
                    })
                })
            },
            move || {
                cancel::with_ambient(token_b, || {
                    with_task(id, child, right, ts, || {
                        let slot = self.worker_slot();
                        let w = worker_id(slot);
                        trace.record(
                            slot,
                            TraceEvent::Enter {
                                ts: tick_clock(id, 0),
                                worker: w,
                                node: right,
                            },
                        );
                        let r = b();
                        trace.record(
                            slot,
                            TraceEvent::Exit {
                                ts: tick_clock(id, 0),
                                worker: w,
                                node: right,
                            },
                        );
                        r
                    })
                })
            },
        );
        merge_clock(id, a_end.max(b_end));
        (ra, rb)
    }

    /// `true` when this pool was built with
    /// [`PalPoolBuilder::trace`] — every join, spawn and blocked pass is
    /// being recorded.
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Drain the tracer's event buffers into a [`DagTrace`] and reset
    /// them for the next capture window; `None` when the pool was built
    /// without [`PalPoolBuilder::trace`].
    ///
    /// Call between computations: events of work still in flight while
    /// draining land in either the drained trace or the next window, so a
    /// quiesced pool is the precondition for the exact-accounting
    /// guarantees of [`DagTrace::summary`].
    pub fn take_trace(&self) -> Option<DagTrace> {
        let trace = self.trace.as_ref()?;
        Some(trace.drain(self.processors, self.cutoff_depth()))
    }

    /// This thread's per-worker trace-log slot (`None`: not a worker of
    /// this pool's runtime — the shared external slot).
    fn worker_slot(&self) -> Option<usize> {
        self.pool.current_thread_index()
    }

    /// Record one blocked data-parallel pass (`len` elements in `chunks`
    /// blocks); no-op unless tracing.  Called by the primitives layer.
    #[inline]
    pub(super) fn trace_pass(&self, len: usize, chunks: usize) {
        if let Some(trace) = &self.trace {
            let slot = self.worker_slot();
            trace.record(
                slot,
                TraceEvent::Pass {
                    ts: tick_clock(self.id, 0),
                    worker: worker_id(slot),
                    len: len as u64,
                    chunks: chunks as u32,
                },
            );
        }
    }

    /// Open a pal-thread scope: `f` may spawn any number of pal-threads via
    /// [`PalScope::spawn`]; the scope waits for all of them before returning.
    ///
    /// This is the multi-way generalisation of [`join`](PalPool::join) used
    /// by the dynamic-programming executors (Algorithm 1 creates one
    /// pal-thread per ready DAG vertex).
    pub fn scope<'env, R>(
        &'env self,
        f: impl for<'scope> FnOnce(&PalScope<'scope, 'env>) -> R,
    ) -> R {
        self.pool.in_place_scope(|s| {
            let pal = PalScope {
                scope: s,
                pool: self,
            };
            f(&pal)
        })
    }

    /// Apply `f` to every index in `range`, splitting the range into chunks
    /// executed by pal-threads.
    ///
    /// This is the primitive behind parallel merging (Eq. 5) and the
    /// wavefront dynamic-programming executor: within one antichain every
    /// cell is independent, so indices can be processed by up to `p`
    /// processors.
    pub fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let chunks = self.index_chunk_count(len);
        let chunk_size = len.div_ceil(chunks);
        self.scope(|scope| {
            let f = &f;
            let mut start = range.start;
            while start < range.end {
                let end = (start + chunk_size).min(range.end);
                scope.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
        });
    }

    /// Map every index in `range` through `map` and fold the results with
    /// `reduce`, starting from `identity` in every chunk.
    ///
    /// `reduce` must be associative for the result to be independent of the
    /// chunking (the usual data-parallel contract).
    pub fn map_reduce<T, M, R>(&self, range: Range<usize>, identity: T, map: M, reduce: R) -> T
    where
        T: Send + Clone,
        M: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync + Send,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        let chunks = self.index_chunk_count(len);
        let chunk_size = len.div_ceil(chunks);
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(chunks));
        self.scope(|scope| {
            let map = &map;
            let reduce = &reduce;
            let partials = &partials;
            let mut start = range.start;
            while start < range.end {
                let end = (start + chunk_size).min(range.end);
                let seed = identity.clone();
                scope.spawn(move || {
                    let mut acc = seed;
                    for i in start..end {
                        acc = reduce(acc, map(i));
                    }
                    partials.lock().push(acc);
                });
                start = end;
            }
        });
        let mut acc = identity;
        for part in partials.into_inner() {
            acc = reduce(acc, part);
        }
        acc
    }

    /// Target block count for the blocked data-parallel primitives on a
    /// length-`len` input, from the adaptive grain policy
    /// ([`policy::grain_size`](crate::policy::grain_size)).
    ///
    /// By default this is at most `4·p` blocks (up to `8·p` on inputs
    /// large enough that the finer pieces still amortize a steal), floored
    /// so no block carries fewer than
    /// [`DEFAULT_GRAIN`](crate::policy::DEFAULT_GRAIN) elements — small
    /// inputs stop forking entirely instead of paying `4p − 1` forks for
    /// nanoseconds of work.  [`PalPoolBuilder::grain`] pins the floor and
    /// disables the oversubscription rule;
    /// [`PalPoolBuilder::no_adaptive_grain`] restores the legacy fixed
    /// `4·p` blocking exactly.
    ///
    /// The policy is a pure function of `(len, p, configuration)` — never
    /// of the observed schedule — so a primitive's fork count (`blocks −
    /// 1` per parallel pass over `chunk_count(len)` blocks with balanced
    /// boundaries `c·len/chunks`) stays exact and schedule-independent,
    /// and tests can predict it by calling this method.
    /// [`for_each_index`](PalPool::for_each_index) and
    /// [`map_reduce`](PalPool::map_reduce) do **not** use this policy:
    /// their per-index cost is an opaque closure (a dynamic-programming
    /// cell can cost microseconds), so they keep the fixed `4·p` chunk
    /// bound of [`index_chunk_count`](PalPool::index_chunk_count).
    pub fn chunk_count(&self, len: usize) -> usize {
        self.grain.chunks(len, self.processors)
    }

    /// Chunk-count bound for the index-space helpers
    /// ([`for_each_index`](PalPool::for_each_index) /
    /// [`map_reduce`](PalPool::map_reduce)): the legacy `4·p` clamped to
    /// `[1, len]`, with no element-cost floor — one index may hide
    /// arbitrary work, so the element cost model behind
    /// [`chunk_count`](PalPool::chunk_count) does not apply.  Their
    /// fixed-size chunking (`len.div_ceil(chunks)` per chunk) may produce
    /// fewer chunks than this bound.
    pub fn index_chunk_count(&self, len: usize) -> usize {
        (self.processors * 4).clamp(1, len)
    }
}

/// A scope in which pal-threads can be spawned; see [`PalPool::scope`].
pub struct PalScope<'scope, 'env: 'scope> {
    scope: &'scope rayon::Scope<'env>,
    pool: &'env PalPool,
}

impl<'scope, 'env> PalScope<'scope, 'env> {
    /// Create a pal-thread running `f`.
    ///
    /// Above the cutoff depth, the pal-thread is placed in the pending set
    /// (a worker deque or the pool's injector) and executed as soon as a
    /// processor is available.  An *idle* processor picks up pending
    /// pal-threads oldest-first — the order-consistent-with-creation rule
    /// of §3.1 — while a creator draining its own remaining spawns takes
    /// the newest first (the standard work-stealing LIFO fast path; the
    /// literal creation-order rule for that case lives in the `lopram-sim`
    /// crate).  Whether the pal-thread counted as `spawned` (ran on another
    /// processor) or `inlined` (executed by its creator) is recorded by the
    /// runtime at activation time and visible through [`PalPool::metrics`].
    ///
    /// At recursion depth `⌈α·log₂ p⌉` and below the spawn is elided: `f`
    /// runs immediately, inline, in creation order — no scheduler job is
    /// created (see [`RunMetrics::elided`]).  One observable difference to
    /// a scheduled spawn: a panic in an elided `f` unwinds out of the
    /// scope *body* right away (later statements of the body don't run),
    /// whereas a scheduled task's panic is stashed and rethrown from the
    /// scope entry point after all sibling tasks finished.  Already-spawned
    /// siblings complete in both cases.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        cancel::checkpoint();
        let id = self.pool.id;
        let depth = current_depth(id);
        let elide = depth >= self.pool.cutoff.load(std::sync::atomic::Ordering::Relaxed);
        if let Some(trace) = &self.pool.trace {
            return self.spawn_traced(trace, f, depth, elide);
        }
        if elide {
            self.pool.metrics.record_elided();
            f();
            return;
        }
        let child = depth + 1;
        // Same ambient-token rule as the scheduled join children: the
        // spawner's token (or its absence) travels with the pal-thread.
        let token = cancel::ambient();
        self.scope
            .spawn(move |_| cancel::with_ambient(token, || with_depth(id, child, f)));
    }

    /// The recording twin of [`spawn`](PalScope::spawn): one `Spawn`
    /// event at the call site (whose worker — the spawner — is
    /// authoritative for steal classification) and `Enter`/`Exit` stamps
    /// around a scheduled child.
    fn spawn_traced<F>(&self, trace: &'env TraceState, f: F, depth: usize, elide: bool)
    where
        F: FnOnce() + Send + 'env,
    {
        let pool = self.pool;
        let id = pool.id;
        let parent = current_node(id);
        let ts = tick_clock(id, 0);
        let node = trace.alloc_node();
        let slot = pool.worker_slot();
        trace.record(
            slot,
            TraceEvent::Spawn {
                ts,
                worker: worker_id(slot),
                parent,
                child: node,
                depth: depth as u32,
                elided: elide,
            },
        );
        let child = depth + 1;
        if elide {
            pool.metrics.record_elided();
            let ((), end) = with_task(id, child, node, ts, f);
            merge_clock(id, end);
            return;
        }
        let token = cancel::ambient();
        self.scope.spawn(move |_| {
            cancel::with_ambient(token, || {
                with_task(id, child, node, ts, || {
                    let slot = pool.worker_slot();
                    let w = worker_id(slot);
                    trace.record(
                        slot,
                        TraceEvent::Enter {
                            ts: tick_clock(id, 0),
                            worker: w,
                            node,
                        },
                    );
                    f();
                    trace.record(
                        slot,
                        TraceEvent::Exit {
                            ts: tick_clock(id, 0),
                            worker: w,
                            node,
                        },
                    );
                });
            });
        });
    }

    /// Number of processors of the owning pool.
    pub fn processors(&self) -> usize {
        self.pool.processors
    }
}

impl std::fmt::Debug for PalScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PalScope")
            .field("processors", &self.pool.processors)
            .finish_non_exhaustive()
    }
}

/// Builder for [`PalPool`] with explicit processor counts, policies, caps
/// and the sequential-cutoff headroom `α`.
#[derive(Debug, Clone)]
pub struct PalPoolBuilder {
    processors: Option<usize>,
    policy: Option<(usize, ProcessorPolicy)>,
    max_processors: Option<usize>,
    /// `Some(α)` applies the `⌈α·log₂ p⌉` throttle; `None` disables it.
    alpha: Option<f64>,
    /// Blocking policy for the data-parallel primitives.
    grain: Grain,
    /// `Some` enables the execution tracer.
    trace: Option<TraceConfig>,
    /// Deterministic scheduler-fault injection (none by default).
    chaos: rayon::ChaosConfig,
    /// Dead-worker recovery policy.
    self_heal: rayon::SelfHeal,
}

impl Default for PalPoolBuilder {
    fn default() -> Self {
        PalPoolBuilder {
            processors: None,
            policy: None,
            max_processors: None,
            alpha: Some(DEFAULT_CUTOFF_ALPHA),
            grain: Grain::Adaptive { min: DEFAULT_GRAIN },
            trace: None,
            chaos: rayon::ChaosConfig::default(),
            self_heal: rayon::SelfHeal::default(),
        }
    }
}

impl PalPoolBuilder {
    /// Use exactly `p` processors.
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = Some(p);
        self
    }

    /// Derive the processor count from `policy` applied to input size `n`.
    pub fn policy(mut self, n: usize, policy: ProcessorPolicy) -> Self {
        self.policy = Some((n, policy));
        self
    }

    /// Enforce a hard upper bound on the processor count.
    pub fn max_processors(mut self, limit: usize) -> Self {
        self.max_processors = Some(limit);
        self
    }

    /// Set the sequential-cutoff headroom: forks below recursion depth
    /// `⌈alpha·log₂ p⌉` run as plain sequential calls.  Default `α = 2`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Disable the depth throttle: every fork goes through the
    /// work-stealing scheduler regardless of depth (used by the
    /// scheduler-ablation and overhead benchmarks to measure the raw
    /// runtime).
    pub fn no_cutoff(mut self) -> Self {
        self.alpha = None;
        self
    }

    /// Pin the blocked primitives' grain: at most `4·p` blocks of at
    /// least `min_grain` elements each, with the steal-informed `8·p`
    /// oversubscription rule disabled.  `min_grain = 1` is exactly the
    /// legacy fixed-`4p` blocking (see
    /// [`no_adaptive_grain`](PalPoolBuilder::no_adaptive_grain)).
    ///
    /// Pinning makes [`chunk_count`](PalPool::chunk_count) — and hence
    /// every primitive's fork count — a closed-form function of `(len,
    /// p, min_grain)`, which is what the smoke-test paths use to assert
    /// fork accounting exactly.
    pub fn grain(mut self, min_grain: usize) -> Self {
        self.grain = Grain::Fixed {
            min: min_grain.max(1),
        };
        self
    }

    /// Restore the legacy fixed-`4p` blocking: no cost-model floor for
    /// small inputs, no steal-informed oversubscription.  Equivalent to
    /// [`grain(1)`](PalPoolBuilder::grain); kept as a named escape hatch
    /// for ablations and before/after benchmarks.
    pub fn no_adaptive_grain(self) -> Self {
        self.grain(1)
    }

    /// Enable execution tracing: record every fork, spawn, elision,
    /// scheduled activation and blocked pass into per-worker event
    /// buffers (preallocated at build time through the workspace arena),
    /// drained with [`PalPool::take_trace`].  Off by default; an untraced
    /// pool pays one branch per hook and allocates nothing.
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Inject deterministic scheduler faults into the runtime backing
    /// this pool — kill a worker, drop/delay a wake-up, force steal
    /// retries; see [`rayon::ChaosConfig`].  Off by default.
    pub fn chaos(mut self, chaos: rayon::ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Dead-worker recovery policy ([`rayon::SelfHeal`]): respawn a
    /// replacement (the default) or degrade to the surviving workers —
    /// with [`PalPool::health`] re-throttling the cutoff to the effective
    /// width.
    pub fn self_heal(mut self, self_heal: rayon::SelfHeal) -> Self {
        self.self_heal = self_heal;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<PalPool> {
        let p = match (self.processors, self.policy) {
            (Some(p), _) => p,
            (None, Some((n, policy))) => policy.processors(n),
            (None, None) => ProcessorPolicy::Available.processors(0),
        };
        if p == 0 {
            return Err(Error::ZeroProcessors);
        }
        if let Some(limit) = self.max_processors {
            if p > limit {
                return Err(Error::TooManyProcessors {
                    requested: p,
                    limit,
                });
            }
        }
        PalPool::with_cutoff(
            p,
            self.alpha,
            self.grain,
            self.trace,
            self.chaos,
            self.self_heal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_rejects_zero_processors() {
        assert_eq!(PalPool::new(0).unwrap_err(), Error::ZeroProcessors);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = PalPool::new(4).unwrap();
        let (a, b) = pool.join(|| 2 + 2, || "hello".len());
        assert_eq!(a, 4);
        assert_eq!(b, 5);
    }

    #[test]
    fn scoped_metrics_attributes_exactly_the_call_window() {
        fn tree(pool: &PalPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| tree(pool, depth - 1), || tree(pool, depth - 1));
        }
        let pool = PalPool::new(2).unwrap();
        // Warm-up work outside the scope must not leak into the delta.
        tree(&pool, 3);
        let ((), delta) = pool.scoped_metrics(|| tree(&pool, 4));
        // A depth-4 binary join tree forks at every internal node:
        // 2^4 - 1 = 15, schedule-independent.
        assert_eq!(delta.forks(), 15);
        assert!(delta.steals <= delta.spawned);
        // The pool-global counters keep the warm-up too.
        assert_eq!(pool.metrics().forks(), 7 + 15);
        // An idle scope deltas to zero.
        let ((), idle) = pool.scoped_metrics(|| ());
        assert_eq!(idle, MetricsSnapshot::default());
    }

    #[test]
    fn scoped_metrics_deltas_nest() {
        let pool = PalPool::new(2).unwrap();
        let ((inner_r, inner), outer) = pool.scoped_metrics(|| {
            pool.join(|| (), || ());
            pool.scoped_metrics(|| pool.join(|| 1, || 2))
        });
        assert_eq!(inner_r, (1, 2));
        assert_eq!(inner.forks(), 1);
        assert_eq!(outer.forks(), 2, "outer window includes the inner scope");
    }

    #[test]
    fn nested_joins_compute_fibonacci() {
        fn fib(pool: &PalPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = PalPool::new(4).unwrap();
        assert_eq!(fib(&pool, 20), 6765);
    }

    #[test]
    fn join_propagates_panic_from_second_child() {
        let pool = PalPool::new(2).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("child b failed") });
        }));
        assert!(result.is_err());
        // The pool must remain usable afterwards.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_runs_all_spawned_threads() {
        let pool = PalPool::new(3).unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_spawn_can_borrow_environment() {
        let pool = PalPool::new(2).unwrap();
        let data = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(chunk.iter().sum::<u64>() as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn for_each_index_covers_every_index_exactly_once() {
        let pool = PalPool::new(4).unwrap();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_index(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn for_each_index_empty_range_is_noop() {
        let pool = PalPool::new(4).unwrap();
        pool.for_each_index(5..5, |_| panic!("must not be called"));
    }

    #[test]
    fn map_reduce_sums_range() {
        let pool = PalPool::new(4).unwrap();
        let total = pool.map_reduce(0..1001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn map_reduce_empty_range_returns_identity() {
        let pool = PalPool::new(2).unwrap();
        assert_eq!(pool.map_reduce(3..3, 42u64, |i| i as u64, |a, b| a + b), 42);
    }

    #[test]
    fn for_input_size_uses_log_policy() {
        let pool = PalPool::for_input_size(1 << 10);
        assert!(pool.processors() >= 1);
        assert!(pool.processors() <= 10);
    }

    #[test]
    fn metrics_account_for_every_pal_thread() {
        // One join fork + two scope spawns = three pal-threads; each one is
        // either granted its own processor (spawned/stolen) or folded into
        // its creator (inlined) — never lost, never double-counted.
        let pool = PalPool::new(2).unwrap();
        let before = {
            let m = pool.metrics();
            m.spawned() + m.inlined()
        };
        pool.join(|| (), || ());
        pool.scope(|s| {
            s.spawn(|| ());
            s.spawn(|| ());
        });
        let m = pool.metrics();
        assert_eq!(m.spawned() + m.inlined(), before + 3);
        // A pal-thread is spawned by migrating (a steal) or by being
        // injected from outside the pool; it can never have more steals
        // than spawns.
        assert!(m.steals() <= m.spawned());
    }

    #[test]
    fn single_processor_pool_elides_every_fork() {
        // p = 1 ⇒ cutoff depth 0: no fork can ever be granted a second
        // processor, so none of them should cost a scheduler job — the
        // "spawned == 0 below the cutoff" regression of the α·log p
        // throttle.
        let pool = PalPool::new(1).unwrap();
        assert_eq!(pool.cutoff_depth(), Some(0));
        pool.join(|| (), || ());
        pool.join(|| (), || ());
        let m = pool.metrics();
        assert_eq!(m.steals(), 0, "one worker has no one to steal from");
        assert_eq!(m.spawned(), 0, "elided forks never reach the scheduler");
        assert_eq!(m.inlined(), 0, "elided forks never reach the scheduler");
        assert_eq!(m.elided(), 2);
    }

    #[test]
    fn single_processor_scope_elides_spawns_in_creation_order() {
        // Same throttle on the multi-way construct: a one-processor scope
        // runs its pal-threads inline, immediately, in creation order —
        // without creating the eight injector jobs it used to.
        let pool = PalPool::new(1).unwrap();
        let order = parking_lot::Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..8 {
                let order = &order;
                s.spawn(move || order.lock().push(i));
            }
        });
        assert_eq!(*order.lock(), (0..8).collect::<Vec<_>>());
        let m = pool.metrics();
        assert_eq!(m.steals(), 0, "a one-processor pool cannot migrate work");
        assert_eq!(m.spawned(), 0, "elided spawns never reach the scheduler");
        assert_eq!(m.elided(), 8);
    }

    #[test]
    fn one_worker_pool_without_cutoff_schedules_every_fork() {
        // The raw-runtime configuration the overhead benchmark measures:
        // with the throttle disabled, every fork goes through the deque and
        // is popped back (inlined) by its creator.
        let pool = PalPool::builder()
            .processors(1)
            .no_cutoff()
            .build()
            .unwrap();
        assert_eq!(pool.cutoff_depth(), None);
        pool.join(|| (), || ());
        pool.join(|| (), || ());
        let m = pool.metrics();
        assert_eq!(m.inlined(), 2);
        assert_eq!(m.elided(), 0);
        assert_eq!(m.steals(), 0);
    }

    #[test]
    fn cutoff_elides_exactly_the_levels_below_alpha_log_p() {
        // Balanced binary join tree of depth 5 on p = 2 (cutoff = 2): the
        // joins at depths 0 and 1 (three of them) reach the scheduler, the
        // 28 deeper ones are elided.  Exactness also proves the depth
        // travels with stolen subtrees — a thief resetting it to zero would
        // schedule extra levels.
        fn tree(pool: &PalPool, depth: u32) {
            if depth == 0 {
                return;
            }
            pool.join(|| tree(pool, depth - 1), || tree(pool, depth - 1));
        }
        let pool = PalPool::new(2).unwrap();
        assert_eq!(pool.cutoff_depth(), Some(2));
        tree(&pool, 5);
        let m = pool.metrics();
        assert_eq!(m.spawned() + m.inlined(), 3, "depths 0-1 are scheduled");
        assert_eq!(m.elided(), 28, "depths 2-4 are elided");
    }

    #[test]
    fn builder_alpha_tunes_the_cutoff() {
        let pool = PalPool::builder().processors(4).alpha(1.0).build().unwrap();
        assert_eq!(pool.cutoff_depth(), Some(2));
        let pool = PalPool::builder().processors(4).build().unwrap();
        assert_eq!(pool.cutoff_depth(), Some(4), "default α = 2");
    }

    #[test]
    fn builder_grain_controls_blocking() {
        // Default adaptive policy: cost floor on small inputs, 4p cap in
        // the mid range, steal-informed 8p on large inputs.
        let pool = PalPool::new(4).unwrap();
        assert_eq!(pool.chunk_count(100), 1);
        assert_eq!(pool.chunk_count(100_000), 16);
        assert_eq!(pool.chunk_count(1 << 20), 32);
        // The index helpers keep the legacy bound regardless.
        assert_eq!(pool.index_chunk_count(100), 16);

        // Pinned grain: explicit floor, oversubscription rule off.
        let pinned = PalPool::builder().processors(4).grain(64).build().unwrap();
        assert_eq!(pinned.chunk_count(1 << 20), 16);
        assert_eq!(pinned.chunk_count(128), 2);

        // Legacy escape hatch: exactly the old fixed-4p blocking.
        let legacy = PalPool::builder()
            .processors(4)
            .no_adaptive_grain()
            .build()
            .unwrap();
        assert_eq!(legacy.chunk_count(10), 10);
        assert_eq!(legacy.chunk_count(100), 16);
        assert_eq!(legacy.chunk_count(1 << 20), 16);
    }

    #[test]
    fn workspace_counters_flow_into_metrics() {
        let pool = PalPool::new(2).unwrap();
        {
            let mut buf = pool.workspace().checkout::<u64>();
            buf.resize(1000, 0);
        }
        drop(pool.workspace().checkout::<u64>()); // a hit, no growth
        let m = pool.metrics();
        assert_eq!(m.arena_hits(), 1);
        assert!(m.arena_bytes() >= 8000);
        let bytes = m.arena_bytes();
        // Delta sync: re-reading metrics must not double-count.
        assert_eq!(pool.metrics().arena_bytes(), bytes);
    }

    #[test]
    fn builder_respects_fixed_and_cap() {
        let pool = PalPool::builder().processors(3).build().unwrap();
        assert_eq!(pool.processors(), 3);

        let err = PalPool::builder()
            .processors(16)
            .max_processors(8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::TooManyProcessors {
                requested: 16,
                limit: 8
            }
        );

        let pool = PalPool::builder()
            .policy(1 << 6, ProcessorPolicy::LogN)
            .build()
            .unwrap();
        assert!(pool.processors() >= 1);
    }

    #[test]
    fn results_identical_for_any_p() {
        // §3.2: "The algorithm must execute properly for any value of p."
        fn sum_recursive(pool: &PalPool, data: &[u64]) -> u64 {
            if data.len() <= 8 {
                return data.iter().sum();
            }
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let (a, b) = pool.join(|| sum_recursive(pool, lo), || sum_recursive(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..4096).collect();
        let expected: u64 = data.iter().sum();
        for p in [1, 2, 3, 4, 7, 8] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(sum_recursive(&pool, &data), expected, "p = {p}");
        }
    }

    #[test]
    fn untraced_pool_has_no_trace() {
        let pool = PalPool::new(2).unwrap();
        assert!(!pool.is_tracing());
        assert!(pool.take_trace().is_none());
    }

    #[test]
    fn traced_join_tree_reproduces_metrics_exactly() {
        fn tree(pool: &PalPool, depth: u32) {
            if depth == 0 {
                return;
            }
            pool.join(|| tree(pool, depth - 1), || tree(pool, depth - 1));
        }
        let pool = PalPool::builder()
            .processors(2)
            .trace(TraceConfig::default())
            .build()
            .unwrap();
        assert!(pool.is_tracing());
        tree(&pool, 5);
        let m = pool.metrics().snapshot();
        let trace = pool.take_trace().unwrap();
        assert!(trace.is_complete());
        let s = trace.summary();
        assert_eq!(s.forks, m.forks(), "31 joins, each exactly one fork event");
        assert_eq!(s.elided, m.elided);
        assert_eq!(s.spawned, m.spawned);
        assert_eq!(s.inlined, m.inlined);
        assert_eq!(s.steals, m.steals);
        assert_eq!(s.unclassified, 0);
        // Drained: the next window starts empty, ids reset.
        let empty = pool.take_trace().unwrap();
        assert!(empty.events.is_empty());
        pool.join(|| (), || ());
        let again = pool.take_trace().unwrap();
        assert_eq!(again.summary().forks, 1);
    }

    #[test]
    fn traced_scope_classifies_injected_spawns() {
        // Spawns issued from the external thread are injected, not stolen.
        let pool = PalPool::builder()
            .processors(2)
            .no_cutoff()
            .trace(TraceConfig::default())
            .build()
            .unwrap();
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| ());
            }
        });
        let m = pool.metrics().snapshot();
        let s = pool.take_trace().unwrap().summary();
        assert_eq!(s.forks, 8);
        assert_eq!(s.injected + s.steals, s.spawned);
        assert_eq!(s.spawned, m.spawned);
        assert_eq!(s.inlined, m.inlined);
        assert_eq!(s.steals, m.steals);
    }

    #[test]
    fn traced_primitives_record_passes() {
        let pool = PalPool::builder()
            .processors(4)
            .trace(TraceConfig::default())
            .build()
            .unwrap();
        let input: Vec<u64> = (0..100_000).collect();
        let chunks = pool.chunk_count(input.len()) as u64;
        pool.scan_copy(&input, 0u64, |a, b| a + b);
        let m = pool.metrics().snapshot();
        let trace = pool.take_trace().unwrap();
        let s = trace.summary();
        assert_eq!(s.passes, 2, "scan is a two-pass primitive");
        assert_eq!(s.pass_forks, 2 * (chunks - 1));
        assert_eq!(s.forks, m.forks(), "every pass fork is also a Fork event");
        // Serialization roundtrip on a real capture.
        let text = trace.to_text();
        assert_eq!(DagTrace::from_text(&text).unwrap(), trace);
    }

    #[test]
    fn traced_pool_results_and_fork_counts_match_untraced() {
        let input: Vec<u64> = (0..50_000).collect();
        let plain = PalPool::new(2).unwrap();
        let traced = PalPool::builder()
            .processors(2)
            .trace(TraceConfig::default())
            .build()
            .unwrap();
        let a = plain.scan_copy(&input, 0u64, |a, b| a + b);
        let b = traced.scan_copy(&input, 0u64, |a, b| a + b);
        assert_eq!(a, b);
        let mp = plain.metrics().snapshot();
        let mt = traced.metrics().snapshot();
        assert_eq!(
            mp.forks(),
            mt.forks(),
            "tracing must not change fork counts"
        );
        assert_eq!(mp.elided, mt.elided);
    }

    #[test]
    fn trace_buffer_overflow_drops_and_counts() {
        let pool = PalPool::builder()
            .processors(1)
            .trace(TraceConfig {
                capacity_per_worker: 4,
            })
            .build()
            .unwrap();
        for _ in 0..16 {
            pool.join(|| (), || ());
        }
        let trace = pool.take_trace().unwrap();
        assert!(!trace.is_complete());
        assert_eq!(trace.events.len() as u64 + trace.dropped, 16);
        // The pool itself is unaffected.
        assert_eq!(pool.metrics().elided(), 16);
    }

    #[test]
    fn sequential_pool_has_one_processor() {
        let pool = PalPool::sequential();
        assert_eq!(pool.processors(), 1);
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
