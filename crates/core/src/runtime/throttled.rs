//! The [`ThrottledPool`]: an *eager* bounded-degree fork/join pool.
//!
//! This is the simplest possible realisation of the pal-thread creation rule:
//! when a pal-thread is created it either receives a free processor
//! immediately (an OS thread is spawned for it, holding one processor token)
//! or it is executed inline by its parent, and the decision is never
//! revisited.  Because there is no pending queue, a processor that frees up
//! later cannot pick up a child that was already committed to inline
//! execution, which skews work towards the first spawned subtrees (for binary
//! divide-and-conquer one `n/2` subtree ends up sequential), and the
//! [`steals`](crate::metrics::RunMetrics::steals) counter is always zero.
//!
//! The default [`PalPool`](crate::PalPool) differs on exactly this point:
//! its forks stay *pending* in per-worker deques until a processor actually
//! takes them, so a processor that frees up later steals the oldest pending
//! pal-thread (§3.1's activation rule).  `ThrottledPool` is retained as the
//! ablation the experiment harness uses to quantify how much that rule
//! actually buys (experiment E12, `table_scheduler_ablation`): on an
//! unbalanced divide-and-conquer tree the two schedulers diverge sharply —
//! `PalPool` keeps migrating the heavy pending subtree to whichever
//! processor frees up, while `ThrottledPool` spawns once and then runs the
//! rest of the chain sequentially.
//!
//! # Transport vs. policy
//!
//! Since the lock-free runtime landed, `ThrottledPool` no longer has a
//! queueing implementation of its own (it used to spawn one OS thread per
//! granted pal-thread through `std::thread::scope`).  A pool for `p`
//! processors owns `p − 1` persistent workers of the *same* work-stealing
//! runtime `PalPool` wraps — the same Chase–Lev deques, injector and
//! parking — and ships every *committed* pal-thread through it, while the
//! calling thread plays the remaining processor.  What stays eager is the
//! **policy**: [`ProcessorTokens`] admission is consulted once, at creation
//! time, and a pal-thread denied a token is executed inline immediately and
//! can never migrate later.  E12 therefore compares scheduling policies on
//! identical data structures, not a lock-free runtime against OS-thread
//! spawning.  The pool's own [`RunMetrics`] record only the eager decisions
//! (`steals` is structurally zero).

use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Error, Result};
use crate::metrics::RunMetrics;
use crate::policy::ProcessorPolicy;
use crate::runtime::tokens::ProcessorTokens;

/// An eagerly-scheduled LoPRAM processor pool (ablation variant).
///
/// A `ThrottledPool` for `p` processors owns `p − 1` processor tokens; the thread
/// that calls into the pool plays the role of the remaining processor.  Every
/// pal-thread creation point ([`join`](ThrottledPool::join),
/// [`ThrottledScope::spawn`]) consults the
/// tokens: if a processor is free the child runs on its own core, otherwise
/// it is executed inline by its parent in creation order.  Tokens are
/// released when the child *finishes*, so a recursive algorithm saturates
/// the machine at recursion depth `log_a p` and runs sequentially below —
/// but, unlike the paper's scheduler and the default
/// [`PalPool`](crate::PalPool), a pal-thread committed to inline execution
/// can never migrate to a processor that frees up later.
#[derive(Debug)]
pub struct ThrottledPool {
    processors: usize,
    tokens: Arc<ProcessorTokens>,
    metrics: RunMetrics,
    /// The `p − 1` extra processors: persistent workers of the same
    /// work-stealing runtime `PalPool` uses.  `None` when `p == 1` (no
    /// extra processors, nothing to ship work to).
    pool: Option<rayon::ThreadPool>,
}

impl ThrottledPool {
    /// Create a pool with exactly `p` processors.
    ///
    /// Returns [`Error::ZeroProcessors`] when `p == 0`.
    pub fn new(p: usize) -> Result<Self> {
        if p == 0 {
            return Err(Error::ZeroProcessors);
        }
        let pool = if p > 1 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(p - 1)
                    .thread_name(|i| format!("lopram-eager-{i}"))
                    .build()
                    .map_err(|e| {
                        Error::InvalidInput(format!("failed to build thread pool: {e}"))
                    })?,
            )
        } else {
            None
        };
        Ok(ThrottledPool {
            processors: p,
            tokens: ProcessorTokens::new(p - 1),
            metrics: RunMetrics::new(),
            pool,
        })
    }

    /// Create a single-processor pool: every pal-thread runs inline, so the
    /// execution order is exactly the sequential one.
    pub fn sequential() -> Self {
        ThrottledPool::new(1).expect("1 > 0")
    }

    /// Create a pool sized by the paper's default policy `p = O(log n)` for
    /// an input of size `n` (capped by the host's core count).
    pub fn for_input_size(n: usize) -> Self {
        let p = ProcessorPolicy::LogN.processors(n);
        ThrottledPool::new(p).expect("policy returns >= 1")
    }

    /// Create a pool sized by an explicit [`ProcessorPolicy`].
    pub fn with_policy(n: usize, policy: ProcessorPolicy) -> Self {
        ThrottledPool::new(policy.processors(n)).expect("policy returns >= 1")
    }

    /// Start building a pool with non-default options.
    pub fn builder() -> ThrottledPoolBuilder {
        ThrottledPoolBuilder::default()
    }

    /// Number of processors `p` this pool models.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Scheduling counters for this pool (spawned vs inlined pal-threads).
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Largest number of extra processors ever in use simultaneously.
    pub fn peak_extra_processors(&self) -> usize {
        self.tokens.peak_in_use()
    }

    /// Run two pal-threads, the fundamental `palthreads { a(); b(); }`
    /// construct of the paper's mergesort example.
    ///
    /// `a` is the first child and is always executed by the calling
    /// processor; `b` is granted its own processor if one is free
    /// (committed to the `p − 1` worker pool, holding its token until it
    /// finishes) and is otherwise executed inline after `a`, in creation
    /// order.  The decision is never revisited.  The call returns when both
    /// children have finished (the paper's implicit wait at the end of a
    /// `palthreads` block).  Panics in either child propagate.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if let Some(pool) = &self.pool {
            if let Some(permit) = self.tokens.try_acquire() {
                self.metrics.record_spawn();
                let slot_b: Mutex<Option<RB>> = Mutex::new(None);
                let ra = pool.in_place_scope(|s| {
                    let slot_b = &slot_b;
                    s.spawn(move |_| {
                        let _permit = permit;
                        *slot_b.lock() = Some(b());
                    });
                    a()
                });
                // The scope waits for b (rethrowing its panic), so the slot
                // is filled whenever we get here.
                let rb = slot_b.into_inner().expect("committed pal-thread ran");
                return (ra, rb);
            }
        }
        self.metrics.record_inline();
        let ra = a();
        let rb = b();
        (ra, rb)
    }

    /// Open a pal-thread scope: `f` may spawn any number of pal-threads via
    /// [`ThrottledScope::spawn`]; the scope waits for all of them before returning.
    ///
    /// This is the multi-way generalisation of [`join`](ThrottledPool::join) used
    /// by the dynamic-programming executors (Algorithm 1 creates a pal-thread
    /// per ready DAG vertex).
    pub fn scope<'env, R>(
        &'env self,
        f: impl for<'scope> FnOnce(&ThrottledScope<'scope, 'env>) -> R,
    ) -> R {
        match &self.pool {
            Some(pool) => pool.in_place_scope(|s| {
                let pal = ThrottledScope {
                    scope: Some(s),
                    tokens: &self.tokens,
                    metrics: &self.metrics,
                    processors: self.processors,
                };
                f(&pal)
            }),
            // p = 1: no extra processors, every spawn is inline.
            None => f(&ThrottledScope {
                scope: None,
                tokens: &self.tokens,
                metrics: &self.metrics,
                processors: self.processors,
            }),
        }
    }

    /// Apply `f` to every index in `range`, splitting the range into chunks
    /// executed by pal-threads.
    ///
    /// This is the primitive behind parallel merging (Eq. 5) and the
    /// wavefront dynamic-programming executor: within one antichain every
    /// cell is independent, so indices can be processed by up to `p`
    /// processors.
    pub fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let chunks = self.chunk_count(len);
        let chunk_size = len.div_ceil(chunks);
        self.scope(|scope| {
            let f = &f;
            let mut start = range.start;
            while start < range.end {
                let end = (start + chunk_size).min(range.end);
                scope.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
        });
    }

    /// Map every index in `range` through `map` and fold the results with
    /// `reduce`, starting from `identity` in every chunk.
    ///
    /// `reduce` must be associative for the result to be independent of the
    /// chunking (the usual data-parallel contract).
    pub fn map_reduce<T, M, R>(&self, range: Range<usize>, identity: T, map: M, reduce: R) -> T
    where
        T: Send + Clone,
        M: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return identity;
        }
        let chunks = self.chunk_count(len);
        let chunk_size = len.div_ceil(chunks);
        let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(chunks));
        self.scope(|scope| {
            let map = &map;
            let reduce = &reduce;
            let partials = &partials;
            let mut start = range.start;
            while start < range.end {
                let end = (start + chunk_size).min(range.end);
                let seed = identity.clone();
                scope.spawn(move || {
                    let mut acc = seed;
                    for i in start..end {
                        acc = reduce(acc, map(i));
                    }
                    partials.lock().push(acc);
                });
                start = end;
            }
        });
        let mut acc = identity;
        for part in partials.into_inner() {
            acc = reduce(acc, part);
        }
        acc
    }

    fn chunk_count(&self, len: usize) -> usize {
        (self.processors * 2).clamp(1, len)
    }
}

/// A scope in which pal-threads can be spawned; see [`ThrottledPool::scope`].
#[derive(Debug)]
pub struct ThrottledScope<'scope, 'env: 'scope> {
    /// `None` on a one-processor pool (no workers to commit to).
    scope: Option<&'scope rayon::Scope<'env>>,
    tokens: &'env Arc<ProcessorTokens>,
    metrics: &'env RunMetrics,
    processors: usize,
}

impl<'scope, 'env> ThrottledScope<'scope, 'env> {
    /// Create a pal-thread running `f`.
    ///
    /// If a processor is free the pal-thread is committed to the worker
    /// pool (keeping its token until it finishes); otherwise it is executed
    /// inline, immediately, by the calling thread — i.e. pending
    /// pal-threads are serviced in creation order by their parent, as §3.1
    /// prescribes.  Either way the decision is final.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if let Some(scope) = self.scope {
            if let Some(permit) = self.tokens.try_acquire() {
                self.metrics.record_spawn();
                scope.spawn(move |_| {
                    let _permit = permit;
                    f();
                });
                return;
            }
        }
        self.metrics.record_inline();
        f();
    }

    /// Number of processors of the owning pool.
    pub fn processors(&self) -> usize {
        self.processors
    }
}

/// Builder for [`ThrottledPool`] with explicit processor counts, policies and caps.
#[derive(Debug, Default, Clone)]
pub struct ThrottledPoolBuilder {
    processors: Option<usize>,
    policy: Option<(usize, ProcessorPolicy)>,
    max_processors: Option<usize>,
}

impl ThrottledPoolBuilder {
    /// Use exactly `p` processors.
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = Some(p);
        self
    }

    /// Derive the processor count from `policy` applied to input size `n`.
    pub fn policy(mut self, n: usize, policy: ProcessorPolicy) -> Self {
        self.policy = Some((n, policy));
        self
    }

    /// Enforce a hard upper bound on the processor count.
    pub fn max_processors(mut self, limit: usize) -> Self {
        self.max_processors = Some(limit);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThrottledPool> {
        let p = match (self.processors, self.policy) {
            (Some(p), _) => p,
            (None, Some((n, policy))) => policy.processors(n),
            (None, None) => ProcessorPolicy::Available.processors(0),
        };
        if p == 0 {
            return Err(Error::ZeroProcessors);
        }
        if let Some(limit) = self.max_processors {
            if p > limit {
                return Err(Error::TooManyProcessors {
                    requested: p,
                    limit,
                });
            }
        }
        ThrottledPool::new(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_rejects_zero_processors() {
        assert_eq!(ThrottledPool::new(0).unwrap_err(), Error::ZeroProcessors);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThrottledPool::new(4).unwrap();
        let (a, b) = pool.join(|| 2 + 2, || "hello".len());
        assert_eq!(a, 4);
        assert_eq!(b, 5);
    }

    #[test]
    fn join_with_one_processor_runs_inline_in_order() {
        let pool = ThrottledPool::sequential();
        let order = Mutex::new(Vec::new());
        pool.join(|| order.lock().push('a'), || order.lock().push('b'));
        assert_eq!(*order.lock(), vec!['a', 'b']);
        assert_eq!(pool.metrics().spawned(), 0);
        assert_eq!(pool.metrics().inlined(), 1);
    }

    #[test]
    fn eager_scheduler_never_steals() {
        // The defining gap to PalPool: no pending queue, so no migrations —
        // the E12 ablation hinges on this staying zero.
        fn recurse(pool: &ThrottledPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| recurse(pool, depth - 1), || recurse(pool, depth - 1));
        }
        let pool = ThrottledPool::new(4).unwrap();
        recurse(&pool, 6);
        assert_eq!(pool.metrics().steals(), 0);
        assert!(pool.metrics().spawned() + pool.metrics().inlined() > 0);
    }

    #[test]
    fn nested_joins_compute_fibonacci() {
        fn fib(pool: &ThrottledPool, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
            a + b
        }
        let pool = ThrottledPool::new(4).unwrap();
        assert_eq!(fib(&pool, 20), 6765);
    }

    #[test]
    fn peak_extra_processors_never_exceeds_p_minus_one() {
        fn recurse(pool: &ThrottledPool, depth: usize) {
            if depth == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
                return;
            }
            pool.join(|| recurse(pool, depth - 1), || recurse(pool, depth - 1));
        }
        let pool = ThrottledPool::new(4).unwrap();
        recurse(&pool, 8);
        assert!(pool.peak_extra_processors() <= 3);
        assert!(pool.metrics().spawned() > 0);
    }

    #[test]
    fn join_propagates_panic_from_second_child() {
        let pool = ThrottledPool::new(2).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("child b failed") });
        }));
        assert!(result.is_err());
        // The pool must remain usable afterwards (token returned).
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_runs_all_spawned_threads() {
        let pool = ThrottledPool::new(3).unwrap();
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn scope_with_one_processor_preserves_creation_order() {
        let pool = ThrottledPool::sequential();
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move || order.lock().push(i));
            }
        });
        assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_index_covers_every_index_exactly_once() {
        let pool = ThrottledPool::new(4).unwrap();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_index(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn for_each_index_empty_range_is_noop() {
        let pool = ThrottledPool::new(4).unwrap();
        pool.for_each_index(5..5, |_| panic!("must not be called"));
    }

    #[test]
    fn map_reduce_sums_range() {
        let pool = ThrottledPool::new(4).unwrap();
        let total = pool.map_reduce(0..1001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn map_reduce_empty_range_returns_identity() {
        let pool = ThrottledPool::new(2).unwrap();
        assert_eq!(pool.map_reduce(3..3, 42u64, |i| i as u64, |a, b| a + b), 42);
    }

    #[test]
    fn for_input_size_uses_log_policy() {
        let pool = ThrottledPool::for_input_size(1 << 10);
        assert!(pool.processors() >= 1);
        assert!(pool.processors() <= 10);
    }

    #[test]
    fn builder_respects_fixed_and_cap() {
        let pool = ThrottledPool::builder().processors(3).build().unwrap();
        assert_eq!(pool.processors(), 3);

        let err = ThrottledPool::builder()
            .processors(16)
            .max_processors(8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::TooManyProcessors {
                requested: 16,
                limit: 8
            }
        );

        let pool = ThrottledPool::builder()
            .policy(1 << 6, ProcessorPolicy::LogN)
            .build()
            .unwrap();
        assert!(pool.processors() >= 1);
    }

    #[test]
    fn results_identical_for_any_p() {
        // §3.2: "The algorithm must execute properly for any value of p."
        fn sum_recursive(pool: &ThrottledPool, data: &[u64]) -> u64 {
            if data.len() <= 8 {
                return data.iter().sum();
            }
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let (a, b) = pool.join(|| sum_recursive(pool, lo), || sum_recursive(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..4096).collect();
        let expected: u64 = data.iter().sum();
        for p in [1, 2, 3, 4, 7, 8] {
            let pool = ThrottledPool::new(p).unwrap();
            assert_eq!(sum_recursive(&pool, &data), expected, "p = {p}");
        }
    }
}
