//! Blocked data-parallel primitives on the [`PalPool`]: prefix-sum
//! ([`scan`](PalPool::scan)), filtering ([`pack`](PalPool::pack)), CSR-style
//! expansion ([`expand`](PalPool::expand)), index-space map
//! ([`map_collect`](PalPool::map_collect)) and histogram-style reduction
//! ([`reduce_by_index`](PalPool::reduce_by_index)).
//!
//! Irregular workloads — frontier BFS, connected components, and the other
//! graph kernels in `lopram-graph` — are built from exactly two primitives,
//! scan and pack, in the style of Blelloch's prefix-sum framework and its
//! modern incarnations (GBBS; Tithi et al.'s level-synchronous BFS with
//! optimal prefix-sum).  On a LoPRAM those primitives fit the model
//! unusually well: with only `p = O(log n)` processors a blocked two-pass
//! scan over `Θ(p)` blocks is work-optimal, and the block loop is a plain
//! balanced divide-and-conquer — i.e. exactly the pal-thread shape of §3.1.
//!
//! Every primitive here is built on [`PalPool::join`]: the block range is
//! split by a balanced binary fork tree, so the primitives inherit the
//! `⌈α·log₂ p⌉` sequential cutoff (deep forks are elided into plain calls)
//! and the [`RunMetrics`](crate::RunMetrics) accounting — each primitive
//! call contributes a deterministic number of forks, all of them visible as
//! `spawned + inlined + elided` in [`PalPool::metrics`].  With `C`
//! blocks ([`PalPool::chunk_count`]) on a non-empty input, a
//! [`map_collect`](PalPool::map_collect) or
//! [`reduce_by_index`](PalPool::reduce_by_index) costs `C − 1` forks (one
//! parallel pass), a [`scan`](PalPool::scan) or [`pack`](PalPool::pack)
//! costs `2·(C − 1)` (two passes), and an [`expand`](PalPool::expand) costs
//! `3·(C − 1)` (a scan plus a write pass).
//!
//! The slices handed to worker blocks are produced by recursive
//! `split_at_mut`, so the module needs no `unsafe` and no interior
//! mutability: disjointness is enforced by the borrow checker, not by
//! index discipline.

use std::ops::Range;

use super::pool::PalPool;

/// Result of an exclusive blocked [`scan`](PalPool::scan): the running
/// prefix *before* each element, plus the reduction of the whole input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan<T> {
    /// `exclusive[i] = op(identity, input[0], …, input[i-1])`; in
    /// particular `exclusive[0] == identity`.
    pub exclusive: Vec<T>,
    /// The reduction of the entire input — what `exclusive[n]` would be.
    pub total: T,
}

impl PalPool {
    /// Exclusive prefix scan of `input` under the associative operator
    /// `op` with identity `identity`.
    ///
    /// Blocked two-pass algorithm: block reductions in parallel, a
    /// sequential exclusive scan over the `O(p)` block sums, then parallel
    /// per-block prefix writes.  `op` must be associative (the usual scan
    /// contract); the result is then independent of the blocking.
    ///
    /// Costs `2·(C − 1)` pal-thread forks for `C =
    /// `[`chunk_count`](PalPool::chunk_count)`(input.len())` blocks (zero
    /// on an empty input), all routed through [`join`](PalPool::join) and
    /// therefore subject to the sequential cutoff and counted in
    /// [`metrics`](PalPool::metrics).
    pub fn scan<T, F>(&self, input: &[T], identity: T, op: F) -> Scan<T>
    where
        T: Clone + Send + Sync,
        F: Fn(&T, &T) -> T + Sync,
    {
        let n = input.len();
        if n == 0 {
            return Scan {
                exclusive: Vec::new(),
                total: identity,
            };
        }
        let chunks = self.chunk_count(n);
        let bounds = balanced_bounds(n, chunks);

        // Pass 1 (upsweep): one reduction per block, in parallel.
        let mut sums = vec![identity.clone(); chunks];
        self.blocked_uneven_mut(&mut sums, &unit_bounds(chunks), |chunk, slot| {
            let mut acc = identity.clone();
            for x in &input[bounds[chunk]..bounds[chunk + 1]] {
                acc = op(&acc, x);
            }
            slot[0] = acc;
        });

        // Sequential exclusive scan over the O(p) block sums.
        let mut acc = identity.clone();
        let offsets: Vec<T> = sums
            .iter()
            .map(|s| {
                let before = acc.clone();
                acc = op(&acc, s);
                before
            })
            .collect();
        let total = acc;

        // Pass 2 (downsweep): each block writes its exclusive prefixes,
        // seeded with the scanned block offset.
        let mut exclusive = vec![identity; n];
        self.blocked_uneven_mut(&mut exclusive, &bounds, |chunk, out| {
            let mut acc = offsets[chunk].clone();
            for (slot, x) in out.iter_mut().zip(&input[bounds[chunk]..]) {
                *slot = acc.clone();
                acc = op(&acc, x);
            }
        });
        Scan { exclusive, total }
    }

    /// Keep exactly the elements for which `keep(index, &element)` is true,
    /// in their original order (parallel filter / stream compaction).
    ///
    /// Blocked two-pass algorithm: per-block survivor counts in parallel, a
    /// sequential scan of the counts, then parallel writes into disjoint
    /// output regions.  `keep` is called **twice** per element (once to
    /// count, once to write) and must therefore be pure.
    ///
    /// Costs `2·(C − 1)` forks for `C` blocks, like [`scan`](PalPool::scan)
    /// (`C − 1` when no element survives — the write pass is skipped).
    pub fn pack<T, F>(&self, input: &[T], keep: F) -> Vec<T>
    where
        T: Clone + Send + Sync,
        F: Fn(usize, &T) -> bool + Sync,
    {
        let n = input.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = self.chunk_count(n);
        let bounds = balanced_bounds(n, chunks);

        // Pass 1: count survivors per block.
        let mut counts = vec![0usize; chunks];
        self.blocked_uneven_mut(&mut counts, &unit_bounds(chunks), |chunk, slot| {
            let lo = bounds[chunk];
            slot[0] = input[lo..bounds[chunk + 1]]
                .iter()
                .enumerate()
                .filter(|(i, x)| keep(lo + i, x))
                .count();
        });

        // Sequential scan of block counts into output boundaries.
        let out_bounds = exclusive_bounds(&counts);
        let total = out_bounds[chunks];
        if total == 0 {
            return Vec::new();
        }

        // Pass 2: re-filter each block into its disjoint output region.
        let mut out = vec![input[0].clone(); total];
        self.blocked_uneven_mut(&mut out, &out_bounds, |chunk, region| {
            let lo = bounds[chunk];
            let mut slots = region.iter_mut();
            for (i, x) in input[lo..bounds[chunk + 1]].iter().enumerate() {
                if keep(lo + i, x) {
                    *slots.next().expect("keep must be pure: count == write") = x.clone();
                }
            }
            assert!(slots.next().is_none(), "keep must be pure: count == write");
        });
        out
    }

    /// CSR-style expansion: allocate `sizes.iter().sum()` output slots and
    /// hand each index `i` a mutable slice of `sizes[i]` consecutive slots
    /// (in index order) to fill via `write(i, slice)`.
    ///
    /// This is the scan-based "edge map" building block of frontier BFS:
    /// `sizes` are the frontier degrees, the offsets come from a parallel
    /// [`scan`](PalPool::scan), and each frontier vertex writes its
    /// neighbour candidates into its own region.  Slots `write` leaves
    /// untouched keep the `fill` value.  Unlike [`pack`](PalPool::pack)'s
    /// predicate, `write` is called exactly once per index, so it may have
    /// side effects.
    ///
    /// Costs `3·(C − 1)` forks for `C =
    /// `[`chunk_count`](PalPool::chunk_count)`(sizes.len())` blocks: a scan
    /// of `sizes` plus one write pass.
    pub fn expand<T, F>(&self, sizes: &[usize], fill: T, write: F) -> Vec<T>
    where
        T: Clone + Send + Sync,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = sizes.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = self.chunk_count(n);
        let item_bounds = balanced_bounds(n, chunks);

        let offsets = self.scan(sizes, 0usize, |a, b| a + b);
        let total = offsets.total;
        let mut out = vec![fill; total];

        // Block boundaries in the output: the scanned offset of each
        // block's first item.
        let mut out_bounds: Vec<usize> = (0..chunks)
            .map(|c| offsets.exclusive[item_bounds[c]])
            .collect();
        out_bounds.push(total);

        self.blocked_uneven_mut(&mut out, &out_bounds, |chunk, region| {
            let mut rest = region;
            let lo = item_bounds[chunk];
            for (i, &size) in sizes[lo..item_bounds[chunk + 1]].iter().enumerate() {
                let (head, tail) = rest.split_at_mut(size);
                write(lo + i, head);
                rest = tail;
            }
        });
        out
    }

    /// Apply `map` to every index in `range` and collect the results in
    /// order — the `Vec`-producing companion of
    /// [`for_each_index`](PalPool::for_each_index).
    ///
    /// Costs `C − 1` forks for `C` blocks (a single parallel pass).
    pub fn map_collect<T, F>(&self, range: Range<usize>, map: F) -> Vec<T>
    where
        T: Clone + Default + Send + Sync,
        F: Fn(usize) -> T + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        let mut out = vec![T::default(); len];
        if len == 0 {
            return out;
        }
        let chunks = self.chunk_count(len);
        let bounds = balanced_bounds(len, chunks);
        self.blocked_uneven_mut(&mut out, &bounds, |chunk, slots| {
            let lo = range.start + bounds[chunk];
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = map(lo + k);
            }
        });
        out
    }

    /// Bucketed reduction over an index range: `map(i)` names a bucket and
    /// a contribution, and every bucket's contributions are folded with
    /// `reduce` starting from `identity` — a parallel histogram when the
    /// contribution is `1`.
    ///
    /// Each block folds into a private bucket array (no shared-memory
    /// contention — the LoPRAM has `O(log n)` processors, so the private
    /// arrays cost `O(buckets · log n)` space), and the block arrays are
    /// merged sequentially at the end.  `reduce` must be associative and
    /// commutative for the result to be independent of the blocking.
    ///
    /// Costs `C − 1` forks for `C` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `map` returns a bucket index `>= buckets`.
    pub fn reduce_by_index<T, M, R>(
        &self,
        range: Range<usize>,
        buckets: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> Vec<T>
    where
        T: Clone + Send + Sync,
        M: Fn(usize) -> (usize, T) + Sync,
        R: Fn(&T, &T) -> T + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        let mut out = vec![identity.clone(); buckets];
        if len == 0 || buckets == 0 {
            return out;
        }
        let chunks = self.chunk_count(len);
        let bounds = balanced_bounds(len, chunks);

        let mut partials: Vec<Vec<T>> = vec![Vec::new(); chunks];
        self.blocked_uneven_mut(&mut partials, &unit_bounds(chunks), |chunk, slot| {
            let lo = range.start + bounds[chunk];
            let hi = range.start + bounds[chunk + 1];
            let mut local = vec![identity.clone(); buckets];
            for i in lo..hi {
                let (bucket, value) = map(i);
                assert!(
                    bucket < buckets,
                    "reduce_by_index: bucket {bucket} out of range (buckets = {buckets})"
                );
                local[bucket] = reduce(&local[bucket], &value);
            }
            slot[0] = local;
        });

        for local in &partials {
            for (acc, v) in out.iter_mut().zip(local) {
                *acc = reduce(acc, v);
            }
        }
        out
    }

    /// Run `f(chunk, slice)` for every block of `data`, where block `c`
    /// spans `data[bounds[c] - bounds[0] .. bounds[c + 1] - bounds[0]]`
    /// (`bounds` is monotone with `bounds.len() == blocks + 1`).  The
    /// blocks are split over pal-threads with a balanced binary
    /// [`join`](PalPool::join) tree, so disjointness of the slices is
    /// enforced by `split_at_mut`, not by index arithmetic in `f`.
    fn blocked_uneven_mut<T, F>(&self, data: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        fn go<T, F>(
            pool: &PalPool,
            first: usize,
            count: usize,
            data: &mut [T],
            bounds: &[usize],
            f: &F,
        ) where
            T: Send,
            F: Fn(usize, &mut [T]) + Sync,
        {
            if count <= 1 {
                f(first, data);
                return;
            }
            let left = count / 2;
            let split = bounds[first + left] - bounds[first];
            let (lo, hi) = data.split_at_mut(split);
            pool.join(
                || go(pool, first, left, lo, bounds, f),
                || go(pool, first + left, count - left, hi, bounds, f),
            );
        }
        let count = bounds.len() - 1;
        if count == 0 {
            return;
        }
        go(self, 0, count, data, bounds, &f);
    }
}

/// Balanced block boundaries: `bounds[c] = c·len/chunks`, so the `chunks`
/// blocks cover `0..len` with sizes differing by at most one and — because
/// [`PalPool::chunk_count`] guarantees `chunks <= len` — every block
/// non-empty.  The block count (and hence a primitive's fork count) is
/// therefore exactly [`PalPool::chunk_count`]`(len)`.
fn balanced_bounds(len: usize, chunks: usize) -> Vec<usize> {
    (0..=chunks).map(|c| c * len / chunks).collect()
}

/// Boundaries for a one-slot-per-block array (`sums`, `counts`, per-block
/// partials): block `c` owns exactly element `c`.
fn unit_bounds(chunks: usize) -> Vec<usize> {
    (0..=chunks).collect()
}

/// Exclusive prefix sums of `counts` with the grand total appended, i.e.
/// block boundaries for blocked writes into disjoint output regions.
fn exclusive_bounds(counts: &[usize]) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    for &c in counts {
        bounds.push(acc);
        acc += c;
    }
    bounds.push(acc);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_metrics_consistent;

    fn seq_exclusive_scan(input: &[i64]) -> (Vec<i64>, i64) {
        let mut acc = 0;
        let prefix = input
            .iter()
            .map(|x| {
                let before = acc;
                acc += x;
                before
            })
            .collect();
        (prefix, acc)
    }

    #[test]
    fn scan_matches_sequential_for_all_p() {
        let input: Vec<i64> = (0..1000).map(|i| (i * 37) % 101 - 50).collect();
        let (expected, expected_total) = seq_exclusive_scan(&input);
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let scan = pool.scan(&input, 0i64, |a, b| a + b);
            assert_eq!(scan.exclusive, expected, "p = {p}");
            assert_eq!(scan.total, expected_total, "p = {p}");
        }
    }

    #[test]
    fn scan_handles_empty_and_tiny_inputs() {
        let pool = PalPool::new(4).unwrap();
        let empty = pool.scan(&[] as &[i64], 7, |a, b| a + b);
        assert!(empty.exclusive.is_empty());
        assert_eq!(empty.total, 7);

        let one = pool.scan(&[5i64], 0, |a, b| a + b);
        assert_eq!(one.exclusive, vec![0]);
        assert_eq!(one.total, 5);
    }

    #[test]
    fn scan_with_max_operator() {
        // A non-sum associative operator: running maximum.
        let input = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let pool = PalPool::new(2).unwrap();
        let scan = pool.scan(&input, i64::MIN, |a, b| *a.max(b));
        assert_eq!(scan.exclusive, vec![i64::MIN, 3, 3, 4, 4, 5, 9, 9]);
        assert_eq!(scan.total, 9);
    }

    #[test]
    fn scan_forks_are_fully_accounted() {
        let input: Vec<u64> = (0..4096).collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let chunks = pool.chunk_count(input.len()) as u64;
            pool.scan(&input, 0u64, |a, b| a + b);
            assert_metrics_consistent(pool.metrics(), 2 * (chunks - 1));
        }
    }

    #[test]
    fn pack_matches_sequential_filter() {
        let input: Vec<i64> = (0..777).map(|i| (i * 31) % 97).collect();
        let expected: Vec<i64> = input.iter().copied().filter(|x| x % 3 == 0).collect();
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(pool.pack(&input, |_, x| x % 3 == 0), expected, "p = {p}");
        }
    }

    #[test]
    fn pack_predicate_sees_original_indices() {
        let input = vec![10u64; 100];
        let pool = PalPool::new(4).unwrap();
        let kept = pool.pack(&input, |i, _| i % 7 == 0);
        assert_eq!(kept.len(), 15);
    }

    #[test]
    fn pack_keep_all_and_keep_none() {
        let input: Vec<u32> = (0..257).collect();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(pool.pack(&input, |_, _| true), input);
        assert!(pool.pack(&input, |_, _| false).is_empty());
        assert!(pool.pack(&[] as &[u32], |_, _| true).is_empty());
    }

    #[test]
    fn pack_forks_are_fully_accounted() {
        let input: Vec<u32> = (0..513).collect();
        let pool = PalPool::new(2).unwrap();
        let chunks = pool.chunk_count(input.len()) as u64;
        pool.pack(&input, |_, x| x % 2 == 0);
        assert_metrics_consistent(pool.metrics(), 2 * (chunks - 1));
    }

    #[test]
    fn expand_writes_each_region_once() {
        let sizes = [3usize, 0, 2, 5, 0, 1];
        let pool = PalPool::new(2).unwrap();
        let out = pool.expand(&sizes, usize::MAX, |i, region| {
            for (k, slot) in region.iter_mut().enumerate() {
                *slot = i * 10 + k;
            }
        });
        assert_eq!(out, vec![0, 1, 2, 20, 21, 30, 31, 32, 33, 34, 50]);
    }

    #[test]
    fn expand_keeps_fill_in_untouched_slots() {
        let sizes = [2usize, 2];
        let pool = PalPool::new(2).unwrap();
        // Only write the first slot of each region.
        let out = pool.expand(&sizes, 9u8, |i, region| region[0] = i as u8);
        assert_eq!(out, vec![0, 9, 1, 9]);
    }

    #[test]
    fn map_collect_matches_direct_map() {
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let out = pool.map_collect(10..500, |i| i * i);
            let expected: Vec<usize> = (10..500).map(|i| i * i).collect();
            assert_eq!(out, expected, "p = {p}");
        }
        let pool = PalPool::new(2).unwrap();
        assert!(pool.map_collect(5..5, |i| i).is_empty());
    }

    #[test]
    fn reduce_by_index_builds_histograms() {
        // Histogram of i % 5 over 0..1000: 200 in each bucket.
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let hist = pool.reduce_by_index(0..1000, 5, 0u64, |i| (i % 5, 1), |a, b| a + b);
            assert_eq!(hist, vec![200; 5], "p = {p}");
        }
    }

    #[test]
    fn reduce_by_index_empty_range_and_zero_buckets() {
        let pool = PalPool::new(2).unwrap();
        assert_eq!(
            pool.reduce_by_index(3..3, 4, 0u64, |_| (0, 1), |a, b| a + b),
            vec![0; 4]
        );
        assert!(pool
            .reduce_by_index(0..10, 0, 0u64, |_| (0, 1), |a, b| a + b)
            .is_empty());
    }

    #[test]
    fn reduce_by_index_rejects_out_of_range_buckets() {
        let pool = PalPool::new(1).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.reduce_by_index(0..10, 2, 0u64, |i| (i, 1), |a, b| a + b)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn primitives_inherit_the_cutoff_on_p1_pools() {
        // On p = 1 the cutoff depth is 0: every fork of every primitive is
        // elided — no scheduler job at all — yet results stay exact.
        let pool = PalPool::new(1).unwrap();
        let input: Vec<u64> = (0..2000).collect();
        let scan = pool.scan(&input, 0, |a, b| a + b);
        assert_eq!(scan.total, 1999 * 2000 / 2);
        let m = pool.metrics();
        assert_eq!(m.spawned(), 0);
        assert_eq!(m.inlined(), 0);
        assert!(m.elided() > 0);
    }
}
