//! Blocked data-parallel primitives on the [`PalPool`]: prefix-sum
//! ([`scan`](PalPool::scan)), filtering ([`pack`](PalPool::pack)), CSR-style
//! expansion ([`expand`](PalPool::expand)), index-space map
//! ([`map_collect`](PalPool::map_collect)) and histogram-style reduction
//! ([`reduce_by_index`](PalPool::reduce_by_index)).
//!
//! Irregular workloads — frontier BFS, connected components, and the other
//! graph kernels in `lopram-graph` — are built from exactly two primitives,
//! scan and pack, in the style of Blelloch's prefix-sum framework and its
//! modern incarnations (GBBS; Tithi et al.'s level-synchronous BFS with
//! optimal prefix-sum).  On a LoPRAM those primitives fit the model
//! unusually well: with only `p = O(log n)` processors a blocked two-pass
//! scan over `Θ(p)` blocks is work-optimal, and the block loop is a plain
//! balanced divide-and-conquer — i.e. exactly the pal-thread shape of §3.1.
//!
//! # Allocation-free steady state
//!
//! Every primitive routes its internal scratch — block sums, survivor
//! counts, output boundaries — through the pool's [`Workspace`] arena
//! (grow-only, reused across calls; see [`PalPool::workspace`]), and every
//! `Vec`-returning primitive has an `_in`-suffixed twin
//! ([`scan_in`](PalPool::scan_in), [`pack_in`](PalPool::pack_in),
//! [`map_collect_in`](PalPool::map_collect_in),
//! [`expand_in`](PalPool::expand_in), [`scan_copy_in`](PalPool::scan_copy_in))
//! that writes into a **caller-provided buffer** instead of allocating the
//! output.  The `_in` contract: on return the buffer holds exactly the
//! result; its contents on entry are never read (retained slots are
//! overwritten in place rather than re-initialized, so a steady-state
//! call pays neither an allocation nor a clear+refill memset — only
//! capacity carries over; if the operator panics mid-pass the buffer may
//! be left with stale contents).  A caller that keeps the buffer (or
//! checks it out of the workspace) therefore performs zero allocations
//! per call once capacities are warm.  That is the GBBS
//! recipe: a steady-state BFS level runs scan, pack and the candidate
//! expansion without touching the allocator at all.
//!
//! `pack` is fused: the survivor counts are scanned **in place** inside
//! one small arena buffer that doubles as the output boundaries, so no
//! per-element flag vector and no offset vector ever materializes, and
//! `expand` reduces the degree scan to per-block sums (only block *start*
//! offsets are needed — the full element-wise prefix vector of the old
//! three-pass formulation is gone).  For `Copy` elements,
//! [`scan_copy`](PalPool::scan_copy) replaces the general version's
//! per-element `clone()` chains with by-value accumulation (memcpy-style
//! writes, no `&T -> T` round trips).
//!
//! # Fork accounting
//!
//! Every primitive is built on [`PalPool::join`]: the block range is split
//! by a balanced binary fork tree, so the primitives inherit the
//! `⌈α·log₂ p⌉` sequential cutoff (deep forks are elided into plain calls)
//! and the [`RunMetrics`](crate::RunMetrics) accounting — each primitive
//! call contributes a deterministic number of forks, all of them visible as
//! `spawned + inlined + elided` in [`PalPool::metrics`].  The block count
//! `C` = [`PalPool::chunk_count`]`(len)` comes from the **adaptive grain
//! policy** ([`policy::grain_size`](crate::policy::grain_size)): a pure
//! function of `(len, p, builder configuration)` — small inputs collapse
//! to one block (zero forks) under the cost-model floor, large inputs
//! split up to `8p` ways under the steal-amortization rule, and the count
//! never depends on the observed schedule, so the table below is exact on
//! any host.  With `C` blocks on a non-empty input:
//!
//! | primitive | forks |
//! |-----------|-------|
//! | [`map_collect`](PalPool::map_collect) / [`map_collect_in`](PalPool::map_collect_in) | `C − 1` |
//! | [`reduce_by_index`](PalPool::reduce_by_index) | `C − 1` |
//! | [`scan`](PalPool::scan) / [`scan_in`](PalPool::scan_in) / [`scan_copy`](PalPool::scan_copy) | `2·(C − 1)` |
//! | [`pack`](PalPool::pack) / [`pack_in`](PalPool::pack_in) | `2·(C − 1)` (`C − 1` when nothing survives) |
//! | [`expand`](PalPool::expand) / [`expand_in`](PalPool::expand_in) | `2·(C − 1)` (block sums + write pass) |
//!
//! The slices handed to worker blocks are produced by recursive
//! `split_at_mut`, so the module needs no `unsafe` and no interior
//! mutability: disjointness is enforced by the borrow checker, not by
//! index discipline.
//!
//! When the pool's execution tracer is on
//! ([`PalPoolBuilder::trace`](super::PalPoolBuilder::trace)), every
//! parallel pass of the table above additionally records one
//! [`Pass`](super::TraceEvent::Pass) event carrying its `(len, chunks)` —
//! that is what lets the `lopram-sim` replayer recount a pass's `C − 1`
//! forks under a different `(p, grain)` without re-running the workload.
//! ([`for_each_index`](PalPool::for_each_index) and
//! [`map_reduce`](PalPool::map_reduce) are not pass-recorded: their
//! chunking is cost-opaque, so the replayer treats their spawns
//! as-recorded.)

use std::ops::Range;

use super::pool::PalPool;

/// Result of an exclusive blocked [`scan`](PalPool::scan): the running
/// prefix *before* each element, plus the reduction of the whole input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan<T> {
    /// `exclusive[i] = op(identity, input[0], …, input[i-1])`; in
    /// particular `exclusive[0] == identity`.
    pub exclusive: Vec<T>,
    /// The reduction of the entire input — what `exclusive[n]` would be.
    pub total: T,
}

/// Start of block `c` when `len` elements are split into `chunks` balanced
/// blocks (sizes differ by at most one; every block non-empty because
/// [`PalPool::chunk_count`] guarantees `chunks <= len`).
#[inline]
fn block_start(len: usize, chunks: usize, c: usize) -> usize {
    c * len / chunks
}

/// Set `buf` to exactly `len` slots for a pass that **overwrites every
/// slot**: existing elements are kept in place (never re-initialized — the
/// pass never reads them), only growth is filled with `fill()`.  On the
/// steady state (`buf.len() == len` already) this is free, where a
/// `clear()` + `resize()` would memset the whole buffer per call.
fn prepare_slots<T: Clone>(buf: &mut Vec<T>, len: usize, fill: impl FnOnce() -> T) {
    buf.truncate(len);
    if buf.len() < len {
        buf.resize(len, fill());
    }
}

impl PalPool {
    /// Exclusive prefix scan of `input` under the associative operator
    /// `op` with identity `identity`.
    ///
    /// Blocked two-pass algorithm: block reductions in parallel, a
    /// sequential exclusive scan over the `O(p)` block sums (in place, in
    /// an arena buffer), then parallel per-block prefix writes.  `op` must
    /// be associative (the usual scan contract); the result is then
    /// independent of the blocking.
    ///
    /// Allocates only the returned `exclusive` vector —
    /// [`scan_in`](PalPool::scan_in) writes into a caller buffer instead,
    /// and [`scan_copy`](PalPool::scan_copy) is the by-value fast path for
    /// `Copy` elements.
    ///
    /// Costs `2·(C − 1)` pal-thread forks for `C =
    /// `[`chunk_count`](PalPool::chunk_count)`(input.len())` blocks (zero
    /// on an empty input), all routed through [`join`](PalPool::join) and
    /// therefore subject to the sequential cutoff and counted in
    /// [`metrics`](PalPool::metrics).
    pub fn scan<T, F>(&self, input: &[T], identity: T, op: F) -> Scan<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T + Sync,
    {
        let mut exclusive = Vec::new();
        let total = self.scan_in(input, identity, op, &mut exclusive);
        Scan { exclusive, total }
    }

    /// [`scan`](PalPool::scan) into a caller-provided buffer: `exclusive`
    /// is cleared and refilled with the exclusive prefixes (its previous
    /// contents are irrelevant, its capacity is reused), and the total
    /// reduction is returned.
    ///
    /// Together with the workspace arena this makes repeated scans
    /// allocation-free: all internal scratch is checked out of
    /// [`PalPool::workspace`], so after the first call on a given input
    /// size neither the scratch nor (given a warm `exclusive`) the output
    /// grows.  Fork cost is identical to [`scan`](PalPool::scan).
    pub fn scan_in<T, F>(&self, input: &[T], identity: T, op: F, exclusive: &mut Vec<T>) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T + Sync,
    {
        let n = input.len();
        if n == 0 {
            exclusive.clear();
            return identity;
        }
        let chunks = self.chunk_count(n);

        // Pass 1 (upsweep): one reduction per block, in parallel, into an
        // arena buffer.
        let mut sums = self.workspace().checkout::<T>();
        sums.resize(chunks, identity.clone());
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(&mut sums, chunks, |c, slot| {
            let mut acc = identity.clone();
            for x in &input[block_start(n, chunks, c)..block_start(n, chunks, c + 1)] {
                acc = op(&acc, x);
            }
            slot[0] = acc;
        });

        // Sequential exclusive scan of the block sums, in place: sums[c]
        // becomes the scanned offset of block c.
        let mut acc = identity.clone();
        for s in sums.iter_mut() {
            let next = op(&acc, s);
            *s = std::mem::replace(&mut acc, next);
        }
        let total = acc;

        // Pass 2 (downsweep): each block writes its exclusive prefixes,
        // seeded with the scanned block offset.
        prepare_slots(exclusive, n, || identity);
        let sums = &sums;
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(exclusive, chunks, |c, out| {
            let mut acc = sums[c].clone();
            for (slot, x) in out.iter_mut().zip(&input[block_start(n, chunks, c)..]) {
                *slot = acc.clone();
                acc = op(&acc, x);
            }
        });
        total
    }

    /// The `Copy` fast path of [`scan`](PalPool::scan): operator and
    /// accumulator move **by value**, so the inner loops are plain
    /// register accumulation and memcpy-style slot writes — no `clone()`
    /// chain, no `&T -> T` round trip per element.
    ///
    /// Same contract and fork cost as [`scan`](PalPool::scan).
    pub fn scan_copy<T, F>(&self, input: &[T], identity: T, op: F) -> Scan<T>
    where
        T: Copy + Send + Sync + 'static,
        F: Fn(T, T) -> T + Sync,
    {
        let mut exclusive = Vec::new();
        let total = self.scan_copy_in(input, identity, op, &mut exclusive);
        Scan { exclusive, total }
    }

    /// [`scan_copy`](PalPool::scan_copy) into a caller-provided buffer
    /// (same clear-and-refill contract as [`scan_in`](PalPool::scan_in)).
    pub fn scan_copy_in<T, F>(&self, input: &[T], identity: T, op: F, exclusive: &mut Vec<T>) -> T
    where
        T: Copy + Send + Sync + 'static,
        F: Fn(T, T) -> T + Sync,
    {
        let n = input.len();
        if n == 0 {
            exclusive.clear();
            return identity;
        }
        let chunks = self.chunk_count(n);

        let mut sums = self.workspace().checkout::<T>();
        sums.resize(chunks, identity);
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(&mut sums, chunks, |c, slot| {
            let mut acc = identity;
            for &x in &input[block_start(n, chunks, c)..block_start(n, chunks, c + 1)] {
                acc = op(acc, x);
            }
            slot[0] = acc;
        });

        let mut acc = identity;
        for s in sums.iter_mut() {
            let block = *s;
            *s = acc;
            acc = op(acc, block);
        }
        let total = acc;

        prepare_slots(exclusive, n, || identity);
        let sums = &sums;
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(exclusive, chunks, |c, out| {
            let mut acc = sums[c];
            for (slot, &x) in out.iter_mut().zip(&input[block_start(n, chunks, c)..]) {
                *slot = acc;
                acc = op(acc, x);
            }
        });
        total
    }

    /// Keep exactly the elements for which `keep(index, &element)` is true,
    /// in their original order (parallel filter / stream compaction).
    ///
    /// Fused count+scatter pipeline: per-block survivor counts land in one
    /// small arena buffer, are exclusive-scanned **in place** into the
    /// output boundaries, and each block then re-filters straight into its
    /// disjoint region of the output — no per-element flag vector, no
    /// offset vector, no intermediate compaction buffer.  `keep` is called
    /// **twice** per element (once to count, once to write) and must
    /// therefore be pure.
    ///
    /// Allocates only the returned vector ([`pack_in`](PalPool::pack_in)
    /// doesn't even do that).  Costs `2·(C − 1)` forks for `C` blocks,
    /// like [`scan`](PalPool::scan) (`C − 1` when no element survives —
    /// the write pass is skipped).
    pub fn pack<T, F>(&self, input: &[T], keep: F) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &T) -> bool + Sync,
    {
        let mut out = Vec::new();
        self.pack_in(input, keep, &mut out);
        out
    }

    /// [`pack`](PalPool::pack) into a caller-provided buffer: `out` is
    /// cleared and refilled with the survivors (capacity reused), making
    /// repeated packs — e.g. the frontier compaction of every BFS level —
    /// fully allocation-free once warm.  Fork cost is identical to
    /// [`pack`](PalPool::pack).
    pub fn pack_in<T, F>(&self, input: &[T], keep: F, out: &mut Vec<T>)
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &T) -> bool + Sync,
    {
        let n = input.len();
        if n == 0 {
            out.clear();
            return;
        }
        let chunks = self.chunk_count(n);

        // Pass 1: count survivors per block, into the boundary buffer.
        let mut bounds = self.workspace().checkout::<usize>();
        bounds.resize(chunks + 1, 0);
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(&mut bounds[..chunks], chunks, |c, slot| {
            let lo = block_start(n, chunks, c);
            slot[0] = input[lo..block_start(n, chunks, c + 1)]
                .iter()
                .enumerate()
                .filter(|(i, x)| keep(lo + i, x))
                .count();
        });

        // Fused scan: the counts become output boundaries in place.
        let mut acc = 0usize;
        for c in 0..chunks {
            let count = bounds[c];
            bounds[c] = acc;
            acc += count;
        }
        bounds[chunks] = acc;
        let total = acc;
        if total == 0 {
            out.clear();
            return;
        }

        // Pass 2: re-filter each block into its disjoint output region.
        prepare_slots(out, total, || input[0].clone());
        self.trace_pass(n, chunks);
        self.blocked_uneven_mut(out, &bounds, |c, region| {
            let lo = block_start(n, chunks, c);
            let mut slots = region.iter_mut();
            for (i, x) in input[lo..block_start(n, chunks, c + 1)].iter().enumerate() {
                if keep(lo + i, x) {
                    *slots.next().expect("keep must be pure: count == write") = x.clone();
                }
            }
            assert!(slots.next().is_none(), "keep must be pure: count == write");
        });
    }

    /// CSR-style expansion: allocate `sizes.iter().sum()` output slots and
    /// hand each index `i` a mutable slice of `sizes[i]` consecutive slots
    /// (in index order) to fill via `write(i, slice)`.
    ///
    /// This is the scan-based "edge map" building block of frontier BFS:
    /// `sizes` are the frontier degrees, and each frontier vertex writes
    /// its neighbour candidates into its own region.  The degree scan is
    /// fused: only per-block sums are computed and scanned in place in an
    /// arena buffer (the write pass walks each block sequentially, so
    /// per-element offsets are never materialized).  Slots `write` leaves
    /// untouched keep the `fill` value.  Unlike [`pack`](PalPool::pack)'s
    /// predicate, `write` is called exactly once per index, so it may have
    /// side effects.
    ///
    /// Costs `2·(C − 1)` forks for `C =
    /// `[`chunk_count`](PalPool::chunk_count)`(sizes.len())` blocks: block
    /// sums plus one write pass.
    pub fn expand<T, F>(&self, sizes: &[usize], fill: T, write: F) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let mut out = Vec::new();
        self.expand_in(sizes, fill, write, &mut out);
        out
    }

    /// [`expand`](PalPool::expand) into a caller-provided buffer (cleared
    /// and refilled; capacity reused).  Fork cost is identical to
    /// [`expand`](PalPool::expand).
    pub fn expand_in<T, F>(&self, sizes: &[usize], fill: T, write: F, out: &mut Vec<T>)
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(usize, &mut [T]) + Sync,
    {
        out.clear();
        let n = sizes.len();
        if n == 0 {
            return;
        }
        let chunks = self.chunk_count(n);

        // Block sums of `sizes`, scanned in place into each block's start
        // offset in the output.
        let mut bounds = self.workspace().checkout::<usize>();
        bounds.resize(chunks + 1, 0);
        self.trace_pass(n, chunks);
        self.blocked_balanced_mut(&mut bounds[..chunks], chunks, |c, slot| {
            slot[0] = sizes[block_start(n, chunks, c)..block_start(n, chunks, c + 1)]
                .iter()
                .sum();
        });
        let mut acc = 0usize;
        for c in 0..chunks {
            let sum = bounds[c];
            bounds[c] = acc;
            acc += sum;
        }
        bounds[chunks] = acc;

        // Write pass: each block walks its items, carving regions off its
        // output range (`write` runs exactly once per index, even for
        // size-0 regions).
        out.resize(acc, fill);
        self.trace_pass(n, chunks);
        self.blocked_uneven_mut(out, &bounds, |c, region| {
            let mut rest = region;
            let lo = block_start(n, chunks, c);
            for (i, &size) in sizes[lo..block_start(n, chunks, c + 1)].iter().enumerate() {
                let (head, tail) = rest.split_at_mut(size);
                write(lo + i, head);
                rest = tail;
            }
        });
    }

    /// Apply `map` to every index in `range` and collect the results in
    /// order — the `Vec`-producing companion of
    /// [`for_each_index`](PalPool::for_each_index).
    ///
    /// Costs `C − 1` forks for `C` blocks (a single parallel pass).
    pub fn map_collect<T, F>(&self, range: Range<usize>, map: F) -> Vec<T>
    where
        T: Clone + Default + Send + Sync + 'static,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::new();
        self.map_collect_in(range, map, &mut out);
        out
    }

    /// [`map_collect`](PalPool::map_collect) into a caller-provided buffer
    /// (cleared and refilled; capacity reused).  Fork cost is identical to
    /// [`map_collect`](PalPool::map_collect).
    pub fn map_collect_in<T, F>(&self, range: Range<usize>, map: F, out: &mut Vec<T>)
    where
        T: Clone + Default + Send + Sync + 'static,
        F: Fn(usize) -> T + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            out.clear();
            return;
        }
        prepare_slots(out, len, T::default);
        let chunks = self.chunk_count(len);
        self.trace_pass(len, chunks);
        self.blocked_balanced_mut(out, chunks, |c, slots| {
            let lo = range.start + block_start(len, chunks, c);
            for (k, slot) in slots.iter_mut().enumerate() {
                *slot = map(lo + k);
            }
        });
    }

    /// Bucketed reduction over an index range: `map(i)` names a bucket and
    /// a contribution, and every bucket's contributions are folded with
    /// `reduce` starting from `identity` — a parallel histogram when the
    /// contribution is `1`.
    ///
    /// Two arena-backed layouts, chosen by bucket density.  **Dense**
    /// (`buckets` at most ~a block's length): one flat `C × buckets`
    /// scratch buffer, each block folding into its own row, rows merged
    /// sequentially at the end.  **Sparse** (`buckets` much larger than a
    /// block — the regime where the old per-block `vec![identity;
    /// buckets]` wasted `O(C · buckets)` work and memory on mostly-idle
    /// buckets): each block records one `(bucket, value)` pair per index
    /// and the pairs are folded sequentially in index order, so the
    /// per-call footprint is `O(len)` regardless of the bucket count.
    /// `reduce` must be associative and commutative for the result to be
    /// independent of the blocking (both layouts then agree exactly).
    ///
    /// Costs `C − 1` forks for `C` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `map` returns a bucket index `>= buckets`.
    pub fn reduce_by_index<T, M, R>(
        &self,
        range: Range<usize>,
        buckets: usize,
        identity: T,
        map: M,
        reduce: R,
    ) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
        M: Fn(usize) -> (usize, T) + Sync,
        R: Fn(&T, &T) -> T + Sync,
    {
        let len = range.end.saturating_sub(range.start);
        let mut out = vec![identity.clone(); buckets];
        if len == 0 || buckets == 0 {
            return out;
        }
        let chunks = self.chunk_count(len);
        let block_span = len.div_ceil(chunks);
        self.trace_pass(len, chunks);

        let check = |bucket: usize| {
            assert!(
                bucket < buckets,
                "reduce_by_index: bucket {bucket} out of range (buckets = {buckets})"
            );
        };

        if buckets <= 2 * block_span {
            // Dense: one row of buckets per block in a single flat arena
            // buffer (row c = partials[c*buckets..(c+1)*buckets]).
            let mut partials = self.workspace().checkout::<T>();
            partials.resize(chunks * buckets, identity.clone());
            self.blocked_balanced_mut(&mut partials, chunks, |c, row| {
                let lo = range.start + block_start(len, chunks, c);
                let hi = range.start + block_start(len, chunks, c + 1);
                for i in lo..hi {
                    let (bucket, value) = map(i);
                    check(bucket);
                    row[bucket] = reduce(&row[bucket], &value);
                }
            });
            for row in partials.chunks_exact(buckets) {
                for (acc, v) in out.iter_mut().zip(row) {
                    *acc = reduce(acc, v);
                }
            }
        } else {
            // Sparse: one (bucket, contribution) pair per index, folded
            // sequentially in index order.
            let mut pairs = self.workspace().checkout::<(usize, T)>();
            pairs.resize(len, (0, identity.clone()));
            self.blocked_balanced_mut(&mut pairs, chunks, |c, slots| {
                let lo = range.start + block_start(len, chunks, c);
                for (k, slot) in slots.iter_mut().enumerate() {
                    let (bucket, value) = map(lo + k);
                    check(bucket);
                    *slot = (bucket, value);
                }
            });
            for (bucket, value) in pairs.iter() {
                out[*bucket] = reduce(&out[*bucket], value);
            }
        }
        out
    }

    /// Run `f(block, slice)` for every one of `chunks` balanced blocks of
    /// `data` (block `c` spans `data[c·len/chunks .. (c+1)·len/chunks]`),
    /// splitting over pal-threads with a balanced binary
    /// [`join`](PalPool::join) tree — `chunks − 1` forks.  The boundaries
    /// are pure arithmetic, so no bounds vector is ever materialized;
    /// disjointness comes from recursive `split_at_mut`.
    fn blocked_balanced_mut<T, F>(&self, data: &mut [T], chunks: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        fn go<T, F>(
            pool: &PalPool,
            first: usize,
            count: usize,
            data: &mut [T],
            len: usize,
            chunks: usize,
            f: &F,
        ) where
            T: Send,
            F: Fn(usize, &mut [T]) + Sync,
        {
            if count <= 1 {
                // Chunk boundary: one cancellation checkpoint per block
                // keeps a fired token's unwind latency at O(grain) even
                // when the fork tree above was fully elided.
                super::cancel::checkpoint();
                f(first, data);
                return;
            }
            let left = count / 2;
            let split = block_start(len, chunks, first + left) - block_start(len, chunks, first);
            let (lo, hi) = data.split_at_mut(split);
            pool.join(
                || go(pool, first, left, lo, len, chunks, f),
                || go(pool, first + left, count - left, hi, len, chunks, f),
            );
        }
        if chunks == 0 {
            return;
        }
        let len = data.len();
        go(self, 0, chunks, data, len, chunks, &f);
    }

    /// Run `f(chunk, slice)` for every block of `data`, where block `c`
    /// spans `data[bounds[c] - bounds[0] .. bounds[c + 1] - bounds[0]]`
    /// (`bounds` is monotone with `bounds.len() == blocks + 1`).  The
    /// blocks are split over pal-threads with a balanced binary
    /// [`join`](PalPool::join) tree, so disjointness of the slices is
    /// enforced by `split_at_mut`, not by index arithmetic in `f`.
    fn blocked_uneven_mut<T, F>(&self, data: &mut [T], bounds: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        fn go<T, F>(
            pool: &PalPool,
            first: usize,
            count: usize,
            data: &mut [T],
            bounds: &[usize],
            f: &F,
        ) where
            T: Send,
            F: Fn(usize, &mut [T]) + Sync,
        {
            if count <= 1 {
                // Chunk boundary: see `blocked_balanced_mut`.
                super::cancel::checkpoint();
                f(first, data);
                return;
            }
            let left = count / 2;
            let split = bounds[first + left] - bounds[first];
            let (lo, hi) = data.split_at_mut(split);
            pool.join(
                || go(pool, first, left, lo, bounds, f),
                || go(pool, first + left, count - left, hi, bounds, f),
            );
        }
        let count = bounds.len() - 1;
        if count == 0 {
            return;
        }
        go(self, 0, count, data, bounds, &f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::assert_metrics_consistent;

    fn seq_exclusive_scan(input: &[i64]) -> (Vec<i64>, i64) {
        let mut acc = 0;
        let prefix = input
            .iter()
            .map(|x| {
                let before = acc;
                acc += x;
                before
            })
            .collect();
        (prefix, acc)
    }

    #[test]
    fn scan_matches_sequential_for_all_p() {
        let input: Vec<i64> = (0..1000).map(|i| (i * 37) % 101 - 50).collect();
        let (expected, expected_total) = seq_exclusive_scan(&input);
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let scan = pool.scan(&input, 0i64, |a, b| a + b);
            assert_eq!(scan.exclusive, expected, "p = {p}");
            assert_eq!(scan.total, expected_total, "p = {p}");
        }
    }

    #[test]
    fn scan_copy_matches_general_scan() {
        let input: Vec<i64> = (0..2000).map(|i| (i * 31) % 257 - 128).collect();
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let general = pool.scan(&input, 0i64, |a, b| a + b);
            let copy = pool.scan_copy(&input, 0i64, |a, b| a + b);
            assert_eq!(copy, general, "p = {p}");
        }
    }

    #[test]
    fn scan_in_reuses_the_buffer() {
        let pool = PalPool::new(2).unwrap();
        let input: Vec<u64> = (0..1500).collect();
        let (expected, _) = {
            let as_i64: Vec<i64> = input.iter().map(|&x| x as i64).collect();
            seq_exclusive_scan(&as_i64)
        };
        let expected: Vec<u64> = expected.into_iter().map(|x| x as u64).collect();

        let mut buf = vec![99u64; 3]; // stale contents must be irrelevant
        let total = pool.scan_in(&input, 0u64, |a, b| a + b, &mut buf);
        assert_eq!(buf, expected);
        assert_eq!(total, 1499 * 1500 / 2);

        // Second call into the same (now warm) buffer: same result, and
        // the arena performed no new growth.
        let grown = pool.workspace().stats().grown_bytes;
        let cap = buf.capacity();
        let total = pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut buf);
        assert_eq!(buf, expected);
        assert_eq!(total, 1499 * 1500 / 2);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(pool.workspace().stats().grown_bytes, grown);
    }

    #[test]
    fn scan_handles_empty_and_tiny_inputs() {
        let pool = PalPool::new(4).unwrap();
        let empty = pool.scan(&[] as &[i64], 7, |a, b| a + b);
        assert!(empty.exclusive.is_empty());
        assert_eq!(empty.total, 7);

        let one = pool.scan(&[5i64], 0, |a, b| a + b);
        assert_eq!(one.exclusive, vec![0]);
        assert_eq!(one.total, 5);
    }

    #[test]
    fn scan_with_max_operator() {
        // A non-sum associative operator: running maximum.
        let input = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let pool = PalPool::new(2).unwrap();
        let scan = pool.scan(&input, i64::MIN, |a, b| *a.max(b));
        assert_eq!(scan.exclusive, vec![i64::MIN, 3, 3, 4, 4, 5, 9, 9]);
        assert_eq!(scan.total, 9);
    }

    #[test]
    fn scan_forks_are_fully_accounted() {
        let input: Vec<u64> = (0..4096).collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let chunks = pool.chunk_count(input.len()) as u64;
            pool.scan(&input, 0u64, |a, b| a + b);
            assert_metrics_consistent(pool.metrics(), 2 * (chunks - 1));
        }
    }

    #[test]
    fn pack_matches_sequential_filter() {
        let input: Vec<i64> = (0..777).map(|i| (i * 31) % 97).collect();
        let expected: Vec<i64> = input.iter().copied().filter(|x| x % 3 == 0).collect();
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(pool.pack(&input, |_, x| x % 3 == 0), expected, "p = {p}");
        }
    }

    #[test]
    fn pack_predicate_sees_original_indices() {
        let input = vec![10u64; 100];
        let pool = PalPool::new(4).unwrap();
        let kept = pool.pack(&input, |i, _| i % 7 == 0);
        assert_eq!(kept.len(), 15);
    }

    #[test]
    fn pack_keep_all_and_keep_none() {
        let input: Vec<u32> = (0..257).collect();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(pool.pack(&input, |_, _| true), input);
        assert!(pool.pack(&input, |_, _| false).is_empty());
        assert!(pool.pack(&[] as &[u32], |_, _| true).is_empty());
    }

    #[test]
    fn pack_in_clears_and_reuses_the_buffer() {
        let pool = PalPool::new(4).unwrap();
        let input: Vec<u32> = (0..2048).collect();
        let mut out = vec![7u32; 5000];
        pool.pack_in(&input, |_, x| x % 2 == 0, &mut out);
        let expected: Vec<u32> = (0..2048).filter(|x| x % 2 == 0).collect();
        assert_eq!(out, expected);

        // Steady state: no arena growth, no buffer growth.
        let grown = pool.workspace().stats().grown_bytes;
        let cap = out.capacity();
        pool.pack_in(&input, |_, x| x % 2 == 1, &mut out);
        assert_eq!(out, (0..2048).filter(|x| x % 2 == 1).collect::<Vec<_>>());
        assert_eq!(out.capacity(), cap);
        assert_eq!(pool.workspace().stats().grown_bytes, grown);

        // A keep-none pack leaves the buffer empty, not stale.
        pool.pack_in(&input, |_, _| false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pack_forks_are_fully_accounted() {
        let input: Vec<u32> = (0..513).collect();
        let pool = PalPool::new(2).unwrap();
        let chunks = pool.chunk_count(input.len()) as u64;
        pool.pack(&input, |_, x| x % 2 == 0);
        assert_metrics_consistent(pool.metrics(), 2 * (chunks - 1));
    }

    #[test]
    fn expand_writes_each_region_once() {
        let sizes = [3usize, 0, 2, 5, 0, 1];
        let pool = PalPool::new(2).unwrap();
        let out = pool.expand(&sizes, usize::MAX, |i, region| {
            for (k, slot) in region.iter_mut().enumerate() {
                *slot = i * 10 + k;
            }
        });
        assert_eq!(out, vec![0, 1, 2, 20, 21, 30, 31, 32, 33, 34, 50]);
    }

    #[test]
    fn expand_keeps_fill_in_untouched_slots() {
        let sizes = [2usize, 2];
        let pool = PalPool::new(2).unwrap();
        // Only write the first slot of each region.
        let out = pool.expand(&sizes, 9u8, |i, region| region[0] = i as u8);
        assert_eq!(out, vec![0, 9, 1, 9]);
    }

    #[test]
    fn expand_forks_are_fully_accounted() {
        // The fused expand costs block-sums + write = 2·(C − 1), down from
        // the old three-pass 3·(C − 1).
        let sizes: Vec<usize> = (0..3000).map(|i| i % 4).collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let chunks = pool.chunk_count(sizes.len()) as u64;
            let out = pool.expand(&sizes, 0usize, |i, region| region.fill(i));
            assert_eq!(out.len(), sizes.iter().sum::<usize>());
            assert_metrics_consistent(pool.metrics(), 2 * (chunks - 1));
        }
    }

    #[test]
    fn map_collect_matches_direct_map() {
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let out = pool.map_collect(10..500, |i| i * i);
            let expected: Vec<usize> = (10..500).map(|i| i * i).collect();
            assert_eq!(out, expected, "p = {p}");
        }
        let pool = PalPool::new(2).unwrap();
        assert!(pool.map_collect(5..5, |i| i).is_empty());
    }

    #[test]
    fn map_collect_in_reuses_the_buffer() {
        let pool = PalPool::new(4).unwrap();
        let mut out = Vec::new();
        pool.map_collect_in(0..1000, |i| i as u64 * 3, &mut out);
        assert_eq!(out.len(), 1000);
        assert_eq!(out[999], 2997);
        let cap = out.capacity();
        pool.map_collect_in(0..1000, |i| i as u64, &mut out);
        assert_eq!(out[999], 999);
        assert_eq!(out.capacity(), cap);
        pool.map_collect_in(3..3, |i| i as u64, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn reduce_by_index_builds_histograms() {
        // Histogram of i % 5 over 0..1000: 200 in each bucket.
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let hist = pool.reduce_by_index(0..1000, 5, 0u64, |i| (i % 5, 1), |a, b| a + b);
            assert_eq!(hist, vec![200; 5], "p = {p}");
        }
    }

    #[test]
    fn reduce_by_index_sparse_buckets_match_dense() {
        // buckets >> block length forces the sparse (pair) layout; the
        // dense layout is forced by pinning one block per element count.
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let sparse =
                pool.reduce_by_index(0..64, 100_000, 0u64, |i| (i * 1000, 1), |a, b| a + b);
            assert_eq!(sparse.iter().sum::<u64>(), 64, "p = {p}");
            for i in 0..64 {
                assert_eq!(sparse[i * 1000], 1, "p = {p}");
            }
        }
    }

    #[test]
    fn reduce_by_index_empty_range_and_zero_buckets() {
        let pool = PalPool::new(2).unwrap();
        assert_eq!(
            pool.reduce_by_index(3..3, 4, 0u64, |_| (0, 1), |a, b| a + b),
            vec![0; 4]
        );
        assert!(pool
            .reduce_by_index(0..10, 0, 0u64, |_| (0, 1), |a, b| a + b)
            .is_empty());
    }

    #[test]
    fn reduce_by_index_rejects_out_of_range_buckets() {
        let pool = PalPool::new(1).unwrap();
        // Dense layout.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.reduce_by_index(0..10, 2, 0u64, |i| (i, 1), |a, b| a + b)
        }));
        assert!(result.is_err());
        // Sparse layout.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.reduce_by_index(0..10, 1000, 0u64, |_| (1000, 1), |a, b| a + b)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn primitives_inherit_the_cutoff_on_p1_pools() {
        // On p = 1 the cutoff depth is 0: every fork of every primitive is
        // elided — no scheduler job at all — yet results stay exact.
        let pool = PalPool::new(1).unwrap();
        let input: Vec<u64> = (0..2000).collect();
        let scan = pool.scan(&input, 0, |a, b| a + b);
        assert_eq!(scan.total, 1999 * 2000 / 2);
        let m = pool.metrics();
        assert_eq!(m.spawned(), 0);
        assert_eq!(m.inlined(), 0);
        assert!(m.elided() > 0);
    }

    #[test]
    fn steady_state_scan_and_pack_grow_no_arena() {
        // The headline reuse property: after the first (warming) call,
        // repeated primitives perform zero arena growth and every
        // checkout is a hit.
        let pool = PalPool::new(4).unwrap();
        let input: Vec<u64> = (0..4096).collect();
        let mut scanned = Vec::new();
        let mut packed = Vec::new();
        pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
        pool.pack_in(&input, |_, x| x % 3 == 0, &mut packed);
        let warm = pool.workspace().stats();
        for round in 0..5 {
            pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
            pool.pack_in(&input, |_, x| x % 3 == 0, &mut packed);
            let now = pool.workspace().stats();
            assert_eq!(now.grown_bytes, warm.grown_bytes, "round {round}");
            assert_eq!(
                now.misses, warm.misses,
                "round {round}: every checkout a hit"
            );
        }
        let m = pool.metrics();
        assert!(m.arena_hits() >= 10, "ten warm checkouts at minimum");
        assert_eq!(m.arena_bytes(), pool.workspace().stats().grown_bytes);
    }

    #[test]
    fn adaptive_grain_floors_small_inputs_to_one_block() {
        // A 100-element scan on the default pool is below the cost-model
        // floor: one block, zero forks — but the same input on a pinned
        // grain-1 pool still forks the legacy 4p-way.
        let pool = PalPool::new(4).unwrap();
        assert_eq!(pool.chunk_count(100), 1);
        let input: Vec<u64> = (0..100).collect();
        pool.scan(&input, 0, |a, b| a + b);
        assert_metrics_consistent(pool.metrics(), 0);

        let legacy = PalPool::builder()
            .processors(4)
            .no_adaptive_grain()
            .build()
            .unwrap();
        assert_eq!(legacy.chunk_count(100), 16);
        legacy.scan(&input, 0, |a, b| a + b);
        assert_metrics_consistent(legacy.metrics(), 2 * 15);
    }
}
