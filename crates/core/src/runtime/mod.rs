//! The pal-thread runtime.
//!
//! Paper §3.1 describes two thread kinds.  *Standard threads* behave like OS
//! threads and are simply `std::thread` here.  *Pal-threads* (Parallel
//! ALgorithmic threads) are created into an ordered tree; the scheduler keeps
//! at least one of them running, grants processors to pending pal-threads in
//! an order consistent with creation (parent–child / pre-order) order as
//! cores free up, and — once a thread has been activated — never suspends it
//! again.  A pal-thread that is never granted a core is executed by its
//! parent, in creation order.  The net effect (Figure 2) is that a recursive
//! algorithm occupies the `p` processors with one subtree of size
//! `n / b^{log_a p}` each and runs sequentially below that depth.
//!
//! Two executors realise these semantics on real hardware:
//!
//! * [`PalPool`] (default) — a bounded work-stealing pool of exactly `p`
//!   persistent workers over lock-free Chase–Lev deques.  A fork's second
//!   child is pushed onto the forking worker's deque as a *pending*
//!   pal-thread; idle workers steal the oldest pending pal-thread first
//!   (creation order), a parent whose fork was stolen helps with other
//!   pending work instead of parking (help-first join), and a fork nobody
//!   stole is popped back and run inline by its creator.  So the
//!   spawn-vs-inline decision is made at *activation* time — exactly the
//!   "pending pal-threads are activated … as resources become available"
//!   rule — and every decision is counted in [`PalPool::metrics`].  On top
//!   of that sits the paper's throttle: forks below the top `⌈α·log₂ p⌉`
//!   recursion levels — the depth past which Figure 2 guarantees no
//!   processor can ever be free for them — are *elided* into plain
//!   sequential calls that never touch the scheduler at all (see the
//!   [`pool`](self) module docs).  This is the executor all algorithm
//!   crates use and the one whose speedups the experiment harness reports.
//! * [`ThrottledPool`] (ablation) — an eager variant that decides
//!   *at creation time* whether a pal-thread gets its own processor or is
//!   folded into its parent, and never revisits the decision.  It
//!   deliberately lacks the migration rule; experiment E12
//!   (`table_scheduler_ablation`) uses it to quantify what that rule buys.
//!   Its committed pal-threads travel through the *same* work-stealing
//!   runtime (`p − 1` persistent workers), so E12 compares scheduling
//!   policies, not queue implementations.
//!
//! The step-accurate, deterministic implementation of the paper's activation
//! tree (the one that reproduces Figure 1 literally) is in the `lopram-sim`
//! crate.

pub mod cancel;
mod pool;
mod primitives;
mod throttled;
mod tokens;
pub mod trace;
mod workspace;

pub use cancel::{run_cancellable, CancelReason, CancelToken};
pub use pool::{PalPool, PalPoolBuilder, PalScope};
// Runtime health and chaos-injection types, defined by the work-stealing
// runtime shim and surfaced through `PalPool::health` /
// `PalPoolBuilder::chaos`.
pub use primitives::Scan;
pub use rayon::{ChaosConfig, PoolHealth, SelfHeal};
pub use throttled::{ThrottledPool, ThrottledPoolBuilder, ThrottledScope};
pub use tokens::{Permit, ProcessorTokens};
pub use trace::{DagTrace, TraceConfig, TraceEvent, TraceSummary};
pub use workspace::{Workspace, WorkspaceGuard, WorkspaceStats};
