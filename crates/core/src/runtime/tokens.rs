//! Processor tokens: the bounded-degree admission control of the *eager*
//! pal-thread scheduler.
//!
//! Only the [`ThrottledPool`](crate::ThrottledPool) ablation uses these
//! tokens (spawn-or-inline decided once, at creation); they are its
//! *policy*, while the shared work-stealing runtime is its transport.  The
//! default [`PalPool`](crate::PalPool) does not use them: its admission
//! control is the work-stealing runtime itself — `p` persistent workers, so
//! at most `p` pal-threads execute concurrently, with pending forks queued
//! rather than folded away (and forks below the α·log p cutoff depth never
//! created at all).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A counting semaphore over "extra processors".
///
/// A LoPRAM with `p` processors hands `p − 1` tokens to the pool (the thread
/// that calls into the pool is itself the remaining processor).  Acquisition
/// never blocks: if no token is available the pal-thread is executed inline
/// by its parent, which is precisely the scheduler rule of §3.1.
#[derive(Debug)]
pub struct ProcessorTokens {
    free: AtomicUsize,
    total: usize,
    /// High-water mark of simultaneously acquired tokens, for tests and the
    /// experiment harness.
    peak_in_use: AtomicUsize,
}

impl ProcessorTokens {
    /// Create a token pool with `extra` tokens (i.e. for `extra + 1` processors).
    pub fn new(extra: usize) -> Arc<Self> {
        Arc::new(ProcessorTokens {
            free: AtomicUsize::new(extra),
            total: extra,
            peak_in_use: AtomicUsize::new(0),
        })
    }

    /// Total number of tokens managed by this pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of tokens currently free.
    pub fn free(&self) -> usize {
        self.free.load(Ordering::Acquire)
    }

    /// Largest number of tokens ever simultaneously in use.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use.load(Ordering::Relaxed)
    }

    /// Try to acquire a token without blocking.
    ///
    /// Returns a `Permit` that releases the token when dropped (including
    /// on panic), or `None` if every processor is busy.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.free.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self
                .free
                .compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let in_use = self.total - (cur - 1);
                    self.peak_in_use.fetch_max(in_use, Ordering::Relaxed);
                    return Some(Permit {
                        tokens: Arc::clone(self),
                    });
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn release(&self) {
        self.free.fetch_add(1, Ordering::AcqRel);
    }
}

/// RAII guard for one processor token.
#[derive(Debug)]
pub struct Permit {
    tokens: Arc<ProcessorTokens>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.tokens.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_release() {
        let t = ProcessorTokens::new(2);
        assert_eq!(t.total(), 2);
        assert_eq!(t.free(), 2);
        let p1 = t.try_acquire().expect("first token");
        let p2 = t.try_acquire().expect("second token");
        assert!(t.try_acquire().is_none());
        assert_eq!(t.free(), 0);
        drop(p1);
        assert_eq!(t.free(), 1);
        assert!(t.try_acquire().is_some());
        drop(p2);
    }

    #[test]
    fn zero_tokens_never_acquire() {
        let t = ProcessorTokens::new(0);
        assert!(t.try_acquire().is_none());
        assert_eq!(t.free(), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let t = ProcessorTokens::new(3);
        let a = t.try_acquire().unwrap();
        let b = t.try_acquire().unwrap();
        assert_eq!(t.peak_in_use(), 2);
        drop(a);
        drop(b);
        let _c = t.try_acquire().unwrap();
        // Peak stays at its maximum even after tokens are released.
        assert_eq!(t.peak_in_use(), 2);
    }

    #[test]
    fn permit_released_on_panic() {
        let t = ProcessorTokens::new(1);
        let t2 = Arc::clone(&t);
        let result = std::panic::catch_unwind(move || {
            let _p = t2.try_acquire().unwrap();
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(t.free(), 1, "token must be returned when the holder panics");
    }

    #[test]
    fn concurrent_acquisition_never_oversubscribes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let t = ProcessorTokens::new(4);
        let in_use = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..16 {
                let t = Arc::clone(&t);
                let in_use = Arc::clone(&in_use);
                let max_seen = Arc::clone(&max_seen);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Some(p) = t.try_acquire() {
                            let now = in_use.fetch_add(1, Ordering::SeqCst) + 1;
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            in_use.fetch_sub(1, Ordering::SeqCst);
                            drop(p);
                        }
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 4);
        assert_eq!(t.free(), 4);
    }
}
