//! Execution tracing: capturing the pal-thread DAG of a real
//! [`PalPool`](super::PalPool) run.
//!
//! The runtime's counters ([`RunMetrics`](crate::RunMetrics)) say *how
//! many* pal-threads were spawned, inlined, elided or stolen — but not
//! *where in the computation* those events happened.  This module records
//! the events themselves: every fork creation point, every activation of
//! a scheduled pal-thread on a concrete worker, and every blocked
//! data-parallel pass, stamped with logical Lamport-style timestamps so
//! the happens-before structure survives without a single `Instant` read
//! on the hot path.  A drained [`DagTrace`] is the input to the
//! deterministic replayer in `crates/sim`, which re-schedules the
//! recorded DAG under arbitrary `(p, α, grain)` — a what-if scheduler lab
//! that works even on a one-CPU host.
//!
//! # Recording model
//!
//! Tracing is opt-in per pool
//! ([`PalPoolBuilder::trace`](super::PalPoolBuilder::trace)); a pool built
//! without it carries no trace state and every hook compiles down to one
//! `Option` branch — the allocation-free steady state is untouched.  When
//! enabled, the pool owns one fixed-capacity `EventLog` per worker plus
//! one for external (non-worker) threads.  A worker is the only writer of
//! its own log, so an append is two relaxed stores and one release store
//! of the length — no locks, no CAS, no allocation; the external log is
//! shared by arbitrary caller threads and serialized by a mutex (a cold
//! path: only top-level forks run there).  Log pages are preallocated
//! through the pool's [`Workspace`] arena at build
//! time, so their bytes appear in the `arena_bytes` accounting and a full
//! capture/drain cycle allocates nothing.  A full log **drops** further
//! events (counted in [`DagTrace::dropped`]) rather than blocking or
//! reallocating.
//!
//! # Event vocabulary
//!
//! | event | emitted at | meaning |
//! |-------|-----------|---------|
//! | [`Fork`](TraceEvent::Fork)   | `join` call site | two children created (or elided) |
//! | [`Spawn`](TraceEvent::Spawn) | `scope.spawn` call site | one child created (or elided) |
//! | [`Enter`](TraceEvent::Enter) | scheduled child starts | which worker activated it |
//! | [`Exit`](TraceEvent::Exit)   | scheduled child returns | completion stamp |
//! | [`Pass`](TraceEvent::Pass)   | blocked primitive pass | `(len, chunks)` of one parallel pass |
//!
//! Elided children run inline in their parent, so they get no
//! `Enter`/`Exit` (their creation point carries the `elided` flag).
//! Steals are not a separate event: a scheduled fork's second child was
//! stolen iff its `Enter` names a different worker than its sibling's —
//! the sibling always runs on the thread that pushed the pending child.
//! [`DagTrace::summary`] performs exactly that reconstruction, and the
//! property suites assert it reproduces the pool's `RunMetrics` totals.
//!
//! # Serialized format
//!
//! [`DagTrace::to_text`] emits a stable, versioned, line-oriented text
//! format (documented on the method and in `ARCHITECTURE.md`) that
//! [`DagTrace::from_text`] parses back losslessly; traces can be written
//! to disk by one process and replayed by another, including across
//! future format versions (the header names the version).

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use super::workspace::Workspace;
use crate::error::{Error, Result};

/// Version number written into (and required from) the serialized trace
/// format; bump on any change to the event vocabulary or encoding.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Worker id recorded for events emitted by threads that are not workers
/// of the traced pool (the external caller driving the computation).
pub const EXTERNAL_WORKER: u16 = u16::MAX;

/// Node id of the implicit root: the external calling context that every
/// top-level fork or spawn hangs off.  Never allocated to a pal-thread.
pub const ROOT_NODE: u32 = 0;

const WORDS_PER_EVENT: usize = 4;

/// Configuration for [`PalPoolBuilder::trace`](super::PalPoolBuilder::trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Events each per-worker buffer can hold before further events from
    /// that worker are dropped (counted in [`DagTrace::dropped`], never
    /// blocking the computation).  One event is four `u64` words, so the
    /// default of `2^16` events costs 2 MiB per worker.
    pub capacity_per_worker: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity_per_worker: 1 << 16,
        }
    }
}

/// One decoded trace event; see the [module docs](self) for the
/// vocabulary and the steal-reconstruction rule.
///
/// All timestamps are logical (Lamport) clocks: each thread ticks its own
/// counter per event, and a child's clock starts just after its creation
/// stamp, so `ts` orders causally-related events while unrelated events
/// may tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A two-way fork: a [`join`](super::PalPool::join) call site created
    /// children `left` and `right` under `parent`.
    Fork {
        /// Logical timestamp at the call site.
        ts: u64,
        /// Worker that executed the call site ([`EXTERNAL_WORKER`] for a
        /// non-worker thread).  For steal classification use the
        /// children's [`Enter`](TraceEvent::Enter) workers, not this —
        /// an external caller's children still run on pool workers.
        worker: u16,
        /// Node id of the pal-thread that forked ([`ROOT_NODE`] at top
        /// level).
        parent: u32,
        /// Node id of the first child (`a`, runs on the forking thread
        /// when scheduled).
        left: u32,
        /// Node id of the second child (`b`, the pending pal-thread).
        right: u32,
        /// Recursion depth of the call site (children are at `depth + 1`).
        depth: u32,
        /// `true` when the fork was elided by the `⌈α·log₂ p⌉` throttle:
        /// both children ran as plain sequential calls, no `Enter`/`Exit`.
        elided: bool,
    },
    /// A one-way spawn: a [`PalScope::spawn`](super::PalScope::spawn)
    /// call site created `child` under `parent`.
    Spawn {
        /// Logical timestamp at the call site.
        ts: u64,
        /// Worker that executed the call site — the *spawner* — or
        /// [`EXTERNAL_WORKER`].  Unlike [`Fork`](TraceEvent::Fork), this
        /// worker is authoritative for steal classification: a spawned
        /// child is stolen iff its `Enter` worker differs from a
        /// non-external spawner.
        worker: u16,
        /// Node id of the spawning pal-thread ([`ROOT_NODE`] for the
        /// scope body running outside any pal-thread).
        parent: u32,
        /// Node id of the created pal-thread.
        child: u32,
        /// Recursion depth of the call site.
        depth: u32,
        /// `true` when the spawn was elided (ran inline, no
        /// `Enter`/`Exit`).
        elided: bool,
    },
    /// A scheduled pal-thread began executing on a worker.
    Enter {
        /// Logical timestamp on the executing thread.
        ts: u64,
        /// Worker that activated the pal-thread.
        worker: u16,
        /// The pal-thread's node id.
        node: u32,
    },
    /// A scheduled pal-thread finished executing.  Absent when the
    /// pal-thread panicked (the panic propagates; its `Exit` is the one
    /// event a complete trace may legitimately lack).
    Exit {
        /// Logical timestamp on the executing thread.
        ts: u64,
        /// Worker that ran the pal-thread.
        worker: u16,
        /// The pal-thread's node id.
        node: u32,
    },
    /// One blocked data-parallel pass (scan/pack/expand/map_collect/
    /// reduce_by_index) over `len` elements in `chunks` blocks — the
    /// replayer uses these to recount the pass's `chunks − 1` forks under
    /// a different `(p, grain)`.
    Pass {
        /// Logical timestamp at the pass entry.
        ts: u64,
        /// Worker that issued the pass ([`EXTERNAL_WORKER`] for an
        /// external caller).
        worker: u16,
        /// Number of elements the pass covers.
        len: u64,
        /// Number of blocks the pool's grain policy chose at capture time.
        chunks: u32,
    },
}

const KIND_FORK: u64 = 1;
const KIND_SPAWN: u64 = 2;
const KIND_ENTER: u64 = 3;
const KIND_EXIT: u64 = 4;
const KIND_PASS: u64 = 5;
const FLAG_ELIDED: u64 = 1;

impl TraceEvent {
    /// The event's logical timestamp.
    pub fn ts(&self) -> u64 {
        match *self {
            TraceEvent::Fork { ts, .. }
            | TraceEvent::Spawn { ts, .. }
            | TraceEvent::Enter { ts, .. }
            | TraceEvent::Exit { ts, .. }
            | TraceEvent::Pass { ts, .. } => ts,
        }
    }

    /// The worker that emitted the event.
    pub fn worker(&self) -> u16 {
        match *self {
            TraceEvent::Fork { worker, .. }
            | TraceEvent::Spawn { worker, .. }
            | TraceEvent::Enter { worker, .. }
            | TraceEvent::Exit { worker, .. }
            | TraceEvent::Pass { worker, .. } => worker,
        }
    }

    /// Pack into the four-word in-memory log encoding: `w0 = ts`,
    /// `w1 = two node ids`, `w2 = kind | worker | flags | depth-or-chunks`,
    /// `w3 = parent-or-len`.
    fn encode(&self) -> [u64; WORDS_PER_EVENT] {
        let meta = |kind: u64, worker: u16, flags: u64, aux: u32| {
            kind | ((worker as u64) << 8) | (flags << 24) | ((aux as u64) << 32)
        };
        match *self {
            TraceEvent::Fork {
                ts,
                worker,
                parent,
                left,
                right,
                depth,
                elided,
            } => [
                ts,
                ((left as u64) << 32) | right as u64,
                meta(
                    KIND_FORK,
                    worker,
                    if elided { FLAG_ELIDED } else { 0 },
                    depth,
                ),
                parent as u64,
            ],
            TraceEvent::Spawn {
                ts,
                worker,
                parent,
                child,
                depth,
                elided,
            } => [
                ts,
                (child as u64) << 32,
                meta(
                    KIND_SPAWN,
                    worker,
                    if elided { FLAG_ELIDED } else { 0 },
                    depth,
                ),
                parent as u64,
            ],
            TraceEvent::Enter { ts, worker, node } => {
                [ts, (node as u64) << 32, meta(KIND_ENTER, worker, 0, 0), 0]
            }
            TraceEvent::Exit { ts, worker, node } => {
                [ts, (node as u64) << 32, meta(KIND_EXIT, worker, 0, 0), 0]
            }
            TraceEvent::Pass {
                ts,
                worker,
                len,
                chunks,
            } => [ts, 0, meta(KIND_PASS, worker, 0, chunks), len],
        }
    }

    /// Inverse of [`encode`](TraceEvent::encode); `None` on an
    /// uninitialized (all-zero kind) slot.
    fn decode(w: [u64; WORDS_PER_EVENT]) -> Option<TraceEvent> {
        let ts = w[0];
        let kind = w[2] & 0xff;
        let worker = ((w[2] >> 8) & 0xffff) as u16;
        let flags = (w[2] >> 24) & 0xff;
        let aux = (w[2] >> 32) as u32;
        let id_a = (w[1] >> 32) as u32;
        let id_b = w[1] as u32;
        match kind {
            KIND_FORK => Some(TraceEvent::Fork {
                ts,
                worker,
                parent: w[3] as u32,
                left: id_a,
                right: id_b,
                depth: aux,
                elided: flags & FLAG_ELIDED != 0,
            }),
            KIND_SPAWN => Some(TraceEvent::Spawn {
                ts,
                worker,
                parent: w[3] as u32,
                child: id_a,
                depth: aux,
                elided: flags & FLAG_ELIDED != 0,
            }),
            KIND_ENTER => Some(TraceEvent::Enter {
                ts,
                worker,
                node: id_a,
            }),
            KIND_EXIT => Some(TraceEvent::Exit {
                ts,
                worker,
                node: id_a,
            }),
            KIND_PASS => Some(TraceEvent::Pass {
                ts,
                worker,
                len: w[3],
                chunks: aux,
            }),
            _ => None,
        }
    }
}

/// A fixed-capacity, single-writer, lock-free append log of encoded
/// events.
///
/// The owning worker is the only thread that appends (external threads
/// share one log behind a mutex in [`TraceState`]), so publication needs
/// no CAS: the writer stores the event words relaxed, then publishes with
/// a release store of the new length; the drainer acquires the length and
/// reads everything below it.  Appends beyond capacity are counted in
/// `dropped` and discarded.
#[derive(Debug)]
struct EventLog {
    /// Flat event storage, `WORDS_PER_EVENT` words per slot.  `AtomicU64`
    /// cells keep the concurrent drain race-free in safe Rust; on the
    /// single-writer fast path they cost the same as plain stores.
    words: Vec<AtomicU64>,
    /// Number of published events; release-stored by the writer.
    len: AtomicUsize,
    /// Events discarded because the log was full.
    dropped: AtomicU64,
}

impl EventLog {
    /// Build a log for `events` events, routing the page through the
    /// workspace arena so the preallocation is arena-owned: its bytes
    /// show up in the pool's `arena_bytes` metric and the page returns to
    /// the shelf when the pool drops the trace state.
    fn preallocated(ws: &Workspace, events: usize) -> Self {
        let words = events.saturating_mul(WORDS_PER_EVENT);
        // Grow the arena slot to the required capacity first, so the
        // growth is recorded at put; then re-take the warm allocation and
        // fill it within capacity (no further allocation).
        let mut page: Vec<AtomicU64> = ws.take_buffer();
        let cap_at_take = page.capacity();
        page.reserve_exact(words);
        ws.put_buffer(page, cap_at_take);
        let mut page: Vec<AtomicU64> = ws.take_buffer();
        page.resize_with(words, || AtomicU64::new(0));
        EventLog {
            words: page,
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one encoded event (single writer per log).
    #[inline]
    fn append(&self, words: [u64; WORDS_PER_EVENT]) {
        let idx = self.len.load(Ordering::Relaxed);
        let base = idx * WORDS_PER_EVENT;
        if base + WORDS_PER_EVENT > self.words.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (k, w) in words.into_iter().enumerate() {
            self.words[base + k].store(w, Ordering::Relaxed);
        }
        self.len.store(idx + 1, Ordering::Release);
    }

    /// Decode all published events into `out`, reset the log, and return
    /// how many events were dropped since the last drain.
    fn drain_into(&self, out: &mut Vec<TraceEvent>) -> u64 {
        let n = self.len.load(Ordering::Acquire);
        for i in 0..n {
            let base = i * WORDS_PER_EVENT;
            let mut w = [0u64; WORDS_PER_EVENT];
            for (k, slot) in w.iter_mut().enumerate() {
                *slot = self.words[base + k].load(Ordering::Relaxed);
            }
            if let Some(ev) = TraceEvent::decode(w) {
                out.push(ev);
            }
        }
        self.len.store(0, Ordering::Relaxed);
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

/// Per-pool tracer state: one [`EventLog`] per worker plus an external
/// slot, the node-id allocator, and the capture configuration.
#[derive(Debug)]
pub(super) struct TraceState {
    /// `processors + 1` logs; index `processors` is the shared external
    /// slot, serialized by [`external`](TraceState::external).
    logs: Box<[EventLog]>,
    /// Serializes appends by non-worker threads into the external log.
    external: Mutex<()>,
    /// Next pal-thread node id; [`ROOT_NODE`] (0) is never handed out.
    next_node: AtomicU32,
    /// Capture configuration, echoed into drained traces.
    config: TraceConfig,
}

impl TraceState {
    pub(super) fn new(processors: usize, config: TraceConfig, ws: &Workspace) -> Self {
        let logs: Vec<EventLog> = (0..processors + 1)
            .map(|_| EventLog::preallocated(ws, config.capacity_per_worker))
            .collect();
        TraceState {
            logs: logs.into_boxed_slice(),
            external: Mutex::new(()),
            next_node: AtomicU32::new(ROOT_NODE + 1),
            config,
        }
    }

    /// Allocate ids for the two children of a fork.
    #[inline]
    pub(super) fn alloc_pair(&self) -> (u32, u32) {
        let base = self.next_node.fetch_add(2, Ordering::Relaxed);
        (base, base.wrapping_add(1))
    }

    /// Allocate an id for a spawned child.
    #[inline]
    pub(super) fn alloc_node(&self) -> u32 {
        self.next_node.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one event from worker `slot` (`None` for external threads).
    #[inline]
    pub(super) fn record(&self, slot: Option<usize>, ev: TraceEvent) {
        match slot {
            Some(i) => self.logs[i].append(ev.encode()),
            None => {
                let _serialized = self.external.lock();
                self.logs[self.logs.len() - 1].append(ev.encode());
            }
        }
    }

    /// Drain every log into a [`DagTrace`] and reset the tracer for the
    /// next capture window (event pages are reused in place, node ids
    /// restart at 1).  The pages stay checked out of the arena for the
    /// pool's whole lifetime — their one-time growth is what the
    /// steady-state arena tests see at build time, and nothing after.
    pub(super) fn drain(&self, processors: usize, cutoff: Option<usize>) -> DagTrace {
        let _serialized = self.external.lock();
        let mut events = Vec::new();
        let mut dropped = 0;
        for log in self.logs.iter() {
            dropped += log.drain_into(&mut events);
        }
        self.next_node.store(ROOT_NODE + 1, Ordering::Relaxed);
        // Stable sort: causally-ordered events keep their clock order,
        // same-stamp events from one worker keep their log order.
        events.sort_by_key(|ev| ev.ts());
        DagTrace {
            version: TRACE_FORMAT_VERSION,
            processors,
            cutoff,
            capacity_per_worker: self.config.capacity_per_worker,
            events,
            dropped,
        }
    }
}

/// A captured pal-thread execution DAG: the drained, sorted event stream
/// of one capture window, plus the pool configuration it was captured
/// under.  Produced by [`PalPool::take_trace`](super::PalPool::take_trace),
/// consumed by the `lopram-sim` replayer; serialized with
/// [`to_text`](DagTrace::to_text) / [`from_text`](DagTrace::from_text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagTrace {
    /// Format version ([`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// Processor count `p` of the capturing pool.
    pub processors: usize,
    /// The capturing pool's elision cutoff depth (`None`: throttle off).
    pub cutoff: Option<usize>,
    /// Per-worker event-buffer capacity the capture ran with.
    pub capacity_per_worker: usize,
    /// All recorded events, sorted by logical timestamp (stable).
    pub events: Vec<TraceEvent>,
    /// Events discarded because a per-worker buffer filled up.  A trace
    /// with `dropped > 0` is still replayable but its totals undercount.
    pub dropped: u64,
}

impl DagTrace {
    /// `true` when no event was lost to a full buffer — the precondition
    /// for the exact-accounting guarantees of [`summary`](DagTrace::summary).
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Reconstruct the pool's fork-accounting totals from the event
    /// stream alone.
    ///
    /// On a complete trace of a quiesced pool this reproduces the
    /// [`RunMetrics`](crate::RunMetrics) deltas of the capture window
    /// *exactly* — same `forks`, `elided`, `spawned`, `inlined` and
    /// `steals` — which is what the replay property suites assert.  On an
    /// incomplete trace (or one with in-flight work) creation points
    /// whose `Enter` events are missing are tallied as
    /// [`unclassified`](TraceSummary::unclassified) instead of guessed.
    pub fn summary(&self) -> TraceSummary {
        // Map node id -> worker that entered it.  Ids are dense and
        // small (they count pal-threads), so a flat table beats a map.
        let max_id = self
            .events
            .iter()
            .map(|ev| match *ev {
                TraceEvent::Fork { right, .. } => right,
                TraceEvent::Spawn { child, .. } => child,
                TraceEvent::Enter { node, .. } | TraceEvent::Exit { node, .. } => node,
                TraceEvent::Pass { .. } => 0,
            })
            .max()
            .unwrap_or(0);
        let mut entered: Vec<u16> = vec![EXTERNAL_WORKER; max_id as usize + 1];
        let mut seen: Vec<bool> = vec![false; max_id as usize + 1];
        for ev in &self.events {
            if let TraceEvent::Enter { worker, node, .. } = *ev {
                entered[node as usize] = worker;
                seen[node as usize] = true;
            }
        }
        let enter_worker = |node: u32| -> Option<u16> {
            seen.get(node as usize)
                .copied()
                .unwrap_or(false)
                .then(|| entered[node as usize])
        };

        let mut s = TraceSummary::default();
        for ev in &self.events {
            match *ev {
                TraceEvent::Fork {
                    left,
                    right,
                    elided,
                    ..
                } => {
                    s.forks += 1;
                    if elided {
                        s.elided += 1;
                    } else {
                        s.scheduled += 1;
                        // `left` runs on the thread that pushed `right`
                        // as a pending job (even for external call sites,
                        // which trampoline onto a worker), so comparing
                        // the two Enter workers decides stolen-vs-inlined.
                        match (enter_worker(left), enter_worker(right)) {
                            (Some(wl), Some(wr)) if wl == wr => s.inlined += 1,
                            (Some(_), Some(_)) => {
                                s.spawned += 1;
                                s.steals += 1;
                            }
                            _ => s.unclassified += 1,
                        }
                    }
                }
                TraceEvent::Spawn {
                    worker,
                    child,
                    elided,
                    ..
                } => {
                    s.forks += 1;
                    if elided {
                        s.elided += 1;
                    } else {
                        s.scheduled += 1;
                        if worker == EXTERNAL_WORKER {
                            // Injected from outside the pool: always runs
                            // on a worker, but nothing migrated.
                            s.spawned += 1;
                            s.injected += 1;
                        } else {
                            match enter_worker(child) {
                                Some(w) if w == worker => s.inlined += 1,
                                Some(_) => {
                                    s.spawned += 1;
                                    s.steals += 1;
                                }
                                None => s.unclassified += 1,
                            }
                        }
                    }
                }
                TraceEvent::Pass { chunks, .. } => {
                    s.passes += 1;
                    s.pass_forks += u64::from(chunks.saturating_sub(1));
                }
                TraceEvent::Enter { .. } | TraceEvent::Exit { .. } => {}
            }
        }
        s
    }

    /// Serialize to the stable line-oriented text format.
    ///
    /// ```text
    /// lopram-dagtrace 1            # magic + format version
    /// processors 4
    /// cutoff 4                     # or: cutoff none
    /// capacity 65536
    /// dropped 0
    /// events 123                   # exactly this many event lines follow
    /// F <ts> <worker> <parent> <left> <right> <depth> <elided 0|1>
    /// S <ts> <worker> <parent> <child> <depth> <elided 0|1>
    /// B <ts> <worker> <node>       # Enter ("begin")
    /// E <ts> <worker> <node>       # Exit
    /// P <ts> <worker> <len> <chunks>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(32 * self.events.len() + 128);
        out.push_str(&format!("lopram-dagtrace {}\n", self.version));
        out.push_str(&format!("processors {}\n", self.processors));
        match self.cutoff {
            Some(c) => out.push_str(&format!("cutoff {c}\n")),
            None => out.push_str("cutoff none\n"),
        }
        out.push_str(&format!("capacity {}\n", self.capacity_per_worker));
        out.push_str(&format!("dropped {}\n", self.dropped));
        out.push_str(&format!("events {}\n", self.events.len()));
        for ev in &self.events {
            match *ev {
                TraceEvent::Fork {
                    ts,
                    worker,
                    parent,
                    left,
                    right,
                    depth,
                    elided,
                } => out.push_str(&format!(
                    "F {ts} {worker} {parent} {left} {right} {depth} {}\n",
                    elided as u8
                )),
                TraceEvent::Spawn {
                    ts,
                    worker,
                    parent,
                    child,
                    depth,
                    elided,
                } => out.push_str(&format!(
                    "S {ts} {worker} {parent} {child} {depth} {}\n",
                    elided as u8
                )),
                TraceEvent::Enter { ts, worker, node } => {
                    out.push_str(&format!("B {ts} {worker} {node}\n"))
                }
                TraceEvent::Exit { ts, worker, node } => {
                    out.push_str(&format!("E {ts} {worker} {node}\n"))
                }
                TraceEvent::Pass {
                    ts,
                    worker,
                    len,
                    chunks,
                } => out.push_str(&format!("P {ts} {worker} {len} {chunks}\n")),
            }
        }
        out
    }

    /// Parse a trace serialized by [`to_text`](DagTrace::to_text).
    ///
    /// Returns [`Error::InvalidInput`] on a bad magic line, an
    /// unsupported version, a malformed header field or event line, or an
    /// event count that does not match the header.
    pub fn from_text(text: &str) -> Result<DagTrace> {
        let bad =
            |what: &str, line: &str| Error::InvalidInput(format!("dagtrace: {what}: {line:?}"));
        let mut lines = text.lines();
        let magic = lines.next().unwrap_or("");
        let version: u32 = magic
            .strip_prefix("lopram-dagtrace ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| bad("bad magic line", magic))?;
        if version != TRACE_FORMAT_VERSION {
            return Err(Error::InvalidInput(format!(
                "dagtrace: unsupported format version {version} (supported: {TRACE_FORMAT_VERSION})"
            )));
        }
        let mut header = |key: &str| -> Result<String> {
            let line = lines.next().unwrap_or("");
            line.strip_prefix(key)
                .map(|v| v.trim().to_string())
                .ok_or_else(|| bad("bad header line", line))
        };
        let processors: usize = header("processors ")?
            .parse()
            .map_err(|_| bad("bad processors", text))?;
        let cutoff_raw = header("cutoff ")?;
        let cutoff = if cutoff_raw == "none" {
            None
        } else {
            Some(
                cutoff_raw
                    .parse()
                    .map_err(|_| bad("bad cutoff", &cutoff_raw))?,
            )
        };
        let capacity_per_worker: usize = header("capacity ")?
            .parse()
            .map_err(|_| bad("bad capacity", text))?;
        let dropped: u64 = header("dropped ")?
            .parse()
            .map_err(|_| bad("bad dropped", text))?;
        let count: usize = header("events ")?
            .parse()
            .map_err(|_| bad("bad event count", text))?;

        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| bad("missing event line", "<eof>"))?;
            let mut parts = line.split_ascii_whitespace();
            let tag = parts.next().ok_or_else(|| bad("empty event line", line))?;
            let mut field = |_name: &str| -> Result<u64> {
                parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad event field", line))
            };
            let ev = match tag {
                "F" => TraceEvent::Fork {
                    ts: field("ts")?,
                    worker: field("worker")? as u16,
                    parent: field("parent")? as u32,
                    left: field("left")? as u32,
                    right: field("right")? as u32,
                    depth: field("depth")? as u32,
                    elided: field("elided")? != 0,
                },
                "S" => TraceEvent::Spawn {
                    ts: field("ts")?,
                    worker: field("worker")? as u16,
                    parent: field("parent")? as u32,
                    child: field("child")? as u32,
                    depth: field("depth")? as u32,
                    elided: field("elided")? != 0,
                },
                "B" => TraceEvent::Enter {
                    ts: field("ts")?,
                    worker: field("worker")? as u16,
                    node: field("node")? as u32,
                },
                "E" => TraceEvent::Exit {
                    ts: field("ts")?,
                    worker: field("worker")? as u16,
                    node: field("node")? as u32,
                },
                "P" => TraceEvent::Pass {
                    ts: field("ts")?,
                    worker: field("worker")? as u16,
                    len: field("len")?,
                    chunks: field("chunks")? as u32,
                },
                _ => return Err(bad("unknown event tag", line)),
            };
            if parts.next().is_some() {
                return Err(bad("trailing event fields", line));
            }
            events.push(ev);
        }
        Ok(DagTrace {
            version,
            processors,
            cutoff,
            capacity_per_worker,
            events,
            dropped,
        })
    }
}

/// Fork-accounting totals reconstructed from a [`DagTrace`] by
/// [`DagTrace::summary`]; field names match [`RunMetrics`](crate::RunMetrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total creation points: `Fork` + `Spawn` events
    /// (`= elided + scheduled`).
    pub forks: u64,
    /// Creation points elided by the `⌈α·log₂ p⌉` throttle.
    pub elided: u64,
    /// Creation points that reached the scheduler
    /// (`= spawned + inlined + unclassified`).
    pub scheduled: u64,
    /// Scheduled pal-threads granted a processor other than their
    /// creator's activation (`= steals + injected`).
    pub spawned: u64,
    /// Scheduled pal-threads executed by their creator.
    pub inlined: u64,
    /// Spawned pal-threads that migrated between pool workers.
    pub steals: u64,
    /// Spawned pal-threads injected by external (non-worker) threads.
    pub injected: u64,
    /// Scheduled creation points whose children's `Enter` events are
    /// missing (dropped events or in-flight work); zero on a complete
    /// trace of a quiesced pool.
    pub unclassified: u64,
    /// Number of blocked data-parallel passes recorded.
    pub passes: u64,
    /// Sum over passes of `chunks − 1` — the forks attributable to
    /// blocked-primitive blocking, the part of `forks` that the replayer
    /// recounts under a different `(p, grain)`.
    pub pass_forks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> DagTrace {
        DagTrace {
            version: TRACE_FORMAT_VERSION,
            processors: 2,
            cutoff: Some(2),
            capacity_per_worker: 1 << 16,
            events: vec![
                TraceEvent::Fork {
                    ts: 1,
                    worker: EXTERNAL_WORKER,
                    parent: ROOT_NODE,
                    left: 1,
                    right: 2,
                    depth: 0,
                    elided: false,
                },
                TraceEvent::Enter {
                    ts: 2,
                    worker: 0,
                    node: 1,
                },
                TraceEvent::Enter {
                    ts: 2,
                    worker: 1,
                    node: 2,
                },
                TraceEvent::Fork {
                    ts: 3,
                    worker: 0,
                    parent: 1,
                    left: 3,
                    right: 4,
                    depth: 1,
                    elided: true,
                },
                TraceEvent::Exit {
                    ts: 4,
                    worker: 0,
                    node: 1,
                },
                TraceEvent::Exit {
                    ts: 4,
                    worker: 1,
                    node: 2,
                },
                TraceEvent::Pass {
                    ts: 5,
                    worker: EXTERNAL_WORKER,
                    len: 4096,
                    chunks: 8,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let trace = sample_trace();
        let text = trace.to_text();
        let back = DagTrace::from_text(&text).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(DagTrace::from_text("").is_err());
        assert!(DagTrace::from_text("lopram-dagtrace 999\n").is_err());
        let mut text = sample_trace().to_text();
        text.push_str("X 1 2 3\n");
        // Trailing junk after the declared events is ignored by design
        // (the header's event count is authoritative), but a corrupted
        // event line inside the count is not.
        let bad = text.replace("F 1 65535 0 1 2 0 0", "F 1 65535 0 1");
        assert!(DagTrace::from_text(&bad).is_err());
    }

    #[test]
    fn summary_classifies_steals_inlines_and_elisions() {
        let mut trace = sample_trace();
        let s = trace.summary();
        assert_eq!(s.forks, 2);
        assert_eq!(s.elided, 1);
        assert_eq!(s.scheduled, 1);
        assert_eq!(s.steals, 1, "children entered on different workers");
        assert_eq!(s.spawned, 1);
        assert_eq!(s.inlined, 0);
        assert_eq!(s.unclassified, 0);
        assert_eq!(s.passes, 1);
        assert_eq!(s.pass_forks, 7);

        // Same trace, but the right child entered on the left's worker:
        // an inline, not a steal.
        for ev in &mut trace.events {
            if let TraceEvent::Enter {
                worker, node: 2, ..
            } = ev
            {
                *worker = 0;
            }
        }
        let s = trace.summary();
        assert_eq!(s.inlined, 1);
        assert_eq!(s.steals, 0);
    }

    #[test]
    fn event_encoding_roundtrips() {
        let events = [
            TraceEvent::Fork {
                ts: u64::MAX >> 1,
                worker: EXTERNAL_WORKER,
                parent: 7,
                left: u32::MAX - 1,
                right: u32::MAX,
                depth: 31,
                elided: true,
            },
            TraceEvent::Spawn {
                ts: 0,
                worker: 3,
                parent: ROOT_NODE,
                child: 9,
                depth: 0,
                elided: false,
            },
            TraceEvent::Enter {
                ts: 5,
                worker: 2,
                node: 11,
            },
            TraceEvent::Exit {
                ts: 6,
                worker: 2,
                node: 11,
            },
            TraceEvent::Pass {
                ts: 9,
                worker: 1,
                len: u64::MAX >> 8,
                chunks: 32,
            },
        ];
        for ev in events {
            assert_eq!(TraceEvent::decode(ev.encode()), Some(ev));
        }
    }

    #[test]
    fn event_log_drops_when_full_and_resets_on_drain() {
        let ws = Workspace::new();
        let log = EventLog::preallocated(&ws, 2);
        for i in 0..4 {
            log.append(
                TraceEvent::Enter {
                    ts: i,
                    worker: 0,
                    node: i as u32,
                }
                .encode(),
            );
        }
        let mut out = Vec::new();
        assert_eq!(log.drain_into(&mut out), 2, "two events dropped");
        assert_eq!(out.len(), 2);
        out.clear();
        // Drained: capacity is available again, dropped counter reset.
        log.append(
            TraceEvent::Enter {
                ts: 9,
                worker: 0,
                node: 9,
            }
            .encode(),
        );
        assert_eq!(log.drain_into(&mut out), 0);
        assert_eq!(
            out,
            vec![TraceEvent::Enter {
                ts: 9,
                worker: 0,
                node: 9
            }]
        );
    }

    #[test]
    fn preallocation_is_arena_accounted() {
        let ws = Workspace::new();
        let log = EventLog::preallocated(&ws, 1024);
        let grown = ws.stats().grown_bytes;
        assert!(
            grown >= (1024 * WORDS_PER_EVENT * 8) as u64,
            "page bytes recorded: {grown}"
        );
        assert_eq!(log.words.len(), 1024 * WORDS_PER_EVENT);
    }
}
