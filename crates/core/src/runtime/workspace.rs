//! The [`Workspace`]: a pool-owned scratch arena for the blocked
//! data-parallel primitives and the kernels built on them.
//!
//! PR 3 drove the cost of an un-stolen fork down to ~13 ns, which moved
//! the steady-state tax of the primitives layer from scheduling to
//! *memory*: every `scan`/`pack`/`map_collect` call used to allocate
//! fresh `Vec`s for its block sums, survivor counts and outputs, and a
//! level-synchronous BFS re-paid that bill on every level.  GBBS-style
//! work-efficient graph processing gets its speed precisely from reusing
//! scratch across passes, so [`PalPool`](super::PalPool) now owns one
//! `Workspace` and routes every primitive's internal scratch through it.
//!
//! # Lifecycle
//!
//! A buffer is **checked out** with [`Workspace::checkout`], which returns
//! a [`WorkspaceGuard`] that derefs to a `Vec<T>` (always handed out
//! *empty*, but with whatever capacity it accumulated in earlier lives).
//! When the guard drops, the buffer is cleared (elements are dropped —
//! the arena never keeps user values alive) and its allocation is
//! returned to the workspace shelf for the next checkout of the same
//! element type.  Buffers are therefore **grow-only**: capacity is never
//! released until the pool itself is dropped, so a steady-state workload
//! — the same primitive called over and over on same-sized inputs —
//! performs *zero* allocations after its first call warms the shelves.
//!
//! Checkout is thread-safe (a mutex around the shelves, held only for the
//! pop/push — never while user elements are dropped), so worker closures
//! running on different processors can check out private scratch
//! concurrently; each gets its own buffer.
//!
//! # Observability
//!
//! The arena counts [`hits`](WorkspaceStats::hits) (checkouts served by a
//! shelved buffer), [`misses`](WorkspaceStats::misses) (checkouts that
//! had to create a fresh `Vec`) and [`grown_bytes`](WorkspaceStats::grown_bytes)
//! (cumulative bytes of capacity growth observed at check-in).  The pool
//! folds these into [`RunMetrics`](crate::RunMetrics) as `arena_hits` /
//! `arena_bytes`, and the reuse tests assert that `grown_bytes` stops
//! moving once the shelves are warm.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A thread-safe shelf of reusable, grow-only typed buffers.
///
/// Owned by [`PalPool`](super::PalPool) (one workspace per pool); see the
/// module docs (`runtime/workspace.rs`) for the checkout/check-in
/// lifecycle.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Idle buffers, keyed by element type.  Each value is a per-type
    /// free list (`Vec<Vec<T>>` behind `dyn Any`, boxed **once** per
    /// type): a checkout pops a buffer off the list, a guard drop pushes
    /// it back — no per-cycle boxing, so a warm checkout/check-in round
    /// trip performs zero allocations.
    shelves: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
    /// Checkouts served by a shelved buffer.
    hits: AtomicU64,
    /// Checkouts that had to create a fresh (empty) buffer.
    misses: AtomicU64,
    /// Cumulative bytes of capacity growth recorded at check-in time
    /// (`(capacity_in - capacity_out) * size_of::<T>()`, **signed** and
    /// accumulated in two's complement so callers that swap buffer
    /// contents between two live guards net out to zero instead of
    /// fabricating growth).  Constant once the workload reaches its
    /// steady state.
    grown_bytes: AtomicU64,
}

impl Workspace {
    /// Create an empty workspace (no shelved buffers, zeroed counters).
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out an empty `Vec<T>`, reusing a shelved buffer's capacity
    /// when one is available.  The buffer returns to the workspace
    /// (cleared, capacity kept) when the guard drops.
    pub fn checkout<T: Send + 'static>(&self) -> WorkspaceGuard<'_, T> {
        let buf = self.take_buffer();
        WorkspaceGuard {
            capacity_out: buf.capacity(),
            buf: Some(buf),
            workspace: self,
        }
    }

    /// Take an empty buffer out of the arena **by value**, reusing a
    /// shelved allocation when one is available (a hit), creating a fresh
    /// empty `Vec` otherwise (a miss).
    ///
    /// This is the guard-less sibling of [`checkout`](Workspace::checkout)
    /// for owners whose buffer must outlive any scope a borrow-carrying
    /// [`WorkspaceGuard`] could span — e.g. the execution tracer's event
    /// pages, which live next to the workspace inside the same pool.  The
    /// caller is responsible for handing the allocation back with
    /// [`put_buffer`](Workspace::put_buffer), quoting the capacity
    /// observed right after the take so growth is attributed correctly; a
    /// buffer that is never returned simply leaves the arena's custody
    /// (and its growth goes unrecorded).
    pub fn take_buffer<T: Send + 'static>(&self) -> Vec<T> {
        let shelved: Option<Vec<T>> =
            self.shelves
                .lock()
                .get_mut(&TypeId::of::<T>())
                .and_then(|list| {
                    list.downcast_mut::<Vec<Vec<T>>>()
                        .expect("shelf keyed by TypeId")
                        .pop()
                });
        match shelved {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return a buffer previously obtained with
    /// [`take_buffer`](Workspace::take_buffer): remaining elements are
    /// dropped, capacity growth since the take (relative to
    /// `capacity_at_take`) is recorded against
    /// [`grown_bytes`](WorkspaceStats::grown_bytes), and the allocation is
    /// shelved for the next take or checkout of the same element type.
    pub fn put_buffer<T: Send + 'static>(&self, mut buf: Vec<T>, capacity_at_take: usize) {
        // Drop user elements outside the shelf lock, like the guard does.
        buf.clear();
        self.check_in(buf, capacity_at_take);
    }

    /// Snapshot of the arena counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            grown_bytes: self.grown_bytes.load(Ordering::Relaxed),
        }
    }

    /// Return a buffer to the shelf, recording any capacity growth since
    /// checkout.  Elements were already dropped by the guard.
    ///
    /// The growth delta is signed: a guard that comes back *smaller* than
    /// it was checked out (its capacity was moved into a sibling guard —
    /// e.g. `mem::swap` of two buffers' contents) subtracts what the
    /// sibling will over-report, so the counter tracks net allocation
    /// traffic, not per-guard churn.
    fn check_in<T: Send + 'static>(&self, buf: Vec<T>, capacity_out: usize) {
        let delta = (buf.capacity() as i64 - capacity_out as i64) * std::mem::size_of::<T>() as i64;
        if delta != 0 {
            self.grown_bytes.fetch_add(delta as u64, Ordering::Relaxed);
        }
        self.shelves
            .lock()
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()))
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("shelf keyed by TypeId")
            .push(buf);
    }
}

/// Point-in-time copy of a [`Workspace`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Checkouts served by a shelved buffer.
    pub hits: u64,
    /// Checkouts that created a fresh buffer.
    pub misses: u64,
    /// Cumulative bytes of buffer capacity growth (allocation traffic
    /// that went through the arena).
    pub grown_bytes: u64,
}

/// A checked-out workspace buffer; derefs to `Vec<T>` and returns the
/// allocation to its [`Workspace`] on drop.
#[derive(Debug)]
pub struct WorkspaceGuard<'ws, T: Send + 'static> {
    /// `Some` until drop; the `Option` lets drop move the `Vec` out.
    buf: Option<Vec<T>>,
    /// Capacity at checkout, so check-in can record growth.
    capacity_out: usize,
    workspace: &'ws Workspace,
}

impl<T: Send + 'static> Deref for WorkspaceGuard<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        self.buf.as_ref().expect("present until drop")
    }
}

impl<T: Send + 'static> DerefMut for WorkspaceGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("present until drop")
    }
}

impl<T: Send + 'static> Drop for WorkspaceGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(mut buf) = self.buf.take() {
            // Drop user elements *outside* the shelf lock.
            buf.clear();
            self.workspace.check_in(buf, self.capacity_out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_empty_and_reuses_capacity() {
        let ws = Workspace::new();
        {
            let mut buf = ws.checkout::<u64>();
            assert!(buf.is_empty());
            buf.extend(0..1000);
        }
        let stats = ws.stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.grown_bytes >= 1000 * 8);
        let grown_before = stats.grown_bytes;

        // Second life: same capacity comes back, empty, and growing
        // within it costs nothing.
        let mut buf = ws.checkout::<u64>();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 1000);
        buf.extend(0..1000);
        drop(buf);
        let stats = ws.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.grown_bytes, grown_before, "steady state: no growth");
    }

    #[test]
    fn concurrent_checkouts_get_distinct_buffers() {
        let ws = Workspace::new();
        let mut a = ws.checkout::<usize>();
        let mut b = ws.checkout::<usize>();
        a.push(1);
        b.push(2);
        assert_eq!((a.len(), b.len()), (1, 1));
        drop(a);
        drop(b);
        // Both return to the shelf and both can be re-checked-out.
        let a = ws.checkout::<usize>();
        let b = ws.checkout::<usize>();
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(ws.stats().hits, 2);
    }

    #[test]
    fn swapping_guard_contents_nets_to_zero_growth() {
        // A caller that moves capacity between two live guards (BFS-style
        // double buffering via mem::swap of the *contents*) must not
        // fabricate growth: the shrunken guard's negative delta cancels
        // the grown guard's positive one.
        let ws = Workspace::new();
        {
            let mut warm = ws.checkout::<u64>();
            warm.extend(0..1000);
        }
        let grown = ws.stats().grown_bytes;
        {
            let mut a = ws.checkout::<u64>(); // the warm capacity
            let mut b = ws.checkout::<u64>(); // fresh, capacity 0
            assert!(a.capacity() >= 1000);
            std::mem::swap(&mut *a, &mut *b);
        }
        assert_eq!(ws.stats().grown_bytes, grown, "no allocation happened");
    }

    #[test]
    fn shelves_are_typed() {
        let ws = Workspace::new();
        drop(ws.checkout::<u8>());
        // A different element type is a miss, not a corrupted reuse.
        let buf = ws.checkout::<u32>();
        assert!(buf.is_empty());
        assert_eq!(ws.stats().misses, 2);
    }

    #[test]
    fn take_and_put_share_the_shelf_with_checkout() {
        let ws = Workspace::new();
        let mut owned: Vec<u64> = ws.take_buffer();
        assert!(owned.is_empty());
        let cap0 = owned.capacity();
        owned.extend(0..500);
        ws.put_buffer(owned, cap0);
        let stats = ws.stats();
        assert_eq!(stats.misses, 1);
        assert!(stats.grown_bytes >= 500 * 8, "growth recorded at put");
        // The same allocation comes back through the guard API, empty.
        let buf = ws.checkout::<u64>();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 500);
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn elements_are_dropped_at_check_in() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let ws = Workspace::new();
        {
            let mut buf = ws.checkout::<Counted>();
            buf.push(Counted);
            buf.push(Counted);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 2, "arena keeps no values");
        assert!(ws.checkout::<Counted>().capacity() >= 2);
    }
}
