//! # lopram-core
//!
//! Core of the LoPRAM reproduction: the *Low-degree Parallel RAM* model of
//! Dorrigiv, López-Ortiz and Salinger (SPAA 2008 / TR CS-2007-48).
//!
//! The LoPRAM is a PRAM whose number of processors `p` is bounded by
//! `O(log n)` rather than `Θ(n)`.  Algorithms obtain parallelism through
//! **pal-threads** (*Parallel ALgorithmic threads*): recursive calls are
//! created as children of the current thread in program order, the scheduler
//! keeps at most `p` of them active, and threads that cannot be granted a
//! processor are executed by their parent, in creation order.  The practical
//! consequence (paper, Figure 2) is that a divide-and-conquer algorithm
//! spawns threads down to recursion depth `log_a p` and runs sequentially
//! below that depth — which is exactly what the runtime in this crate does.
//!
//! The crate provides:
//!
//! * [`ProcessorPolicy`] / [`processors_for`] — the `p = O(log n)` policy of
//!   the paper (§3.2) plus fixed and machine-width policies for experiments;
//! * [`PalPool`] — a bounded work-stealing fork/join runtime implementing
//!   the pal-thread semantics of §3.1, pending-thread migration included
//!   ([`PalPool::join`], [`PalPool::scope`], [`palthreads!`]), plus the
//!   blocked data-parallel primitives irregular workloads are built from
//!   ([`PalPool::scan`], [`PalPool::pack`], [`PalPool::expand`],
//!   [`PalPool::reduce_by_index`] plus the allocation-free `_in` variants
//!   — see `runtime::primitives`) and the [`Workspace`] scratch arena
//!   that makes their steady state allocation-free;
//! * [`Executor`] — an abstraction over sequential and pal-thread execution
//!   used by the divide-and-conquer and dynamic-programming crates;
//! * [`SerCell`] — the paper's transparently *serialized shared variable*;
//! * [`metrics`] — work / spawn accounting used by the experiment harness.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod executor;
pub mod metrics;
pub mod policy;
pub mod runtime;
pub mod sercell;

mod macros;

pub use error::{Error, Result};
pub use executor::{Executor, PalExecutor, SeqExecutor};
pub use metrics::{assert_metrics_consistent, MetricsSnapshot, RunMetrics, SpeedupReport};
pub use policy::{processors_for, ProcessorPolicy};
pub use runtime::{
    run_cancellable, CancelReason, CancelToken, ChaosConfig, DagTrace, PalPool, PalPoolBuilder,
    PalScope, PoolHealth, Scan, SelfHeal, ThrottledPool, ThrottledScope, TraceConfig, TraceEvent,
    TraceSummary, Workspace, WorkspaceGuard, WorkspaceStats,
};
pub use sercell::SerCell;

/// Convenience prelude re-exporting the items almost every user needs.
pub mod prelude {
    pub use crate::executor::{Executor, PalExecutor, SeqExecutor};
    pub use crate::palthreads;
    pub use crate::policy::{processors_for, ProcessorPolicy};
    pub use crate::runtime::{
        run_cancellable, CancelReason, CancelToken, ChaosConfig, DagTrace, PalPool, PalPoolBuilder,
        PalScope, PoolHealth, Scan, SelfHeal, ThrottledPool, TraceConfig, Workspace,
    };
    pub use crate::sercell::SerCell;
}
