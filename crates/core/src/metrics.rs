//! Work and scheduling metrics.
//!
//! The paper's analysis is in terms of wall-clock parallel time `T_p(n)`
//! versus sequential time `T(n) = T_1(n)` (§3.2, §4.1).  The experiment
//! harness measures both and reports speedups; the runtime additionally
//! counts how many pal-threads were granted their own processor versus how
//! many were folded into their parent (the paper's "no free cores ⇒ run
//! sequentially" rule), which makes the cutoff depth of Figure 2 observable.
//!
//! On the work-stealing [`PalPool`](crate::PalPool) a pal-thread is granted
//! a processor precisely by being *stolen*: an idle processor picks the
//! oldest pending pal-thread off another processor's deque (§3.1's "pending
//! pal-threads are activated … as resources become available").  The
//! [`steals`](RunMetrics::steals) counter records those migrations; on the
//! eager [`ThrottledPool`](crate::ThrottledPool) ablation it is always zero
//! because spawn-vs-inline is decided irrevocably at creation time.
//!
//! A fourth outcome exists since the α·log p sequential cutoff landed: a
//! fork issued below the top `⌈α·log₂ p⌉` recursion levels is **elided** —
//! executed as a plain nested call without ever creating a scheduler job
//! (the paper's "below depth `log_a p` everything runs sequentially",
//! Figure 2).  The [`elided`](RunMetrics::elided) counter records those, so
//! `spawned + inlined + elided` still accounts for every pal-thread
//! creation point exactly once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters describing one run of a pal-thread computation.
#[derive(Debug, Default)]
pub struct RunMetrics {
    /// Number of pal-threads that received a dedicated processor.
    pub spawned: AtomicU64,
    /// Number of pal-threads executed inline by their parent because all
    /// `p` processors were busy.
    pub inlined: AtomicU64,
    /// Number of pending pal-threads that migrated to a processor other
    /// than their creator (successful steals).  Zero on schedulers without
    /// a pending queue (e.g. the `ThrottledPool` ablation).
    pub steals: AtomicU64,
    /// Number of pal-thread creation points elided by the α·log p depth
    /// cutoff: the fork ran as a plain sequential call and no scheduler job
    /// was ever created for it.
    pub elided: AtomicU64,
    /// Workspace-arena checkouts served by a shelved buffer (see
    /// [`Workspace`](crate::runtime::Workspace)): scratch the primitives
    /// reused instead of allocating.
    pub arena_hits: AtomicU64,
    /// Cumulative bytes of workspace-arena buffer growth.  Stops moving
    /// once a steady-state workload has warmed the arena — the
    /// allocation-free property the reuse tests assert.
    pub arena_bytes: AtomicU64,
    /// Pool workers killed by a scheduler fault (chaos injection), folded
    /// in from the runtime's health counters by
    /// [`PalPool::health`](crate::PalPool::health) /
    /// [`PalPool::metrics`](crate::PalPool::metrics).
    pub workers_killed: AtomicU64,
    /// Dead pool workers respawned by the self-healing supervisor.
    pub workers_respawned: AtomicU64,
    /// Total abstract work units reported by the algorithm (optional).
    pub work: AtomicU64,
}

impl RunMetrics {
    /// Create a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a pal-thread was granted its own processor.
    pub fn record_spawn(&self) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a pal-thread was executed inline by its parent.
    pub fn record_inline(&self) {
        self.inlined.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a pending pal-thread was stolen by (migrated to) a
    /// processor other than its creator.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Record that a fork below the sequential cutoff depth was elided
    /// (executed as a plain call, no scheduler job created).
    pub fn record_elided(&self) {
        self.elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `units` of abstract work.
    pub fn record_work(&self, units: u64) {
        self.work.fetch_add(units, Ordering::Relaxed);
    }

    /// Number of pal-threads granted a processor so far.
    pub fn spawned(&self) -> u64 {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Number of pal-threads folded into their parent so far.
    pub fn inlined(&self) -> u64 {
        self.inlined.load(Ordering::Relaxed)
    }

    /// Number of pending pal-thread migrations (steals) so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Number of forks elided by the sequential cutoff so far.
    pub fn elided(&self) -> u64 {
        self.elided.load(Ordering::Relaxed)
    }

    /// Workspace-arena checkouts served by a reused buffer so far.
    pub fn arena_hits(&self) -> u64 {
        self.arena_hits.load(Ordering::Relaxed)
    }

    /// Cumulative workspace-arena buffer growth in bytes so far.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_bytes.load(Ordering::Relaxed)
    }

    /// Pool workers killed by a scheduler fault so far.
    pub fn workers_killed(&self) -> u64 {
        self.workers_killed.load(Ordering::Relaxed)
    }

    /// Dead pool workers respawned by the supervisor so far.
    pub fn workers_respawned(&self) -> u64 {
        self.workers_respawned.load(Ordering::Relaxed)
    }

    /// Total abstract work recorded so far.
    pub fn work(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.spawned.store(0, Ordering::Relaxed);
        self.inlined.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.elided.store(0, Ordering::Relaxed);
        self.arena_hits.store(0, Ordering::Relaxed);
        self.arena_bytes.store(0, Ordering::Relaxed);
        self.workers_killed.store(0, Ordering::Relaxed);
        self.workers_respawned.store(0, Ordering::Relaxed);
        self.work.store(0, Ordering::Relaxed);
    }

    /// Total pal-thread creation points so far: every fork is either
    /// granted a processor (`spawned`), folded into its parent (`inlined`)
    /// or elided by the α·log p cutoff (`elided`) — never lost, never
    /// double-counted.
    pub fn forks(&self) -> u64 {
        self.spawned() + self.inlined() + self.elided()
    }

    /// Snapshot the counters into a plain value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            spawned: self.spawned(),
            inlined: self.inlined(),
            steals: self.steals(),
            elided: self.elided(),
            arena_hits: self.arena_hits(),
            arena_bytes: self.arena_bytes(),
            workers_killed: self.workers_killed(),
            workers_respawned: self.workers_respawned(),
            work: self.work(),
        }
    }
}

/// A plain-value copy of [`RunMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Pal-threads granted a processor.
    pub spawned: u64,
    /// Pal-threads folded into their parent.
    pub inlined: u64,
    /// Pending pal-thread migrations (steals).
    pub steals: u64,
    /// Forks elided by the α·log p sequential cutoff.
    pub elided: u64,
    /// Workspace-arena checkouts served by a reused buffer.
    pub arena_hits: u64,
    /// Cumulative workspace-arena buffer growth in bytes.
    pub arena_bytes: u64,
    /// Pool workers killed by a scheduler fault (chaos injection).
    pub workers_killed: u64,
    /// Dead pool workers respawned by the self-healing supervisor.
    pub workers_respawned: u64,
    /// Abstract work units.
    pub work: u64,
}

impl MetricsSnapshot {
    /// Total pal-thread creation points: `spawned + inlined + elided`.
    pub fn forks(&self) -> u64 {
        self.spawned + self.inlined + self.elided
    }

    /// Counter movement between `earlier` and `self` (`self - earlier`,
    /// fieldwise).
    ///
    /// The scheduling counters are monotone, so their deltas use plain
    /// subtraction and panic on a reversed pair in debug builds.
    /// `arena_bytes` is a signed (two's-complement) net — a workload that
    /// shrinks shelved buffers can legitimately move it down — so its
    /// delta wraps instead; re-interpreting the wrapped value as `i64`
    /// yields the signed growth of the window.  This is the snapshot-side
    /// half of [`PalPool::scoped_metrics`](crate::PalPool::scoped_metrics).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            spawned: self.spawned - earlier.spawned,
            inlined: self.inlined - earlier.inlined,
            steals: self.steals - earlier.steals,
            elided: self.elided - earlier.elided,
            arena_hits: self.arena_hits - earlier.arena_hits,
            arena_bytes: self.arena_bytes.wrapping_sub(earlier.arena_bytes),
            workers_killed: self.workers_killed - earlier.workers_killed,
            workers_respawned: self.workers_respawned - earlier.workers_respawned,
            work: self.work - earlier.work,
        }
    }
}

/// Assert the full fork-accounting invariant of a pal-thread run: every one
/// of the `expected_forks` creation points is accounted exactly once as
/// `spawned`, `inlined` or `elided`, and migrations never exceed grants
/// (`steals <= spawned` — a pal-thread migrates by being stolen, and every
/// steal is a grant, but injected pal-threads are granted without
/// migrating).
///
/// The fork count of a pal-thread computation is a property of the program
/// structure alone — which `join`/`spawn` call sites execute — not of the
/// schedule, so tests can assert it exactly even on a racy host.  Used by
/// `runtime_cutoff.rs`, `runtime_migration.rs` and the `lopram-graph`
/// differential suite in place of ad-hoc counter arithmetic.
#[track_caller]
pub fn assert_metrics_consistent(metrics: &RunMetrics, expected_forks: u64) {
    let snap = metrics.snapshot();
    assert_eq!(
        snap.forks(),
        expected_forks,
        "spawned ({}) + inlined ({}) + elided ({}) must account for every fork",
        snap.spawned,
        snap.inlined,
        snap.elided,
    );
    assert!(
        snap.steals <= snap.spawned,
        "steals ({}) cannot exceed spawned ({}): every migration is a processor grant",
        snap.steals,
        snap.spawned,
    );
}

/// Measured speedup of a parallel run against its sequential counterpart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupReport {
    /// Input size of the run.
    pub n: usize,
    /// Number of processors used in the parallel run.
    pub p: usize,
    /// Wall-clock time of the sequential run.
    pub sequential: Duration,
    /// Wall-clock time of the parallel run.
    pub parallel: Duration,
}

impl SpeedupReport {
    /// Observed speedup `T_1 / T_p`.
    pub fn speedup(&self) -> f64 {
        let par = self.parallel.as_secs_f64();
        if par == 0.0 {
            return f64::INFINITY;
        }
        self.sequential.as_secs_f64() / par
    }

    /// Parallel efficiency `speedup / p` (1.0 is work-optimal, i.e. linear
    /// speedup in the sense of Theorem 1 cases 1 and 2).
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.p as f64
    }

    /// `true` when the run achieved at least `fraction` of linear speedup.
    pub fn is_work_optimal(&self, fraction: f64) -> bool {
        self.efficiency() >= fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let m = RunMetrics::new();
        m.record_spawn();
        m.record_spawn();
        m.record_inline();
        m.record_steal();
        m.record_elided();
        m.record_elided();
        m.record_elided();
        m.arena_hits.fetch_add(4, Ordering::Relaxed);
        m.arena_bytes.fetch_add(512, Ordering::Relaxed);
        m.workers_killed.fetch_add(1, Ordering::Relaxed);
        m.workers_respawned.fetch_add(1, Ordering::Relaxed);
        m.record_work(100);
        assert_eq!(m.spawned(), 2);
        assert_eq!(m.inlined(), 1);
        assert_eq!(m.steals(), 1);
        assert_eq!(m.elided(), 3);
        assert_eq!(m.arena_hits(), 4);
        assert_eq!(m.arena_bytes(), 512);
        assert_eq!(m.workers_killed(), 1);
        assert_eq!(m.workers_respawned(), 1);
        assert_eq!(m.work(), 100);
        let snap = m.snapshot();
        assert_eq!(
            snap,
            MetricsSnapshot {
                spawned: 2,
                inlined: 1,
                steals: 1,
                elided: 3,
                arena_hits: 4,
                arena_bytes: 512,
                workers_killed: 1,
                workers_respawned: 1,
                work: 100
            }
        );
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_delta_since_is_fieldwise_subtraction() {
        let earlier = MetricsSnapshot {
            spawned: 2,
            inlined: 5,
            steals: 1,
            elided: 10,
            arena_hits: 3,
            arena_bytes: 1024,
            workers_killed: 0,
            workers_respawned: 0,
            work: 7,
        };
        let later = MetricsSnapshot {
            spawned: 4,
            inlined: 9,
            steals: 2,
            elided: 30,
            arena_hits: 8,
            arena_bytes: 512, // two's-complement net can go down
            workers_killed: 1,
            workers_respawned: 1,
            work: 7,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.spawned, 2);
        assert_eq!(delta.inlined, 4);
        assert_eq!(delta.steals, 1);
        assert_eq!(delta.elided, 20);
        assert_eq!(delta.forks(), 26);
        assert_eq!(delta.arena_hits, 5);
        assert_eq!(delta.arena_bytes as i64, -512);
        assert_eq!(delta.workers_killed, 1);
        assert_eq!(delta.workers_respawned, 1);
        assert_eq!(delta.work, 0);
        // Identical snapshots delta to zero.
        assert_eq!(later.delta_since(&later), MetricsSnapshot::default());
    }

    #[test]
    fn speedup_report_basic() {
        let r = SpeedupReport {
            n: 1024,
            p: 4,
            sequential: Duration::from_millis(400),
            parallel: Duration::from_millis(100),
        };
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        assert!((r.efficiency() - 1.0).abs() < 1e-9);
        assert!(r.is_work_optimal(0.9));
    }

    #[test]
    fn speedup_report_sublinear() {
        let r = SpeedupReport {
            n: 1024,
            p: 8,
            sequential: Duration::from_millis(800),
            parallel: Duration::from_millis(400),
        };
        assert!((r.speedup() - 2.0).abs() < 1e-9);
        assert!((r.efficiency() - 0.25).abs() < 1e-9);
        assert!(!r.is_work_optimal(0.5));
    }

    #[test]
    fn zero_parallel_time_is_infinite_speedup() {
        let r = SpeedupReport {
            n: 1,
            p: 1,
            sequential: Duration::from_millis(1),
            parallel: Duration::ZERO,
        };
        assert!(r.speedup().is_infinite());
    }
}
