//! Serialized shared variables.
//!
//! The LoPRAM model (paper §3) assumes a CREW memory in which "semaphores and
//! automatic serialization on shared variables are available — either
//! hardware or software based — in a transparent form to the programmer", and
//! that concurrently writing an *unserialized* variable has undefined
//! behaviour.  [`SerCell`] is the reproduction of the serialized variable: a
//! shared cell whose every access is transparently serialized, so concurrent
//! writers are always well defined.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// A transparently serialized shared variable (paper §3).
///
/// All reads and writes are serialized through an internal lock, mimicking
/// the hardware/software semaphore the paper assumes.  The cell additionally
/// counts how many accesses it has served, which the tests and the
/// memoization executor use to reason about contention (the paper's
/// `O(log p)` CRCW-on-CREW simulation overhead, §4.5).
#[derive(Debug, Default)]
pub struct SerCell<T> {
    value: Mutex<T>,
    waiters: Condvar,
    accesses: AtomicU64,
}

impl<T> SerCell<T> {
    /// Create a new serialized cell holding `value`.
    pub fn new(value: T) -> Self {
        SerCell {
            value: Mutex::new(value),
            waiters: Condvar::new(),
            accesses: AtomicU64::new(0),
        }
    }

    /// Read the current value (clones it).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        self.value.lock().clone()
    }

    /// Overwrite the value, returning the previous one.
    pub fn set(&self, value: T) -> T {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.value.lock();
        let old = std::mem::replace(&mut *guard, value);
        drop(guard);
        self.waiters.notify_all();
        old
    }

    /// Apply `f` to the value under the serialization lock and return its result.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.value.lock();
        let r = f(&mut *guard);
        drop(guard);
        self.waiters.notify_all();
        r
    }

    /// Inspect the value under the lock without mutating it.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let guard = self.value.lock();
        f(&*guard)
    }

    /// Block until `predicate` holds for the stored value, then return `f(value)`.
    ///
    /// This is the "notify condition on solution" primitive the paper's
    /// parallel memoization (§4.5) registers when a sub-result is already
    /// *in progress* on another thread.
    pub fn wait_until<R>(&self, predicate: impl Fn(&T) -> bool, f: impl FnOnce(&T) -> R) -> R {
        self.accesses.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.value.lock();
        while !predicate(&*guard) {
            self.waiters.wait(&mut guard);
        }
        f(&*guard)
    }

    /// Number of serialized accesses served so far.
    pub fn access_count(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Consume the cell and return the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn get_set_roundtrip() {
        let c = SerCell::new(7u32);
        assert_eq!(c.get(), 7);
        assert_eq!(c.set(9), 7);
        assert_eq!(c.get(), 9);
        assert_eq!(c.into_inner(), 9);
    }

    #[test]
    fn update_returns_closure_result() {
        let c = SerCell::new(vec![1, 2, 3]);
        let len = c.update(|v| {
            v.push(4);
            v.len()
        });
        assert_eq!(len, 4);
        assert_eq!(c.read(|v| v.clone()), vec![1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_increments_are_serialized() {
        let c = Arc::new(SerCell::new(0u64));
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.update(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
        assert!(c.access_count() >= threads as u64 * per_thread);
    }

    #[test]
    fn wait_until_blocks_until_predicate() {
        let c = Arc::new(SerCell::new(Option::<u32>::None));
        let reader = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.wait_until(|v| v.is_some(), |v| v.unwrap()))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        c.set(Some(42));
        assert_eq!(reader.join().unwrap(), 42);
    }

    #[test]
    fn access_count_increments() {
        let c = SerCell::new(1u8);
        let before = c.access_count();
        let _ = c.get();
        let _ = c.get();
        assert_eq!(c.access_count(), before + 2);
    }
}
