//! Processor-count policies.
//!
//! The defining assumption of the LoPRAM (paper §3, §3.2) is that the number
//! of processors `p` available to an algorithm is `O(log n)` in the input
//! size `n`, and that an algorithm must run correctly for *any* value of `p`
//! (the operating system may give it fewer cores as the level of
//! multiprogramming changes).  [`ProcessorPolicy`] captures the ways the
//! reproduction selects `p`, and [`processors_for`] evaluates a policy for a
//! concrete input size.
//!
//! The flip side of `p = O(log n)` is the paper's §3.1 throttle: in a
//! divide-and-conquer recursion only the top `O(log p)` levels can ever be
//! granted fresh processors (Figure 2's cutoff depth `log_a p`); every fork
//! below that is destined to run sequentially in its parent.
//! [`cutoff_levels`] computes the `⌈α·log₂ p⌉` depth below which
//! [`PalPool`](crate::PalPool) degenerates forks to plain calls — `α`
//! leaves headroom over the exact `log_a p` so mildly unbalanced trees
//! still expose enough pending pal-threads for migration.

/// Default cost-model floor for [`grain_size`]: minimum number of elements
/// a block must carry before the blocked primitives split it off.
///
/// Calibrated against `BENCH_join_overhead.json`: a scheduled un-stolen
/// fork costs ~71 ns (and an elided one ~13 ns) while one element of a
/// scan/pack block pass costs ~1–2 ns, so a 256-element block keeps even a
/// worst-case all-scheduled fork tree under ~30 % overhead and the typical
/// (mostly-elided) tree under ~5 %.
pub const DEFAULT_GRAIN: usize = 256;

/// Default steal-amortization grain for [`grain_size`]: the number of
/// elements a *stolen* block must carry before finer-than-`4p` splitting
/// pays for the migration (deque round-trip plus the thief's cold cache,
/// ~microseconds — three orders of magnitude above a fork).
pub const DEFAULT_STEAL_GRAIN: usize = 4096;

/// Adaptive block count for a blocked data-parallel pass over `len`
/// elements on `p` processors.
///
/// Replaces the fixed `4p` blocking with two cost-model rules:
///
/// * **cost floor** — never make a block smaller than `min_grain`
///   elements, so tiny inputs stop paying fork overhead they cannot
///   amortize (a 100-element scan on `p = 4` used to fork 15 times for
///   ~25 ns of work per block);
/// * **steal-informed splitting** — on inputs large enough that even an
///   eighth-per-processor block still carries `steal_grain` elements
///   (`len / 8p >= steal_grain`), split `8p` ways instead of `4p`: skewed
///   work (a star graph's hub block, an adversarial pack predicate)
///   rebalances through steals, and each extra pending block is only
///   worth migrating when it amortizes the steal itself.
///
/// Both rules are **pure functions of `(len, p, min_grain, steal_grain)`**
/// — deliberately *not* of live steal counters.  The steal rule is
/// informed by the measured steal cost model, not by the observed
/// schedule, precisely so that a primitive's fork count (`blocks − 1` per
/// parallel pass) stays exact and schedule-independent and
/// [`assert_metrics_consistent`](crate::assert_metrics_consistent)
/// can keep asserting it on racy hosts.
///
/// The result is clamped to `[1, len]` (callers guarantee `len >= 1`,
/// matching [`PalPool::chunk_count`](crate::PalPool::chunk_count)).
/// `min_grain`/`steal_grain` of 0 are treated as 1 / disabled.
pub fn grain_size(len: usize, p: usize, min_grain: usize, steal_grain: usize) -> usize {
    let p = p.max(1);
    let oversubscribe = if steal_grain > 0 && len / (8 * p) >= steal_grain {
        8
    } else {
        4
    };
    // Floor division keeps the contract literal: with `chunks <=
    // len / min_grain`, every balanced block carries `len / chunks >=
    // min_grain` elements (an input shorter than `2·min_grain` is one
    // block).
    let by_cost = (len / min_grain.max(1)).max(1);
    (oversubscribe * p).min(by_cost).clamp(1, len)
}

/// Strategy used to pick the number of processors `p` for an input of size `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcessorPolicy {
    /// The paper's canonical choice: `p = max(1, ⌊log₂ n⌋)`, additionally
    /// capped by the number of cores the host actually exposes.
    #[default]
    LogN,
    /// `p = max(1, ⌈log₂ n⌉)`, capped by the host core count.  Useful when a
    /// power-of-two `n` should still use the "next" processor.
    LogNCeil,
    /// A fixed processor count, still clamped to at least one.  Used by the
    /// experiment harness to sweep `p ∈ {1, 2, 4, 8, …}` independently of `n`.
    Fixed(usize),
    /// Use every core the host reports (`std::thread::available_parallelism`).
    Available,
}

impl ProcessorPolicy {
    /// Evaluate the policy for an input of size `n`.
    ///
    /// The result is always at least 1.  Logarithmic policies are capped by
    /// the host parallelism so that `p` never exceeds what the machine can
    /// actually run concurrently, mirroring §3.2's remark that the OS decides
    /// how many cores are really available.
    pub fn processors(&self, n: usize) -> usize {
        let host = available_parallelism();
        match *self {
            ProcessorPolicy::LogN => floor_log2(n).max(1).min(host),
            ProcessorPolicy::LogNCeil => ceil_log2(n).max(1).min(host),
            ProcessorPolicy::Fixed(p) => p.max(1),
            ProcessorPolicy::Available => host,
        }
    }

    /// Evaluate the policy but without clamping to the host's core count.
    ///
    /// The simulator uses this variant: it can model a machine with more
    /// cores than the host running the simulation.
    pub fn processors_unclamped(&self, n: usize) -> usize {
        match *self {
            ProcessorPolicy::LogN => floor_log2(n).max(1),
            ProcessorPolicy::LogNCeil => ceil_log2(n).max(1),
            ProcessorPolicy::Fixed(p) => p.max(1),
            ProcessorPolicy::Available => available_parallelism(),
        }
    }
}

/// Shorthand for [`ProcessorPolicy::processors`].
pub fn processors_for(n: usize, policy: ProcessorPolicy) -> usize {
    policy.processors(n)
}

/// Number of hardware threads the host exposes (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Number of top recursion levels that keep creating scheduler jobs on a
/// pool of `p` processors: `⌈α·log₂ p⌉`.
///
/// Below this depth a fork can never be granted a fresh processor in the
/// paper's model (Figure 2), so [`PalPool`](crate::PalPool) runs it as a
/// plain sequential call.  `p ≤ 1` yields 0 — a one-processor pool elides
/// every fork.  `α` is clamped to be non-negative; the result is clamped to
/// `usize::BITS` (deeper cutoffs are indistinguishable: no recursion over a
/// `usize`-indexed input is deeper).
pub fn cutoff_levels(alpha: f64, p: usize) -> usize {
    if p <= 1 {
        return 0;
    }
    let levels = (alpha.max(0.0) * (p as f64).log2()).ceil();
    if levels >= usize::BITS as f64 {
        usize::BITS as usize
    } else {
        levels as usize
    }
}

/// `⌊log₂ n⌋` with the convention that inputs of size 0 or 1 yield 0.
pub fn floor_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()) as usize
    }
}

/// `⌈log₂ n⌉` with the convention that inputs of size 0 or 1 yield 0.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        let f = floor_log2(n);
        if n.is_power_of_two() {
            f
        } else {
            f + 1
        }
    }
}

/// `⌊log_base n⌋` for an arbitrary integer base `base ≥ 2` (0 for `n ≤ 1`).
pub fn floor_log(base: usize, n: usize) -> usize {
    assert!(base >= 2, "logarithm base must be at least 2");
    if n <= 1 {
        return 0;
    }
    let mut k = 0usize;
    let mut acc = 1usize;
    while let Some(next) = acc.checked_mul(base) {
        if next > n {
            break;
        }
        acc = next;
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn floor_log2_small_values() {
        assert_eq!(floor_log2(0), 0);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(1023), 9);
        assert_eq!(floor_log2(1024), 10);
    }

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
    }

    #[test]
    fn floor_log_arbitrary_base() {
        assert_eq!(floor_log(2, 8), 3);
        assert_eq!(floor_log(3, 8), 1);
        assert_eq!(floor_log(3, 9), 2);
        assert_eq!(floor_log(7, 49), 2);
        assert_eq!(floor_log(7, 48), 1);
        assert_eq!(floor_log(10, 1), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn floor_log_rejects_base_one() {
        let _ = floor_log(1, 10);
    }

    #[test]
    fn cutoff_levels_matches_alpha_log2_p() {
        // p = 1 ⇒ 0: a sequential pool elides everything.
        assert_eq!(cutoff_levels(2.0, 1), 0);
        assert_eq!(cutoff_levels(2.0, 2), 2);
        assert_eq!(cutoff_levels(2.0, 4), 4);
        assert_eq!(cutoff_levels(2.0, 8), 6);
        // Non-power-of-two p rounds up: 2·log₂3 ≈ 3.17 → 4.
        assert_eq!(cutoff_levels(2.0, 3), 4);
        assert_eq!(cutoff_levels(1.0, 4), 2);
        // α = 0 disables all parallel levels without disabling tracking.
        assert_eq!(cutoff_levels(0.0, 8), 0);
        // Negative α is treated as 0, huge α saturates at usize::BITS.
        assert_eq!(cutoff_levels(-3.0, 8), 0);
        assert_eq!(cutoff_levels(1e9, 2), usize::BITS as usize);
    }

    #[test]
    fn grain_size_applies_the_cost_floor() {
        // Small inputs never split below min_grain elements per block —
        // 300 elements stay one block (two blocks would be 150 each).
        assert_eq!(grain_size(100, 4, 256, 4096), 1);
        assert_eq!(grain_size(300, 4, 256, 4096), 1);
        assert_eq!(grain_size(512, 4, 256, 4096), 2);
        assert_eq!(grain_size(1024, 4, 256, 4096), 4);
        // Large inputs saturate at the oversubscription cap.
        assert_eq!(grain_size(100_000, 4, 256, 4096), 16);
        // min_grain = 1 (or 0) recovers the legacy fixed-4p blocking.
        assert_eq!(grain_size(100, 4, 1, 0), 16);
        assert_eq!(grain_size(100, 4, 0, 0), 16);
        assert_eq!(grain_size(3, 4, 1, 0), 3, "never more blocks than elements");
    }

    #[test]
    fn grain_size_steal_rule_kicks_in_on_large_inputs() {
        // 8p-way splitting only once every eighth-per-processor block
        // still carries steal_grain elements.
        let p = 2;
        assert_eq!(grain_size(8 * p * 4096 - 1, p, 256, 4096), 4 * p);
        assert_eq!(grain_size(8 * p * 4096, p, 256, 4096), 8 * p);
        // Disabled when steal_grain = 0.
        assert_eq!(grain_size(1 << 20, p, 256, 0), 4 * p);
    }

    proptest! {
        #[test]
        fn grain_size_is_bounded_and_deterministic(
            len in 1usize..2_000_000,
            p in 1usize..16,
            min_grain in 0usize..5000,
            steal_grain in 0usize..10_000,
        ) {
            let chunks = grain_size(len, p, min_grain, steal_grain);
            prop_assert!(chunks >= 1);
            prop_assert!(chunks <= len);
            prop_assert!(chunks <= 8 * p);
            // Pure function: same inputs, same blocking — the property the
            // exact fork accounting rests on.
            prop_assert_eq!(chunks, grain_size(len, p, min_grain, steal_grain));
            // The cost floor really holds, literally: every balanced
            // block carries at least min_grain elements whenever the
            // input splits at all.
            if chunks > 1 {
                prop_assert!(len / chunks >= min_grain.max(1));
            }
        }
    }

    #[test]
    fn logn_policy_is_logarithmic_and_positive() {
        let p = ProcessorPolicy::LogN;
        assert_eq!(p.processors_unclamped(1), 1);
        assert_eq!(p.processors_unclamped(2), 1);
        assert_eq!(p.processors_unclamped(1 << 20), 20);
        assert!(p.processors(1 << 20) >= 1);
    }

    #[test]
    fn fixed_policy_clamps_to_one() {
        assert_eq!(ProcessorPolicy::Fixed(0).processors(100), 1);
        assert_eq!(ProcessorPolicy::Fixed(6).processors(100), 6);
    }

    #[test]
    fn available_policy_matches_host() {
        assert_eq!(
            ProcessorPolicy::Available.processors(12345),
            available_parallelism()
        );
    }

    #[test]
    fn default_policy_is_logn() {
        assert_eq!(ProcessorPolicy::default(), ProcessorPolicy::LogN);
    }

    proptest! {
        #[test]
        fn floor_and_ceil_log2_bracket_n(n in 1usize..1_000_000) {
            let f = floor_log2(n);
            let c = ceil_log2(n);
            prop_assert!(1usize << f <= n);
            prop_assert!(f == c || f + 1 == c);
            if n > 1 {
                // 2^c >= n, guarding against overflow for large c.
                prop_assert!(n <= 1usize.checked_shl(c as u32).unwrap_or(usize::MAX));
            }
        }

        #[test]
        fn policy_always_positive(n in 0usize..1_000_000, fixed in 0usize..64) {
            for policy in [
                ProcessorPolicy::LogN,
                ProcessorPolicy::LogNCeil,
                ProcessorPolicy::Fixed(fixed),
                ProcessorPolicy::Available,
            ] {
                prop_assert!(policy.processors(n) >= 1);
                prop_assert!(policy.processors_unclamped(n) >= 1);
            }
        }

        #[test]
        fn floor_log_agrees_with_log2(n in 1usize..1_000_000) {
            prop_assert_eq!(floor_log(2, n), floor_log2(n));
        }
    }
}
