//! The [`palthreads!`] macro.

/// Run a block of statements as pal-threads, mirroring the paper's
/// `palthreads { … }` C extension (§3.1).
///
/// Each expression in the block becomes a child pal-thread of the current
/// thread, created in the order written.  The macro waits for all children
/// before it returns (the paper's implicit wait); use
/// [`PalPool::scope`](crate::PalPool::scope) directly when the `nowait`
/// behaviour is needed.
///
/// ```
/// use lopram_core::{palthreads, PalPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = PalPool::new(4).unwrap();
/// let counter = AtomicUsize::new(0);
/// palthreads!(pool => {
///     counter.fetch_add(1, Ordering::SeqCst);
/// }, {
///     counter.fetch_add(10, Ordering::SeqCst);
/// }, {
///     counter.fetch_add(100, Ordering::SeqCst);
/// });
/// assert_eq!(counter.load(Ordering::SeqCst), 111);
/// ```
#[macro_export]
macro_rules! palthreads {
    ($pool:expr => $($body:block),+ $(,)?) => {{
        let __pal_pool: &$crate::PalPool = &$pool;
        __pal_pool.scope(|__pal_scope| {
            $(
                __pal_scope.spawn(|| $body);
            )+
        });
    }};
}

#[cfg(test)]
mod tests {
    use crate::PalPool;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn palthreads_runs_every_block() {
        let pool = PalPool::new(4).unwrap();
        let counter = AtomicUsize::new(0);
        palthreads!(pool => {
            counter.fetch_add(1, Ordering::SeqCst);
        }, {
            counter.fetch_add(2, Ordering::SeqCst);
        }, {
            counter.fetch_add(4, Ordering::SeqCst);
        }, {
            counter.fetch_add(8, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn palthreads_single_block() {
        let pool = PalPool::sequential();
        let counter = AtomicUsize::new(0);
        palthreads!(pool => {
            counter.fetch_add(5, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn palthreads_sequential_pool_runs_in_creation_order() {
        let pool = PalPool::sequential();
        let order = Mutex::new(Vec::new());
        palthreads!(pool => {
            order.lock().push(1);
        }, {
            order.lock().push(2);
        }, {
            order.lock().push(3);
        });
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn palthreads_can_mutate_disjoint_slices() {
        let pool = PalPool::new(2).unwrap();
        let mut data = vec![0u32; 8];
        let (left, right) = data.split_at_mut(4);
        let left = Mutex::new(left);
        let right = Mutex::new(right);
        palthreads!(pool => {
            for x in left.lock().iter_mut() { *x = 1; }
        }, {
            for x in right.lock().iter_mut() { *x = 2; }
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }
}
