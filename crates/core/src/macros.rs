//! The [`palthreads!`] and [`pal_join!`] macros.

/// Run a block of statements as pal-threads, mirroring the paper's
/// `palthreads { … }` C extension (§3.1).
///
/// Each expression in the block becomes a child pal-thread of the current
/// thread, created in the order written.  The macro waits for all children
/// before it returns (the paper's implicit wait); use
/// [`PalPool::scope`](crate::PalPool::scope) directly when the `nowait`
/// behaviour is needed.
///
/// ```
/// use lopram_core::{palthreads, PalPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = PalPool::new(4).unwrap();
/// let counter = AtomicUsize::new(0);
/// palthreads!(pool => {
///     counter.fetch_add(1, Ordering::SeqCst);
/// }, {
///     counter.fetch_add(10, Ordering::SeqCst);
/// }, {
///     counter.fetch_add(100, Ordering::SeqCst);
/// });
/// assert_eq!(counter.load(Ordering::SeqCst), 111);
/// ```
#[macro_export]
macro_rules! palthreads {
    ($pool:expr => $($body:block),+ $(,)?) => {{
        let __pal_pool: &$crate::PalPool = &$pool;
        __pal_pool.scope(|__pal_scope| {
            $(
                __pal_scope.spawn(|| $body);
            )+
        });
    }};
}

/// Fork two expressions as pal-threads and return both results — the
/// two-way special case of [`palthreads!`] that the paper's
/// divide-and-conquer examples use, routed through [`Executor::join`] so it
/// works with any executor (and inherits the α·log p sequential cutoff on a
/// [`PalPool`](crate::PalPool)).
///
/// ```
/// use lopram_core::{pal_join, PalPool};
///
/// let pool = PalPool::new(4).unwrap();
/// let (a, b) = pal_join!(pool => 2 + 2, "hello".len());
/// assert_eq!((a, b), (4, 5));
/// ```
///
/// [`Executor::join`]: crate::Executor::join
#[macro_export]
macro_rules! pal_join {
    ($exec:expr => $a:expr, $b:expr $(,)?) => {{
        $crate::Executor::join(&$exec, || $a, || $b)
    }};
}

#[cfg(test)]
mod tests {
    use crate::PalPool;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn palthreads_runs_every_block() {
        let pool = PalPool::new(4).unwrap();
        let counter = AtomicUsize::new(0);
        palthreads!(pool => {
            counter.fetch_add(1, Ordering::SeqCst);
        }, {
            counter.fetch_add(2, Ordering::SeqCst);
        }, {
            counter.fetch_add(4, Ordering::SeqCst);
        }, {
            counter.fetch_add(8, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn palthreads_single_block() {
        let pool = PalPool::sequential();
        let counter = AtomicUsize::new(0);
        palthreads!(pool => {
            counter.fetch_add(5, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn palthreads_sequential_pool_runs_in_creation_order() {
        let pool = PalPool::sequential();
        let order = Mutex::new(Vec::new());
        palthreads!(pool => {
            order.lock().push(1);
        }, {
            order.lock().push(2);
        }, {
            order.lock().push(3);
        });
        assert_eq!(*order.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn pal_join_returns_both_results() {
        let pool = PalPool::new(2).unwrap();
        let x = 20;
        let (a, b) = pal_join!(pool => x + 1, x + 2);
        assert_eq!((a, b), (21, 22));
    }

    #[test]
    fn pal_join_works_with_any_executor() {
        let (a, b) = pal_join!(crate::SeqExecutor => 1, 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn pal_join_is_throttled_below_the_cutoff() {
        // On a sequential pool (cutoff 0) the macro's fork is elided like a
        // direct `join` call.
        let pool = PalPool::sequential();
        let (a, b) = pal_join!(pool => 1, 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(pool.metrics().elided(), 1);
        assert_eq!(pool.metrics().spawned(), 0);
    }

    #[test]
    fn palthreads_can_mutate_disjoint_slices() {
        let pool = PalPool::new(2).unwrap();
        let mut data = vec![0u32; 8];
        let (left, right) = data.split_at_mut(4);
        let left = Mutex::new(left);
        let right = Mutex::new(right);
        palthreads!(pool => {
            for x in left.lock().iter_mut() { *x = 1; }
        }, {
            for x in right.lock().iter_mut() { *x = 2; }
        });
        assert_eq!(data, vec![1, 1, 1, 1, 2, 2, 2, 2]);
    }
}
