//! Execution back-ends.
//!
//! The divide-and-conquer and dynamic-programming crates are written against
//! the [`Executor`] trait so that the same algorithm text can run
//! sequentially (the paper's `T(n) = T_1(n)` baseline), on a [`PalPool`]
//! (real pal-threads on a bounded work-stealing pool, §3.1), on the eager
//! [`ThrottledPool`] ablation, or — through the `lopram-sim` crate — on the
//! deterministic LoPRAM simulator.  This mirrors the paper's claim that
//! work-optimal parallel algorithms are obtained from "simple modifications
//! of sequential algorithms": the modification is just the choice of
//! executor.  Because `PalPool` and `ThrottledPool` expose the same trait,
//! the scheduler-ablation experiment (E12) can run one algorithm body on
//! both and compare their `RunMetrics` (spawned/inlined/steals) directly.

use std::ops::Range;

use crate::runtime::{PalPool, ThrottledPool};
use crate::Result;

/// An execution back-end for pal-thread style parallelism.
pub trait Executor: Sync {
    /// Number of processors `p` this executor models.
    fn processors(&self) -> usize;

    /// Run two pal-threads and wait for both (the `palthreads { a; b; }`
    /// construct).
    fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send;

    /// Apply `f` to every index of `range`, possibly in parallel.
    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync;

    /// `true` when more than one processor is available.
    fn is_parallel(&self) -> bool {
        self.processors() > 1
    }
}

/// Strictly sequential executor (`p = 1`); the reference every speedup is
/// measured against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SeqExecutor;

impl Executor for SeqExecutor {
    fn processors(&self) -> usize {
        1
    }

    fn join<RA, RB>(&self, a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        (a(), b())
    }

    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        for i in range {
            f(i);
        }
    }
}

impl Executor for PalPool {
    fn processors(&self) -> usize {
        PalPool::processors(self)
    }

    fn join<RA, RB>(&self, a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        PalPool::join(self, a, b)
    }

    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        PalPool::for_each_index(self, range, f)
    }
}

impl Executor for ThrottledPool {
    fn processors(&self) -> usize {
        ThrottledPool::processors(self)
    }

    fn join<RA, RB>(&self, a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        ThrottledPool::join(self, a, b)
    }

    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        ThrottledPool::for_each_index(self, range, f)
    }
}

/// Pal-thread executor owning its [`PalPool`].
#[derive(Debug)]
pub struct PalExecutor {
    pool: PalPool,
}

impl PalExecutor {
    /// Create an executor with exactly `p` processors.
    pub fn new(p: usize) -> Result<Self> {
        Ok(PalExecutor {
            pool: PalPool::new(p)?,
        })
    }

    /// Create an executor sized by the paper's `p = O(log n)` policy.
    pub fn for_input_size(n: usize) -> Self {
        PalExecutor {
            pool: PalPool::for_input_size(n),
        }
    }

    /// Wrap an existing pool.
    pub fn from_pool(pool: PalPool) -> Self {
        PalExecutor { pool }
    }

    /// Access the underlying pool.
    pub fn pool(&self) -> &PalPool {
        &self.pool
    }
}

impl Executor for PalExecutor {
    fn processors(&self) -> usize {
        self.pool.processors()
    }

    fn join<RA, RB>(&self, a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        self.pool.join(a, b)
    }

    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.pool.for_each_index(range, f)
    }
}

impl<E: Executor> Executor for &E {
    fn processors(&self) -> usize {
        (**self).processors()
    }

    fn join<RA, RB>(&self, a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        (**self).join(a, b)
    }

    fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        (**self).for_each_index(range, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise<E: Executor>(exec: &E) {
        let (a, b) = exec.join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
        let counter = AtomicUsize::new(0);
        exec.for_each_index(0..100, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(exec.processors() >= 1);
    }

    #[test]
    fn sequential_executor_works() {
        let exec = SeqExecutor;
        exercise(&exec);
        assert!(!exec.is_parallel());
        assert_eq!(exec.processors(), 1);
    }

    #[test]
    fn pal_executor_works() {
        let exec = PalExecutor::new(4).unwrap();
        exercise(&exec);
        assert!(exec.is_parallel());
        assert_eq!(exec.processors(), 4);
    }

    #[test]
    fn pool_is_an_executor() {
        let pool = PalPool::new(2).unwrap();
        exercise(&pool);
    }

    #[test]
    fn throttled_pool_is_an_executor() {
        let pool = ThrottledPool::new(2).unwrap();
        exercise(&pool);
    }

    #[test]
    fn reference_to_executor_is_executor() {
        let exec = SeqExecutor;
        exercise(&&exec);
    }

    #[test]
    fn pal_executor_for_input_size() {
        let exec = PalExecutor::for_input_size(1 << 12);
        assert!(exec.processors() >= 1);
        assert!(exec.pool().processors() == exec.processors());
    }

    #[test]
    fn executors_agree_on_recursive_sum() {
        fn sum<E: Executor>(exec: &E, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = exec.join(|| sum(exec, lo), || sum(exec, hi));
            a + b
        }
        let data: Vec<u64> = (0..1000).collect();
        let seq = sum(&SeqExecutor, &data);
        let pal = sum(&PalExecutor::new(4).unwrap(), &data);
        assert_eq!(seq, pal);
        assert_eq!(seq, 999 * 1000 / 2);
    }
}
