//! Runtime health integration tests: a chaos-killed worker is detected by
//! `PalPool::health()`, the §3.1 cutoff is recomputed for the effective
//! processor count (Theorem 1 is parameterized by p), and metrics carry
//! the kill/respawn counters.

use std::time::{Duration, Instant};

use lopram_core::{ChaosConfig, PalPool, PoolHealth, SelfHeal};

/// Poll `pool.health()` until `ok` holds, failing after 10s.  Observing
/// health also drives supervision, so this loop *is* the watchdog.
fn wait_health(pool: &PalPool, what: &str, ok: impl Fn(&PoolHealth) -> bool) -> PoolHealth {
    let start = Instant::now();
    loop {
        let health = pool.health();
        if ok(&health) {
            return health;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pool health never reached: {what}; last {health:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn sum(pool: &PalPool, data: &[u64]) -> u64 {
    if data.len() <= 8 {
        return data.iter().sum();
    }
    let (lo, hi) = data.split_at(data.len() / 2);
    let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
    a + b
}

#[test]
fn healthy_pool_reports_full_width_and_untouched_cutoff() {
    let pool = PalPool::new(2).unwrap();
    assert_eq!(pool.cutoff_depth(), Some(2));
    let health = pool.health();
    assert_eq!(health.workers, 2);
    assert_eq!(health.alive_workers, 2);
    assert!(!health.is_degraded());
    assert_eq!(pool.cutoff_depth(), Some(2));
    assert_eq!(pool.metrics().workers_killed(), 0);
}

#[test]
fn degraded_pool_recomputes_cutoff_for_effective_p() {
    // p = 2, worker 1 killed at startup, no respawn: once health observes
    // the death, the throttle must drop from ⌈2·log₂ 2⌉ = 2 to
    // ⌈2·log₂ 1⌉ = 0 — optimal-at-(p−1), not hung at the old width.
    let pool = PalPool::builder()
        .processors(2)
        .chaos(ChaosConfig::none().kill(1, 0))
        .self_heal(SelfHeal::Degrade)
        .build()
        .unwrap();
    assert_eq!(pool.cutoff_depth(), Some(2));
    let data: Vec<u64> = (0..1024).collect();
    // Liveness: joins complete while (or after) the kill fires.
    assert_eq!(sum(&pool, &data), 1023 * 1024 / 2);
    let health = wait_health(&pool, "degraded to 1 alive", |h| {
        h.alive_workers == 1 && h.killed == 1
    });
    assert!(health.is_degraded());
    assert_eq!(health.dead_workers(), vec![1]);
    assert_eq!(pool.cutoff_depth(), Some(0));
    // The kill is folded into the run metrics.
    assert_eq!(pool.metrics().workers_killed(), 1);
    assert_eq!(pool.metrics().workers_respawned(), 0);
    // The degraded pool still computes correctly.
    assert_eq!(sum(&pool, &data), 1023 * 1024 / 2);
}

#[test]
fn respawned_pool_restores_the_cutoff() {
    let pool = PalPool::builder()
        .processors(2)
        .chaos(ChaosConfig::none().kill(0, 0))
        .self_heal(SelfHeal::Respawn)
        .build()
        .unwrap();
    let data: Vec<u64> = (0..1024).collect();
    assert_eq!(sum(&pool, &data), 1023 * 1024 / 2);
    let health = wait_health(&pool, "respawned back to 2 alive", |h| {
        h.alive_workers == 2 && h.killed == 1
    });
    assert!(health.respawned >= 1);
    // Back at full width: the cutoff is the original ⌈2·log₂ 2⌉.
    assert_eq!(pool.cutoff_depth(), Some(2));
    let m = pool.metrics();
    assert_eq!(m.workers_killed(), 1);
    assert!(m.workers_respawned() >= 1);
    assert_eq!(sum(&pool, &data), 1023 * 1024 / 2);
}

#[test]
fn chaos_kill_does_not_change_results_or_fork_accounting() {
    // Differential: same computation on a clean pool and a seeded-chaos
    // pool — bit-identical results, and forks() accounts every creation
    // point on both.
    let data: Vec<u64> = (0..2048).collect();
    let clean = PalPool::new(2).unwrap();
    let expected = sum(&clean, &data);
    for seed in [3u64, 11, 29] {
        let pool = PalPool::builder()
            .processors(2)
            .chaos(ChaosConfig::seeded(seed, 2))
            .self_heal(SelfHeal::Respawn)
            .build()
            .unwrap();
        assert_eq!(sum(&pool, &data), expected, "seed {seed}");
        let m = pool.metrics();
        assert!(m.forks() > 0, "seed {seed}");
    }
}
