//! Regression tests for the Theorem 1 migration property (§3.1): a
//! pal-thread that could not be activated at creation time must remain
//! *available* to any processor that frees up later.
//!
//! The eager spawn-or-inline shim of PR 1 fails these tests — a fork that
//! was not granted a thread at creation was folded into its parent forever —
//! which is exactly the divergence the work-stealing runtime fixes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::{self, ThreadId};
use std::time::{Duration, Instant};

use lopram_core::{assert_metrics_consistent, PalPool};

/// Iteration count for the repeated tests, overridable via
/// `LOPRAM_TEST_REPEAT` (the CI `runtime-stress` job raises it).
fn repeat(default: usize) -> usize {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Spin (sleeping, not burning the CPU — the CI host has one core) until
/// `flag` is set, failing loudly if the scheduler never delivers it.
fn await_flag(flag: &AtomicBool, what: &str) {
    let start = Instant::now();
    while !flag.load(Ordering::Acquire) {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "{what}: the pending pal-thread was never migrated to a freed processor \
             (the scheduler implements the eager no-migration rule)"
        );
        thread::sleep(Duration::from_millis(1));
    }
}

/// §3.1 / Figure 2: with `p = 2`, one fast and one slow subtree, the
/// processor freed by the fast subtree must pick up a pal-thread that was
/// still pending — not have been irrevocably inlined — when both processors
/// were busy at its creation time.
///
/// Construction: the outer join occupies worker A (running `slow_left`) and
/// worker B (stealing `fast_right`, which finishes quickly).  `slow_left`
/// then forks an inner pal-thread while B is still busy and blocks until
/// that inner fork has actually *run*.  Only a scheduler that keeps the
/// fork pending and lets the freed worker B steal it can make progress; an
/// eager scheduler commits the fork to inline execution (after its parent,
/// which is circularly waiting for it) and times out.
#[test]
fn freed_processor_picks_up_pending_pal_thread() {
    for _ in 0..repeat(3) {
        let pool = PalPool::new(2).unwrap();
        let inner_ran = AtomicBool::new(false);
        let parent_thread: Mutex<Option<ThreadId>> = Mutex::new(None);
        let inner_thread: Mutex<Option<ThreadId>> = Mutex::new(None);

        pool.join(
            // Slow left subtree: holds its processor until the inner
            // pending pal-thread has been executed by someone.
            || {
                *parent_thread.lock().unwrap() = Some(thread::current().id());
                pool.join(
                    || await_flag(&inner_ran, "inner fork"),
                    // The pending pal-thread: created while both processors
                    // are busy, so it sits in the deque until worker B
                    // frees up and steals it.
                    || {
                        *inner_thread.lock().unwrap() = Some(thread::current().id());
                        inner_ran.store(true, Ordering::Release);
                    },
                );
            },
            // Fast right subtree: finishes early, freeing its processor.
            || thread::sleep(Duration::from_millis(20)),
        );

        let parent = parent_thread.lock().unwrap().expect("left subtree ran");
        let inner = inner_thread.lock().unwrap().expect("inner fork ran");
        assert_ne!(
            parent, inner,
            "the pending pal-thread must run on the freed processor, not inline in its parent"
        );
        let m = pool.metrics();
        assert!(
            m.steals() >= 1,
            "migration must be visible in RunMetrics::steals (got {})",
            m.steals()
        );
        // Two joins ran (outer + inner), each forking once — and a stolen
        // fork is still a granted fork, so the accounting stays exact.
        assert_metrics_consistent(m, 2);
    }
}

/// Satellite check for the metrics gap: a recursive mergesort on `p = 4`
/// must record nonzero counts for *both* spawn decisions — some pal-threads
/// stolen by idle processors, some popped back and inlined by their parent.
/// (On the PR 1 shim `inlined()` always read 0 on the default pool.)
#[test]
fn mergesort_records_spawned_and_inlined() {
    fn merge_sort(pool: &PalPool, data: &mut [i64], scratch: &mut [i64]) {
        if data.len() <= 32 {
            data.sort_unstable();
            return;
        }
        let mid = data.len() / 2;
        let (dl, dr) = data.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        pool.join(|| merge_sort(pool, dl, sl), || merge_sort(pool, dr, sr));
        // Merge the sorted halves through the scratch buffer.
        let (mut i, mut j) = (0, 0);
        for slot in scratch.iter_mut() {
            if j >= dr.len() || (i < dl.len() && dl[i] <= dr[j]) {
                *slot = dl[i];
                i += 1;
            } else {
                *slot = dr[j];
                j += 1;
            }
        }
        let n = dl.len() + dr.len();
        let merged: Vec<i64> = scratch[..n].to_vec();
        dl.iter_mut()
            .chain(dr.iter_mut())
            .zip(merged)
            .for_each(|(d, s)| *d = s);
    }

    let pool = PalPool::new(4).unwrap();
    let n = 1 << 17;
    // One sort subdivides 2^17 keys down to 32-key leaves: 4096 leaves,
    // hence exactly 4095 joins — a schedule-independent count the
    // accounting must reproduce exactly, however the forks were resolved.
    let forks_per_sort = (n / 32 - 1) as u64;
    // A few attempts absorb scheduling noise on the single-core CI host;
    // one run of 4095 forks against three hungry workers is normally enough.
    for attempt in 0..3u64 {
        let mut data: Vec<i64> = (0..n as i64)
            .map(|x| (x * 2_654_435_761) % 1_000_003)
            .collect();
        let mut scratch = vec![0i64; n];
        merge_sort(&pool, &mut data, &mut scratch);
        assert!(data.windows(2).all(|w| w[0] <= w[1]), "sort is correct");
        let m = pool.metrics();
        assert_metrics_consistent(m, (attempt + 1) * forks_per_sort);
        if m.spawned() > 0 && m.inlined() > 0 {
            return;
        }
        eprintln!(
            "attempt {attempt}: spawned = {}, inlined = {} — retrying",
            m.spawned(),
            m.inlined()
        );
    }
    let m = pool.metrics();
    panic!(
        "recursive mergesort on p = 4 must exercise both scheduling outcomes; \
         got spawned = {}, inlined = {}",
        m.spawned(),
        m.inlined()
    );
}

/// Steal order follows creation order: with one worker forking twice while
/// the other worker is the only free processor, the older pending
/// pal-thread is activated first (§3.1's "consistent with order of
/// creation" rule).
#[test]
fn pending_pal_threads_are_activated_oldest_first() {
    for _ in 0..repeat(3) {
        let pool = PalPool::new(2).unwrap();
        let order: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let both_done = AtomicBool::new(false);
        pool.join(
            || {
                // Fork a second pending pal-thread under the first, then
                // hold this processor until the other worker has drained
                // both, oldest first.
                pool.join(
                    || await_flag(&both_done, "younger fork"),
                    || {
                        order.lock().unwrap().push("younger");
                        both_done.store(true, Ordering::Release);
                    },
                );
            },
            || {
                order.lock().unwrap().push("older");
            },
        );
        let order = order.lock().unwrap();
        assert_eq!(
            *order,
            vec!["older", "younger"],
            "the idle processor must take the oldest pending pal-thread first"
        );
    }
}
