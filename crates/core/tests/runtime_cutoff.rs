//! Regression tests for the α·log p sequential cutoff (§3.1 / Figure 2):
//! forks below the top `⌈α·log₂ p⌉` recursion levels must degenerate to
//! plain sequential calls — `spawned == 0` for them, no scheduler job ever
//! created — while the levels above keep the full §3.1 migration behaviour
//! (`table_scheduler_ablation --smoke` still asserts the divergence in CI).

use std::sync::atomic::{AtomicUsize, Ordering};

use lopram_core::{assert_metrics_consistent, PalPool};

/// Iteration count for the repeated tests, overridable via
/// `LOPRAM_TEST_REPEAT` (the CI `runtime-stress` job raises it).
fn repeat(default: usize) -> usize {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn join_tree(pool: &PalPool, depth: u32, leaves: &AtomicUsize) {
    if depth == 0 {
        leaves.fetch_add(1, Ordering::Relaxed);
        return;
    }
    pool.join(
        || join_tree(pool, depth - 1, leaves),
        || join_tree(pool, depth - 1, leaves),
    );
}

/// The headline regression: a run that is entirely below the cutoff (a
/// one-processor pool has cutoff depth 0) records `spawned == 0` — not a
/// single fork became a scheduler job — yet computes everything.
#[test]
fn below_cutoff_run_records_zero_spawns() {
    for i in 0..repeat(5) {
        let pool = PalPool::new(1).unwrap();
        assert_eq!(pool.cutoff_depth(), Some(0));
        let leaves = AtomicUsize::new(0);
        join_tree(&pool, 8, &leaves);
        assert_eq!(leaves.load(Ordering::Relaxed), 256, "iteration {i}");
        let m = pool.metrics();
        assert_eq!(m.spawned(), 0, "iteration {i}: below-cutoff forks spawned");
        assert_eq!(m.inlined(), 0, "iteration {i}: below-cutoff forks queued");
        assert_eq!(m.steals(), 0, "iteration {i}");
        assert_metrics_consistent(m, 255); // so all 255 joins were elided
    }
}

/// The cutoff splits the tree exactly: on p = 2 (cutoff 2) a depth-5 binary
/// join tree schedules precisely the three joins of depths 0–1 and elides
/// the 28 deeper ones.  Exactness across repeats also proves the recursion
/// depth travels with stolen subtrees — a thief restarting at depth 0 would
/// schedule extra levels nondeterministically.
#[test]
fn cutoff_splits_the_tree_deterministically() {
    for i in 0..repeat(10) {
        let pool = PalPool::new(2).unwrap();
        assert_eq!(pool.cutoff_depth(), Some(2));
        let leaves = AtomicUsize::new(0);
        join_tree(&pool, 5, &leaves);
        assert_eq!(leaves.load(Ordering::Relaxed), 32, "iteration {i}");
        let m = pool.metrics();
        assert_eq!(
            m.spawned() + m.inlined(),
            3,
            "iteration {i}: joins above the cutoff (depths 0-1)"
        );
        assert_eq!(m.elided(), 28, "iteration {i}: joins below the cutoff");
        assert_metrics_consistent(m, 31);
    }
}

/// Disabling the throttle restores the old behaviour: every fork is a
/// scheduler job, none are elided — and the result is identical.
#[test]
fn no_cutoff_schedules_every_fork() {
    let pool = PalPool::builder()
        .processors(2)
        .no_cutoff()
        .build()
        .unwrap();
    assert_eq!(pool.cutoff_depth(), None);
    let leaves = AtomicUsize::new(0);
    join_tree(&pool, 5, &leaves);
    assert_eq!(leaves.load(Ordering::Relaxed), 32);
    let m = pool.metrics();
    assert_eq!(m.elided(), 0);
    assert_metrics_consistent(m, 31); // every one of the 31 forks scheduled
}

/// §3.2: "the algorithm must execute properly for any value of p" — with
/// the throttle on, off, and at tuned α, across processor counts, under
/// repetition.
#[test]
fn results_agree_for_all_cutoff_configurations() {
    fn sum(pool: &PalPool, data: &[u64]) -> u64 {
        if data.len() <= 8 {
            return data.iter().sum();
        }
        let (lo, hi) = data.split_at(data.len() / 2);
        let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
        a + b
    }
    let data: Vec<u64> = (0..4096).collect();
    let expected: u64 = data.iter().sum();
    for i in 0..repeat(3) {
        for p in [1usize, 2, 3, 4] {
            let default_pool = PalPool::new(p).unwrap();
            let tuned = PalPool::builder().processors(p).alpha(1.0).build().unwrap();
            let raw = PalPool::builder()
                .processors(p)
                .no_cutoff()
                .build()
                .unwrap();
            for pool in [&default_pool, &tuned, &raw] {
                assert_eq!(
                    sum(pool, &data),
                    expected,
                    "iteration {i}, p = {p}, cutoff = {:?}",
                    pool.cutoff_depth()
                );
            }
        }
    }
}

/// Scope spawns obey the same throttle: below the cutoff they run inline,
/// immediately, in creation order, without creating scheduler jobs.
#[test]
fn scope_spawns_below_cutoff_run_inline_in_creation_order() {
    let pool = PalPool::new(1).unwrap();
    let order = std::sync::Mutex::new(Vec::new());
    pool.scope(|s| {
        for i in 0..16 {
            let order = &order;
            s.spawn(move || order.lock().unwrap().push(i));
        }
    });
    assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
    let m = pool.metrics();
    assert_eq!(m.spawned(), 0);
    assert_eq!(m.elided(), 16);
}

/// Elided joins keep the scheduled path's panic contract: `b` executes
/// even when `a` unwinds (a stolen `b` always runs), and `a`'s panic takes
/// precedence — side effects must not depend on which side of the cutoff a
/// fork landed.
#[test]
fn elided_join_runs_b_even_when_a_panics() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let pool = PalPool::new(1).unwrap(); // cutoff 0: every join elided
    let b_ran = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.join(
            || panic!("child a failed"),
            || {
                b_ran.fetch_add(1, Ordering::SeqCst);
            },
        );
    }));
    assert!(result.is_err(), "a's panic propagates");
    assert_eq!(b_ran.load(Ordering::SeqCst), 1, "b still ran");
    // And the pool stays usable.
    assert_eq!(pool.join(|| 1, || 2), (1, 2));
}

/// Depth is tracked per pool: recursion accumulated on one pool must not
/// be charged against another pool's cutoff — a pool entered at its
/// logical root schedules normally even when the calling computation is
/// already deep in a different pool's tree.
#[test]
fn cutoff_depth_is_tracked_per_pool() {
    fn deep(outer: &PalPool, inner: &PalPool, depth: u32) {
        if depth == 0 {
            // inner's logical root, reached at depth 4 of outer's tree:
            // inner must schedule this fork, not elide it.
            inner.join(|| (), || ());
            return;
        }
        outer.join(|| deep(outer, inner, depth - 1), || ());
    }
    let outer = PalPool::builder()
        .processors(2)
        .no_cutoff()
        .build()
        .unwrap();
    let inner = PalPool::new(2).unwrap(); // cutoff 2 < outer recursion depth
    deep(&outer, &inner, 4);
    let m = inner.metrics();
    assert_eq!(m.elided(), 0, "inner pool starts at its own depth 0");
    assert_eq!(m.spawned() + m.inlined(), 1);
}

/// Nested scopes inside a join subtree inherit the subtree's depth: once
/// the recursion is past the cutoff, `for_each_index` and friends stop
/// creating jobs too.
#[test]
fn data_parallel_helpers_inherit_the_depth() {
    let pool = PalPool::builder().processors(2).alpha(0.5).build().unwrap();
    // cutoff = ⌈0.5·log₂ 2⌉ = 1: the outer join is scheduled, everything
    // inside it is below the cutoff.
    assert_eq!(pool.cutoff_depth(), Some(1));
    let hits = AtomicUsize::new(0);
    pool.join(
        || {
            pool.for_each_index(0..100, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        },
        || (),
    );
    assert_eq!(hits.load(Ordering::Relaxed), 100);
    let m = pool.metrics();
    // One scheduled fork (the outer join's b); every chunk spawn of the
    // inner for_each_index was elided.
    assert_eq!(m.spawned() + m.inlined(), 1);
    assert!(m.elided() > 0, "inner chunk spawns must be elided");
    // 1 outer join + one spawn per for_each_index chunk, all accounted
    // (for_each_index uses fixed-size chunks over the index bound — not
    // the primitives' adaptive chunk_count — so index_chunk_count is only
    // an upper bound on its spawn count; recompute the exact split).
    let chunk_size = 100usize.div_ceil(pool.index_chunk_count(100));
    assert_metrics_consistent(m, 1 + 100usize.div_ceil(chunk_size) as u64);
}
