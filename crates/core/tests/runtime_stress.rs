//! Stress tests shaking out races in the work-stealing pal-thread runtime.
//!
//! Each test loops `LOPRAM_TEST_REPEAT` times (default 100) so the CI
//! `runtime-stress` job can crank the repetition up on the 1-CPU host,
//! where thread interleavings are decided by preemption and are the
//! nastiest kind of nondeterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use lopram_core::{
    assert_metrics_consistent, run_cancellable, CancelReason, CancelToken, PalPool, ThrottledPool,
    TraceConfig,
};

fn repeat(default: usize) -> usize {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fib(pool: &PalPool, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = pool.join(|| fib(pool, n - 1), || fib(pool, n - 2));
    a + b
}

/// Nested joins under contention: many forks, deep recursion, every result
/// must come back exact and the pool must stay consistent across runs.
#[test]
fn nested_join_stress() {
    let pool = PalPool::new(4).unwrap();
    for i in 0..repeat(100) {
        assert_eq!(fib(&pool, 12), 144, "iteration {i}");
    }
    let m = pool.metrics();
    // Every fork is accounted exactly once: fib(12) forks fib(n>=2) calls,
    // i.e. 232 joins per iteration — scheduled (spawned/inlined) above the
    // α·log p cutoff depth, elided below it.
    assert_metrics_consistent(m, 232 * repeat(100) as u64);
    assert!(
        m.elided() > 0,
        "fib(12) on p = 4 recurses past the cutoff depth of {:?}",
        pool.cutoff_depth()
    );
}

/// Scopes under contention: all spawned pal-threads run exactly once per
/// iteration, including nested spawns from within tasks.
#[test]
fn scope_stress() {
    let pool = PalPool::new(4).unwrap();
    for i in 0..repeat(100) {
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16, "iteration {i}");
    }
}

/// Panic propagation under contention: a panicking child must unwind out of
/// `join` no matter which processor ran it (stolen or inlined), and the
/// pool must be fully usable afterwards — no lost workers, no stuck
/// latches, no leaked pending tasks.
#[test]
fn panic_propagation_stress() {
    let pool = PalPool::new(4).unwrap();
    for i in 0..repeat(100) {
        // Alternate which side panics so both the direct-execution path (a)
        // and the pending-task path (b) are exercised.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if i % 2 == 0 {
                pool.join(|| fib(&pool, 6), || -> u64 { panic!("child b failed") });
            } else {
                pool.join(|| -> u64 { panic!("child a failed") }, || fib(&pool, 6));
            }
        }));
        assert!(result.is_err(), "iteration {i}: panic must propagate");
        // The pool must keep working after every unwind.
        assert_eq!(fib(&pool, 8), 21, "iteration {i}: pool usable after panic");
    }
}

/// Panics inside scope tasks propagate from the scope entry point after all
/// siblings ran, across many repetitions.
#[test]
fn scope_panic_stress() {
    let pool = PalPool::new(2).unwrap();
    for i in 0..repeat(100) {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task failed"));
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err(), "iteration {i}");
        assert_eq!(ran.load(Ordering::SeqCst), 1, "iteration {i}: sibling ran");
    }
}

/// `PalPool::metrics()` is safe to call from several observer threads while
/// the pool is working: the delta-sync against the runtime's counters must
/// serialize its baseline reads, or a racing observer computes a negative
/// delta (a debug-build underflow panic, garbage counters in release).
#[test]
fn concurrent_metrics_reads_are_safe() {
    let pool = PalPool::new(2).unwrap();
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for _ in 0..repeat(100) {
                    let m = pool.metrics();
                    // Total accounting never exceeds what was created.
                    assert!(m.steals() <= m.spawned());
                }
            });
        }
        for _ in 0..repeat(100).div_ceil(4) {
            assert_eq!(fib(&pool, 8), 21);
        }
    });
    let m = pool.metrics();
    assert!(m.spawned() + m.inlined() > 0);
}

/// Several observer threads drive blocked scans through *one shared pool*
/// concurrently: the primitives keep per-call state on the stack and in
/// call-local buffers, so interleaved scans must neither corrupt each
/// other's prefixes nor wedge the pool.
#[test]
fn concurrent_scans_share_one_pool() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..2048).collect();
    let expected_total: u64 = input.iter().sum();
    std::thread::scope(|s| {
        for t in 0..3 {
            let pool = &pool;
            let input = &input;
            s.spawn(move || {
                for i in 0..repeat(100).div_ceil(2) {
                    let scan = pool.scan(input, 0u64, |a, b| a + b);
                    assert_eq!(scan.total, expected_total, "thread {t}, iteration {i}");
                    assert_eq!(scan.exclusive[1], 0, "thread {t}, iteration {i}");
                    assert_eq!(
                        scan.exclusive[2047],
                        expected_total - 2047,
                        "thread {t}, iteration {i}"
                    );
                }
            });
        }
    });
    // The counters raced with each other but the invariant must hold.
    let m = pool.metrics();
    assert!(m.steals() <= m.spawned());
}

/// Concurrent packs and reductions on one shared pool, mixed with joins —
/// the pattern graph kernels produce when several workloads share a
/// processor pool.
#[test]
fn concurrent_mixed_primitives_share_one_pool() {
    let pool = PalPool::new(3).unwrap();
    let input: Vec<u64> = (0..1024).collect();
    std::thread::scope(|s| {
        let pool = &pool;
        let input = &input;
        s.spawn(move || {
            for i in 0..repeat(100).div_ceil(4) {
                let kept = pool.pack(input, |_, x| x % 3 == 0);
                assert_eq!(kept.len(), 342, "iteration {i}");
            }
        });
        s.spawn(move || {
            for i in 0..repeat(100).div_ceil(4) {
                let hist = pool.reduce_by_index(0..1024, 4, 0u64, |v| (v % 4, 1), |a, b| a + b);
                assert_eq!(hist, vec![256; 4], "iteration {i}");
            }
        });
        for i in 0..repeat(100).div_ceil(4) {
            assert_eq!(fib(pool, 10), 55, "iteration {i}");
        }
    });
}

/// A panic inside a primitive's map/predicate unwinds out of the primitive
/// and leaves the pool fully reusable — no lost workers, no stuck blocks,
/// no poisoned deques — matching the `join` panic contract the primitives
/// are built on.
#[test]
fn panic_in_primitive_map_leaves_pool_reusable() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..512).collect();
    let expected_total: u64 = input.iter().sum();
    for i in 0..repeat(100).div_ceil(2) {
        // Rotate the poisoned element through different blocks, and the
        // panic through all three primitive shapes.
        let bad = (i * 97) % 512;
        let result = catch_unwind(AssertUnwindSafe(|| match i % 3 {
            0 => {
                pool.scan(&input, 0u64, |a, b| {
                    assert!(*b != bad as u64, "poisoned scan element");
                    a + b
                });
            }
            1 => {
                pool.pack(&input, |j, _| {
                    assert!(j != bad, "poisoned pack element");
                    true
                });
            }
            _ => {
                pool.map_collect(0..512, |j| {
                    assert!(j != bad, "poisoned map element");
                    j
                });
            }
        }));
        assert!(result.is_err(), "iteration {i}: panic must propagate");
        // The pool keeps answering exactly after every unwind.
        let scan = pool.scan(&input, 0u64, |a, b| a + b);
        assert_eq!(scan.total, expected_total, "iteration {i}");
        assert_eq!(fib(&pool, 8), 21, "iteration {i}");
    }
}

/// Tracing must be an observer, never a participant: a traced pool under
/// nested-join contention produces the same results and the same
/// schedule-independent counters (`forks`, `elided`) as an untraced twin,
/// and its own trace reproduces those counters event-for-event.
#[test]
fn tracing_on_equals_tracing_off_under_stress() {
    let plain = PalPool::new(4).unwrap();
    let traced = PalPool::builder()
        .processors(4)
        .trace(TraceConfig::default())
        .build()
        .unwrap();
    let iterations = repeat(100);
    for i in 0..iterations {
        assert_eq!(fib(&plain, 12), 144, "iteration {i} (untraced)");
        assert_eq!(fib(&traced, 12), 144, "iteration {i} (traced)");
    }
    let mp = plain.metrics().snapshot();
    let mt = traced.metrics().snapshot();
    // forks and elided are properties of the program, not the schedule —
    // and must not become properties of the tracer either.  (The
    // spawned-vs-inlined split and the steal count *are* schedule-dependent
    // and may differ between the two pools.)
    assert_eq!(mp.forks(), mt.forks(), "tracing changed the fork count");
    assert_eq!(mp.elided, mt.elided, "tracing changed the elision count");
    assert_metrics_consistent(traced.metrics(), 232 * iterations as u64);
    // The capture agrees with the pool's own accounting on every counter,
    // including the racy ones — the trace records the actual schedule.
    let trace = traced.take_trace().expect("tracing was on");
    assert!(trace.is_complete() || trace.dropped > 0);
    if trace.is_complete() {
        let s = trace.summary();
        assert_eq!(s.forks, mt.forks());
        assert_eq!(s.elided, mt.elided);
        assert_eq!(s.spawned, mt.spawned);
        assert_eq!(s.inlined, mt.inlined);
        assert_eq!(s.steals, mt.steals);
    }
}

/// Panics under tracing: the tracer sits on the fork/join hot path, so a
/// panicking child must still unwind cleanly, the pool must stay usable,
/// and every capture window must stay drainable — no deadlocks on the
/// drain lock, no stuck per-worker buffers.
#[test]
fn panic_propagation_with_tracing_on() {
    let pool = PalPool::builder()
        .processors(4)
        .trace(TraceConfig::default())
        .build()
        .unwrap();
    for i in 0..repeat(100) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if i % 2 == 0 {
                pool.join(|| fib(&pool, 6), || -> u64 { panic!("child b failed") });
            } else {
                pool.join(|| -> u64 { panic!("child a failed") }, || fib(&pool, 6));
            }
        }));
        assert!(result.is_err(), "iteration {i}: panic must propagate");
        assert_eq!(fib(&pool, 8), 21, "iteration {i}: pool usable after panic");
        // Draining mid-stress must always work; the window includes the
        // panicked join, whose fork event is recorded at the call site
        // even though the child never exited.
        if i % 10 == 9 {
            let trace = pool.take_trace().expect("tracing was on");
            assert!(trace.summary().forks > 0, "iteration {i}: window not empty");
        }
    }
}

/// Repeated capture windows reuse the preallocated per-worker buffers: the
/// arena must not grow after the tracer's construction-time checkout, no
/// matter how many windows are drained.
#[test]
fn repeated_trace_windows_do_not_grow_the_arena() {
    let pool = PalPool::builder()
        .processors(2)
        .trace(TraceConfig {
            capacity_per_worker: 1 << 12,
        })
        .build()
        .unwrap();
    let after_build = pool.workspace().stats().grown_bytes;
    assert!(after_build > 0, "trace buffers are arena-accounted");
    let input: Vec<u64> = (0..4096).collect();
    for i in 0..repeat(100).div_ceil(2) {
        pool.scan(&input, 0u64, |a, b| a + b);
        fib(&pool, 10);
        let trace = pool.take_trace().expect("tracing was on");
        assert!(trace.summary().forks > 0, "iteration {i}");
    }
    // Warm up once for the scan's own workspace buffers, then the steady
    // state is allocation-free *including* the tracer.
    let steady = pool.workspace().stats().grown_bytes;
    pool.scan(&input, 0u64, |a, b| a + b);
    let _ = pool.take_trace();
    assert_eq!(
        pool.workspace().stats().grown_bytes,
        steady,
        "a steady-state traced scan + drain must not grow the arena"
    );
}

/// The service-boundary poisoning regression: after a *panicking job* —
/// a whole computation unwinding out of the pool, primitives and arena
/// buffers included — the pool and the workspace arena stay reusable
/// with **zero arena growth** on the next warm call.  This is the
/// property `lopram-serve` relies on to isolate a crashing tenant: the
/// unwind must not leak checked-out buffers (which would force the next
/// checkout to miss and grow) or wedge a worker.
#[test]
fn panicking_job_leaves_pool_and_arena_warm() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..2048).collect();
    let expected_total: u64 = input.iter().sum();
    let mut scanned = Vec::new();
    let mut packed = Vec::new();
    // Warm every buffer the job mix touches.
    pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
    pool.pack_in(&input, |_, x| x % 3 == 0, &mut packed);
    let warm = pool.workspace().stats().grown_bytes;
    for i in 0..repeat(100).div_ceil(2) {
        // A "job": joins above, a primitive below, panicking mid-pass in
        // a rotating block.
        let bad = (i * 131) % 2048;
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(
                || {
                    pool.scan_copy_in(
                        &input,
                        0u64,
                        |a, b| {
                            assert!(b != bad as u64, "poisoned job element");
                            a + b
                        },
                        &mut scanned,
                    )
                },
                || fib(&pool, 6),
            )
        }));
        assert!(result.is_err(), "iteration {i}: panic must propagate");
        // Next warm call: exact results, zero arena growth.
        let total = pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
        assert_eq!(total, expected_total, "iteration {i}");
        pool.pack_in(&input, |_, x| x % 3 == 0, &mut packed);
        assert_eq!(packed.len(), 683, "iteration {i}");
        assert_eq!(
            pool.workspace().stats().grown_bytes,
            warm,
            "iteration {i}: a panicking job must not grow the arena"
        );
    }
}

/// Cancellation unwinds through fork boundaries and chunk boundaries,
/// across schedules: a token fired mid-computation stops the job with
/// `Err(Cancelled)` — never a panic, never a wedged pool — and the next
/// warm call over the same pool stays allocation-free and exact.
#[test]
fn cancellation_unwind_leaves_pool_and_arena_warm() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..2048).collect();
    let expected_total: u64 = input.iter().sum();
    let mut scanned = Vec::new();
    pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
    let warm = pool.workspace().stats().grown_bytes;
    for i in 0..repeat(100).div_ceil(2) {
        let token = CancelToken::new();
        let fire_at = (i * 131) % 2048;
        let inner = token.clone();
        let result = run_cancellable(&token, || {
            pool.scan_copy_in(
                &input,
                0u64,
                |a, b| {
                    if b == fire_at as u64 {
                        // Client "hangs up" mid-scan; the next checkpoint
                        // (fork or chunk boundary) observes it.
                        inner.cancel();
                    }
                    a + b
                },
                &mut scanned,
            )
        });
        assert_eq!(
            result,
            Err(CancelReason::Cancelled),
            "iteration {i}: cancel must surface as Err, not a panic"
        );
        let total = pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut scanned);
        assert_eq!(total, expected_total, "iteration {i}");
        assert_eq!(
            pool.workspace().stats().grown_bytes,
            warm,
            "iteration {i}: a cancelled job must not grow the arena"
        );
    }
}

/// A token that is cancelled while *another* computation shares the pool:
/// the unrelated computation must never observe the foreign token (the
/// ambient token travels with scheduled pal-threads, it is not a property
/// of the worker), so its results stay exact while the cancellable job
/// unwinds.
#[test]
fn cancelled_job_does_not_perturb_a_concurrent_job() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..2048).collect();
    let expected_total: u64 = input.iter().sum();
    std::thread::scope(|s| {
        let pool = &pool;
        let input = &input;
        // Victim thread: plain, un-cancellable scans — every one exact.
        s.spawn(move || {
            for i in 0..repeat(100).div_ceil(2) {
                let scan = pool.scan_copy(input, 0u64, |a, b| a + b);
                assert_eq!(scan.total, expected_total, "victim iteration {i}");
            }
        });
        // Hostile thread: cancellable scans whose token fires mid-pass.
        for i in 0..repeat(100).div_ceil(2) {
            let token = CancelToken::new();
            let inner = token.clone();
            let fire_at = (i * 197) % 2048;
            let result = run_cancellable(&token, || {
                pool.scan_copy(input, 0u64, |a, b| {
                    if b == fire_at as u64 {
                        inner.cancel();
                    }
                    a + b
                })
            });
            assert_eq!(
                result,
                Err(CancelReason::Cancelled),
                "hostile iteration {i}"
            );
        }
    });
    let m = pool.metrics();
    assert!(m.steals() <= m.spawned());
}

/// Deadline-carrying tokens self-fire through the strided checkpoint
/// clock: a job that overruns its deadline stops with `DeadlineExceeded`
/// in bounded work, and an identical job with a generous deadline
/// completes exactly.
#[test]
fn deadline_blown_job_stops_and_generous_deadline_completes() {
    let pool = PalPool::new(2).unwrap();
    let input: Vec<u64> = (0..2048).collect();
    let expected_total: u64 = input.iter().sum();
    for i in 0..repeat(100).div_ceil(4) {
        // Already-expired deadline: the entry poll alone must stop it.
        let expired = CancelToken::with_deadline(Duration::ZERO);
        let result = run_cancellable(&expired, || pool.scan_copy(&input, 0u64, |a, b| a + b));
        assert_eq!(result, Err(CancelReason::DeadlineExceeded), "iteration {i}");

        // A deadline the job cannot plausibly blow: completes exactly.
        let generous = CancelToken::with_deadline(Duration::from_secs(3600));
        let result = run_cancellable(&generous, || pool.scan_copy(&input, 0u64, |a, b| a + b));
        assert_eq!(result.map(|s| s.total), Ok(expected_total), "iteration {i}");
    }
}

/// Both runtimes agree with the sequential result under repeated
/// contention — §3.2's "the algorithm must execute properly for any value
/// of p", exercised across scheduler implementations.
#[test]
fn schedulers_agree_under_stress() {
    let data: Vec<u64> = (0..2048).collect();
    let expected: u64 = data.iter().sum();

    fn sum<E: lopram_core::Executor>(exec: &E, data: &[u64]) -> u64 {
        if data.len() <= 16 {
            return data.iter().sum();
        }
        let (lo, hi) = data.split_at(data.len() / 2);
        let (a, b) = exec.join(|| sum(exec, lo), || sum(exec, hi));
        a + b
    }

    let pal = PalPool::new(3).unwrap();
    let throttled = ThrottledPool::new(3).unwrap();
    for i in 0..repeat(100) {
        assert_eq!(sum(&pal, &data), expected, "PalPool iteration {i}");
        assert_eq!(
            sum(&throttled, &data),
            expected,
            "ThrottledPool iteration {i}"
        );
    }
    // And the ablation gap is structural, not incidental: the eager
    // scheduler never migrated anything.
    assert_eq!(throttled.metrics().steals(), 0);
}
