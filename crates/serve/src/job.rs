//! Job descriptions, tickets and reports.
//!
//! A job is a closure over a [`JobContext`] returning a `u64` digest.
//! Digests — not opaque unit returns — are deliberate: the fault
//! injection suite proves isolation *differentially*, by comparing each
//! non-faulted job's digest between a faulted and a fault-free run of
//! the same seeded traffic.

use std::cell::Cell;
use std::fmt;
use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lopram_core::runtime::cancel::CancelUnwind;
use lopram_core::{CancelReason, CancelToken, MetricsSnapshot, PalPool};
use parking_lot::{Condvar, Mutex};

use crate::fault::Fault;

/// The boxed job body: runs on a service executor with access to the
/// shared pool through the [`JobContext`], returns a digest of its
/// result.  `FnMut`, not `FnOnce`: a body that fails retryably (panic,
/// fault-injected cancel) is re-invoked on the retry attempt, so it
/// must be callable more than once.
pub type JobFn = Box<dyn FnMut(&JobContext<'_>) -> u64 + Send>;

/// A job description handed to [`JobService::submit`](crate::JobService::submit).
///
/// Built with [`JobSpec::new`] plus the builder-style [`cost`](Self::cost),
/// [`deadline`](Self::deadline) and [`retries`](Self::retries) refinements.
pub struct JobSpec {
    pub(crate) tenant: usize,
    pub(crate) run: JobFn,
    pub(crate) cost: usize,
    pub(crate) deadline: Option<Duration>,
    pub(crate) retries: Option<u32>,
}

impl JobSpec {
    /// A job for `tenant` running `f`.  Defaults: cost 1 budget token,
    /// the service's default deadline (none unless configured), the
    /// service's default retry count.
    pub fn new(tenant: usize, f: impl FnMut(&JobContext<'_>) -> u64 + Send + 'static) -> Self {
        JobSpec {
            tenant,
            run: Box::new(f),
            cost: 1,
            deadline: None,
            retries: None,
        }
    }

    /// Set the job's cost in budget tokens (clamped to at least 1).  The
    /// job runs only while it holds `cost` tokens of its tenant's
    /// budget; a cost above the tenant's total budget is rejected at
    /// submission with [`SubmitError::CostExceedsBudget`].
    pub fn cost(mut self, cost: usize) -> Self {
        self.cost = cost.max(1);
        self
    }

    /// Set a deadline, measured from **submission** — time spent queued
    /// counts against it.  Overrides the service default.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Re-target the job at a different tenant — used by load
    /// generators that balance a fixed job mix across tenants.
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = tenant;
        self
    }

    /// Allow up to `n` retries after retryable failures (a caught panic,
    /// or a cancellation the client did not request), overriding the
    /// service's [`RetryPolicy`](crate::service::RetryPolicy) default.
    /// Each retry waits out a deterministic exponential backoff before
    /// re-dispatch; the job's deadline keeps ticking across attempts.
    pub fn retries(mut self, n: u32) -> Self {
        self.retries = Some(n);
        self
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("tenant", &self.tenant)
            .field("cost", &self.cost)
            .field("deadline", &self.deadline)
            .field("retries", &self.retries)
            .finish_non_exhaustive()
    }
}

/// The execution context a job body receives: the shared pool, the
/// job's cancel token, and the cooperative [`step`](Self::step) hook.
pub struct JobContext<'a> {
    pub(crate) pool: &'a PalPool,
    pub(crate) token: &'a CancelToken,
    pub(crate) fault: Option<Fault>,
    pub(crate) step: Cell<u64>,
}

impl JobContext<'_> {
    /// The shared pal-thread pool.  Every pool primitive called through
    /// this reference inherits the job's ambient cancel token, so a
    /// fired token unwinds out of scans, packs and joins in O(grain)
    /// work without any extra plumbing.
    pub fn pool(&self) -> &PalPool {
        self.pool
    }

    /// The job's cancel token — hand a clone to helper threads, or poll
    /// [`CancelToken::fired`] for a non-unwinding check.
    pub fn job_token(&self) -> &CancelToken {
        self.token
    }

    /// Cooperative checkpoint for job-level loops (the pool's own fork
    /// and chunk boundaries already poll).  Increments the step counter,
    /// fires any injected [`Fault`] scheduled for the new step, then
    /// polls the token — unwinding with the job's cancel reason if it
    /// has fired.  Bounded hostile loops in the traffic generator call
    /// this every iteration, which is what makes fault injection land
    /// at deterministic points.
    pub fn step(&self) {
        let now = self.step.get() + 1;
        self.step.set(now);
        if let Some(fault) = self.fault {
            if fault.at_step() == now {
                match fault {
                    Fault::Panic { .. } => panic!("injected fault: panic at step {now}"),
                    Fault::Cancel { .. } => self.token.cancel(),
                    Fault::Deadline { .. } => match self.token.deadline() {
                        // Stall past the deadline so the poll below
                        // observes a genuine clock-fired expiry.
                        Some(deadline) => {
                            while Instant::now() < deadline {
                                std::hint::spin_loop();
                            }
                        }
                        None => self.token.cancel(),
                    },
                }
            }
        }
        if let Some(reason) = self.token.poll_now() {
            resume_unwind(Box::new(CancelUnwind { reason }));
        }
    }

    /// Number of [`step`](Self::step) calls so far.
    pub fn steps(&self) -> u64 {
        self.step.get()
    }
}

/// Why a submission was refused — admission control speaking, before
/// any work ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is full, or the tenant's admission
    /// quota (`ceil(capacity / tenants)` queue slots) is.  Backpressure:
    /// retry later or shed load; the service never buffers unboundedly.
    Rejected {
        /// Global queue depth observed at rejection — equal to the
        /// capacity when the global bound fired, possibly lower when
        /// the tenant's own quota did.
        queue_depth: usize,
    },
    /// The tenant index is outside `0..config.tenants`.
    UnknownTenant {
        /// The offending tenant index.
        tenant: usize,
    },
    /// The job's cost exceeds its tenant's *total* budget, so it could
    /// never acquire enough tokens to run.
    CostExceedsBudget {
        /// Requested cost in budget tokens.
        cost: usize,
        /// The tenant's total budget.
        budget: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShutDown,
    /// The shared pool has degraded below the configured
    /// [`min_alive_processors`](crate::ServeConfig::min_alive_processors)
    /// floor: new work is shed while already-queued work keeps
    /// draining on the surviving processors.
    Degraded {
        /// Processors currently alive in the shared pool.
        alive: usize,
        /// The configured admission floor.
        floor: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Rejected { queue_depth } => {
                write!(f, "admission queue full (depth {queue_depth})")
            }
            SubmitError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            SubmitError::CostExceedsBudget { cost, budget } => {
                write!(f, "job cost {cost} exceeds tenant budget {budget}")
            }
            SubmitError::ShutDown => write!(f, "service is shut down"),
            SubmitError::Degraded { alive, floor } => {
                write!(
                    f,
                    "pool degraded: {alive} alive processors below floor {floor}"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// How an admitted job failed.  Every variant leaves the pool, the
/// workspace arena and all other tenants untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job body panicked; the panic was caught at the service
    /// boundary.  Carries the panic message when it was a string.
    Panicked(String),
    /// The job's token was cancelled (by its ticket or by itself).
    Cancelled,
    /// The job's deadline passed — in the queue or mid-run.
    DeadlineExceeded,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<CancelReason> for JobError {
    fn from(reason: CancelReason) -> Self {
        match reason {
            CancelReason::Cancelled => JobError::Cancelled,
            CancelReason::DeadlineExceeded => JobError::DeadlineExceeded,
        }
    }
}

/// Everything the service knows about a finished job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission index (ticket id): global, monotonically increasing.
    pub job: u64,
    /// The submitting tenant.
    pub tenant: usize,
    /// Digest on success, failure mode otherwise.
    pub outcome: Result<u64, JobError>,
    /// Time from submission to the executor picking the job up.
    pub queue_wait: Duration,
    /// Time the job body ran (zero if it expired in the queue).
    pub run_time: Duration,
    /// Pool metrics delta over the job's run: forks spawned/inlined/
    /// elided, steals, arena hits and bytes, work items.
    pub metrics: MetricsSnapshot,
    /// Whether `metrics` is *exactly* this job's work: true iff no
    /// other job overlapped its run.  Always true at `executors: 1`.
    pub metrics_exclusive: bool,
    /// Number of attempts executed, counting the first (so always
    /// ≥ 1).  Greater than 1 exactly when the job was retried after a
    /// retryable failure.
    pub attempts: u32,
}

pub(crate) struct TicketState {
    pub(crate) report: Mutex<Option<JobReport>>,
    pub(crate) done: Condvar,
    /// The *current* attempt's cancel token.  A retry swaps in a fresh
    /// token (the failed attempt's fired state must not leak into the
    /// retry), so client-side access goes through this lock.
    pub(crate) token: Mutex<CancelToken>,
    /// Set by [`JobTicket::cancel`] before firing the current token:
    /// distinguishes a client's cancel (terminal — never retried) from a
    /// fault-injected one (retryable).
    pub(crate) client_cancelled: std::sync::atomic::AtomicBool,
}

/// A handle to an admitted job: await its [`JobReport`], or cancel it.
pub struct JobTicket {
    pub(crate) state: Arc<TicketState>,
    pub(crate) id: u64,
}

impl JobTicket {
    /// The job's submission index — the key a [`FaultPlan`](crate::FaultPlan)
    /// uses.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Fire the job's cancel token.  Idempotent; a job already past its
    /// last checkpoint may still complete normally (cancellation is
    /// cooperative, never preemptive).  A client cancel is terminal:
    /// the service never retries it, and a retry raced against this
    /// call inherits an already-fired token.
    pub fn cancel(&self) {
        self.state
            .client_cancelled
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.state.token.lock().cancel();
    }

    /// Non-blocking probe: the report if the job already finished.
    pub fn try_report(&self) -> Option<JobReport> {
        self.state.report.lock().clone()
    }

    /// Block until the job finishes and take its report.
    pub fn wait(self) -> JobReport {
        let mut report = self.state.report.lock();
        while report.is_none() {
            self.state.done.wait(&mut report);
        }
        report.take().expect("woken with report present")
    }
}

impl fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobTicket").field("id", &self.id).finish()
    }
}
