//! Deterministic fault injection for the job service.
//!
//! A [`FaultPlan`] maps **job submission indices** (the `id` a
//! [`JobTicket`](crate::JobTicket) reports) to a [`Fault`] fired from
//! inside [`JobContext::step`](crate::JobContext::step).  Because the
//! plan is keyed on submission order and seeded plans draw from the
//! workspace's deterministic `rand` shim, a faulted run can be replayed
//! exactly — and compared differentially against a fault-free run with
//! the same seeds, which is how the test suite proves a hostile job
//! never perturbs its neighbours' results.

use std::collections::HashMap;

use rand::{Rng, SeedableRng, StdRng};

/// A fault fired cooperatively at a chosen step of a job's execution.
///
/// Faults fire from [`JobContext::step`](crate::JobContext::step), the
/// same hook well-behaved jobs poll for cancellation, so a fault lands
/// at a deterministic point in the job's own control flow rather than
/// at an arbitrary preemption point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic (`panic!`) at the given step, exercising the service
    /// boundary's panic isolation.
    Panic {
        /// 1-based step count at which the panic fires.
        at_step: u64,
    },
    /// Fire the job's own cancel token at the given step, exercising
    /// mid-flight cooperative cancellation.
    Cancel {
        /// 1-based step count at which the token is cancelled.
        at_step: u64,
    },
    /// Blow the job's deadline at the given step: busy-wait until the
    /// token's deadline passes, then let the next poll observe it.  If
    /// the job carries no deadline this degrades to [`Fault::Cancel`]
    /// (the only safe interpretation — there is nothing to blow).
    Deadline {
        /// 1-based step count at which the stall begins.
        at_step: u64,
    },
}

impl Fault {
    /// The 1-based step at which this fault fires.
    pub fn at_step(&self) -> u64 {
        match *self {
            Fault::Panic { at_step } | Fault::Cancel { at_step } | Fault::Deadline { at_step } => {
                at_step
            }
        }
    }
}

/// A deterministic map from job submission index to the fault injected
/// into that job.  Cheap to clone; cloning shares nothing mutable.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    by_job: HashMap<u64, Fault>,
}

impl FaultPlan {
    /// The empty plan: no job is faulted.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder-style: inject `fault` into the job with submission index
    /// `job`.  Later calls for the same index overwrite earlier ones.
    pub fn inject(mut self, job: u64, fault: Fault) -> Self {
        self.by_job.insert(job, fault);
        self
    }

    /// A seeded plan over the first `jobs` submission indices: each job
    /// is faulted independently with probability `rate`, drawing the
    /// fault kind (panic / cancel / deadline, equiprobable) and a firing
    /// step in `1..=16` from the workspace's deterministic `rand` shim.
    /// Equal seeds give equal plans.
    pub fn seeded(seed: u64, jobs: u64, rate: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_job = HashMap::new();
        for job in 0..jobs {
            // Draw all three values unconditionally so each job consumes
            // a fixed amount of the stream: plans with different rates
            // but equal seeds fault the *same* jobs where they overlap.
            let roll: f64 = rng.gen_range(0.0..1.0);
            let kind: u32 = rng.gen_range(0..3u32);
            let at_step: u64 = rng.gen_range(1..17u64);
            if roll < rate {
                let fault = match kind {
                    0 => Fault::Panic { at_step },
                    1 => Fault::Cancel { at_step },
                    _ => Fault::Deadline { at_step },
                };
                by_job.insert(job, fault);
            }
        }
        FaultPlan { by_job }
    }

    /// The fault planned for submission index `job`, if any.
    pub fn fault_for(&self, job: u64) -> Option<Fault> {
        self.by_job.get(&job).copied()
    }

    /// Number of faulted jobs in the plan.
    pub fn len(&self) -> usize {
        self.by_job.len()
    }

    /// Whether the plan faults no job at all.
    pub fn is_empty(&self) -> bool {
        self.by_job.is_empty()
    }

    /// The faulted submission indices in ascending order — the set a
    /// differential test must exclude when comparing digests against a
    /// fault-free run.
    pub fn faulted_jobs(&self) -> Vec<u64> {
        let mut jobs: Vec<u64> = self.by_job.keys().copied().collect();
        jobs.sort_unstable();
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 100, 0.3);
        let b = FaultPlan::seeded(42, 100, 0.3);
        assert_eq!(a.faulted_jobs(), b.faulted_jobs());
        for job in a.faulted_jobs() {
            assert_eq!(a.fault_for(job), b.fault_for(job));
        }
        assert!(!a.is_empty(), "rate 0.3 over 100 jobs must fault some");
        assert!(a.len() < 100, "rate 0.3 must not fault every job");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, 200, 0.5);
        let b = FaultPlan::seeded(2, 200, 0.5);
        assert_ne!(a.faulted_jobs(), b.faulted_jobs());
    }

    #[test]
    fn rate_zero_and_one_are_edge_exact() {
        assert!(FaultPlan::seeded(7, 50, 0.0).is_empty());
        assert_eq!(FaultPlan::seeded(7, 50, 1.0).len(), 50);
    }

    #[test]
    fn inject_overwrites() {
        let plan = FaultPlan::none()
            .inject(3, Fault::Panic { at_step: 1 })
            .inject(3, Fault::Cancel { at_step: 2 });
        assert_eq!(plan.fault_for(3), Some(Fault::Cancel { at_step: 2 }));
        assert_eq!(plan.fault_for(4), None);
        assert_eq!(plan.faulted_jobs(), vec![3]);
    }

    #[test]
    fn at_step_accessor_covers_all_kinds() {
        assert_eq!(Fault::Panic { at_step: 5 }.at_step(), 5);
        assert_eq!(Fault::Cancel { at_step: 6 }.at_step(), 6);
        assert_eq!(Fault::Deadline { at_step: 7 }.at_step(), 7);
    }
}
