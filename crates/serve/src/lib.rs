//! # lopram-serve
//!
//! A fault-tolerant **multi-tenant job service** over one shared
//! LoPRAM pal-thread pool.
//!
//! The paper argues `p = O(log n)` processors suffice for optimal
//! speedup — which makes the pool small enough to *share*: many
//! concurrent clients submitting graph kernels, D&C sorts and DP
//! problems to a single [`PalPool`](lopram_core::PalPool) instead of
//! each owning one.  Sharing needs a service discipline, and this crate
//! is that discipline:
//!
//! * **Bounded admission** — [`JobService::submit`] either admits a job
//!   or refuses with explicit backpressure
//!   ([`SubmitError::Rejected`]); the queue never grows past its
//!   configured capacity, so a saturating client cannot OOM the
//!   service, and each tenant holds at most `ceil(capacity / tenants)`
//!   of the slots, so a flooding tenant cannot crowd the others out.
//! * **Per-tenant budgets** — each tenant holds a token budget derived
//!   from the §3.1 throttle; an over-budget tenant queues behind its
//!   own jobs and never starves the others (round-robin dispatch over
//!   per-tenant FIFO subqueues).
//! * **Deadlines and cancellation** — every job carries a
//!   [`CancelToken`](lopram_core::CancelToken) checked at fork
//!   boundaries and blocked-pass chunk boundaries inside the pool, so a
//!   fired token (client cancel or deadline expiry) unwinds in O(grain)
//!   work, and the queue wait counts against the deadline.
//! * **Panic isolation** — a panicking job is caught at the service
//!   boundary as [`JobError::Panicked`]; the pool, its workspace arena
//!   and every other tenant are untouched.
//! * **Deterministic fault injection** — a seeded [`FaultPlan`] fires
//!   panics, cancels and deadline stalls at chosen steps of chosen
//!   jobs, which is how the test suite *proves* the isolation claims
//!   differentially.
//!
//! ```
//! use lopram_serve::{JobService, JobSpec, ServeConfig};
//!
//! let service = JobService::start(ServeConfig {
//!     tenants: 2,
//!     processors: 2,
//!     ..ServeConfig::default()
//! });
//! let ticket = service
//!     .submit(JobSpec::new(0, |cx| {
//!         let data: Vec<u64> = (0..10_000).collect();
//!         cx.pool().scan(&data, 0, |a, b| a + b).total
//!     }))
//!     .expect("queue has room");
//! let report = ticket.wait();
//! assert_eq!(report.outcome, Ok(10_000 * 9_999 / 2));
//! assert!(report.metrics.forks() > 0 || report.metrics.work > 0);
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod fault;
pub mod job;
pub mod service;

pub use fault::{Fault, FaultPlan};
pub use job::{JobContext, JobError, JobReport, JobSpec, JobTicket, SubmitError};
pub use service::{JobService, RetryPolicy, ServeConfig, ServiceStats};

/// Convenience prelude re-exporting the items most users need.
pub mod prelude {
    pub use crate::fault::{Fault, FaultPlan};
    pub use crate::job::{JobContext, JobError, JobReport, JobSpec, JobTicket, SubmitError};
    pub use crate::service::{JobService, RetryPolicy, ServeConfig, ServiceStats};
}
