//! The job service: bounded admission, per-tenant budgets, round-robin
//! dispatch, and the executor loop that isolates every failure mode.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lopram_core::runtime::{Permit, ProcessorTokens};
use lopram_core::{run_cancellable, CancelToken, ChaosConfig, MetricsSnapshot, PalPool, SelfHeal};
use parking_lot::{Condvar, Mutex};

use crate::fault::{Fault, FaultPlan};
use crate::job::{JobError, JobFn, JobReport, JobSpec, JobTicket, SubmitError, TicketState};

/// Service configuration.  All limits are hard: the queue never grows
/// past `queue_capacity`, a tenant never holds more than `tenant_budget`
/// tokens at once.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of tenants (jobs are submitted for `0..tenants`).
    pub tenants: usize,
    /// Per-tenant budget in tokens; a running job holds its cost in
    /// tokens for its whole run.  Derived from the §3.1 throttle: the
    /// pool grants `p = O(log n)` processors, the budget caps how much
    /// of that concurrency one tenant can occupy.
    pub tenant_budget: usize,
    /// Bound on the admission queue (all tenants together).  A full
    /// queue rejects with [`SubmitError::Rejected`] — backpressure, not
    /// buffering.  Each tenant additionally holds at most
    /// `ceil(queue_capacity / tenants)` of the slots (its *admission
    /// quota*), so a flooding tenant is rejected at its quota and can
    /// never crowd the others out of the queue.
    pub queue_capacity: usize,
    /// Executor threads draining the queue.  With 1 executor per-job
    /// metrics are always exclusive.
    pub executors: usize,
    /// Pal-thread processors for the shared pool.
    pub processors: usize,
    /// Deadline applied to jobs that set none (measured from
    /// submission).  `None` means no default deadline.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault plan keyed on submission index.
    pub fault_plan: FaultPlan,
    /// Retry policy for jobs that fail retryably (a caught panic, or a
    /// cancellation the client did not request).  The default allows no
    /// retries; [`JobSpec::retries`] overrides the count per job.
    pub retry: RetryPolicy,
    /// Admission floor on the shared pool's alive processors: when a
    /// health probe sees fewer alive workers than this, `submit` sheds
    /// with [`SubmitError::Degraded`] while queued work keeps draining.
    /// `0` (the default) disables the check.
    pub min_alive_processors: usize,
    /// Scheduler-level chaos injected into the shared pool (worker
    /// kills, dropped wakeups, forced steal retries) — deterministic in
    /// its seed, used by the robustness suites.
    pub chaos: ChaosConfig,
    /// What the pool does about a chaos-killed worker: respawn it
    /// (default) or degrade to the survivors.
    pub self_heal: SelfHeal,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 1,
            tenant_budget: 1,
            queue_capacity: 64,
            executors: 1,
            processors: 2,
            default_deadline: None,
            fault_plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            min_alive_processors: 0,
            chaos: ChaosConfig::none(),
            self_heal: SelfHeal::default(),
        }
    }
}

/// Retry discipline for retryably-failed jobs: up to `max_retries`
/// re-dispatches, each delayed by a deterministic exponential backoff
/// with seeded jitter.  The backoff is a pure function of
/// `(jitter_seed, job id, attempt)`, so a retried run replays exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (so a job runs at most
    /// `max_retries + 1` times).  Per-job [`JobSpec::retries`] overrides
    /// this default.
    pub max_retries: u32,
    /// Backoff before the first retry; attempt `k` waits
    /// `base · 2^(k−1)` plus jitter in `[0, base)`.
    pub base_backoff: Duration,
    /// Cap on any single backoff delay.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter_seed: 0,
        }
    }
}

/// One round of splitmix64 — the same mixer the chaos config uses, so
/// backoff jitter needs no RNG state.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The delay before re-dispatching `job`'s retry number `attempt`
    /// (1-based: the first retry is attempt 1 of the policy's clock).
    /// Pure: equal `(seed, job, attempt)` give equal delays.
    pub fn backoff(&self, job: u64, attempt: u32) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(16);
        let base = self.base_backoff.saturating_mul(1u32 << exp);
        let jitter_range = self.base_backoff.as_nanos().max(1) as u64;
        let jitter =
            mix(self.jitter_seed ^ job.rotate_left(32) ^ u64::from(attempt)) % jitter_range;
        base.saturating_add(Duration::from_nanos(jitter))
            .min(self.max_backoff)
    }
}

struct Queued {
    id: u64,
    tenant: usize,
    run: JobFn,
    cost: usize,
    fault: Option<Fault>,
    enqueued: Instant,
    ticket: Arc<TicketState>,
    /// Attempts already executed (0 for a job never dispatched).
    attempts: u32,
    /// Retries this job may still consume beyond the first attempt.
    max_retries: u32,
    /// Absolute deadline fixed at submission; retries inherit it — the
    /// clock keeps ticking across attempts.
    deadline_at: Option<Instant>,
    /// Retry backoff gate: not dispatched before this instant.
    not_before: Option<Instant>,
}

struct QueueState {
    /// Per-tenant FIFO subqueues: an over-budget tenant queues behind
    /// its own jobs without blocking anyone else's subqueue.
    queues: Vec<VecDeque<Queued>>,
    /// Total queued across all tenants (the bounded quantity).
    queued: usize,
    /// Round-robin scan start for the next dispatch.
    cursor: usize,
    shutdown: bool,
}

struct TenantState {
    tokens: Arc<ProcessorTokens>,
    completed: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    queue_peak: AtomicUsize,
    retries: AtomicU64,
    shed_degraded: AtomicU64,
}

struct Shared {
    pool: PalPool,
    state: Mutex<QueueState>,
    /// Signalled on submit, on job completion (budget tokens freed) and
    /// on shutdown.
    work_ready: Condvar,
    tenants: Vec<TenantState>,
    counters: Counters,
    /// Jobs currently inside their run window (exclusivity tracking).
    active: AtomicUsize,
    /// Total run windows ever opened (exclusivity tracking).
    starts: AtomicU64,
    fault_plan: FaultPlan,
    default_deadline: Option<Duration>,
    queue_capacity: usize,
    /// Per-tenant admission quota: `ceil(queue_capacity / tenants)`.
    tenant_quota: usize,
    retry: RetryPolicy,
    /// Admission floor on alive processors; 0 disables the check.
    min_alive: usize,
}

/// Point-in-time service statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted (given a ticket).
    pub submitted: u64,
    /// Submissions refused with [`SubmitError::Rejected`].
    pub rejected: u64,
    /// Jobs finished with `Ok`.
    pub completed: u64,
    /// Jobs finished with [`JobError::Panicked`].
    pub panicked: u64,
    /// Jobs finished with [`JobError::Cancelled`].
    pub cancelled: u64,
    /// Jobs finished with [`JobError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Highest queue depth ever observed (bounded by capacity).
    pub queue_peak: usize,
    /// Retry re-dispatches issued (each counts one re-enqueue; a job
    /// retried twice contributes 2).
    pub retries: u64,
    /// Submissions shed with [`SubmitError::Degraded`] because the pool
    /// was below the configured alive-processor floor.
    pub shed_degraded: u64,
    /// `Ok`-completions per tenant, indexed by tenant id.
    pub per_tenant_completed: Vec<u64>,
}

impl ServiceStats {
    /// Jobs that reached *some* terminal state.
    pub fn finished(&self) -> u64 {
        self.completed + self.panicked + self.cancelled + self.deadline_exceeded
    }

    /// Max/min ratio of per-tenant `Ok`-completions — the fairness
    /// number `bench_serve` gates on.  1.0 when perfectly fair, `inf`
    /// when some tenant starved entirely (and another completed work),
    /// 1.0 for the degenerate all-zero case.
    pub fn fairness_ratio(&self) -> f64 {
        let max = self.per_tenant_completed.iter().copied().max().unwrap_or(0);
        let min = self.per_tenant_completed.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// A fault-tolerant multi-tenant job service over one shared
/// [`PalPool`].
///
/// Many clients submit [`JobSpec`]s concurrently; a bounded admission
/// queue applies backpressure, per-tenant token budgets keep any one
/// tenant from monopolising the pool, deadlines and cancellation unwind
/// cooperatively in O(grain) work, and panics are caught at the service
/// boundary — a hostile job can fail itself but never the pool, the
/// workspace arena, or another tenant's results.
///
/// Dropping the service shuts it down gracefully: queued jobs drain,
/// executors join.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Start a service.
    ///
    /// # Panics
    ///
    /// If any of `tenants`, `tenant_budget`, `queue_capacity`,
    /// `executors` or `processors` is zero — every limit must admit at
    /// least one unit or the service could never run a job.
    pub fn start(config: ServeConfig) -> JobService {
        assert!(config.tenants >= 1, "need at least one tenant");
        assert!(config.tenant_budget >= 1, "need a budget of at least 1");
        assert!(config.queue_capacity >= 1, "need a queue of at least 1");
        assert!(config.executors >= 1, "need at least one executor");
        assert!(config.processors >= 1, "need at least one processor");
        let pool = PalPool::builder()
            .processors(config.processors)
            .chaos(config.chaos)
            .self_heal(config.self_heal)
            .build()
            .expect("pool construction");
        let tenants = (0..config.tenants)
            .map(|_| TenantState {
                tokens: ProcessorTokens::new(config.tenant_budget),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            pool,
            state: Mutex::new(QueueState {
                queues: (0..config.tenants).map(|_| VecDeque::new()).collect(),
                queued: 0,
                cursor: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            tenants,
            counters: Counters::default(),
            active: AtomicUsize::new(0),
            starts: AtomicU64::new(0),
            fault_plan: config.fault_plan,
            default_deadline: config.default_deadline,
            queue_capacity: config.queue_capacity,
            tenant_quota: config.queue_capacity.div_ceil(config.tenants),
            retry: config.retry,
            min_alive: config.min_alive_processors,
        });
        let workers = (0..config.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lopram-serve-exec-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .expect("spawn executor")
            })
            .collect();
        JobService { shared, workers }
    }

    /// Submit a job.  Admission control runs here, under the queue
    /// lock: tenant validity, cost-vs-budget feasibility, then the
    /// bounded-queue check.  On admission the job's deadline clock
    /// starts immediately — queue wait counts against it.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let sh = &*self.shared;
        if spec.tenant >= sh.tenants.len() {
            return Err(SubmitError::UnknownTenant {
                tenant: spec.tenant,
            });
        }
        let budget = sh.tenants[spec.tenant].tokens.total();
        if spec.cost > budget {
            return Err(SubmitError::CostExceedsBudget {
                cost: spec.cost,
                budget,
            });
        }
        // Graceful degradation: probing health here also drives the
        // pool's supervision, so a service under submit load detects
        // (and, under `SelfHeal::Respawn`, heals) dead workers without a
        // dedicated watchdog thread.  Shedding happens *before* the
        // queue lock — queued work keeps draining on the survivors.
        if sh.min_alive > 0 {
            let alive = sh.pool.health().alive_workers;
            if alive < sh.min_alive {
                sh.counters.shed_degraded.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Degraded {
                    alive,
                    floor: sh.min_alive,
                });
            }
        }
        let mut st = sh.state.lock();
        if st.shutdown {
            return Err(SubmitError::ShutDown);
        }
        // The global bound caps total buffering; the per-tenant quota
        // keeps one flooding tenant from crowding the others out of the
        // queue — its excess bounces while their slots stay reachable.
        if st.queued >= sh.queue_capacity || st.queues[spec.tenant].len() >= sh.tenant_quota {
            sh.counters.rejected.fetch_add(1, Ordering::Relaxed);
            sh.tenants[spec.tenant]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected {
                queue_depth: st.queued,
            });
        }
        let id = sh.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let deadline_at = spec.deadline.or(sh.default_deadline).map(|d| now + d);
        let token = match deadline_at {
            Some(at) => CancelToken::with_deadline_at(at),
            None => CancelToken::new(),
        };
        let ticket = Arc::new(TicketState {
            report: Mutex::new(None),
            done: Condvar::new(),
            token: Mutex::new(token),
            client_cancelled: std::sync::atomic::AtomicBool::new(false),
        });
        st.queues[spec.tenant].push_back(Queued {
            id,
            tenant: spec.tenant,
            run: spec.run,
            cost: spec.cost,
            fault: sh.fault_plan.fault_for(id),
            enqueued: now,
            ticket: Arc::clone(&ticket),
            attempts: 0,
            max_retries: spec.retries.unwrap_or(sh.retry.max_retries),
            deadline_at,
            not_before: None,
        });
        st.queued += 1;
        sh.counters
            .queue_peak
            .fetch_max(st.queued, Ordering::Relaxed);
        drop(st);
        sh.work_ready.notify_one();
        Ok(JobTicket { state: ticket, id })
    }

    /// Current queue depth (jobs admitted but not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().queued
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            queue_peak: c.queue_peak.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            shed_degraded: c.shed_degraded.load(Ordering::Relaxed),
            per_tenant_completed: self
                .shared
                .tenants
                .iter()
                .map(|t| t.completed.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Number of pal-thread processors in the shared pool.
    pub fn processors(&self) -> usize {
        self.shared.pool.processors()
    }

    /// Probe the shared pool's health (which also drives its
    /// supervision: under [`SelfHeal::Respawn`] a dead worker observed
    /// here is respawned).
    pub fn health(&self) -> lopram_core::PoolHealth {
        self.shared.pool.health()
    }

    /// The shared pool, for out-of-band inspection (workspace arena
    /// stats, aggregate fork metrics).
    pub fn pool(&self) -> &PalPool {
        &self.shared.pool
    }

    /// Graceful shutdown: stop admitting, drain every queued job, join
    /// the executors, and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("executor thread panicked");
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// What a dispatch scan found.
enum Dispatch {
    /// A runnable job with its cost acquired in budget permits.
    Found(Queued, Vec<Permit>),
    /// Nothing runnable *yet*: the earliest retry-backoff gate among
    /// blocked front jobs — the executor sleeps until it (or a signal).
    NotReady(Instant),
    /// Nothing queued, or everything blocked on budget.
    Empty,
}

/// Find the next runnable job under the queue lock: round-robin over
/// tenant subqueues starting at the cursor, skipping tenants whose
/// front job cannot acquire its cost in budget tokens right now, or
/// whose front job is a retry still inside its backoff window.  An
/// over-budget (or backing-off) tenant therefore waits behind its own
/// jobs while every other tenant keeps flowing.
fn next_runnable(shared: &Shared, st: &mut QueueState) -> Dispatch {
    let n = st.queues.len();
    let now = Instant::now();
    let mut earliest: Option<Instant> = None;
    for i in 0..n {
        let t = (st.cursor + i) % n;
        let (cost, not_before) = match st.queues[t].front() {
            Some(front) => (front.cost, front.not_before),
            None => continue,
        };
        if let Some(gate) = not_before {
            if gate > now {
                earliest = Some(earliest.map_or(gate, |e| e.min(gate)));
                continue;
            }
        }
        let tokens = &shared.tenants[t].tokens;
        let mut permits = Vec::with_capacity(cost);
        for _ in 0..cost {
            match tokens.try_acquire() {
                Some(permit) => permits.push(permit),
                None => break,
            }
        }
        if permits.len() < cost {
            // Partial acquisition: hand the tokens straight back (drop)
            // and let the next tenant try.
            continue;
        }
        let job = st.queues[t].pop_front().expect("front checked above");
        st.queued -= 1;
        st.cursor = (t + 1) % n;
        return Dispatch::Found(job, permits);
    }
    match earliest {
        Some(at) => Dispatch::NotReady(at),
        None => Dispatch::Empty,
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let (job, permits) = {
            let mut st = shared.state.lock();
            loop {
                match next_runnable(shared, &mut st) {
                    Dispatch::Found(job, permits) => break (job, permits),
                    Dispatch::NotReady(until) => {
                        // Work exists but is gated on a retry backoff;
                        // shutdown must still drain it, so never return
                        // here — sleep out the gate (or a signal) and
                        // rescan.
                        let now = Instant::now();
                        if until > now {
                            let _ = shared.work_ready.wait_for(&mut st, until - now);
                        }
                    }
                    Dispatch::Empty => {
                        if st.shutdown && st.queued == 0 {
                            return;
                        }
                        shared.work_ready.wait(&mut st);
                    }
                }
            }
        };
        if let Some(retry) = run_one(shared, job, permits) {
            // Retryable failure with retries left: back in at the front
            // of its tenant's subqueue (it keeps its age-order slot),
            // gated by `not_before`.
            let mut st = shared.state.lock();
            st.queues[retry.tenant].push_front(retry);
            st.queued += 1;
            shared
                .counters
                .queue_peak
                .fetch_max(st.queued, Ordering::Relaxed);
        }
        // Budget tokens released (permits dropped in run_one): a job
        // that was skipped for budget may be runnable now.
        shared.work_ready.notify_all();
    }
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one admitted job to a report — or to a retry.  This is the
/// service boundary: `catch_unwind` around `run_cancellable` splits the
/// three failure modes — a `CancelUnwind` surfaces as `Err(reason)`
/// from `run_cancellable`, a genuine panic passes through it and is
/// caught here.  The pool's workspace guards and the budget [`Permit`]s
/// all release on unwind, so nothing leaks on any path.
///
/// Returns `Some(job)` when the attempt failed retryably (panic, or a
/// cancellation the client did not request) with retries left: the
/// caller re-enqueues it.  The retry carries a **fresh** token (its
/// failed predecessor's fired state must not leak), no fault (a seeded
/// fault fires once — the retry is the clean run, which is what makes
/// retried digests bit-identical to unfaulted ones), and a backoff gate
/// from the deterministic [`RetryPolicy`].
fn run_one(shared: &Shared, mut job: Queued, permits: Vec<Permit>) -> Option<Queued> {
    // One clock read per dispatch: the queue-wait attribution, the
    // pre-run deadline verdict and the run-time origin all derive from
    // the same instant.  With separate reads a job could pass the
    // dispatch-time deadline check yet already be past-deadline at the
    // later `started` stamp — admitted and run while expired.
    let dispatched = Instant::now();
    let queue_wait = dispatched.duration_since(job.enqueued);
    let token = job.ticket.token.lock().clone();
    let attempt = job.attempts + 1;

    let (outcome, run_time, metrics, metrics_exclusive) =
        if let Some(reason) = token.poll_at(dispatched) {
            // Expired or cancelled while still queued: report without
            // running the body at all.
            (
                Err(JobError::from(reason)),
                Duration::ZERO,
                MetricsSnapshot::default(),
                true,
            )
        } else {
            // Exclusivity window: metrics are exactly this job's iff no
            // other job's window overlapped ours.
            let my_start = shared.starts.fetch_add(1, Ordering::SeqCst) + 1;
            let active_before = shared.active.fetch_add(1, Ordering::SeqCst);
            let before = shared.pool.metrics().snapshot();
            let started = dispatched;
            // Borrow (not consume) the body: a retryable failure needs
            // it callable again on the next attempt.
            let run = &mut job.run;
            let cx = crate::job::JobContext {
                pool: &shared.pool,
                token: &token,
                fault: job.fault,
                step: std::cell::Cell::new(0),
            };
            let result = catch_unwind(AssertUnwindSafe(|| run_cancellable(&token, || run(&cx))));
            let run_time = started.elapsed();
            let after = shared.pool.metrics().snapshot();
            let active_after = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
            let starts_after = shared.starts.load(Ordering::SeqCst);
            let exclusive = active_before == 0 && active_after == 0 && starts_after == my_start;
            let outcome = match result {
                Ok(Ok(digest)) => Ok(digest),
                Ok(Err(reason)) => Err(JobError::from(reason)),
                Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
            };
            (outcome, run_time, after.delta_since(&before), exclusive)
        };

    // Retry decision.  Panics are always retryable; a cancellation is
    // retryable only when the client did not request it (a client
    // cancel is a verdict, not a fault).  Deadline expiry is never
    // retried — the deadline is absolute and already blown.
    let client_cancelled = job
        .ticket
        .client_cancelled
        .load(std::sync::atomic::Ordering::SeqCst);
    let retryable = match &outcome {
        Err(JobError::Panicked(_)) => true,
        Err(JobError::Cancelled) => !client_cancelled,
        Err(JobError::DeadlineExceeded) | Ok(_) => false,
    };
    if retryable && attempt <= job.max_retries {
        shared.counters.retries.fetch_add(1, Ordering::Relaxed);
        // Fresh token for the retry, inheriting the absolute deadline.
        // If a client cancel raced in after the decision above, the
        // fresh token starts fired and the retry reports Cancelled.
        let fresh = match job.deadline_at {
            Some(at) => CancelToken::with_deadline_at(at),
            None => CancelToken::new(),
        };
        if job
            .ticket
            .client_cancelled
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            fresh.cancel();
        }
        *job.ticket.token.lock() = fresh;
        let delay = shared.retry.backoff(job.id, attempt);
        job.attempts = attempt;
        job.fault = None;
        job.not_before = Some(Instant::now() + delay);
        drop(permits);
        return Some(job);
    }

    match &outcome {
        Ok(_) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.tenants[job.tenant]
                .completed
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::Panicked(_)) => {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::Cancelled) => {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::DeadlineExceeded) => {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // Release the tenant's budget tokens *before* publishing the
    // report: a client that saw the report and immediately resubmits
    // must find the budget free.
    drop(permits);

    let report = JobReport {
        job: job.id,
        tenant: job.tenant,
        outcome,
        queue_wait,
        run_time,
        metrics,
        metrics_exclusive,
        attempts: attempt,
    };
    *job.ticket.report.lock() = Some(report);
    job.ticket.done.notify_all();
    None
}
