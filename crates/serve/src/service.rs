//! The job service: bounded admission, per-tenant budgets, round-robin
//! dispatch, and the executor loop that isolates every failure mode.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lopram_core::runtime::{Permit, ProcessorTokens};
use lopram_core::{run_cancellable, CancelToken, MetricsSnapshot, PalPool};
use parking_lot::{Condvar, Mutex};

use crate::fault::{Fault, FaultPlan};
use crate::job::{JobError, JobFn, JobReport, JobSpec, JobTicket, SubmitError, TicketState};

/// Service configuration.  All limits are hard: the queue never grows
/// past `queue_capacity`, a tenant never holds more than `tenant_budget`
/// tokens at once.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of tenants (jobs are submitted for `0..tenants`).
    pub tenants: usize,
    /// Per-tenant budget in tokens; a running job holds its cost in
    /// tokens for its whole run.  Derived from the §3.1 throttle: the
    /// pool grants `p = O(log n)` processors, the budget caps how much
    /// of that concurrency one tenant can occupy.
    pub tenant_budget: usize,
    /// Bound on the admission queue (all tenants together).  A full
    /// queue rejects with [`SubmitError::Rejected`] — backpressure, not
    /// buffering.  Each tenant additionally holds at most
    /// `ceil(queue_capacity / tenants)` of the slots (its *admission
    /// quota*), so a flooding tenant is rejected at its quota and can
    /// never crowd the others out of the queue.
    pub queue_capacity: usize,
    /// Executor threads draining the queue.  With 1 executor per-job
    /// metrics are always exclusive.
    pub executors: usize,
    /// Pal-thread processors for the shared pool.
    pub processors: usize,
    /// Deadline applied to jobs that set none (measured from
    /// submission).  `None` means no default deadline.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault plan keyed on submission index.
    pub fault_plan: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 1,
            tenant_budget: 1,
            queue_capacity: 64,
            executors: 1,
            processors: 2,
            default_deadline: None,
            fault_plan: FaultPlan::none(),
        }
    }
}

struct Queued {
    id: u64,
    tenant: usize,
    run: JobFn,
    cost: usize,
    fault: Option<Fault>,
    enqueued: Instant,
    ticket: Arc<TicketState>,
}

struct QueueState {
    /// Per-tenant FIFO subqueues: an over-budget tenant queues behind
    /// its own jobs without blocking anyone else's subqueue.
    queues: Vec<VecDeque<Queued>>,
    /// Total queued across all tenants (the bounded quantity).
    queued: usize,
    /// Round-robin scan start for the next dispatch.
    cursor: usize,
    shutdown: bool,
}

struct TenantState {
    tokens: Arc<ProcessorTokens>,
    completed: AtomicU64,
    rejected: AtomicU64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    queue_peak: AtomicUsize,
}

struct Shared {
    pool: PalPool,
    state: Mutex<QueueState>,
    /// Signalled on submit, on job completion (budget tokens freed) and
    /// on shutdown.
    work_ready: Condvar,
    tenants: Vec<TenantState>,
    counters: Counters,
    /// Jobs currently inside their run window (exclusivity tracking).
    active: AtomicUsize,
    /// Total run windows ever opened (exclusivity tracking).
    starts: AtomicU64,
    fault_plan: FaultPlan,
    default_deadline: Option<Duration>,
    queue_capacity: usize,
    /// Per-tenant admission quota: `ceil(queue_capacity / tenants)`.
    tenant_quota: usize,
}

/// Point-in-time service statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted (given a ticket).
    pub submitted: u64,
    /// Submissions refused with [`SubmitError::Rejected`].
    pub rejected: u64,
    /// Jobs finished with `Ok`.
    pub completed: u64,
    /// Jobs finished with [`JobError::Panicked`].
    pub panicked: u64,
    /// Jobs finished with [`JobError::Cancelled`].
    pub cancelled: u64,
    /// Jobs finished with [`JobError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Highest queue depth ever observed (bounded by capacity).
    pub queue_peak: usize,
    /// `Ok`-completions per tenant, indexed by tenant id.
    pub per_tenant_completed: Vec<u64>,
}

impl ServiceStats {
    /// Jobs that reached *some* terminal state.
    pub fn finished(&self) -> u64 {
        self.completed + self.panicked + self.cancelled + self.deadline_exceeded
    }

    /// Max/min ratio of per-tenant `Ok`-completions — the fairness
    /// number `bench_serve` gates on.  1.0 when perfectly fair, `inf`
    /// when some tenant starved entirely (and another completed work),
    /// 1.0 for the degenerate all-zero case.
    pub fn fairness_ratio(&self) -> f64 {
        let max = self.per_tenant_completed.iter().copied().max().unwrap_or(0);
        let min = self.per_tenant_completed.iter().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// A fault-tolerant multi-tenant job service over one shared
/// [`PalPool`].
///
/// Many clients submit [`JobSpec`]s concurrently; a bounded admission
/// queue applies backpressure, per-tenant token budgets keep any one
/// tenant from monopolising the pool, deadlines and cancellation unwind
/// cooperatively in O(grain) work, and panics are caught at the service
/// boundary — a hostile job can fail itself but never the pool, the
/// workspace arena, or another tenant's results.
///
/// Dropping the service shuts it down gracefully: queued jobs drain,
/// executors join.
pub struct JobService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl JobService {
    /// Start a service.
    ///
    /// # Panics
    ///
    /// If any of `tenants`, `tenant_budget`, `queue_capacity`,
    /// `executors` or `processors` is zero — every limit must admit at
    /// least one unit or the service could never run a job.
    pub fn start(config: ServeConfig) -> JobService {
        assert!(config.tenants >= 1, "need at least one tenant");
        assert!(config.tenant_budget >= 1, "need a budget of at least 1");
        assert!(config.queue_capacity >= 1, "need a queue of at least 1");
        assert!(config.executors >= 1, "need at least one executor");
        assert!(config.processors >= 1, "need at least one processor");
        let pool = PalPool::new(config.processors).expect("pool construction");
        let tenants = (0..config.tenants)
            .map(|_| TenantState {
                tokens: ProcessorTokens::new(config.tenant_budget),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            pool,
            state: Mutex::new(QueueState {
                queues: (0..config.tenants).map(|_| VecDeque::new()).collect(),
                queued: 0,
                cursor: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            tenants,
            counters: Counters::default(),
            active: AtomicUsize::new(0),
            starts: AtomicU64::new(0),
            fault_plan: config.fault_plan,
            default_deadline: config.default_deadline,
            queue_capacity: config.queue_capacity,
            tenant_quota: config.queue_capacity.div_ceil(config.tenants),
        });
        let workers = (0..config.executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lopram-serve-exec-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .expect("spawn executor")
            })
            .collect();
        JobService { shared, workers }
    }

    /// Submit a job.  Admission control runs here, under the queue
    /// lock: tenant validity, cost-vs-budget feasibility, then the
    /// bounded-queue check.  On admission the job's deadline clock
    /// starts immediately — queue wait counts against it.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let sh = &*self.shared;
        if spec.tenant >= sh.tenants.len() {
            return Err(SubmitError::UnknownTenant {
                tenant: spec.tenant,
            });
        }
        let budget = sh.tenants[spec.tenant].tokens.total();
        if spec.cost > budget {
            return Err(SubmitError::CostExceedsBudget {
                cost: spec.cost,
                budget,
            });
        }
        let mut st = sh.state.lock();
        if st.shutdown {
            return Err(SubmitError::ShutDown);
        }
        // The global bound caps total buffering; the per-tenant quota
        // keeps one flooding tenant from crowding the others out of the
        // queue — its excess bounces while their slots stay reachable.
        if st.queued >= sh.queue_capacity || st.queues[spec.tenant].len() >= sh.tenant_quota {
            sh.counters.rejected.fetch_add(1, Ordering::Relaxed);
            sh.tenants[spec.tenant]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected {
                queue_depth: st.queued,
            });
        }
        let id = sh.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let token = match spec.deadline.or(sh.default_deadline) {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let ticket = Arc::new(TicketState {
            report: Mutex::new(None),
            done: Condvar::new(),
            token,
        });
        st.queues[spec.tenant].push_back(Queued {
            id,
            tenant: spec.tenant,
            run: spec.run,
            cost: spec.cost,
            fault: sh.fault_plan.fault_for(id),
            enqueued: Instant::now(),
            ticket: Arc::clone(&ticket),
        });
        st.queued += 1;
        sh.counters
            .queue_peak
            .fetch_max(st.queued, Ordering::Relaxed);
        drop(st);
        sh.work_ready.notify_one();
        Ok(JobTicket { state: ticket, id })
    }

    /// Current queue depth (jobs admitted but not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().queued
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            queue_peak: c.queue_peak.load(Ordering::Relaxed),
            per_tenant_completed: self
                .shared
                .tenants
                .iter()
                .map(|t| t.completed.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Number of pal-thread processors in the shared pool.
    pub fn processors(&self) -> usize {
        self.shared.pool.processors()
    }

    /// The shared pool, for out-of-band inspection (workspace arena
    /// stats, aggregate fork metrics).
    pub fn pool(&self) -> &PalPool {
        &self.shared.pool
    }

    /// Graceful shutdown: stop admitting, drain every queued job, join
    /// the executors, and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("executor thread panicked");
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Find the next runnable job under the queue lock: round-robin over
/// tenant subqueues starting at the cursor, skipping tenants whose
/// front job cannot acquire its cost in budget tokens right now.  An
/// over-budget tenant therefore waits behind its own running jobs while
/// every other tenant keeps flowing.
fn next_runnable(shared: &Shared, st: &mut QueueState) -> Option<(Queued, Vec<Permit>)> {
    let n = st.queues.len();
    for i in 0..n {
        let t = (st.cursor + i) % n;
        let cost = match st.queues[t].front() {
            Some(front) => front.cost,
            None => continue,
        };
        let tokens = &shared.tenants[t].tokens;
        let mut permits = Vec::with_capacity(cost);
        for _ in 0..cost {
            match tokens.try_acquire() {
                Some(permit) => permits.push(permit),
                None => break,
            }
        }
        if permits.len() < cost {
            // Partial acquisition: hand the tokens straight back (drop)
            // and let the next tenant try.
            continue;
        }
        let job = st.queues[t].pop_front().expect("front checked above");
        st.queued -= 1;
        st.cursor = (t + 1) % n;
        return Some((job, permits));
    }
    None
}

fn executor_loop(shared: &Shared) {
    loop {
        let (job, permits) = {
            let mut st = shared.state.lock();
            loop {
                if let Some(found) = next_runnable(shared, &mut st) {
                    break found;
                }
                if st.shutdown && st.queued == 0 {
                    return;
                }
                shared.work_ready.wait(&mut st);
            }
        };
        run_one(shared, job, permits);
        // Budget tokens released (permits dropped in run_one): a job
        // that was skipped for budget may be runnable now.
        shared.work_ready.notify_all();
    }
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one admitted job to a report.  This is the service boundary:
/// `catch_unwind` around `run_cancellable` splits the three failure
/// modes — a `CancelUnwind` surfaces as `Err(reason)` from
/// `run_cancellable`, a genuine panic passes through it and is caught
/// here.  The pool's workspace guards and the budget [`Permit`]s all
/// release on unwind, so nothing leaks on any path.
fn run_one(shared: &Shared, job: Queued, permits: Vec<Permit>) {
    // One clock read per dispatch: the queue-wait attribution, the
    // pre-run deadline verdict and the run-time origin all derive from
    // the same instant.  With separate reads a job could pass the
    // dispatch-time deadline check yet already be past-deadline at the
    // later `started` stamp — admitted and run while expired.
    let dispatched = Instant::now();
    let queue_wait = dispatched.duration_since(job.enqueued);
    let token = job.ticket.token.clone();

    let (outcome, run_time, metrics, metrics_exclusive) =
        if let Some(reason) = token.poll_at(dispatched) {
            // Expired or cancelled while still queued: report without
            // running the body at all.
            (
                Err(JobError::from(reason)),
                Duration::ZERO,
                MetricsSnapshot::default(),
                true,
            )
        } else {
            // Exclusivity window: metrics are exactly this job's iff no
            // other job's window overlapped ours.
            let my_start = shared.starts.fetch_add(1, Ordering::SeqCst) + 1;
            let active_before = shared.active.fetch_add(1, Ordering::SeqCst);
            let before = shared.pool.metrics().snapshot();
            let started = dispatched;
            let run = job.run;
            let cx = crate::job::JobContext {
                pool: &shared.pool,
                token: &token,
                fault: job.fault,
                step: std::cell::Cell::new(0),
            };
            let result = catch_unwind(AssertUnwindSafe(|| run_cancellable(&token, || run(&cx))));
            let run_time = started.elapsed();
            let after = shared.pool.metrics().snapshot();
            let active_after = shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
            let starts_after = shared.starts.load(Ordering::SeqCst);
            let exclusive = active_before == 0 && active_after == 0 && starts_after == my_start;
            let outcome = match result {
                Ok(Ok(digest)) => Ok(digest),
                Ok(Err(reason)) => Err(JobError::from(reason)),
                Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
            };
            (outcome, run_time, after.delta_since(&before), exclusive)
        };

    match &outcome {
        Ok(_) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            shared.tenants[job.tenant]
                .completed
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::Panicked(_)) => {
            shared.counters.panicked.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::Cancelled) => {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Err(JobError::DeadlineExceeded) => {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // Release the tenant's budget tokens *before* publishing the
    // report: a client that saw the report and immediately resubmits
    // must find the budget free.
    drop(permits);

    let report = JobReport {
        job: job.id,
        tenant: job.tenant,
        outcome,
        queue_wait,
        run_time,
        metrics,
        metrics_exclusive,
    };
    *job.ticket.report.lock() = Some(report);
    job.ticket.done.notify_all();
}
