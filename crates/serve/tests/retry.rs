//! Retry-with-backoff and graceful-degradation acceptance suite:
//!
//! (a) a panic- or cancel-faulted job is re-dispatched with a clean
//!     token and no fault, and its retried digest is **bit-identical**
//!     to a fault-free run's — proved differentially;
//! (b) retries exhaust to the terminal error with exact attempt
//!     accounting, and client cancels are verdicts, never retried;
//! (c) backoff is a pure function of `(seed, job, attempt)`;
//! (d) a pool degraded below the configured floor sheds new submissions
//!     with [`SubmitError::Degraded`] while admitted work drains, and
//!     `shutdown()` still drains the queue on the survivors.

use std::error::Error;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lopram_core::{ChaosConfig, SelfHeal};
use lopram_serve::{
    Fault, FaultPlan, JobContext, JobError, JobService, JobSpec, RetryPolicy, ServeConfig,
    SubmitError,
};

/// Stress multiplier: `LOPRAM_TEST_REPEAT=20` (CI chaos-stress job)
/// re-runs the differential checks under more seeds.
fn repeat() -> u64 {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

const STEPS: u64 = 24; // > the largest at_step used below: every fault fires

/// Deterministic job body: a cooperative-stepping prologue (so injected
/// faults land at their planned step) followed by a pool scan.  The
/// digest depends only on `i`, so a retried run must reproduce it
/// bit-identically.
fn job_body(i: u64) -> impl FnMut(&JobContext<'_>) -> u64 + Send + 'static {
    move |cx| {
        let mut acc = i.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
        for s in 0..STEPS {
            cx.step();
            acc = acc.rotate_left(7) ^ s;
        }
        let len = 256 + (i % 5) * 256;
        let data: Vec<u64> = (0..len).map(|j| j.wrapping_add(i)).collect();
        acc ^ cx.pool().scan(&data, 0u64, |a, b| a.wrapping_add(*b)).total
    }
}

fn retrying_config(plan: FaultPlan, max_retries: u32) -> ServeConfig {
    ServeConfig {
        queue_capacity: 256,
        fault_plan: plan,
        retry: RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    }
}

#[test]
fn panic_fault_is_retried_to_a_clean_digest() {
    // The clean digest, from a fault-free service.
    let clean = JobService::start(retrying_config(FaultPlan::none(), 0));
    let expect = clean
        .submit(JobSpec::new(0, job_body(0)))
        .unwrap()
        .wait()
        .outcome;
    clean.shutdown();
    assert!(expect.is_ok());

    let plan = FaultPlan::none().inject(0, Fault::Panic { at_step: 3 });
    let service = JobService::start(retrying_config(plan, 2));
    let report = service.submit(JobSpec::new(0, job_body(0))).unwrap().wait();
    assert_eq!(report.outcome, expect, "retried digest is bit-identical");
    assert_eq!(report.attempts, 2, "one faulted attempt, one clean retry");
    let stats = service.shutdown();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.panicked, 0, "only terminal attempts hit the counters");
}

#[test]
fn cancel_fault_is_retried_but_client_cancel_is_not() {
    // A fault-injected cancel is transient: retried to success.
    let plan = FaultPlan::none().inject(0, Fault::Cancel { at_step: 5 });
    let service = JobService::start(retrying_config(plan, 1));
    let report = service.submit(JobSpec::new(0, job_body(0))).unwrap().wait();
    assert!(report.outcome.is_ok(), "got {:?}", report.outcome);
    assert_eq!(report.attempts, 2);
    assert_eq!(service.shutdown().retries, 1);

    // A client cancel is a verdict: terminal on the spot, even with
    // retries configured.  Cancel while queued (before any dispatch).
    let service = JobService::start(ServeConfig {
        executors: 1,
        tenant_budget: 1,
        queue_capacity: 8,
        retry: RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(100),
            ..RetryPolicy::default()
        },
        ..ServeConfig::default()
    });
    // A slow job holds the single executor while we cancel the one
    // queued behind it.
    let gate = service
        .submit(JobSpec::new(0, |_cx| {
            std::thread::sleep(Duration::from_millis(50));
            1
        }))
        .unwrap();
    let victim = service.submit(JobSpec::new(0, job_body(1))).unwrap();
    victim.cancel();
    let report = victim.wait();
    assert_eq!(report.outcome, Err(JobError::Cancelled));
    assert_eq!(report.attempts, 1);
    assert!(gate.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.retries, 0, "client cancels are never retried");
    assert_eq!(stats.cancelled, 1);
}

#[test]
fn retries_exhaust_to_the_terminal_error_with_exact_attempt_accounting() {
    let attempts_seen = Arc::new(AtomicU32::new(0));
    let seen = Arc::clone(&attempts_seen);
    let service = JobService::start(retrying_config(FaultPlan::none(), 2));
    let report = service
        .submit(JobSpec::new(0, move |_cx| {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("hostile every time");
        }))
        .unwrap()
        .wait();
    assert!(matches!(report.outcome, Err(JobError::Panicked(_))));
    assert_eq!(report.attempts, 3, "1 first attempt + 2 retries");
    assert_eq!(
        attempts_seen.load(Ordering::SeqCst),
        3,
        "body ran each time"
    );
    let stats = service.shutdown();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.panicked, 1, "one terminal failure, not three");
    assert_eq!(stats.completed, 0);
}

#[test]
fn per_job_retries_override_the_service_default() {
    // Service default allows no retries; the spec opts in.
    let plan = FaultPlan::none()
        .inject(0, Fault::Panic { at_step: 2 })
        .inject(1, Fault::Panic { at_step: 2 });
    let service = JobService::start(retrying_config(plan, 0));
    let healed = service
        .submit(JobSpec::new(0, job_body(0)).retries(1))
        .unwrap()
        .wait();
    assert!(healed.outcome.is_ok(), "got {:?}", healed.outcome);
    assert_eq!(healed.attempts, 2);
    let unhealed = service.submit(JobSpec::new(0, job_body(1))).unwrap().wait();
    assert!(matches!(unhealed.outcome, Err(JobError::Panicked(_))));
    assert_eq!(unhealed.attempts, 1);
    service.shutdown();
}

#[test]
fn deadline_expiry_is_never_retried() {
    let plan = FaultPlan::none().inject(0, Fault::Deadline { at_step: 2 });
    let service = JobService::start(retrying_config(plan, 3));
    let report = service
        .submit(JobSpec::new(0, job_body(0)).deadline(Duration::from_millis(40)))
        .unwrap()
        .wait();
    assert_eq!(report.outcome, Err(JobError::DeadlineExceeded));
    assert_eq!(report.attempts, 1);
    assert_eq!(service.shutdown().retries, 0);
}

#[test]
fn backoff_is_a_pure_function_of_seed_job_and_attempt() {
    let policy = RetryPolicy {
        max_retries: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(50),
        jitter_seed: 0xB0FF,
    };
    for job in [0u64, 1, 17, u64::MAX] {
        for attempt in 1..=4u32 {
            let a = policy.backoff(job, attempt);
            let b = policy.backoff(job, attempt);
            assert_eq!(a, b, "deterministic for job {job} attempt {attempt}");
            // base·2^(k−1) ≤ delay ≤ min(base·2^(k−1) + base, cap)
            let floor = policy.base_backoff * (1 << (attempt - 1));
            assert!(a >= floor.min(policy.max_backoff), "floor: {a:?}");
            assert!(a <= policy.max_backoff, "cap: {a:?}");
        }
    }
    // Different seeds move the jitter for at least one (job, attempt).
    let other = RetryPolicy {
        jitter_seed: 0xD00D,
        ..policy
    };
    let moved = (0..64u64).any(|job| policy.backoff(job, 1) != other.backoff(job, 1));
    assert!(moved, "jitter must depend on the seed");
    // Zero base disables delay entirely.
    let none = RetryPolicy {
        base_backoff: Duration::ZERO,
        ..policy
    };
    assert_eq!(none.backoff(3, 2), Duration::ZERO);
}

#[test]
fn retried_traffic_digests_match_a_clean_run() {
    // Differential acceptance: seeded traffic where a third of the jobs
    // are panic- or cancel-faulted, retries on — EVERY job must finish
    // Ok with the digest of the fault-free run, faulted ones with
    // attempts > 1.
    let count = 30u64;
    for round in 0..repeat() {
        let mut plan = FaultPlan::none();
        for i in (0..count).step_by(3) {
            let fault = if i % 2 == 0 {
                Fault::Panic {
                    at_step: 1 + (round + i) % 16,
                }
            } else {
                Fault::Cancel {
                    at_step: 1 + (round + i) % 16,
                }
            };
            plan = plan.inject(i, fault);
        }

        let run = |plan: FaultPlan, retries: u32| {
            let service = JobService::start(ServeConfig {
                tenants: 3,
                tenant_budget: 2,
                executors: 2,
                queue_capacity: count as usize,
                ..retrying_config(plan, retries)
            });
            let tickets: Vec<_> = (0..count)
                .map(|i| {
                    service
                        .submit(JobSpec::new((i % 3) as usize, job_body(i)))
                        .expect("capacity sized to count")
                })
                .collect();
            let reports: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
            let stats = service.shutdown();
            (reports, stats)
        };

        let (clean, _) = run(FaultPlan::none(), 0);
        let (healed, stats) = run(plan.clone(), 2);
        for (c, h) in clean.iter().zip(&healed) {
            assert_eq!(h.outcome, c.outcome, "job {} round {round}", c.job);
            if plan.fault_for(c.job).is_some() {
                assert!(h.attempts > 1, "faulted job {} must retry", c.job);
            } else {
                assert_eq!(h.attempts, 1, "clean job {} must not retry", c.job);
            }
        }
        assert_eq!(stats.completed, count, "round {round}: all heal to Ok");
        assert_eq!(stats.retries, plan.len() as u64, "round {round}");
        assert_eq!(stats.panicked + stats.cancelled, 0, "round {round}");
    }
}

/// Poll the service's pool health until `ok` holds, failing after 10s.
fn wait_degraded(service: &JobService, alive: usize) {
    let start = Instant::now();
    while service.health().alive_workers != alive {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pool never degraded to {alive} alive; last {:?}",
            service.health()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn degraded_pool_sheds_submissions_while_admitted_work_drains() {
    // Worker 1 dies after its first stolen task; no respawn.  The
    // trigger job's scan feeds it that task, so everything submitted
    // before the trigger completes is admitted against a healthy pool.
    let service = JobService::start(ServeConfig {
        processors: 2,
        executors: 1,
        queue_capacity: 32,
        chaos: ChaosConfig::none().kill(1, 1),
        self_heal: SelfHeal::Degrade,
        min_alive_processors: 2,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            service
                .submit(JobSpec::new(0, job_body(i)))
                .expect("healthy pool admits")
        })
        .collect();
    // Admitted work drains to completion on the survivors even though
    // the kill fires mid-traffic.
    for t in tickets {
        assert!(t.wait().outcome.is_ok());
    }
    wait_degraded(&service, 1);
    // Below the floor: new work is shed with the live numbers.
    match service.submit(JobSpec::new(0, job_body(99))) {
        Err(SubmitError::Degraded { alive, floor }) => {
            assert_eq!((alive, floor), (1, 2));
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.shed_degraded, 1);
    assert_eq!(stats.completed, 6);
}

#[test]
fn shutdown_drains_the_queue_under_a_chaos_kill() {
    // Satellite: graceful shutdown must drain every queued job even
    // while the pool is degrading underneath the executors.
    let service = JobService::start(ServeConfig {
        processors: 2,
        executors: 1,
        queue_capacity: 32,
        chaos: ChaosConfig::none().kill(1, 1),
        self_heal: SelfHeal::Degrade,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..8)
        .map(|i| service.submit(JobSpec::new(0, job_body(i))).unwrap())
        .collect();
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8, "shutdown drained every queued job");
    for t in tickets {
        assert!(t.try_report().expect("drained").outcome.is_ok());
    }
}

#[test]
fn fairness_ratio_edge_cases() {
    // Satellite: the degenerate shapes of the fairness number.
    let stats = |per_tenant: Vec<u64>| lopram_serve::ServiceStats {
        submitted: 0,
        rejected: 0,
        completed: per_tenant.iter().sum(),
        panicked: 0,
        cancelled: 0,
        deadline_exceeded: 0,
        queue_peak: 0,
        retries: 0,
        shed_degraded: 0,
        per_tenant_completed: per_tenant,
    };
    // Nothing finished at all: perfectly fair by definition.
    let zero = stats(vec![0, 0, 0]);
    assert_eq!(zero.finished(), 0);
    assert_eq!(zero.fairness_ratio(), 1.0);
    // No tenants configured at all (empty vector).
    assert_eq!(stats(vec![]).fairness_ratio(), 1.0);
    // A single tenant can only be fair to itself.
    assert_eq!(stats(vec![5]).fairness_ratio(), 1.0);
    // A starved tenant while another completed: infinite unfairness.
    assert_eq!(stats(vec![5, 0]).fairness_ratio(), f64::INFINITY);
    // The plain ratio otherwise.
    assert_eq!(stats(vec![4, 2]).fairness_ratio(), 2.0);
}

#[test]
fn submit_and_job_errors_propagate_through_question_mark() -> Result<(), Box<dyn Error>> {
    // Satellite: both error types thread through `?` as
    // `Box<dyn Error>` — the std::error::Error impls are load-bearing.
    fn misuse(service: &JobService) -> Result<(), Box<dyn Error>> {
        service.submit(JobSpec::new(99, |_cx| 0))?;
        Ok(())
    }
    let service = JobService::start(ServeConfig::default());
    let err = misuse(&service).expect_err("tenant 99 does not exist");
    assert_eq!(err.to_string(), "unknown tenant 99");

    let report = service
        .submit(JobSpec::new(0, |_cx| panic!("kaboom")))?
        .wait();
    let job_err: Box<dyn Error> = Box::new(report.outcome.expect_err("panicked"));
    assert!(job_err.to_string().contains("kaboom"));
    service.shutdown();
    Ok(())
}
