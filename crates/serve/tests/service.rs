//! Functional contract of the job service: admission control, budgets,
//! round-robin fairness, deadlines-from-submission, cancellation and
//! graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lopram_serve::{JobError, JobService, JobSpec, ServeConfig, SubmitError};
use parking_lot::Mutex;

/// Expected exclusive-prefix-sum digest (the `total` of a 0-identity
/// add-scan) of `0..n`.
fn scan_digest(n: u64) -> u64 {
    n * (n - 1) / 2
}

fn scan_job(n: u64) -> impl FnMut(&lopram_serve::JobContext<'_>) -> u64 + Send + 'static {
    move |cx| {
        let data: Vec<u64> = (0..n).collect();
        cx.pool().scan(&data, 0u64, |a, b| a + b).total
    }
}

/// A job that parks its executor until `release` flips — the "plug"
/// every queue-saturation test uses to make dispatch deterministic.
fn plug_job(release: Arc<AtomicBool>) -> JobSpec {
    JobSpec::new(0, move |cx| {
        while !release.load(Ordering::SeqCst) {
            // Keep the plug cancellable so a wedged test still unwinds.
            cx.step();
            std::thread::yield_now();
        }
        0
    })
}

#[test]
fn submit_await_report_roundtrip() {
    let service = JobService::start(ServeConfig {
        processors: 2,
        ..ServeConfig::default()
    });
    let n = 50_000u64;
    let ticket = service.submit(JobSpec::new(0, scan_job(n))).unwrap();
    assert_eq!(ticket.id(), 0);
    let report = ticket.wait();
    assert_eq!(report.outcome, Ok(scan_digest(n)));
    assert_eq!(report.tenant, 0);
    assert!(report.metrics_exclusive, "single client must be exclusive");
    // Fork accounting is exact for an exclusive job: an add-scan costs
    // 2·(C − 1) forks for C chunks.
    let chunks = service.pool().chunk_count(n as usize) as u64;
    assert_eq!(report.metrics.forks(), 2 * (chunks - 1));
    let stats = service.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.per_tenant_completed, vec![1]);
    assert_eq!(stats.fairness_ratio(), 1.0);
}

#[test]
fn admission_control_rejects_bad_submissions() {
    let service = JobService::start(ServeConfig {
        tenants: 2,
        tenant_budget: 3,
        ..ServeConfig::default()
    });
    assert_eq!(
        service.submit(JobSpec::new(7, |_| 0)).unwrap_err(),
        SubmitError::UnknownTenant { tenant: 7 }
    );
    assert_eq!(
        service.submit(JobSpec::new(1, |_| 0).cost(4)).unwrap_err(),
        SubmitError::CostExceedsBudget { cost: 4, budget: 3 }
    );
    // Cost equal to the budget is admissible.
    let ok = service.submit(JobSpec::new(1, |_| 42).cost(3)).unwrap();
    assert_eq!(ok.wait().outcome, Ok(42));
    service.shutdown();
}

#[test]
fn full_queue_rejects_with_backpressure_and_recovers() {
    let capacity = 4;
    let service = JobService::start(ServeConfig {
        queue_capacity: capacity,
        ..ServeConfig::default()
    });
    let release = Arc::new(AtomicBool::new(false));

    // Plug the single executor, then fill the queue exactly.
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now(); // until the executor picks the plug up
    }
    let queued: Vec<_> = (0..capacity)
        .map(|i| service.submit(JobSpec::new(0, move |_| i as u64)).unwrap())
        .collect();

    // The queue is full: submissions bounce with the observed depth.
    for _ in 0..3 {
        assert_eq!(
            service.submit(JobSpec::new(0, |_| 0)).unwrap_err(),
            SubmitError::Rejected {
                queue_depth: capacity
            }
        );
    }

    // Backpressure released: everything queued still completes exactly.
    release.store(true, Ordering::SeqCst);
    assert_eq!(plug.wait().outcome, Ok(0));
    for (i, ticket) in queued.into_iter().enumerate() {
        assert_eq!(ticket.wait().outcome, Ok(i as u64));
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected, 3);
    assert_eq!(stats.completed, 1 + capacity as u64);
    assert_eq!(stats.queue_peak, capacity);
}

#[test]
fn admission_quota_keeps_a_flooder_out_of_the_others_slots() {
    // capacity 4, two tenants ⇒ quota 2 each.  Tenant 0 floods: it is
    // rejected at its quota while the global queue still has room, and
    // tenant 1 can still admit its full share afterwards.
    let service = JobService::start(ServeConfig {
        tenants: 2,
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let release = Arc::new(AtomicBool::new(false));
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let t0: Vec<_> = (0..2)
        .map(|i| service.submit(JobSpec::new(0, move |_| i)).unwrap())
        .collect();
    let rejected = service.submit(JobSpec::new(0, |_| 99)).unwrap_err();
    assert_eq!(
        rejected,
        SubmitError::Rejected { queue_depth: 2 },
        "the flooder bounces at its quota with the global depth reported"
    );
    let t1: Vec<_> = (0..2)
        .map(|i| service.submit(JobSpec::new(1, move |_| 10 + i)).unwrap())
        .collect();
    release.store(true, Ordering::SeqCst);
    plug.wait();
    for (i, ticket) in t0.into_iter().enumerate() {
        assert_eq!(ticket.wait().outcome, Ok(i as u64));
    }
    for (i, ticket) in t1.into_iter().enumerate() {
        assert_eq!(ticket.wait().outcome, Ok(10 + i as u64));
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.per_tenant_completed, vec![3, 2]); // plug was tenant 0
    service_stats_sane(&stats);
}

fn service_stats_sane(stats: &lopram_serve::ServiceStats) {
    assert_eq!(stats.finished(), stats.submitted);
}

#[test]
fn round_robin_interleaves_tenants() {
    let service = JobService::start(ServeConfig {
        tenants: 2,
        queue_capacity: 32,
        ..ServeConfig::default()
    });
    let release = Arc::new(AtomicBool::new(false));
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));

    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    // Tenant 0 floods first; tenant 1 trickles in afterwards.  Round-
    // robin dispatch must still alternate between them.
    let mut tickets = Vec::new();
    for tenant in [0, 0, 0, 0, 1, 1, 1, 1] {
        let order = Arc::clone(&order);
        tickets.push(
            service
                .submit(JobSpec::new(tenant, move |_| {
                    order.lock().push(tenant);
                    0
                }))
                .unwrap(),
        );
    }
    release.store(true, Ordering::SeqCst);
    plug.wait();
    for ticket in tickets {
        assert_eq!(ticket.wait().outcome, Ok(0));
    }
    let order = order.lock().clone();
    // The plug ran as tenant 0, so dispatch resumes at tenant 1 and
    // alternates strictly while both subqueues are non-empty.
    assert_eq!(order, vec![1, 0, 1, 0, 1, 0, 1, 0]);
    service.shutdown();
}

#[test]
fn budget_serializes_one_tenants_jobs_across_executors() {
    let service = JobService::start(ServeConfig {
        tenants: 1,
        tenant_budget: 1,
        executors: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let windows: Arc<Mutex<Vec<(Instant, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            let windows = Arc::clone(&windows);
            service
                .submit(JobSpec::new(0, move |_| {
                    let start = Instant::now();
                    std::thread::sleep(Duration::from_millis(5));
                    windows.lock().push((start, Instant::now()));
                    0
                }))
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.wait().outcome, Ok(0));
    }
    // Budget 1 ⇒ no two run windows of this tenant may overlap, even
    // with two executors hungry for work.
    let mut windows = windows.lock().clone();
    windows.sort();
    for pair in windows.windows(2) {
        assert!(
            pair[0].1 <= pair[1].0,
            "budget-1 tenant ran two jobs concurrently"
        );
    }
    service.shutdown();
}

#[test]
fn ticket_cancel_stops_a_queued_job_without_running_it() {
    let service = JobService::start(ServeConfig::default());
    let release = Arc::new(AtomicBool::new(false));
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let ran = Arc::new(AtomicBool::new(false));
    let ran_probe = Arc::clone(&ran);
    let doomed = service
        .submit(JobSpec::new(0, move |_| {
            ran_probe.store(true, Ordering::SeqCst);
            0
        }))
        .unwrap();
    doomed.cancel();
    release.store(true, Ordering::SeqCst);
    plug.wait();
    let report = doomed.wait();
    assert_eq!(report.outcome, Err(JobError::Cancelled));
    assert_eq!(report.run_time, Duration::ZERO);
    assert!(!ran.load(Ordering::SeqCst), "cancelled job must never run");
    let stats = service.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn queue_wait_counts_against_the_deadline() {
    let service = JobService::start(ServeConfig::default());
    let release = Arc::new(AtomicBool::new(false));
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    // Deadline far shorter than the time the plug holds the executor.
    let doomed = service
        .submit(JobSpec::new(0, |_| 0).deadline(Duration::from_millis(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(40));
    release.store(true, Ordering::SeqCst);
    plug.wait();
    let report = doomed.wait();
    assert_eq!(report.outcome, Err(JobError::DeadlineExceeded));
    assert_eq!(report.run_time, Duration::ZERO);
    assert!(report.queue_wait >= Duration::from_millis(10));

    // A generous deadline completes normally.
    let fine = service
        .submit(JobSpec::new(0, scan_job(10_000)).deadline(Duration::from_secs(3600)))
        .unwrap();
    assert_eq!(fine.wait().outcome, Ok(scan_digest(10_000)));
    service.shutdown();
}

#[test]
fn default_deadline_applies_when_spec_sets_none() {
    let service = JobService::start(ServeConfig {
        default_deadline: Some(Duration::from_millis(10)),
        ..ServeConfig::default()
    });
    let ticket = service
        .submit(JobSpec::new(0, |cx| {
            // Outstay the default deadline cooperatively.
            loop {
                cx.step();
                std::thread::sleep(Duration::from_millis(1));
            }
        }))
        .unwrap();
    assert_eq!(ticket.wait().outcome, Err(JobError::DeadlineExceeded));
    service.shutdown();
}

#[test]
fn shutdown_drains_the_queue() {
    let service = JobService::start(ServeConfig {
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..32)
        .map(|i| service.submit(JobSpec::new(0, move |_| i)).unwrap())
        .collect();
    // Shut down immediately: every admitted job must still finish.
    let stats = service.shutdown();
    assert_eq!(stats.completed, 32);
    for (i, ticket) in tickets.into_iter().enumerate() {
        assert_eq!(ticket.wait().outcome, Ok(i as u64));
    }
}

#[test]
fn try_report_is_a_non_blocking_probe() {
    let service = JobService::start(ServeConfig::default());
    let release = Arc::new(AtomicBool::new(false));
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    assert!(plug.try_report().is_none(), "plug is still running");
    release.store(true, Ordering::SeqCst);
    let report = plug.wait();
    assert_eq!(report.outcome, Ok(0));
    service.shutdown();
}

#[test]
fn dispatch_deadline_verdict_derives_from_a_single_clock_read() {
    use lopram_core::{CancelReason, CancelToken};

    // Regression for the two-clock-read dispatch bug: `run_one` used to
    // read `Instant::now()` at the deadline check and again at the
    // `started` stamp.  Pin a deadline exactly between those two read
    // points: the old path's verdict ("not expired, run it") would
    // contradict its own start time (already past the deadline).
    let enqueued = Instant::now();
    let first_read = enqueued + Duration::from_millis(10);
    let deadline = enqueued + Duration::from_millis(15);
    let second_read = enqueued + Duration::from_millis(20);
    let token = CancelToken::with_deadline_at(deadline);

    // Old read point #1 (the deadline check) passes…
    assert_eq!(token.poll_at(first_read), None);
    // …while old read point #2 (the start stamp) is already expired: the
    // two reads straddling the deadline is exactly the inconsistent
    // dispatch the single-read path forbids.
    assert_eq!(
        token.poll_at(second_read),
        Some(CancelReason::DeadlineExceeded)
    );
    // The verdict latches: every later observer agrees.
    assert_eq!(token.fired(), Some(CancelReason::DeadlineExceeded));
    assert_eq!(
        token.poll_at(first_read),
        Some(CancelReason::DeadlineExceeded)
    );

    // The dispatch invariant itself: for ANY single instant, the
    // queue-wait attribution and the verdict are consistent — expired
    // iff the queue wait alone reaches the deadline budget.
    for offset_ms in [0u64, 5, 10, 14, 15, 16, 25] {
        let now = enqueued + Duration::from_millis(offset_ms);
        let token = CancelToken::with_deadline_at(deadline);
        let queue_wait = now.duration_since(enqueued);
        let verdict = token.poll_at(now);
        assert_eq!(
            verdict.is_some(),
            queue_wait >= Duration::from_millis(15),
            "verdict and queue wait must derive from the same instant \
             (offset {offset_ms} ms)"
        );
    }
}

#[test]
fn expired_while_queued_reports_without_running() {
    // Service-level face of the same contract: a job whose deadline
    // passes while it waits behind the plug is reported expired with
    // `run_time == 0` — the body never starts — and the queue wait it
    // reports covers the deadline budget it blew.
    let service = JobService::start(ServeConfig::default());
    let release = Arc::new(AtomicBool::new(false));
    let plug = service.submit(plug_job(Arc::clone(&release))).unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let body_ran = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&body_ran);
    let doomed = service
        .submit(
            JobSpec::new(0, move |_| {
                flag.store(true, Ordering::SeqCst);
                0
            })
            .deadline(Duration::from_millis(5)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    release.store(true, Ordering::SeqCst);
    plug.wait();
    let report = doomed.wait();
    assert_eq!(report.outcome, Err(JobError::DeadlineExceeded));
    assert_eq!(report.run_time, Duration::ZERO);
    assert!(report.queue_wait >= Duration::from_millis(5));
    assert!(
        !body_ran.load(Ordering::SeqCst),
        "an expired job's body must never start"
    );
    service.shutdown();
}
