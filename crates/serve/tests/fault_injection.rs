//! The fault-injection acceptance suite:
//!
//! (a) a saturated bounded queue rejects with backpressure and never
//!     grows past capacity;
//! (b) a panicking / cancelled / deadline-blown job never poisons the
//!     pool or the workspace arena and never perturbs other jobs'
//!     results — proved differentially against a fault-free run of the
//!     same seeded traffic;
//! (c) no tenant starves under a saturating mixed workload, and fork
//!     accounting stays exact for every non-faulted job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lopram_serve::{
    Fault, FaultPlan, JobContext, JobError, JobService, JobSpec, ServeConfig, SubmitError,
};

/// Stress multiplier: `LOPRAM_TEST_REPEAT=8` (CI serve-stress job)
/// re-runs the seeded differential check under more seeds.
fn repeat() -> u64 {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

const TENANTS: usize = 3;
const STEPS: u64 = 32; // > the max seeded at_step (16): every fault fires

/// The deterministic job body for submission index `i`.  Digest depends
/// only on `i`: a fixed cooperative-stepping prologue (so injected
/// faults land at their planned step) followed by a pool scan (so every
/// job exercises forks and the workspace arena).
fn job_body(i: u64) -> impl FnMut(&JobContext<'_>) -> u64 + Send + 'static {
    move |cx| {
        let mut acc = i.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
        for s in 0..STEPS {
            cx.step();
            acc = acc.rotate_left(7) ^ s;
        }
        let len = 256 + (i % 7) * 512;
        let data: Vec<u64> = (0..len).map(|j| j.wrapping_add(i)).collect();
        acc ^ cx.pool().scan(&data, 0u64, |a, b| a.wrapping_add(*b)).total
    }
}

fn tenant_of(i: u64) -> usize {
    (i % TENANTS as u64) as usize
}

/// Run `count` traffic jobs through a fresh service under `plan`,
/// returning each job's outcome by submission index.
fn run_traffic(count: u64, plan: FaultPlan) -> HashMap<u64, Result<u64, JobError>> {
    let service = JobService::start(ServeConfig {
        tenants: TENANTS,
        tenant_budget: 2,
        queue_capacity: count as usize,
        executors: 2,
        processors: 2,
        fault_plan: plan.clone(),
        ..ServeConfig::default()
    });
    let mut tickets = Vec::new();
    for i in 0..count {
        let mut spec = JobSpec::new(tenant_of(i), job_body(i));
        // A deadline fault stalls until the job's deadline passes, so
        // deadline-faulted jobs need one short enough to test quickly.
        if let Some(Fault::Deadline { .. }) = plan.fault_for(i) {
            spec = spec.deadline(Duration::from_millis(100));
        }
        tickets.push(service.submit(spec).expect("capacity sized to count"));
    }
    let mut outcomes = HashMap::new();
    for ticket in tickets {
        let report = ticket.wait();
        outcomes.insert(report.job, report.outcome);
    }
    service.shutdown();
    outcomes
}

#[test]
fn faulted_jobs_fail_their_own_way_and_perturb_nothing_else() {
    let count = 48;
    for round in 0..repeat() {
        let seed = 0xFA_017 + round;
        let clean = run_traffic(count, FaultPlan::none());
        assert!(clean.values().all(|o| o.is_ok()), "fault-free run is clean");

        let plan = FaultPlan::seeded(seed, count, 0.4);
        assert!(!plan.is_empty(), "seed {seed}: plan faults some jobs");
        let faulted = run_traffic(count, plan.clone());

        for i in 0..count {
            match plan.fault_for(i) {
                // (b) differential: every non-faulted job's digest is
                // bit-identical to the fault-free run's.
                None => assert_eq!(
                    faulted[&i], clean[&i],
                    "job {i} (seed {seed}) was perturbed by its faulted neighbours"
                ),
                // Every faulted job fails with exactly its planned mode.
                Some(Fault::Panic { .. }) => assert!(
                    matches!(faulted[&i], Err(JobError::Panicked(_))),
                    "job {i} (seed {seed}): expected panic, got {:?}",
                    faulted[&i]
                ),
                Some(Fault::Cancel { .. }) => assert_eq!(
                    faulted[&i],
                    Err(JobError::Cancelled),
                    "job {i} (seed {seed})"
                ),
                Some(Fault::Deadline { .. }) => assert_eq!(
                    faulted[&i],
                    Err(JobError::DeadlineExceeded),
                    "job {i} (seed {seed})"
                ),
            }
        }
    }
}

#[test]
fn panic_inside_a_pool_operator_is_isolated_and_leaves_the_arena_warm() {
    // The panic fires *inside* the pool's fork machinery (a poisoned
    // scan operator), not at a step checkpoint — the deepest place a
    // hostile job can crash from.
    let service = JobService::start(ServeConfig {
        processors: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    });
    let n = 10_000u64;
    let expected = {
        let t = service.submit(JobSpec::new(0, job_scan(n))).unwrap();
        t.wait().outcome.expect("clean scan")
    };
    // Two warm-up rounds: the arena's LIFO shelves settle buffer
    // capacities only after roles stabilise across calls.
    for _ in 0..2 {
        let t = service.submit(JobSpec::new(0, job_scan(n))).unwrap();
        assert_eq!(t.wait().outcome, Ok(expected));
    }
    let warm = service.pool().workspace().stats().grown_bytes;

    let chunks = service.pool().chunk_count(n as usize) as u64;
    for round in 0..10u64 {
        let poison = round * 997 % n;
        let hostile = service
            .submit(JobSpec::new(0, move |cx| {
                let data: Vec<u64> = (0..n).collect();
                cx.pool()
                    .scan(&data, 0u64, move |a, b| {
                        // `b` walks every element during the fold, so a
                        // poison < n is guaranteed to be hit.
                        if *b == poison && poison > 0 {
                            panic!("poisoned operator at {poison}");
                        }
                        a + b
                    })
                    .total
            }))
            .unwrap();
        let report = hostile.wait();
        if poison > 0 {
            assert!(
                matches!(report.outcome, Err(JobError::Panicked(_))),
                "round {round}: {:?}",
                report.outcome
            );
        }
        // The next clean job answers exactly, with exact fork
        // accounting, and the arena has not grown.
        let clean = service.submit(JobSpec::new(0, job_scan(n))).unwrap();
        let report = clean.wait();
        assert_eq!(report.outcome, Ok(expected), "round {round}");
        assert!(report.metrics_exclusive);
        assert_eq!(
            report.metrics.forks(),
            2 * (chunks - 1),
            "round {round}: fork accounting must stay exact after a panic"
        );
        assert_eq!(
            service.pool().workspace().stats().grown_bytes,
            warm,
            "round {round}: a panicked job must not grow the arena"
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.panicked, 9); // round 0 has poison == 0 and succeeds
}

fn job_scan(n: u64) -> impl FnMut(&JobContext<'_>) -> u64 + Send + 'static {
    move |cx| {
        let data: Vec<u64> = (0..n).collect();
        cx.pool().scan(&data, 0u64, |a, b| a + b).total
    }
}

#[test]
fn saturation_burst_bounces_excess_and_never_exceeds_capacity() {
    let capacity = 8;
    let service = Arc::new(JobService::start(ServeConfig {
        queue_capacity: capacity,
        ..ServeConfig::default()
    }));
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    let plug = service
        .submit(JobSpec::new(0, move |cx| {
            while !gate.load(Ordering::SeqCst) {
                cx.step();
                std::thread::yield_now();
            }
            0
        }))
        .unwrap();
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }

    // Four clients hammer the plugged service concurrently.
    let admitted: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    let mut admitted = Vec::new();
                    for i in 0..200u64 {
                        match service.submit(JobSpec::new(0, move |_| i)) {
                            Ok(ticket) => admitted.push((i, ticket)),
                            Err(SubmitError::Rejected { queue_depth }) => {
                                // Backpressure reports a sane depth and
                                // the bound is never exceeded.
                                assert!(queue_depth <= capacity);
                            }
                            Err(other) => panic!("unexpected submit error: {other}"),
                        }
                        assert!(service.queue_depth() <= capacity);
                    }
                    admitted
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Everything admitted completes exactly once the plug releases.
    release.store(true, Ordering::SeqCst);
    assert_eq!(plug.wait().outcome, Ok(0));
    let admitted_count = admitted.len() as u64;
    for (i, ticket) in admitted {
        assert_eq!(ticket.wait().outcome, Ok(i));
    }
    let service = Arc::into_inner(service).expect("all clients done");
    let stats = service.shutdown();
    assert_eq!(stats.queue_peak, capacity, "burst must fill the queue");
    assert_eq!(stats.submitted, admitted_count + 1);
    assert_eq!(stats.completed, admitted_count + 1);
    assert_eq!(stats.rejected, 4 * 200 - admitted_count);
    assert!(
        stats.rejected > 0,
        "a burst of 800 must overflow capacity 8"
    );
}

#[test]
fn no_tenant_starves_under_a_saturating_mixed_workload() {
    let per_tenant = 25u64;
    let service = Arc::new(JobService::start(ServeConfig {
        tenants: TENANTS,
        tenant_budget: 1,
        queue_capacity: (TENANTS as u64 * per_tenant) as usize,
        executors: 1,
        processors: 2,
        ..ServeConfig::default()
    }));
    let reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|tenant| {
                let service = Arc::clone(&service);
                s.spawn(move || {
                    let tickets: Vec<_> = (0..per_tenant)
                        .map(|k| {
                            let i = tenant as u64 * per_tenant + k;
                            service
                                .submit(JobSpec::new(tenant, job_body(i)))
                                .expect("queue sized to the full load")
                        })
                        .collect();
                    tickets.into_iter().map(|t| t.wait()).collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for report in &reports {
        assert!(
            report.outcome.is_ok(),
            "job {}: {:?}",
            report.job,
            report.outcome
        );
        // (c) executors: 1 ⇒ every job's metrics are exclusive, so fork
        // accounting must be exact: the body's single scan costs
        // 2·(C − 1) forks and the stepping prologue costs none.
        assert!(report.metrics_exclusive);
        let i = report.job;
        let len = (256 + (i % 7) * 512) as usize;
        let chunks = service.pool().chunk_count(len) as u64;
        assert_eq!(
            report.metrics.forks(),
            2 * (chunks.saturating_sub(1)),
            "job {i}: inexact fork accounting"
        );
    }
    let service = Arc::into_inner(service).expect("all clients done");
    let stats = service.shutdown();
    assert_eq!(
        stats.per_tenant_completed,
        vec![per_tenant; TENANTS],
        "every tenant must finish its full load"
    );
    assert_eq!(stats.fairness_ratio(), 1.0);
}
