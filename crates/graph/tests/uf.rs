//! Property tests for the sampled concurrent union-find kernel family.
//!
//! Four contracts, checked over random graphs *and* every generator
//! shape, at `p ∈ {1, 2, 4}` across [`UnionFindConfig`] sweeps:
//!
//! * **twin equality** — `components_union_find` reproduces
//!   `components_seq`'s minimum-id labelling bit-for-bit (the CAS
//!   forest's min-hooking makes the result exact, not merely equal up to
//!   relabelling);
//! * **exact fork accounting** — every run costs exactly
//!   [`union_find_forks`] forks, schedule-independent, attributed per
//!   phase with [`PalPool::scoped_metrics`]: the sampling passes and the
//!   sequential giant-root estimate on one side, the finish pass plus
//!   blocked flatten on the other;
//! * **zero warm-arena growth** — after the settling warmup, repeated
//!   runs on one pool check the parent and sample buffers out of the
//!   arena without growing it;
//! * **million-edge scale** — a streamed `G(n, m)` build at ~10⁶ edges
//!   matches the sequential twin at every `p` (satisfying the tentpole
//!   acceptance bar; `LOPRAM_TEST_REPEAT ≥ 100` — the CI runtime-stress
//!   setting — widens it to ~4·10⁶ edges).

use lopram_core::PalPool;
use lopram_graph::cc::components_seq;
use lopram_graph::prelude::*;
use lopram_graph::uf::components_union_find_metered;
use proptest::prelude::*;

/// Processor counts every property is checked under.
const P_SWEEP: [usize; 3] = [1, 2, 4];

/// Build a graph on `n` vertices from raw endpoint pairs by folding the
/// endpoints into range.
fn graph_from(n: usize, raw: &[(usize, usize)]) -> CsrGraph {
    let edges: Vec<(usize, usize)> = raw.iter().map(|&(u, v)| (u % n, v % n)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Every generator shape the kernel must agree on, including a graph
/// with self-loops (dropped by CSR construction, but the raw pair is
/// exercised by `graph_from` in the property suite below).
fn shapes() -> Vec<CsrGraph> {
    vec![
        gnm(120, 420, 13),
        gnm(200, 4000, 17), // dense: clamped near the complete graph
        grid(7, 11),
        star(65),
        path(73),
        path_permuted(97, 29),
        binary_tree(63),
        CsrGraph::from_undirected_edges(5, &[(0, 0), (1, 1), (1, 2)]), // self-loops
        CsrGraph::from_undirected_edges(9, &[]),
        CsrGraph::from_undirected_edges(1, &[]),
    ]
}

#[test]
fn union_find_matches_twin_on_generator_shapes_with_exact_forks() {
    let configs = [
        UnionFindConfig::default(),
        UnionFindConfig {
            sample_edges: 0,
            sample_vertices: 64,
        },
        UnionFindConfig {
            sample_edges: 4,
            sample_vertices: 1,
        },
    ];
    for (i, g) in shapes().iter().enumerate() {
        let expected = components_seq(g);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            for config in &configs {
                let (labels, phases) = components_union_find_metered(g, &pool, config);
                assert_eq!(
                    labels, expected,
                    "shape {i}, p = {p}, k = {}",
                    config.sample_edges
                );
                // Exact, schedule-independent fork accounting: the whole
                // run costs the closed form, and the estimate phase adds
                // nothing beyond its sampling passes.
                assert_eq!(
                    phases.sample.forks() + phases.finish.forks(),
                    union_find_forks(&pool, g.vertices(), config.sample_edges),
                    "total forks, shape {i}, p = {p}, k = {}",
                    config.sample_edges
                );
                assert_eq!(
                    phases.finish.forks(),
                    union_find_forks(&pool, g.vertices(), 0),
                    "finish-phase forks, shape {i}, p = {p}, k = {}",
                    config.sample_edges
                );
            }
        }
    }
}

#[test]
fn union_find_agrees_with_every_other_cc_kernel() {
    let g = gnm(300, 1200, 29);
    let pool = PalPool::new(4).unwrap();
    let uf = components_union_find(&g, &pool);
    assert_eq!(uf, components_label_prop(&g, &pool));
    assert_eq!(uf, components_hook(&g, &pool));
    for parts in [1, 2, 4] {
        assert_eq!(uf, components_partitioned(&g, &pool, parts));
    }
}

#[test]
fn steady_state_rounds_do_not_grow_the_arena() {
    let g = gnm(400, 1600, 3);
    for p in P_SWEEP {
        let pool = PalPool::new(p).unwrap();
        // Warm until the same-typed shelf buffers settle into their
        // roles (schedule-dependent at p > 1, monotone, so convergent —
        // same contract as the partitioned suite).
        let mut settled = false;
        for _ in 0..50 {
            let before = pool.metrics().snapshot();
            let _ = components_union_find(&g, &pool);
            let delta = pool.metrics().snapshot().delta_since(&before);
            if delta.arena_bytes == 0 {
                assert!(delta.arena_hits > 0, "the run must reuse shelved buffers");
                settled = true;
                break;
            }
        }
        assert!(
            settled,
            "union-find arena growth never settled to zero within 50 rounds at p = {p}"
        );
    }
}

#[test]
fn million_edge_streamed_graph_matches_twin() {
    // ~10⁶ arcs without ever materializing the edge list; CI's
    // runtime-stress job (LOPRAM_TEST_REPEAT=200, release profile)
    // widens the same check to ~4·10⁶ edges.
    let stress = std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    let (n, m) = if stress >= 100 {
        (1 << 19, 1 << 22)
    } else {
        (1 << 17, 1 << 19)
    };
    let g = gnm_streamed(n, m, 42);
    assert_eq!(g.edges(), m, "the streamed build must realise all m edges");
    let expected = components_seq(&g);
    for p in P_SWEEP {
        let pool = PalPool::new(p).unwrap();
        let (labels, phases) =
            components_union_find_metered(&g, &pool, &UnionFindConfig::default());
        assert_eq!(labels, expected, "diverged at p = {p} on G({n}, {m})");
        assert_eq!(
            phases.sample.forks() + phases.finish.forks(),
            union_find_forks(&pool, n, 2),
            "fork closed form at p = {p} on G({n}, {m})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn union_find_matches_sequential(
        n in 1usize..48,
        raw in collection::vec((0usize..64, 0usize..64), 0..160),
        sample_edges in 0usize..4,
    ) {
        let g = graph_from(n, &raw);
        let expected = components_seq(&g);
        let config = UnionFindConfig {
            sample_edges,
            sample_vertices: 32,
        };
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            let (labels, phases) = components_union_find_metered(&g, &pool, &config);
            prop_assert_eq!(&labels, &expected, "p = {}, k = {}", p, sample_edges);
            prop_assert_eq!(
                phases.sample.forks() + phases.finish.forks(),
                union_find_forks(&pool, n, sample_edges),
                "forks, p = {}, k = {}", p, sample_edges
            );
        }
    }

    #[test]
    fn component_count_is_consistent_across_kernels(
        n in 1usize..40,
        raw in collection::vec((0usize..64, 0usize..64), 0..120),
    ) {
        let g = graph_from(n, &raw);
        let pool = PalPool::new(2).unwrap();
        let seq = components_seq(&g);
        let uf = components_union_find(&g, &pool);
        prop_assert_eq!(&uf, &seq);
        prop_assert_eq!(component_count(&uf), component_count(&seq));
    }
}
