//! Property tests for the partition-and-fuse execution engine.
//!
//! Three contracts, checked over random graphs *and* every generator
//! shape, at `p ∈ {1, 2, 4}` × `parts ∈ {1, 2, 4}`:
//!
//! * **partition invariants** — the cuts tile `0..n` (every vertex in
//!   exactly one partition) and the cut-arc sets are complete (exactly
//!   the crossing arcs, grouped under their source's partition) and
//!   symmetric (`(v, u)` recorded iff `(u, v)` is);
//! * **twin equality** — `bfs_partitioned` / `components_partitioned`
//!   reproduce their sequential twins bit-for-bit;
//! * **exact fork accounting** — the plan phase costs exactly
//!   [`plan_forks`], the BFS solve exactly `(levels + 1)(parts − 1)`,
//!   the CC solve exactly `(parts − 1) + (chunk_count(n) − 1)` —
//!   schedule-independent, attributed per phase with
//!   [`PalPool::scoped_metrics`].

use lopram_core::PalPool;
use lopram_graph::bfs::{bfs_partitioned_metered, bfs_partitioned_with};
use lopram_graph::cc::components_partitioned_metered;
use lopram_graph::prelude::*;
use proptest::prelude::*;

/// Processor counts every property is checked under.
const P_SWEEP: [usize; 3] = [1, 2, 4];
/// Partition counts every property is checked under.
const PARTS_SWEEP: [usize; 3] = [1, 2, 4];

/// Build a graph on `n` vertices from raw endpoint pairs by folding the
/// endpoints into range.
fn graph_from(n: usize, raw: &[(usize, usize)]) -> CsrGraph {
    let edges: Vec<(usize, usize)> = raw.iter().map(|&(u, v)| (u % n, v % n)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Every generator shape the kernels must agree on.
fn shapes() -> Vec<CsrGraph> {
    vec![
        gnm(120, 420, 13),
        grid(7, 11),
        star(65),
        path(73),
        binary_tree(63),
        CsrGraph::from_undirected_edges(9, &[]),
        CsrGraph::from_undirected_edges(1, &[]),
    ]
}

/// The exact, schedule-independent fork count of the partitioned-BFS
/// solve phase: one fusion tree per frontier round.
fn bfs_solve_forks(dist: &[usize], parts: usize) -> u64 {
    (levels(dist) as u64 + 1) * (parts as u64 - 1)
}

/// The exact fork count of the partitioned-CC solve phase: one fusion
/// tree plus one blocked flatten pass.
fn cc_solve_forks(pool: &PalPool, n: usize, parts: usize) -> u64 {
    if n == 0 {
        return 0;
    }
    (parts as u64 - 1) + (pool.chunk_count(n) as u64 - 1)
}

#[test]
fn partitioned_kernels_match_twins_on_generator_shapes() {
    for (i, g) in shapes().iter().enumerate() {
        let expected_dist = bfs_seq(g, 0);
        let expected_labels = components_seq(g);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            for parts in PARTS_SWEEP {
                let (dist, bfs_phases) = bfs_partitioned_metered(g, &pool, 0, parts);
                assert_eq!(
                    dist, expected_dist,
                    "BFS shape {i}, p = {p}, parts = {parts}"
                );
                let (labels, cc_phases) = components_partitioned_metered(g, &pool, parts);
                assert_eq!(
                    labels, expected_labels,
                    "CC shape {i}, p = {p}, parts = {parts}"
                );
                // Exact per-phase fork accounting on every cell.
                let planned = plan_forks(&pool, g.vertices());
                assert_eq!(bfs_phases.plan.forks(), planned, "BFS plan forks");
                assert_eq!(cc_phases.plan.forks(), planned, "CC plan forks");
                assert_eq!(
                    bfs_phases.solve.forks(),
                    bfs_solve_forks(&dist, parts),
                    "BFS solve forks, shape {i}, p = {p}, parts = {parts}"
                );
                assert_eq!(
                    cc_phases.solve.forks(),
                    cc_solve_forks(&pool, g.vertices(), parts),
                    "CC solve forks, shape {i}, p = {p}, parts = {parts}"
                );
            }
        }
    }
}

#[test]
fn flat_and_partitioned_kernels_agree() {
    let g = gnm(300, 1200, 29);
    let pool = PalPool::new(4).unwrap();
    let flat_dist = bfs_par(&g, &pool, 0);
    let flat_labels = components_hook(&g, &pool);
    for parts in PARTS_SWEEP {
        assert_eq!(bfs_partitioned(&g, &pool, 0, parts), flat_dist);
        assert_eq!(components_partitioned(&g, &pool, parts), flat_labels);
    }
}

#[test]
fn steady_state_rounds_do_not_grow_the_arena() {
    let g = gnm(400, 1600, 3);
    let pool = PalPool::new(2).unwrap();
    let plan = PartitionPlan::new(&g, &pool, 4);
    // Warm until the same-typed shelf buffers settle into their roles.
    // At p > 1 the leaves' outbox checkouts race, so which buffer lands
    // in which role is schedule-dependent — capacities are monotone, so
    // the shuffle converges, but not in a fixed number of rounds.  Loop
    // until one full round grows the arena by zero bytes.
    let mut settled = false;
    for _ in 0..50 {
        let before = pool.metrics().snapshot();
        let _ = bfs_partitioned_with(&g, &pool, &plan, 0);
        let delta = pool.metrics().snapshot().delta_since(&before);
        if delta.arena_bytes == 0 {
            assert!(delta.arena_hits > 0, "the run must reuse shelved buffers");
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "partitioned BFS arena growth never settled to zero within 50 rounds"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn partition_invariants_hold(
        n in 1usize..48,
        raw in collection::vec((0usize..64, 0usize..64), 0..160),
        parts in 1usize..6,
    ) {
        let g = graph_from(n, &raw);
        let pool = PalPool::new(2).unwrap();
        let plan = PartitionPlan::new(&g, &pool, parts);

        // Every vertex in exactly one partition: the cuts tile 0..n.
        prop_assert_eq!(plan.cuts()[0], 0);
        prop_assert_eq!(plan.cuts()[parts], n);
        prop_assert!(plan.cuts().windows(2).all(|w| w[0] <= w[1]));
        for v in 0..n {
            let k = plan.owner(v);
            prop_assert!(plan.range(k).contains(&v));
            prop_assert_eq!(
                (0..parts).filter(|&j| plan.range(j).contains(&v)).count(),
                1,
                "vertex {} must land in exactly one partition", v
            );
        }

        // Cut-arc completeness: exactly the crossing arcs, each grouped
        // under its source's partition.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            for &u in g.neighbors(v) {
                if plan.owner(v) != plan.owner(u) {
                    expected.push((v, u));
                }
            }
        }
        expected.sort_unstable();
        let mut got: Vec<(usize, usize)> = plan.cut_arcs_all().to_vec();
        for k in 0..parts {
            for &(v, _) in plan.cut_arcs(k) {
                prop_assert_eq!(plan.owner(v), k);
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, expected);

        // Symmetry: (v, u) is recorded iff (u, v) is.
        for &(v, u) in plan.cut_arcs_all() {
            prop_assert!(
                plan.cut_arcs(plan.owner(u)).contains(&(u, v)),
                "cut arc ({}, {}) lacks its mirror", v, u
            );
        }

        let frac = plan.boundary_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn partitioned_bfs_matches_sequential(
        n in 1usize..48,
        src in 0usize..usize::MAX,
        raw in collection::vec((0usize..64, 0usize..64), 0..160),
    ) {
        let g = graph_from(n, &raw);
        let src = src % n;
        let expected = bfs_seq(&g, src);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            for parts in PARTS_SWEEP {
                let (dist, phases) = bfs_partitioned_metered(&g, &pool, src, parts);
                prop_assert_eq!(&dist, &expected, "p = {}, parts = {}", p, parts);
                prop_assert_eq!(phases.plan.forks(), plan_forks(&pool, n));
                prop_assert_eq!(
                    phases.solve.forks(),
                    bfs_solve_forks(&dist, parts),
                    "solve forks, p = {}, parts = {}", p, parts
                );
            }
        }
    }

    #[test]
    fn partitioned_cc_matches_sequential(
        n in 1usize..40,
        raw in collection::vec((0usize..64, 0usize..64), 0..120),
    ) {
        let g = graph_from(n, &raw);
        let expected = components_seq(&g);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            for parts in PARTS_SWEEP {
                let (labels, phases) = components_partitioned_metered(&g, &pool, parts);
                prop_assert_eq!(&labels, &expected, "p = {}, parts = {}", p, parts);
                prop_assert_eq!(phases.plan.forks(), plan_forks(&pool, n));
                prop_assert_eq!(
                    phases.solve.forks(),
                    cc_solve_forks(&pool, n, parts),
                    "solve forks, p = {}, parts = {}", p, parts
                );
            }
        }
    }
}
