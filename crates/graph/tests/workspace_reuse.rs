//! Steady-state allocation tests for the graph kernels: after a first
//! (warming) call, repeated BFS / CC / histogram runs on the same pool
//! must perform **zero** new workspace-arena growth — the pool-owned
//! buffers are reused, not re-materialized — while outputs stay equal to
//! the sequential twins.  Plus differential checks that the fused
//! `pack_in` pipeline agrees with its unfused twin (a plain sequential
//! filter) at every processor count.

use lopram_core::PalPool;
use lopram_graph::prelude::*;
use proptest::prelude::*;

/// Warm the pool's arena to its fixpoint, asserting output correctness
/// on every round, then require a full round with zero growth and zero
/// missed checkouts.  At `p > 1` concurrent checkouts shuffle same-typed
/// shelf buffers between roles schedule-dependently; capacities are
/// monotone, so the shuffle converges — but not in a fixed number of
/// rounds (same contract as the partitioned-kernel suite).
fn assert_steady_state<R: PartialEq + std::fmt::Debug>(
    pool: &PalPool,
    label: &str,
    mut kernel: impl FnMut() -> R,
    expected: &R,
) {
    let mut settled = false;
    for round in 0..50 {
        let before = pool.workspace().stats();
        assert_eq!(&kernel(), expected, "{label}: round {round} diverged");
        let now = pool.workspace().stats();
        if now.grown_bytes == before.grown_bytes && now.misses == before.misses {
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "{label}: arena growth never settled to zero within 50 rounds"
    );
    assert!(
        pool.metrics().arena_hits() > 0,
        "{label}: the kernel never touched the arena"
    );
}

#[test]
fn bfs_levels_reuse_the_arena() {
    // gnm + star covers both many-level and two-level (hub) frontiers.
    for (name, g) in [("gnm", gnm(600, 1800, 3)), ("star", star(500))] {
        let expected = bfs_seq(&g, 0);
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            assert_steady_state(
                &pool,
                &format!("bfs/{name}/p{p}"),
                || bfs_par(&g, &pool, 0),
                &expected,
            );
        }
    }
}

#[test]
fn cc_label_buffers_reuse_the_arena() {
    let g = gnm(400, 700, 9);
    let expected = components_seq(&g);
    for p in [1, 2, 4] {
        let pool = PalPool::new(p).unwrap();
        assert_steady_state(
            &pool,
            &format!("cc-labelprop/p{p}"),
            || components_label_prop(&g, &pool),
            &expected,
        );
        assert_steady_state(
            &pool,
            &format!("cc-hook/p{p}"),
            || components_hook(&g, &pool),
            &expected,
        );
    }
}

#[test]
fn histogram_scratch_reuses_the_arena() {
    // A star graph has a huge max degree relative to the vertex blocks,
    // forcing reduce_by_index's sparse layout; the grid forces the dense
    // one.  Both must reach the zero-growth steady state.
    for (name, g) in [("star", star(2000)), ("grid", grid(40, 50))] {
        let expected = degree_histogram_seq(&g);
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            assert_steady_state(
                &pool,
                &format!("histogram/{name}/p{p}"),
                || degree_histogram(&g, &pool),
                &expected,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Fused pack (in-place boundary scan, no flag/offset vectors) must
    // equal the unfused twin — a plain sequential filter — for any input
    // and predicate, at every p, including through a reused buffer.
    #[test]
    fn fused_pack_matches_unfused_twin(
        input in proptest::collection::vec(0u64..1000, 0..600),
        modulus in 1u64..8,
    ) {
        let twin: Vec<u64> = input.iter().copied().filter(|x| x % modulus == 0).collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            prop_assert_eq!(
                &pool.pack(&input, |_, x| x % modulus == 0),
                &twin,
                "pack, p = {}", p
            );
            let mut buf = vec![u64::MAX; 7]; // stale contents must not leak
            pool.pack_in(&input, |_, x| x % modulus == 0, &mut buf);
            prop_assert_eq!(&buf, &twin, "pack_in, p = {}", p);
            // Reuse the same buffer with the complementary predicate.
            let complement: Vec<u64> =
                input.iter().copied().filter(|x| x % modulus != 0).collect();
            pool.pack_in(&input, |_, x| x % modulus != 0, &mut buf);
            prop_assert_eq!(&buf, &complement, "pack_in reuse, p = {}", p);
        }
    }

    // scan_in / scan_copy_in must agree with each other and with the
    // sequential running sum.
    #[test]
    fn scan_variants_match_sequential_twin(
        input in proptest::collection::vec(0u64..10_000, 0..600),
    ) {
        let mut acc = 0u64;
        let twin: Vec<u64> = input
            .iter()
            .map(|x| {
                let before = acc;
                acc += x;
                before
            })
            .collect();
        for p in [1usize, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let mut general = Vec::new();
            let total = pool.scan_in(&input, 0u64, |a, b| a + b, &mut general);
            prop_assert_eq!(&general, &twin, "scan_in, p = {}", p);
            prop_assert_eq!(total, acc, "scan_in total, p = {}", p);
            let mut copy = Vec::new();
            let total = pool.scan_copy_in(&input, 0u64, |a, b| a + b, &mut copy);
            prop_assert_eq!(&copy, &twin, "scan_copy_in, p = {}", p);
            prop_assert_eq!(total, acc, "scan_copy_in total, p = {}", p);
        }
    }
}
