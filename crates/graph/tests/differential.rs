//! Differential property tests: every parallel kernel and primitive must
//! reproduce its sequential twin bit-for-bit on random graphs, for every
//! processor count in `{1, 2, 4}` — §3.2's "the algorithm must execute
//! properly for any value of p", applied to the irregular workloads.
//!
//! Graphs are drawn as random edge lists (endpoints folded into `0..n`),
//! which covers multi-edges, self-loops, isolated vertices and
//! disconnected graphs in one strategy.  The suite also pins the fork
//! accounting of the scan/pack primitives through
//! [`assert_metrics_consistent`]: the fork count of a blocked primitive is
//! a function of the block count alone, never of the schedule.

use lopram_core::{assert_metrics_consistent, PalPool};
use lopram_graph::prelude::*;
use proptest::prelude::*;

/// Processor counts every property is checked under.
const P_SWEEP: [usize; 3] = [1, 2, 4];

/// Build a graph on `n` vertices from raw endpoint pairs by folding the
/// endpoints into range.
fn graph_from(n: usize, raw: &[(usize, usize)]) -> CsrGraph {
    let edges: Vec<(usize, usize)> = raw.iter().map(|&(u, v)| (u % n, v % n)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// Canonical relabelling: components numbered by first appearance, so two
/// labellings can be compared as partitions rather than as raw ids.
fn normalize(labels: &[usize]) -> Vec<usize> {
    let mut next = 0usize;
    let mut rename = vec![usize::MAX; labels.len()];
    labels
        .iter()
        .map(|&l| {
            if rename[l] == usize::MAX {
                rename[l] = next;
                next += 1;
            }
            rename[l]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_distances_match_sequential(
        n in 1usize..48,
        src in 0usize..usize::MAX,
        raw in collection::vec((0usize..64, 0usize..64), 0..160),
    ) {
        let g = graph_from(n, &raw);
        let src = src % n;
        let expected = bfs_seq(&g, src);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            prop_assert_eq!(&bfs_par(&g, &pool, src), &expected, "p = {}", p);
        }
    }

    #[test]
    fn component_labels_match_sequential(
        n in 1usize..40,
        raw in collection::vec((0usize..64, 0usize..64), 0..120),
    ) {
        let g = graph_from(n, &raw);
        let expected = components_seq(&g);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            let prop_labels = components_label_prop(&g, &pool);
            let hook_labels = components_hook(&g, &pool);
            // All three algorithms label components by their minimum
            // vertex id, so the comparison is exact…
            prop_assert_eq!(&prop_labels, &expected, "label propagation, p = {}", p);
            prop_assert_eq!(&hook_labels, &expected, "tree hooking, p = {}", p);
            // …and a fortiori up to relabelling (the weaker contract a
            // future variant without the min-id guarantee must keep).
            prop_assert_eq!(normalize(&hook_labels), normalize(&expected));
            // The component count is invariant under relabelling.
            prop_assert_eq!(
                component_count(&normalize(&expected)),
                component_count(&expected)
            );
        }
    }

    #[test]
    fn counting_kernels_match_sequential(
        n in 1usize..40,
        raw in collection::vec((0usize..64, 0usize..64), 0..200),
    ) {
        let g = graph_from(n, &raw);
        let hist = degree_histogram_seq(&g);
        let triangles = triangle_count_seq(&g);
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            prop_assert_eq!(&degree_histogram(&g, &pool), &hist, "histogram, p = {}", p);
            prop_assert_eq!(triangle_count(&g, &pool), triangles, "triangles, p = {}", p);
        }
    }

    #[test]
    fn scan_matches_sequential_twin(
        input in collection::vec(-1000i64..1000, 0..400),
    ) {
        // Sequential twin: running exclusive prefix sums.
        let mut acc = 0i64;
        let expected: Vec<i64> = input
            .iter()
            .map(|x| {
                let before = acc;
                acc += x;
                before
            })
            .collect();
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            let scan = pool.scan(&input, 0i64, |a, b| a + b);
            prop_assert_eq!(&scan.exclusive, &expected, "p = {}", p);
            prop_assert_eq!(scan.total, acc, "p = {}", p);
            // Fork accounting is schedule-independent: two parallel
            // passes over chunk_count blocks.
            let forks = if input.is_empty() {
                0
            } else {
                2 * (pool.chunk_count(input.len()) as u64 - 1)
            };
            assert_metrics_consistent(pool.metrics(), forks);
        }
    }

    #[test]
    fn pack_matches_sequential_twin(
        input in collection::vec(0u32..500, 0..400),
        modulus in 1u32..7,
        residue in 0u32..7,
    ) {
        let residue = residue % modulus;
        let expected: Vec<u32> = input
            .iter()
            .copied()
            .filter(|x| x % modulus == residue)
            .collect();
        for p in P_SWEEP {
            let pool = PalPool::new(p).unwrap();
            let packed = pool.pack(&input, |_, x| x % modulus == residue);
            prop_assert_eq!(&packed, &expected, "p = {}", p);
            // One counting pass always; the write pass only when
            // something survived.
            let forks = if input.is_empty() {
                0
            } else {
                let per_pass = pool.chunk_count(input.len()) as u64 - 1;
                if expected.is_empty() { per_pass } else { 2 * per_pass }
            };
            assert_metrics_consistent(pool.metrics(), forks);
        }
    }

    #[test]
    fn bfs_levels_bound_component_size(
        n in 1usize..48,
        raw in collection::vec((0usize..64, 0usize..64), 0..160),
    ) {
        // Structural sanity riding along the differential sweep: the
        // number of BFS levels is at most the component size minus one,
        // and every reachable vertex's distance is realised by a
        // neighbour one level closer.
        let g = graph_from(n, &raw);
        let dist = bfs_seq(&g, 0);
        // The source is always reachable, so `reachable >= 1` and the
        // level count is at most the component size minus one.
        let reachable = dist.iter().filter(|&&d| d != UNREACHED).count();
        prop_assert!(levels(&dist) < reachable);
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHED && d > 0 {
                prop_assert!(
                    g.neighbors(v).iter().any(|&u| dist[u] == d - 1),
                    "vertex {} at distance {} has no parent", v, d
                );
            }
        }
    }
}
