//! Trace capture over the irregular graph kernels: a traced pool must
//! record BFS's entire fork structure (every fork of a blocked primitive
//! is a pass fork), reproduce the pool's `RunMetrics` from the event
//! stream, and stay an observer — identical distances and identical
//! schedule-independent counters as an untraced twin pool.

use lopram_core::{PalPool, TraceConfig};
use lopram_graph::prelude::*;

fn traced_pool(p: usize) -> PalPool {
    PalPool::builder()
        .processors(p)
        .trace(TraceConfig::default())
        .build()
        .unwrap()
}

#[test]
fn traced_bfs_reproduces_metrics_on_every_shape() {
    let shapes: Vec<(&str, CsrGraph)> = vec![
        ("gnm", gnm(1024, 4096, 7)),
        ("grid", grid(24, 24)),
        ("star", star(512)),
        ("tree", binary_tree(511)),
    ];
    for (name, graph) in &shapes {
        let expected = bfs_seq(graph, 0);
        for p in [1usize, 2, 4] {
            let pool = traced_pool(p);
            assert_eq!(&bfs_par(graph, &pool, 0), &expected, "{name}, p = {p}");
            let m = pool.metrics().snapshot();
            let trace = pool.take_trace().expect("tracing was on");
            assert!(trace.is_complete(), "{name}, p = {p}: dropped events");
            let s = trace.summary();
            assert_eq!(s.forks, m.forks(), "{name}, p = {p}: forks");
            assert_eq!(s.elided, m.elided, "{name}, p = {p}: elided");
            assert_eq!(s.spawned, m.spawned, "{name}, p = {p}: spawned");
            assert_eq!(s.inlined, m.inlined, "{name}, p = {p}: inlined");
            assert_eq!(s.steals, m.steals, "{name}, p = {p}: steals");
            assert_eq!(s.unclassified, 0, "{name}, p = {p}: quiesced capture");
            // BFS obtains all parallelism from blocked primitives, so its
            // fork count is exactly the pass-fork count — the property
            // that makes its replay predictions exact at any (p, grain).
            assert_eq!(s.forks, s.pass_forks, "{name}, p = {p}: all pass forks");
            assert!(s.passes > 0, "{name}, p = {p}: levels record passes");
            if p == 1 {
                assert_eq!(s.steals, 0, "{name}: one processor cannot steal");
                assert_eq!(s.elided, s.forks, "{name}: p = 1 elides everything");
            }
        }
    }
}

#[test]
fn tracing_is_an_observer_for_graph_kernels() {
    let graph = gnm(2048, 8192, 42);
    for p in [1usize, 2, 4] {
        let plain = PalPool::new(p).unwrap();
        let traced = traced_pool(p);
        assert_eq!(
            bfs_par(&graph, &plain, 0),
            bfs_par(&graph, &traced, 0),
            "p = {p}: tracing changed BFS output"
        );
        assert_eq!(
            components_hook(&graph, &plain),
            components_hook(&graph, &traced),
            "p = {p}: tracing changed CC output"
        );
        let mp = plain.metrics().snapshot();
        let mt = traced.metrics().snapshot();
        assert_eq!(mp.forks(), mt.forks(), "p = {p}: tracing changed forks");
        assert_eq!(mp.elided, mt.elided, "p = {p}: tracing changed elisions");
    }
}

#[test]
fn repeated_bfs_capture_windows_stay_complete() {
    // Re-running BFS and draining between runs: every window is complete
    // (buffers reset on drain) and every window records the same structure
    // (BFS fork counts are schedule-independent).
    let graph = grid(32, 32);
    let pool = traced_pool(2);
    let mut first_forks = None;
    for round in 0..5 {
        let dist = bfs_par(&graph, &pool, 0);
        assert_eq!(dist, bfs_seq(&graph, 0), "round {round}");
        let trace = pool.take_trace().expect("tracing was on");
        assert!(trace.is_complete(), "round {round}: dropped events");
        let forks = trace.summary().forks;
        match first_forks {
            None => first_forks = Some(forks),
            Some(f) => assert_eq!(forks, f, "round {round}: structure drifted"),
        }
    }
}
