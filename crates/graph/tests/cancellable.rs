//! Cancellable graph kernels: the cooperative-cancellation contract the
//! `lopram-serve` job service relies on, checked at the kernel level.
//!
//! Three properties per kernel: a live token changes nothing (identical
//! output to the sequential twin), a fired token stops the kernel with
//! the right [`CancelReason`], and the unwind leaves the shared pool's
//! workspace arena warm — the next caller sees zero growth and exact
//! results.

use std::time::Duration;

use lopram_core::{CancelReason, CancelToken, PalPool};
use lopram_graph::bfs::{bfs_cancellable, bfs_seq};
use lopram_graph::cc::{components_cancellable, components_seq};
use lopram_graph::gen;

#[test]
fn live_token_changes_nothing() {
    let g = gen::gnm(400, 1200, 17);
    for p in [1, 2, 4] {
        let pool = PalPool::new(p).unwrap();
        let token = CancelToken::new();
        assert_eq!(
            bfs_cancellable(&g, &pool, 0, &token).as_deref(),
            Ok(bfs_seq(&g, 0).as_slice()),
            "p = {p}"
        );
        assert_eq!(
            components_cancellable(&g, &pool, &token).as_deref(),
            Ok(components_seq(&g).as_slice()),
            "p = {p}"
        );
        assert_eq!(token.fired(), None);
    }
}

#[test]
fn fired_token_stops_both_kernels() {
    let g = gen::grid(20, 20);
    let pool = PalPool::new(2).unwrap();

    let cancelled = CancelToken::new();
    cancelled.cancel();
    assert_eq!(
        bfs_cancellable(&g, &pool, 0, &cancelled),
        Err(CancelReason::Cancelled)
    );
    assert_eq!(
        components_cancellable(&g, &pool, &cancelled),
        Err(CancelReason::Cancelled)
    );

    let expired = CancelToken::with_deadline(Duration::ZERO);
    assert_eq!(
        bfs_cancellable(&g, &pool, 0, &expired),
        Err(CancelReason::DeadlineExceeded)
    );
    assert_eq!(
        components_cancellable(&g, &pool, &expired),
        Err(CancelReason::DeadlineExceeded)
    );
}

#[test]
fn cancelled_kernel_leaves_the_arena_warm() {
    let g = gen::gnm(500, 1500, 23);
    let pool = PalPool::new(2).unwrap();
    let expected = bfs_seq(&g, 0);

    // Warm every buffer the kernel mix touches.  Two rounds: the arena
    // shelf is LIFO and BFS checks out several same-typed buffers whose
    // roles (and hence required capacities) reshuffle across calls, so
    // capacities only settle after the second pass.
    let live = CancelToken::new();
    for _ in 0..2 {
        assert_eq!(bfs_cancellable(&g, &pool, 0, &live).as_ref(), Ok(&expected));
        let labels = components_cancellable(&g, &pool, &live).unwrap();
        assert_eq!(labels, components_seq(&g));
    }
    let warm = pool.workspace().stats().grown_bytes;

    for i in 0..10 {
        // A cancelled run must hand back every checked-out buffer…
        let fired = CancelToken::new();
        fired.cancel();
        assert_eq!(
            bfs_cancellable(&g, &pool, 0, &fired),
            Err(CancelReason::Cancelled),
            "iteration {i}"
        );
        assert_eq!(
            components_cancellable(&g, &pool, &fired),
            Err(CancelReason::Cancelled),
            "iteration {i}"
        );
        // …so the next warm run neither grows the arena nor mislabels.
        let live = CancelToken::new();
        assert_eq!(
            bfs_cancellable(&g, &pool, 0, &live).as_ref(),
            Ok(&expected),
            "iteration {i}"
        );
        assert_eq!(
            pool.workspace().stats().grown_bytes,
            warm,
            "iteration {i}: a cancelled kernel must not grow the arena"
        );
    }
}

#[test]
fn mid_flight_cancel_from_another_thread_stops_a_long_search() {
    // A long path gives BFS one level per vertex: plenty of checkpoints
    // for a token fired from outside to land on.
    let g = gen::path(200_000);
    let pool = PalPool::new(2).unwrap();
    let token = CancelToken::new();
    let canceller = token.clone();
    std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            canceller.cancel();
        });
        let result = bfs_cancellable(&g, &pool, 0, &token);
        // Either the search finished before the cancel landed (fast
        // machine) or it stopped with Cancelled — never a panic, never a
        // wrong answer.
        match result {
            Ok(dist) => assert_eq!(dist, bfs_seq(&g, 0)),
            Err(reason) => assert_eq!(reason, CancelReason::Cancelled),
        }
    });
    // The pool answers exactly afterwards either way.
    let live = CancelToken::new();
    let small = gen::grid(5, 5);
    assert_eq!(
        bfs_cancellable(&small, &pool, 0, &live).as_deref(),
        Ok(bfs_seq(&small, 0).as_slice())
    );
}
