//! Convergence stress for the concurrent CC kernels' memory-ordering
//! arguments (see the proof on
//! [`components_label_prop_rounds`](lopram_graph::cc::components_label_prop_rounds)).
//!
//! A long path at `p = 4` is the adversarial shape: label propagation
//! needs the full `n − 1` rounds, so a single missed decrease, a stale
//! read treated as fresh at the fixpoint check, or a prematurely-observed
//! `changed == false` leaves some label above its component minimum —
//! and with one component of minimum 0, *any* nonzero label is an
//! instant, loud failure.  `LOPRAM_TEST_REPEAT` scales the number of
//! hammering iterations (CI's runtime-stress job sets 200).

use lopram_core::PalPool;
use lopram_graph::cc::{components_hook_rounds, components_label_prop_rounds, components_seq};
use lopram_graph::prelude::*;

/// Stress repeat count: `LOPRAM_TEST_REPEAT` if set, else a quick default.
fn repeat() -> usize {
    std::env::var("LOPRAM_TEST_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

#[test]
fn label_prop_converges_on_long_path_under_contention() {
    let n = 257;
    let g = path(n);
    let expected = components_seq(&g);
    let pool = PalPool::new(4).unwrap();
    for round in 0..repeat() {
        let (labels, rounds) = components_label_prop_rounds(&g, &pool);
        assert_eq!(labels, expected, "label-prop diverged on iteration {round}");
        // The round count is schedule-dependent (in-chunk scans can zip a
        // label many hops within one round) but bounded: at least the
        // decreasing round plus the fixpoint-confirming one, at most
        // diameter + 1 — one guaranteed hop of progress per round.
        assert!(
            (2..=n).contains(&rounds),
            "round count {rounds} out of bounds on iteration {round}"
        );
    }
}

#[test]
fn label_prop_converges_on_permuted_path_under_contention() {
    // Ids shuffled along the path: in-chunk ascending-id scans can no
    // longer zip the minimum down the chain, so many rounds really run
    // and every round replays the full stale-read / fetch_min / changed
    // protocol the ordering proof covers.
    let n = 257;
    let g = path_permuted(n, 0xC0FFEE);
    let expected = components_seq(&g);
    let pool = PalPool::new(4).unwrap();
    for round in 0..repeat() {
        let (labels, rounds) = components_label_prop_rounds(&g, &pool);
        assert_eq!(
            labels, expected,
            "label-prop diverged on permuted path, iteration {round}"
        );
        assert!(
            (2..=n).contains(&rounds),
            "round count {rounds} out of bounds on iteration {round}"
        );
    }
}

#[test]
fn hook_converges_on_long_path_under_contention() {
    let g = path(211);
    let expected = components_seq(&g);
    let pool = PalPool::new(4).unwrap();
    for round in 0..repeat() {
        let (labels, rounds) = components_hook_rounds(&g, &pool);
        assert_eq!(labels, expected, "hook diverged on iteration {round}");
        assert!(
            rounds >= 2,
            "a connected path needs at least one hook round"
        );
    }
}

#[test]
fn union_find_converges_on_long_path_under_contention() {
    let g = path(2048);
    let expected = components_seq(&g);
    let pool = PalPool::new(4).unwrap();
    for round in 0..repeat() {
        assert_eq!(
            components_union_find(&g, &pool),
            expected,
            "union-find diverged on iteration {round}"
        );
    }
}
