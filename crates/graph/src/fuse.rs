//! The balanced binary fusion tree: the merge half of the partition-and-
//! fuse execution engine.
//!
//! [`fuse`] runs a kernel *locally* on every partition of a
//! [`PartitionPlan`](crate::partition::PartitionPlan) and merges boundary
//! state pairwise up a balanced binary tree of
//! [`PalPool::join`](lopram_core::PalPool::join)s — exactly the §3.1
//! pal-thread fork shape, so the tree inherits the `⌈α·log₂ p⌉` cutoff
//! and costs exactly `parts − 1` forks, schedule-independent.
//!
//! The tree's load-bearing property is **exclusive ownership by
//! `split_at_mut`**: a leaf holds `&mut` slices of the vertex-indexed
//! data and the per-partition state covering *its partition only*; a
//! merge node holds them for *its whole subtree*, reunified after both
//! children returned.  Kernels therefore need no atomics in the local
//! phase — plain loads and stores, no cross-partition traffic — and
//! every cut edge is resolved at the lowest tree node whose range covers
//! both endpoints, sequentially and deterministically.  The panics of
//! either child propagate through `join` unchanged.

use std::ops::Range;

use lopram_core::PalPool;

/// The view a fusion-tree callback receives: exclusive slices of the
/// vertex-indexed data and per-partition state for one subtree.
///
/// `data[i]` is vertex `vertices.start + i`'s entry; `state[j]` is
/// partition `parts.start + j`'s.  A leaf sees `parts.len() == 1`; the
/// root sees every partition.
pub struct FusionNode<'a, V, S> {
    /// The contiguous partition range this node covers.
    pub parts: Range<usize>,
    /// The vertex range those partitions own (`cuts[parts.start]..
    /// cuts[parts.end]`).
    pub vertices: Range<usize>,
    /// Vertex-indexed data for `vertices`, base-shifted: index
    /// `v - vertices.start`.
    pub data: &'a mut [V],
    /// Per-partition state for `parts`, base-shifted: index
    /// `k - parts.start`.
    pub state: &'a mut [S],
}

impl<V, S> FusionNode<'_, V, S> {
    /// `true` iff `v` is owned by this node's subtree.
    pub fn owns(&self, v: usize) -> bool {
        self.vertices.contains(&v)
    }

    /// The data entry of vertex `v` (which must be owned by this node).
    pub fn datum(&mut self, v: usize) -> &mut V {
        &mut self.data[v - self.vertices.start]
    }
}

/// Run `leaf` on every partition and fold the results pairwise up a
/// balanced binary join tree; returns the root's merged value.
///
/// * `cuts` — the plan's cut array (`parts + 1` entries);
///   `data.len()` must equal `cuts[parts] - cuts[0]` and `state.len()`
///   must equal `parts`.
/// * `leaf(node)` — the local kernel: runs with exclusive access to one
///   partition's slices, returns that partition's boundary summary.
/// * `merge(node, left, right)` — fuses two children's summaries with
///   exclusive access to the whole subtree's slices (this is where cut
///   edges whose endpoints meet for the first time are replayed).
///
/// Fork cost: exactly `parts − 1` (one `join` per internal node),
/// counted like any other pal-thread creation in
/// [`RunMetrics`](lopram_core::RunMetrics).
///
/// # Panics
///
/// Panics if `state` is empty or the slice lengths disagree with `cuts`.
pub fn fuse<V, S, R>(
    pool: &PalPool,
    cuts: &[usize],
    data: &mut [V],
    state: &mut [S],
    leaf: &(impl Fn(FusionNode<'_, V, S>) -> R + Sync),
    merge: &(impl Fn(FusionNode<'_, V, S>, R, R) -> R + Sync),
) -> R
where
    V: Send,
    S: Send,
    R: Send,
{
    let parts = state.len();
    assert!(parts > 0, "fusion tree needs at least one partition");
    assert_eq!(cuts.len(), parts + 1, "cuts must have parts + 1 entries");
    assert_eq!(
        data.len(),
        cuts[parts] - cuts[0],
        "data must cover exactly the planned vertex range"
    );
    fuse_rec(pool, cuts, 0, parts, data, state, leaf, merge)
}

#[allow(clippy::too_many_arguments)]
fn fuse_rec<V, S, R>(
    pool: &PalPool,
    cuts: &[usize],
    lo: usize,
    hi: usize,
    data: &mut [V],
    state: &mut [S],
    leaf: &(impl Fn(FusionNode<'_, V, S>) -> R + Sync),
    merge: &(impl Fn(FusionNode<'_, V, S>, R, R) -> R + Sync),
) -> R
where
    V: Send,
    S: Send,
    R: Send,
{
    if hi - lo == 1 {
        return leaf(FusionNode {
            parts: lo..hi,
            vertices: cuts[lo]..cuts[hi],
            data,
            state,
        });
    }
    let mid = lo + (hi - lo) / 2;
    let (data_l, data_r) = data.split_at_mut(cuts[mid] - cuts[lo]);
    let (state_l, state_r) = state.split_at_mut(mid - lo);
    let (left, right) = pool.join(
        || fuse_rec(pool, cuts, lo, mid, data_l, state_l, leaf, merge),
        || fuse_rec(pool, cuts, mid, hi, data_r, state_r, leaf, merge),
    );
    merge(
        FusionNode {
            parts: lo..hi,
            vertices: cuts[lo]..cuts[hi],
            data,
            state,
        },
        left,
        right,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_see_their_partition_and_merges_reunify() {
        let pool = PalPool::new(2).unwrap();
        let cuts = [0usize, 3, 5, 9, 10];
        let mut data = [0usize; 10];
        let mut state = [0usize; 4];
        // Leaf: stamp every owned datum with the partition id + 1 and
        // return the partition's vertex count.
        let total = fuse(
            &pool,
            &cuts,
            &mut data,
            &mut state,
            &|mut node| {
                let k = node.parts.start;
                assert_eq!(node.parts.len(), 1);
                assert_eq!(node.vertices, cuts[k]..cuts[k + 1]);
                assert_eq!(node.data.len(), node.vertices.len());
                for v in node.vertices.clone() {
                    *node.datum(v) = k + 1;
                }
                node.state[0] = k + 1;
                node.vertices.len()
            },
            &|node, l, r| {
                // The merge sees the reunified subtree slices.
                assert_eq!(node.data.len(), node.vertices.len());
                assert_eq!(node.state.len(), node.parts.len());
                l + r
            },
        );
        assert_eq!(total, 10);
        assert_eq!(data, [1, 1, 1, 2, 2, 3, 3, 3, 3, 4]);
        assert_eq!(state, [1, 2, 3, 4]);
    }

    #[test]
    fn fork_count_is_parts_minus_one() {
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for parts in [1usize, 2, 3, 5, 8] {
                let cuts: Vec<usize> = (0..=parts).map(|k| k * 4).collect();
                let mut data = vec![0u8; parts * 4];
                let mut state = vec![(); parts];
                let ((), delta) = pool.scoped_metrics(|| {
                    fuse(
                        &pool,
                        &cuts,
                        &mut data,
                        &mut state,
                        &|_| (),
                        &|_, (), ()| (),
                    );
                });
                assert_eq!(
                    delta.forks(),
                    parts as u64 - 1,
                    "fusion tree forks at p = {p}, parts = {parts}"
                );
            }
        }
    }

    #[test]
    fn empty_partitions_are_legal() {
        let pool = PalPool::new(2).unwrap();
        let cuts = [0usize, 0, 2, 2];
        let mut data = [7u32; 2];
        let mut state = [0usize; 3];
        let visited = fuse(
            &pool,
            &cuts,
            &mut data,
            &mut state,
            &|node| node.vertices.len(),
            &|_, l, r| l + r,
        );
        assert_eq!(visited, 2);
    }
}
