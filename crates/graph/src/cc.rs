//! Connected components: parallel label propagation and tree hooking, with
//! a sequential twin.
//!
//! All three algorithms label every vertex with the **minimum vertex id of
//! its component**, so differential tests can compare outputs directly —
//! no relabelling needed (the property suite still checks equality up to
//! relabelling, which is what the algorithms guarantee in general).
//!
//! The parallel variants check their label/parent arrays out of the
//! pool's [`Workspace`](lopram_core::Workspace) arena, so repeated CC
//! calls on one pool (the steady state of a component-tracking service)
//! reuse a single allocation instead of re-materializing an
//! `n`-element atomic array per call.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use lopram_core::PalPool;

use crate::csr::CsrGraph;

/// Sequential connected components: `labels[v]` is the smallest vertex id
/// in `v`'s component — the differential twin of the parallel variants.
pub fn components_seq(graph: &CsrGraph) -> Vec<usize> {
    let n = graph.vertices();
    let mut labels = vec![usize::MAX; n];
    let mut stack = Vec::new();
    for root in 0..n {
        if labels[root] != usize::MAX {
            continue;
        }
        // Vertices are visited in increasing id order, so `root` is the
        // minimum of its component.
        labels[root] = root;
        stack.push(root);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = root;
                    stack.push(v);
                }
            }
        }
    }
    labels
}

/// Parallel label propagation: every vertex repeatedly lowers its label to
/// the minimum over its neighbourhood (`fetch_min`) until a fixpoint.
///
/// Labels only ever decrease and every component's minimum id is a fixed
/// point, so the algorithm converges to exactly [`components_seq`]'s
/// labelling in at most *diameter* rounds, independent of the schedule.
pub fn components_label_prop(graph: &CsrGraph, pool: &PalPool) -> Vec<usize> {
    let n = graph.vertices();
    let mut labels = pool.workspace().checkout::<AtomicUsize>();
    labels.extend((0..n).map(AtomicUsize::new));
    let labels: &[AtomicUsize] = &labels;
    loop {
        let changed = AtomicBool::new(false);
        pool.for_each_index(0..n, |u| {
            let mut best = labels[u].load(Ordering::Relaxed);
            for &v in graph.neighbors(u) {
                best = best.min(labels[v].load(Ordering::Relaxed));
            }
            if labels[u].fetch_min(best, Ordering::AcqRel) > best {
                changed.store(true, Ordering::Release);
            }
        });
        if !changed.load(Ordering::Acquire) {
            break;
        }
    }
    labels.iter().map(|l| l.load(Ordering::Relaxed)).collect()
}

/// Follow `parent` pointers from `v` to the current root (the fixed point
/// `parent[r] == r`).  Terminates because parents strictly decrease along
/// the chain.
fn chase(parent: &[AtomicUsize], mut v: usize) -> usize {
    loop {
        let p = parent[v].load(Ordering::Acquire);
        if p == v {
            return v;
        }
        v = p;
    }
}

/// Parallel tree hooking (Shiloach–Vishkin style): components are merged
/// by hooking the larger root under the smaller (`fetch_min` on the parent
/// array — parents only decrease, so no cycles can form), then flattened
/// by pointer jumping, until no edge crosses two trees.
///
/// Converges to the same minimum-id labelling as [`components_seq`]: the
/// only root left per component is its minimum vertex id.
pub fn components_hook(graph: &CsrGraph, pool: &PalPool) -> Vec<usize> {
    let n = graph.vertices();
    let mut parent = pool.workspace().checkout::<AtomicUsize>();
    parent.extend((0..n).map(AtomicUsize::new));
    let parent: &[AtomicUsize] = &parent;
    loop {
        // Hook: merge the two trees of every cross-tree edge, smaller root
        // winning.
        let hooked = AtomicBool::new(false);
        pool.for_each_index(0..n, |u| {
            // Parents only decrease, so u's previously-found root stays on
            // u's chain: re-chase from it instead of from u every edge —
            // high-degree hubs would otherwise re-walk the whole chain
            // once per neighbour.
            let mut ru = u;
            for &v in graph.neighbors(u) {
                ru = chase(parent, ru);
                let rv = chase(parent, v);
                if ru != rv {
                    let (lo, hi) = (ru.min(rv), ru.max(rv));
                    parent[hi].fetch_min(lo, Ordering::AcqRel);
                    hooked.store(true, Ordering::Release);
                }
            }
        });

        // Compress: pointer-jump every vertex to its grandparent until the
        // forest is a set of stars.
        loop {
            let jumped = AtomicBool::new(false);
            pool.for_each_index(0..n, |v| {
                let p = parent[v].load(Ordering::Acquire);
                let gp = parent[p].load(Ordering::Acquire);
                if gp < p && parent[v].fetch_min(gp, Ordering::AcqRel) > gp {
                    jumped.store(true, Ordering::Release);
                }
            });
            if !jumped.load(Ordering::Acquire) {
                break;
            }
        }

        if !hooked.load(Ordering::Acquire) {
            return parent.iter().map(|p| p.load(Ordering::Relaxed)).collect();
        }
    }
}

/// Number of distinct components in a labelling (counts distinct label
/// values, so it works for any labelling — not just the min-id one the
/// algorithms in this module produce).
pub fn component_count(labels: &[usize]) -> usize {
    let mut seen = std::collections::HashSet::with_capacity(labels.len());
    labels.iter().filter(|&&l| seen.insert(l)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn seq_labels_are_component_minima() {
        // Two components: {0, 1, 2} and {3, 4}.
        let g = CsrGraph::from_undirected_edges(5, &[(1, 2), (0, 2), (4, 3)]);
        assert_eq!(components_seq(&g), vec![0, 0, 0, 3, 3]);
        assert_eq!(component_count(&components_seq(&g)), 2);
    }

    #[test]
    fn parallel_variants_match_sequential() {
        let shapes = [
            gen::gnm(200, 220, 5), // sparse: many components
            gen::gnm(200, 800, 6), // dense: usually one giant component
            gen::grid(9, 13),
            gen::star(100),
            gen::path(173),
            gen::binary_tree(255),
            CsrGraph::from_undirected_edges(64, &[]), // 64 singletons
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                let expected = components_seq(g);
                assert_eq!(
                    components_label_prop(g, &pool),
                    expected,
                    "label propagation diverged on shape {k} at p = {p}"
                );
                assert_eq!(
                    components_hook(g, &pool),
                    expected,
                    "tree hooking diverged on shape {k} at p = {p}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let pool = PalPool::new(2).unwrap();
        assert!(components_seq(&g).is_empty());
        assert!(components_label_prop(&g, &pool).is_empty());
        assert!(components_hook(&g, &pool).is_empty());
    }
}
