//! Connected components: parallel label propagation and tree hooking, with
//! a sequential twin.  (The work-efficient sampled union-find variant lives
//! in [`uf`](crate::uf) — these round-synchronous kernels pay O(diameter)
//! rounds and exist as its ablation baseline.)
//!
//! All three algorithms label every vertex with the **minimum vertex id of
//! its component**, so differential tests can compare outputs directly —
//! no relabelling needed (the property suite still checks equality up to
//! relabelling, which is what the algorithms guarantee in general).
//!
//! The parallel variants check their label/parent arrays out of the
//! pool's [`Workspace`](lopram_core::Workspace) arena, so repeated CC
//! calls on one pool (the steady state of a component-tracking service)
//! reuse a single allocation instead of re-materializing an
//! `n`-element atomic array per call.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use lopram_core::runtime::cancel;
use lopram_core::{run_cancellable, CancelReason, CancelToken, PalPool};

use crate::csr::CsrGraph;
use crate::fuse::{fuse, FusionNode};
use crate::partition::{PartitionPhases, PartitionPlan};

/// Sequential connected components: `labels[v]` is the smallest vertex id
/// in `v`'s component — the differential twin of the parallel variants.
pub fn components_seq(graph: &CsrGraph) -> Vec<usize> {
    let n = graph.vertices();
    let mut labels = vec![usize::MAX; n];
    let mut stack = Vec::new();
    for root in 0..n {
        if labels[root] != usize::MAX {
            continue;
        }
        // Vertices are visited in increasing id order, so `root` is the
        // minimum of its component.
        labels[root] = root;
        stack.push(root);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = root;
                    stack.push(v);
                }
            }
        }
    }
    labels
}

/// Parallel label propagation: every vertex repeatedly lowers its label to
/// the minimum over its neighbourhood (`fetch_min`) until a fixpoint.
///
/// Labels only ever decrease and every component's minimum id is a fixed
/// point, so the algorithm converges to exactly [`components_seq`]'s
/// labelling in at most *diameter* rounds, independent of the schedule.
pub fn components_label_prop(graph: &CsrGraph, pool: &PalPool) -> Vec<usize> {
    components_label_prop_rounds(graph, pool).0
}

/// [`components_label_prop`] also reporting the number of blocked rounds
/// executed, **including** the final fixpoint-confirming round that
/// observes no change (so a correct labelling at round one still costs
/// two) — the work measure the `bench_cc_shootout` ablation records.
/// The count is schedule-dependent — an in-chunk ascending scan can zip
/// a label many hops within one round — but always lies in
/// `[2, diameter + 1]` on non-empty graphs: fresh in-round reads only
/// accelerate the guaranteed one-hop-per-round progress.
///
/// ## Memory-ordering proof (the `Relaxed`/`AcqRel` mix is deliberate)
///
/// The neighbour loads below are `Relaxed` on purpose; convergence does
/// not depend on them being acquire loads:
///
/// * **Stale reads are harmless for safety.** Labels only ever decrease
///   (`fetch_min`), so the worst a stale `Relaxed` load can do is return
///   a *larger* historical value, which makes this round's `best` less
///   tight — never wrong, since every value ever stored is some vertex id
///   of the component.
/// * **Stale reads are harmless for termination.** Each round ends at the
///   `for_each_index` scope barrier: the runtime joins every pal-thread
///   before the round returns, and that join synchronises-with the next
///   round's spawns.  Everything round *t* stored — labels **and** the
///   `changed` flag — therefore *happens-before* every load of round
///   `t + 1`; within one round a vertex's own `fetch_min(AcqRel)` reads
///   the latest value of its own cell.  So in the round after the last
///   decrease, every `Relaxed` load observes final values, `best` equals
///   the stored label everywhere, no `fetch_min` decreases anything, and
///   the loop exits.
/// * **`changed` cannot be missed.** The flag is set by the same
///   pal-thread that performed the decrease, before that pal-thread
///   finishes, and read only after the scope barrier — the barrier's
///   happens-before edge makes the `Release`/`Acquire` pair on `changed`
///   sufficient (even `Relaxed` would be ordered by the join; the
///   stronger orderings document intent).
/// * **Exit implies fixpoint.** The loop exits only after a full round
///   in which no `fetch_min` decreased any cell *and* — by the barrier
///   argument — every load in that round saw the latest values.  A
///   no-decrease round over fresh values is precisely the fixpoint
///   `labels[u] == min(labels[u], min over neighbours)`, i.e. constant
///   labels per component; since labels start as vertex ids and only
///   travel along edges, that constant is the component minimum.
///
/// The `LOPRAM_TEST_REPEAT`-scaled stress suite in
/// `tests/cc_stress.rs` hammers exactly this argument: long-path
/// convergence at `p = 4`, where a missed decrease or a premature exit
/// would leave a label above its component minimum.
pub fn components_label_prop_rounds(graph: &CsrGraph, pool: &PalPool) -> (Vec<usize>, usize) {
    let n = graph.vertices();
    let mut labels = pool.workspace().checkout::<AtomicUsize>();
    labels.extend((0..n).map(AtomicUsize::new));
    let labels: &[AtomicUsize] = &labels;
    let mut rounds = 0;
    loop {
        // Round boundary: a fired ambient token stops the propagation
        // here at the latest (see [`components_cancellable`]).
        cancel::checkpoint();
        rounds += 1;
        let changed = AtomicBool::new(false);
        pool.for_each_index(0..n, |u| {
            let mut best = labels[u].load(Ordering::Relaxed);
            for &v in graph.neighbors(u) {
                best = best.min(labels[v].load(Ordering::Relaxed));
            }
            if labels[u].fetch_min(best, Ordering::AcqRel) > best {
                changed.store(true, Ordering::Release);
            }
        });
        if !changed.load(Ordering::Acquire) {
            break;
        }
    }
    (
        labels.iter().map(|l| l.load(Ordering::Relaxed)).collect(),
        rounds,
    )
}

/// Follow `parent` pointers from `v` to the current root (the fixed point
/// `parent[r] == r`).  Terminates because parents strictly decrease along
/// the chain.
fn chase(parent: &[AtomicUsize], mut v: usize) -> usize {
    loop {
        let p = parent[v].load(Ordering::Acquire);
        if p == v {
            return v;
        }
        v = p;
    }
}

/// Parallel tree hooking (Shiloach–Vishkin style): components are merged
/// by hooking the larger root under the smaller (`fetch_min` on the parent
/// array — parents only decrease, so no cycles can form), then flattened
/// by pointer jumping, until no edge crosses two trees.
///
/// Converges to the same minimum-id labelling as [`components_seq`]: the
/// only root left per component is its minimum vertex id.
pub fn components_hook(graph: &CsrGraph, pool: &PalPool) -> Vec<usize> {
    components_hook_rounds(graph, pool).0
}

/// [`components_hook`] also reporting the number of hook rounds executed
/// (each hook round may run several pointer-jump subrounds, which are not
/// counted separately), **including** the final round that observes no
/// cross-tree edge.
///
/// ## Memory-ordering note
///
/// Same structure as the [`components_label_prop_rounds`] proof: parents
/// only ever decrease (`fetch_min(AcqRel)` hooks and jumps), each round
/// ends at the `for_each_index` scope barrier whose join gives
/// round-to-round happens-before, the `hooked`/`jumped` flags are set by
/// the decreasing pal-thread itself before the barrier, and the chases
/// use `Acquire` loads so a freshly-hooked parent's cell is fully
/// visible before it is dereferenced as an index into the next chain
/// link.  A stale read can only overstate a root (values decrease), so
/// at worst a round performs a redundant `fetch_min` — never a wrong or
/// lost hook — and the exit round's fresh values certify the fixpoint.
pub fn components_hook_rounds(graph: &CsrGraph, pool: &PalPool) -> (Vec<usize>, usize) {
    let n = graph.vertices();
    let mut parent = pool.workspace().checkout::<AtomicUsize>();
    parent.extend((0..n).map(AtomicUsize::new));
    let parent: &[AtomicUsize] = &parent;
    let mut rounds = 0;
    loop {
        // Round boundary: a fired ambient token stops the hooking here at
        // the latest (see [`components_cancellable`]).
        cancel::checkpoint();
        rounds += 1;
        // Hook: merge the two trees of every cross-tree edge, smaller root
        // winning.
        let hooked = AtomicBool::new(false);
        pool.for_each_index(0..n, |u| {
            // Parents only decrease, so u's previously-found root stays on
            // u's chain: re-chase from it instead of from u every edge —
            // high-degree hubs would otherwise re-walk the whole chain
            // once per neighbour.
            let mut ru = u;
            for &v in graph.neighbors(u) {
                ru = chase(parent, ru);
                let rv = chase(parent, v);
                if ru != rv {
                    let (lo, hi) = (ru.min(rv), ru.max(rv));
                    parent[hi].fetch_min(lo, Ordering::AcqRel);
                    hooked.store(true, Ordering::Release);
                }
            }
        });

        // Compress: pointer-jump every vertex to its grandparent until the
        // forest is a set of stars.
        loop {
            let jumped = AtomicBool::new(false);
            pool.for_each_index(0..n, |v| {
                let p = parent[v].load(Ordering::Acquire);
                let gp = parent[p].load(Ordering::Acquire);
                if gp < p && parent[v].fetch_min(gp, Ordering::AcqRel) > gp {
                    jumped.store(true, Ordering::Release);
                }
            });
            if !jumped.load(Ordering::Acquire) {
                break;
            }
        }

        if !hooked.load(Ordering::Acquire) {
            return (
                parent.iter().map(|p| p.load(Ordering::Relaxed)).collect(),
                rounds,
            );
        }
    }
}

/// Cancellable entry point for [`components_hook`]: runs the hooking
/// under `token` and reports how it ended.
///
/// `Ok(labels)` when the fixpoint is reached; `Err(reason)` when the
/// token fires first.  The kernel checkpoints at every hook round and —
/// through the pool's fork boundaries — inside each round, so a fired
/// token unwinds promptly and releases every arena buffer it held; the
/// pool stays warm for the next caller (the contract the `lopram-serve`
/// job service builds on).
pub fn components_cancellable(
    graph: &CsrGraph,
    pool: &PalPool,
    token: &CancelToken,
) -> Result<Vec<usize>, CancelReason> {
    run_cancellable(token, || components_hook(graph, pool))
}

/// Find the root of `v` in a plain union-find forest over the exclusive
/// slice `parent` (base-shifted by `base`), with full path compression.
/// Plain stores suffice: the fusion tree hands each caller exclusive
/// ownership of the slice it touches.
fn find(parent: &mut [usize], base: usize, v: usize) -> usize {
    let mut root = v;
    while parent[root - base] != root {
        root = parent[root - base];
    }
    let mut cur = v;
    while cur != root {
        cur = std::mem::replace(&mut parent[cur - base], root);
    }
    root
}

/// Union the components of `v` and `u`, hooking the larger root under
/// the smaller — the min-id root of a merged set always survives, which
/// is what makes the final labelling deterministic.
fn unite(parent: &mut [usize], base: usize, v: usize, u: usize) {
    let rv = find(parent, base, v);
    let ru = find(parent, base, u);
    if rv != ru {
        let (lo, hi) = (rv.min(ru), rv.max(ru));
        parent[hi - base] = lo;
    }
}

/// Partitioned connected components: plans a `parts`-way
/// [`PartitionPlan`] and runs [`components_partitioned_with`] on it.
/// Identical min-id labelling to [`components_seq`] for every processor
/// and partition count.
///
/// Exact fork cost, schedule-independent:
/// [`plan_forks`](crate::partition::plan_forks) for the plan plus
/// `(parts − 1) + (chunk_count(n) − 1)` for the solve — one
/// [`fuse`] tree and one final blocked flatten pass.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn components_partitioned(graph: &CsrGraph, pool: &PalPool, parts: usize) -> Vec<usize> {
    let plan = PartitionPlan::new(graph, pool, parts);
    components_partitioned_with(graph, pool, &plan)
}

/// [`components_partitioned`] on a pre-built plan.
///
/// One fusion tree over an arena-backed union-find parent array:
///
/// * **leaf** — partition `k` unions its *internal* edges (both
///   endpoints local — cut arcs are skipped, zero cross-partition
///   traffic) with plain min-hooking on its exclusive parent slice,
///   then fully flattens its range to local stars.
/// * **merge** — replays exactly the cut arcs whose endpoints meet for
///   the first time at this node (left-half sources with right-half
///   targets; the symmetric orientation is skipped), hooking across the
///   reunified subtree slice, then path-compacts the processed boundary
///   endpoints so ancestor merges see near-flat chains — the Afforest
///   progression: local linking first, boundary resolution after.
///
/// The fusion tree's exclusive slices replace the flat kernel's
/// compare-and-swap hooks ([`components_hook`]) with plain stores; the
/// hook direction (min id wins) makes the result deterministic.  A final
/// read-only [`map_collect`](PalPool::map_collect) chase flattens every
/// vertex to its component's minimum id.
pub fn components_partitioned_with(
    graph: &CsrGraph,
    pool: &PalPool,
    plan: &PartitionPlan<'_>,
) -> Vec<usize> {
    let n = graph.vertices();
    assert_eq!(plan.vertices(), n, "plan was built for a different graph");
    if n == 0 {
        return Vec::new();
    }
    let cuts = plan.cuts();
    let mut parent = pool.workspace().checkout::<usize>();
    parent.extend(0..n);
    let mut state = vec![(); plan.parts()];

    fuse(
        pool,
        cuts,
        &mut parent,
        &mut state,
        &|node: FusionNode<'_, usize, ()>| {
            let FusionNode { vertices, data, .. } = node;
            let base = vertices.start;
            for v in vertices.clone() {
                // Sorted adjacency: the in-range, smaller-id neighbours
                // form one contiguous run — each internal edge once.
                for &u in graph.neighbors(v) {
                    if u >= v {
                        break;
                    }
                    if u >= base {
                        unite(data, base, v, u);
                    }
                }
            }
            for v in vertices.clone() {
                find(data, base, v);
            }
        },
        &|node, (), ()| {
            let FusionNode {
                parts,
                vertices,
                data,
                ..
            } = node;
            let base = vertices.start;
            let mid = parts.start + parts.len() / 2;
            let vsplit = cuts[mid];
            for k in parts.start..mid {
                for &(v, u) in plan.cut_arcs(k) {
                    if u >= vsplit && u < vertices.end {
                        unite(data, base, v, u);
                    }
                }
            }
            // Path compaction over the boundary labels just hooked, so
            // ancestor merges chase O(1) chains from these endpoints.
            for k in parts.start..mid {
                for &(v, u) in plan.cut_arcs(k) {
                    if u >= vsplit && u < vertices.end {
                        find(data, base, v);
                        find(data, base, u);
                    }
                }
            }
        },
    );

    let parent: &[usize] = &parent;
    pool.map_collect(0..n, |v| {
        let mut root = v;
        while parent[root] != root {
            root = parent[root];
        }
        root
    })
}

/// [`components_partitioned`] with per-phase metrics attribution via
/// [`PalPool::scoped_metrics`]: returns the labels plus the plan and
/// solve deltas separately (single-client window — see
/// [`scoped_metrics`](PalPool::scoped_metrics)).
pub fn components_partitioned_metered(
    graph: &CsrGraph,
    pool: &PalPool,
    parts: usize,
) -> (Vec<usize>, PartitionPhases) {
    let (plan, plan_delta) = pool.scoped_metrics(|| PartitionPlan::new(graph, pool, parts));
    let (labels, solve_delta) =
        pool.scoped_metrics(|| components_partitioned_with(graph, pool, &plan));
    (
        labels,
        PartitionPhases {
            plan: plan_delta,
            solve: solve_delta,
        },
    )
}

/// Number of distinct components in a labelling (counts distinct label
/// values, so it works for any labelling — not just the min-id one the
/// algorithms in this module produce).
pub fn component_count(labels: &[usize]) -> usize {
    let mut seen = std::collections::HashSet::with_capacity(labels.len());
    labels.iter().filter(|&&l| seen.insert(l)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn seq_labels_are_component_minima() {
        // Two components: {0, 1, 2} and {3, 4}.
        let g = CsrGraph::from_undirected_edges(5, &[(1, 2), (0, 2), (4, 3)]);
        assert_eq!(components_seq(&g), vec![0, 0, 0, 3, 3]);
        assert_eq!(component_count(&components_seq(&g)), 2);
    }

    #[test]
    fn parallel_variants_match_sequential() {
        let shapes = [
            gen::gnm(200, 220, 5), // sparse: many components
            gen::gnm(200, 800, 6), // dense: usually one giant component
            gen::grid(9, 13),
            gen::star(100),
            gen::path(173),
            gen::binary_tree(255),
            CsrGraph::from_undirected_edges(64, &[]), // 64 singletons
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                let expected = components_seq(g);
                assert_eq!(
                    components_label_prop(g, &pool),
                    expected,
                    "label propagation diverged on shape {k} at p = {p}"
                );
                assert_eq!(
                    components_hook(g, &pool),
                    expected,
                    "tree hooking diverged on shape {k} at p = {p}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let pool = PalPool::new(2).unwrap();
        assert!(components_seq(&g).is_empty());
        assert!(components_label_prop(&g, &pool).is_empty());
        assert!(components_hook(&g, &pool).is_empty());
    }
}
