//! Work-efficient connected components: concurrent union-find with
//! CAS-based hooking, path splitting, and Afforest-style sampling.
//!
//! The round-synchronous kernels in [`cc`](crate::cc) pay O(diameter)
//! blocked passes — a path graph forces `n − 1` rounds of label
//! propagation.  This module implements the sampled concurrent
//! union-find of Dhulipala–Blelloch–Shun (ConnectIt / Afforest,
//! arXiv 1805.05208) on the same blocked primitives, so the pass count
//! is a **constant** (`sample_edges + 1` index passes plus one blocked
//! flatten) regardless of diameter, and the fork count stays an exact,
//! schedule-independent closed form ([`union_find_forks`]).
//!
//! The three phases:
//!
//! 1. **Sample** — `sample_edges` blocked passes link every vertex with
//!    its *r*-th neighbour (r = 0, 1, …).  On most graphs a couple of
//!    edges per vertex already coalesce the bulk of the vertices into
//!    one giant component.
//! 2. **Estimate** — a sequential, read-only scan of ~`sample_vertices`
//!    strided vertices finds the most frequent current root (the giant
//!    component's), costing zero forks.
//! 3. **Finish** — one blocked pass links *all* edges of every vertex
//!    whose root differs from the giant root, then one blocked
//!    [`map_collect`](PalPool::map_collect) flattens each vertex to its
//!    component minimum.  Skipping giant-rooted vertices is safe under
//!    any interleaving: an edge `(v, u)` is only skipped from `v`'s side
//!    when `v` is already in the giant component, so either `u` links it
//!    from its own side or `u` is giant-rooted too — in which case the
//!    edge connects two vertices already in one set.
//!
//! ## Why the concurrent forest is safe
//!
//! The parent array maintains `parent[v] ≤ v`, and every write strictly
//! *decreases* a cell: hooking CAS-es a root `hi` from `hi` to a smaller
//! root `lo` (so a lost race — `hi` no longer its own parent — retries
//! with fresh roots instead of clobbering), and path splitting uses
//! `fetch_min` with a grandparent, which is always ≤ the parent being
//! replaced.  Monotonically decreasing parents mean no cycles can ever
//! form and every chase terminates.  The minimum vertex id of a
//! component is never hooked under anything (there is no smaller root in
//! its component), so it remains the root and the final labelling is
//! **exactly** [`components_seq`](crate::cc::components_seq)'s
//! minimum-id labelling — not merely equal up to relabelling.
//!
//! The parent and sample buffers come out of the pool's
//! [`Workspace`](lopram_core::Workspace) arena, so a warmed pool runs
//! million-edge CC calls with zero arena growth (the steady state the
//! `bench_cc_shootout` binary gates).

use std::sync::atomic::{AtomicUsize, Ordering};

use lopram_core::runtime::cancel;
use lopram_core::{run_cancellable, CancelReason, CancelToken, MetricsSnapshot, PalPool};

use crate::csr::CsrGraph;

/// Tuning knobs for [`components_union_find_with`].
#[derive(Debug, Clone, Copy)]
pub struct UnionFindConfig {
    /// Number of sampling passes: pass `r` links every vertex with its
    /// `r`-th neighbour.  More passes grow the pre-resolved giant
    /// component but cost one blocked index pass each.
    pub sample_edges: usize,
    /// Upper bound on the strided vertex sample used to estimate the
    /// giant component's root (phase 2); the estimate is sequential and
    /// fork-free, so this only trades estimate quality against scan
    /// time.
    pub sample_vertices: usize,
}

impl Default for UnionFindConfig {
    /// Two sampling passes over a ≤1024-vertex root sample — the
    /// Afforest paper's sweet spot for sparse graphs.
    fn default() -> Self {
        UnionFindConfig {
            sample_edges: 2,
            sample_vertices: 1024,
        }
    }
}

/// Per-phase metrics of a union-find run, attributed with
/// [`PalPool::scoped_metrics`]: the sampling passes (+ the sequential
/// giant-root estimate) and the finish pass (+ flatten) separately.
#[derive(Debug, Clone, Copy)]
pub struct UnionFindPhases {
    /// Metrics delta of the sampling passes and the root estimate.
    pub sample: MetricsSnapshot,
    /// Metrics delta of the full linking pass and the final flatten.
    pub finish: MetricsSnapshot,
}

/// Read-only chase to the current root (`parent[r] == r`).  Terminates
/// because parents strictly decrease along every chain.
fn chase(parent: &[AtomicUsize], mut v: usize) -> usize {
    loop {
        let p = parent[v].load(Ordering::Acquire);
        if p == v {
            return v;
        }
        v = p;
    }
}

/// Find the root of `v` with **path splitting**: every visited vertex is
/// re-pointed at its grandparent on the way up, halving the chain for
/// later finds.  The splice uses `fetch_min`, so a racing writer that
/// already lowered `parent[v]` further is never overwritten — parents
/// stay monotonically decreasing under any interleaving.
fn find_split(parent: &[AtomicUsize], mut v: usize) -> usize {
    loop {
        let p = parent[v].load(Ordering::Acquire);
        if p == v {
            return v;
        }
        let gp = parent[p].load(Ordering::Acquire);
        if gp == p {
            return p;
        }
        parent[v].fetch_min(gp, Ordering::AcqRel);
        v = p;
    }
}

/// Merge the components of `u` and `v` by hooking the larger of their
/// roots under the smaller.  The hook is a CAS from `hi` to `lo`, which
/// only succeeds while `hi` is still its own parent — a concurrent hook
/// of the same root makes the CAS fail and the loop re-find both roots,
/// so no union is ever lost and the forest keeps exactly one root per
/// set.
fn link(parent: &[AtomicUsize], u: usize, v: usize) {
    let (mut u, mut v) = (u, v);
    loop {
        let ru = find_split(parent, u);
        let rv = find_split(parent, v);
        if ru == rv {
            return;
        }
        let (lo, hi) = (ru.min(rv), ru.max(rv));
        if parent[hi]
            .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return;
        }
        // Lost the race: hi was hooked elsewhere first.  Both roots are
        // still on their vertices' chains, so restart the finds there.
        (u, v) = (lo, hi);
    }
}

/// Phase 1 + 2: checkout and initialise the parent forest, run the
/// sampling passes, and estimate the giant component's root.
fn sample_phase<'ws>(
    graph: &CsrGraph,
    pool: &'ws PalPool,
    config: &UnionFindConfig,
) -> (lopram_core::WorkspaceGuard<'ws, AtomicUsize>, usize) {
    let n = graph.vertices();
    let mut parent = pool.workspace().checkout::<AtomicUsize>();
    parent.extend((0..n).map(AtomicUsize::new));
    {
        let parent: &[AtomicUsize] = &parent;
        for r in 0..config.sample_edges {
            // Round boundary: a fired ambient token unwinds here at the
            // latest (see [`components_union_find_cancellable`]).
            cancel::checkpoint();
            pool.for_each_index(0..n, |v| {
                if let Some(&u) = graph.neighbors(v).get(r) {
                    link(parent, v, u);
                }
            });
        }
    }

    // Sequential giant-root estimate over a strided, read-only sample:
    // zero forks, O(sample) chases.  A wrong estimate never breaks
    // correctness — it only shrinks the set of vertices the finish pass
    // may skip.
    let giant = if n == 0 {
        0
    } else {
        let stride = (n / config.sample_vertices.max(1)).max(1);
        let mut roots = pool.workspace().checkout::<usize>();
        let mut v = 0;
        while v < n {
            roots.push(chase(&parent, v));
            v += stride;
        }
        roots.sort_unstable();
        let (mut best, mut best_len, mut run_len) = (roots[0], 0usize, 0usize);
        let mut prev = usize::MAX;
        for &r in roots.iter() {
            run_len = if r == prev { run_len + 1 } else { 1 };
            if run_len > best_len {
                (best, best_len) = (r, run_len);
            }
            prev = r;
        }
        best
    };
    (parent, giant)
}

/// Phase 3: link every edge of every vertex not yet in the giant
/// component, then flatten to minimum-id labels.
fn finish_phase(
    graph: &CsrGraph,
    pool: &PalPool,
    parent: &[AtomicUsize],
    giant: usize,
) -> Vec<usize> {
    let n = graph.vertices();
    if n == 0 {
        return Vec::new();
    }
    cancel::checkpoint();
    pool.for_each_index(0..n, |v| {
        if find_split(parent, v) == giant {
            return;
        }
        for &u in graph.neighbors(v) {
            link(parent, v, u);
        }
    });
    pool.map_collect(0..n, |v| chase(parent, v))
}

/// Connected components by sampled concurrent union-find with the
/// default [`UnionFindConfig`]: `labels[v]` is the smallest vertex id in
/// `v`'s component, bit-identical to
/// [`components_seq`](crate::cc::components_seq) for every processor
/// count and schedule.
///
/// Exactly [`union_find_forks`] forks — constant passes regardless of
/// graph diameter, which is what makes this kernel work-efficient where
/// [`components_label_prop`](crate::cc::components_label_prop) pays
/// O(diameter) rounds.
pub fn components_union_find(graph: &CsrGraph, pool: &PalPool) -> Vec<usize> {
    components_union_find_with(graph, pool, &UnionFindConfig::default())
}

/// [`components_union_find`] under an explicit [`UnionFindConfig`].
pub fn components_union_find_with(
    graph: &CsrGraph,
    pool: &PalPool,
    config: &UnionFindConfig,
) -> Vec<usize> {
    let (parent, giant) = sample_phase(graph, pool, config);
    finish_phase(graph, pool, &parent, giant)
}

/// [`components_union_find`] with per-phase metrics attribution via
/// [`PalPool::scoped_metrics`]: returns the labels plus the sample and
/// finish deltas separately (single-client window — see
/// [`scoped_metrics`](PalPool::scoped_metrics)).
pub fn components_union_find_metered(
    graph: &CsrGraph,
    pool: &PalPool,
    config: &UnionFindConfig,
) -> (Vec<usize>, UnionFindPhases) {
    let ((parent, giant), sample_delta) = pool.scoped_metrics(|| sample_phase(graph, pool, config));
    let (labels, finish_delta) = pool.scoped_metrics(|| finish_phase(graph, pool, &parent, giant));
    drop(parent);
    (
        labels,
        UnionFindPhases {
            sample: sample_delta,
            finish: finish_delta,
        },
    )
}

/// Cancellable entry point for [`components_union_find`]: runs the
/// kernel under `token` and reports how it ended.
///
/// `Ok(labels)` when the forest is flattened; `Err(reason)` when the
/// token fires first.  The kernel checkpoints at every phase boundary
/// and — through the pool's fork boundaries — inside each blocked pass,
/// so a fired token unwinds promptly and releases the arena-backed
/// parent buffer; the pool stays warm for the next caller.
pub fn components_union_find_cancellable(
    graph: &CsrGraph,
    pool: &PalPool,
    token: &CancelToken,
) -> Result<Vec<usize>, CancelReason> {
    run_cancellable(token, || components_union_find(graph, pool))
}

/// The exact, schedule-independent fork count of a
/// [`components_union_find_with`] run on `pool` over a graph with
/// `vertices` vertices and `sample_edges` sampling passes:
/// `(sample_edges + 1)` index passes (each
/// `⌈len / ⌈len / index_chunk_count⌉⌉` spawns) plus one blocked flatten
/// (`chunk_count − 1` forks).  The giant-root estimate is sequential and
/// contributes zero.
pub fn union_find_forks(pool: &PalPool, vertices: usize, sample_edges: usize) -> u64 {
    if vertices == 0 {
        return 0;
    }
    let chunk_size = vertices.div_ceil(pool.index_chunk_count(vertices));
    let index_pass = vertices.div_ceil(chunk_size) as u64;
    (sample_edges as u64 + 1) * index_pass + (pool.chunk_count(vertices) as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::components_seq;
    use crate::gen;

    #[test]
    fn union_find_labels_are_component_minima() {
        // Two components: {0, 1, 2} and {3, 4}.
        let g = CsrGraph::from_undirected_edges(5, &[(1, 2), (0, 2), (4, 3)]);
        let pool = PalPool::new(2).unwrap();
        assert_eq!(components_union_find(&g, &pool), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn union_find_matches_sequential_on_generator_shapes() {
        let shapes = [
            gen::gnm(200, 220, 5),
            gen::gnm(200, 800, 6),
            gen::grid(9, 13),
            gen::star(100),
            gen::path(173),
            gen::binary_tree(255),
            CsrGraph::from_undirected_edges(64, &[]),
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                assert_eq!(
                    components_union_find(g, &pool),
                    components_seq(g),
                    "union-find diverged on shape {k} at p = {p}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_yields_no_labels_and_no_forks() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let pool = PalPool::new(2).unwrap();
        let (labels, delta) = pool.scoped_metrics(|| components_union_find(&g, &pool));
        assert!(labels.is_empty());
        assert_eq!(delta.forks(), 0);
        assert_eq!(union_find_forks(&pool, 0, 2), 0);
    }

    #[test]
    fn degenerate_configs_stay_correct() {
        let g = gen::gnm(96, 300, 11);
        let expected = components_seq(&g);
        let pool = PalPool::new(4).unwrap();
        for config in [
            UnionFindConfig {
                sample_edges: 0,
                sample_vertices: 1024,
            },
            UnionFindConfig {
                sample_edges: 7,
                sample_vertices: 1,
            },
            UnionFindConfig {
                sample_edges: 1,
                sample_vertices: usize::MAX,
            },
        ] {
            assert_eq!(
                components_union_find_with(&g, &pool, &config),
                expected,
                "diverged under {config:?}"
            );
        }
    }
}
