//! Compressed-sparse-row graph storage.
//!
//! All kernels in this crate operate on an undirected [`CsrGraph`]: an
//! offsets array and a flat, per-vertex-sorted target array — the layout
//! GBBS-style frameworks use so that "the neighbours of `v`" is a slice and
//! frontier expansion is a [`scan`](lopram_core::PalPool::scan) over
//! degrees.

/// An undirected graph in compressed-sparse-row form.
///
/// Every undirected edge `{u, v}` is stored as the two arcs `u → v` and
/// `v → u`; self-loops are dropped and duplicate edges collapsed at
/// construction.  Each vertex's neighbour slice is sorted ascending, which
/// the triangle kernel relies on for merge-style intersections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` with `v`'s
    /// neighbours; `offsets.len() == vertices + 1`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    targets: Vec<usize>,
}

impl CsrGraph {
    /// Build a graph on `vertices` vertices from an undirected edge list.
    ///
    /// Self-loops are dropped, duplicate edges (in either orientation)
    /// collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= vertices`.
    pub fn from_undirected_edges(vertices: usize, edges: &[(usize, usize)]) -> Self {
        let mut arcs = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(
                u < vertices && v < vertices,
                "edge ({u}, {v}) out of range for {vertices} vertices"
            );
            if u != v {
                arcs.push((u, v));
                arcs.push((v, u));
            }
        }
        arcs.sort_unstable();
        arcs.dedup();

        let mut offsets = vec![0usize; vertices + 1];
        for &(u, _) in &arcs {
            offsets[u + 1] += 1;
        }
        for v in 0..vertices {
            offsets[v + 1] += offsets[v];
        }
        let targets = arcs.into_iter().map(|(_, v)| v).collect();
        CsrGraph { offsets, targets }
    }

    /// Build a graph from an edge *stream* visited twice, without ever
    /// materializing the edge list or the doubled arc list.
    ///
    /// `passes` must return an iterator over the same edge sequence on
    /// every call (a seeded generator re-run, a file re-read).  The
    /// builder counting-sorts the arcs in two passes — degree count, then
    /// scatter through a cursor array — so peak extra memory is `O(n)`
    /// beyond the final CSR arrays, versus the `O(m)` edge list plus
    /// `O(2m)` sort buffer of [`from_undirected_edges`](Self::from_undirected_edges).  That is what
    /// lets the partition benches reach ~10⁶ edges without blowing up the
    /// arena-resident working set.
    ///
    /// Output is *identical* to `from_undirected_edges` on the collected
    /// stream: self-loops dropped, duplicates collapsed, per-vertex
    /// adjacency sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= vertices`.
    pub fn from_undirected_edges_streamed<I>(vertices: usize, passes: impl Fn() -> I) -> Self
    where
        I: Iterator<Item = (usize, usize)>,
    {
        // Pass 1: per-vertex arc counts (each kept edge contributes one
        // arc to each endpoint).
        let mut offsets = vec![0usize; vertices + 1];
        for (u, v) in passes() {
            assert!(
                u < vertices && v < vertices,
                "edge ({u}, {v}) out of range for {vertices} vertices"
            );
            if u != v {
                offsets[u + 1] += 1;
                offsets[v + 1] += 1;
            }
        }
        for v in 0..vertices {
            offsets[v + 1] += offsets[v];
        }

        // Pass 2: scatter arcs into place through a cursor array.
        let mut cursor = offsets[..vertices].to_vec();
        let mut targets = vec![0usize; offsets[vertices]];
        for (u, v) in passes() {
            if u != v {
                targets[cursor[u]] = v;
                cursor[u] += 1;
                targets[cursor[v]] = u;
                cursor[v] += 1;
            }
        }

        // Sort + dedup each adjacency list in place, compacting with a
        // write pointer and rebuilding offsets as we go.
        let mut write = 0usize;
        let mut start = 0usize;
        for v in 0..vertices {
            let end = offsets[v + 1];
            let list = &mut targets[start..end];
            list.sort_unstable();
            let from = start;
            start = end;
            offsets[v] = write;
            let mut prev = usize::MAX;
            for i in from..end {
                let t = targets[i];
                if t != prev {
                    targets[write] = t;
                    write += 1;
                    prev = t;
                }
            }
        }
        offsets[vertices] = write;
        targets.truncate(write);
        CsrGraph { offsets, targets }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (twice the number of undirected edges).
    pub fn arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    pub fn edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbours of `v`, sorted ascending.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Largest degree in the graph (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_deduped_adjacency() {
        // Duplicates in both orientations and a self-loop.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 1)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert_eq!(g.neighbors(2), &[] as &[usize]);
        assert_eq!(g.neighbors(3), &[1]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = CsrGraph::from_undirected_edges(0, &[]);
        assert_eq!(empty.vertices(), 0);
        assert_eq!(empty.arcs(), 0);
        assert_eq!(empty.max_degree(), 0);

        let edgeless = CsrGraph::from_undirected_edges(5, &[]);
        assert_eq!(edgeless.vertices(), 5);
        assert_eq!(edgeless.edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoints() {
        CsrGraph::from_undirected_edges(3, &[(0, 3)]);
    }

    #[test]
    fn streamed_build_equals_materialized_build() {
        let edges = [(0, 1), (1, 0), (0, 1), (2, 2), (3, 1), (4, 0), (3, 4)];
        let streamed = CsrGraph::from_undirected_edges_streamed(5, || edges.iter().copied());
        assert_eq!(streamed, CsrGraph::from_undirected_edges(5, &edges));

        // Degenerate shapes.
        let empty = CsrGraph::from_undirected_edges_streamed(0, std::iter::empty);
        assert_eq!(empty, CsrGraph::from_undirected_edges(0, &[]));
        let loops = CsrGraph::from_undirected_edges_streamed(3, || [(1, 1), (2, 2)].into_iter());
        assert_eq!(loops, CsrGraph::from_undirected_edges(3, &[(1, 1), (2, 2)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn streamed_build_rejects_out_of_range_endpoints() {
        CsrGraph::from_undirected_edges_streamed(3, || std::iter::once((0, 3)));
    }
}
