//! Cache-sized subgraph partitions: the plan half of the partition-and-
//! fuse execution engine.
//!
//! A [`PartitionPlan`] cuts a [`CsrGraph`] into `parts` **contiguous
//! vertex ranges** along a degree-balanced prefix-sum: vertex `v` weighs
//! `degree(v) + 1` (its adjacency slice plus its own label word — the
//! bytes a local kernel actually touches), the weights are prefix-summed
//! with [`PalPool::scan_copy_in`], and cut `k` lands where the running
//! weight crosses `k/parts` of the total.  Choosing `parts` so that
//! `(arcs + vertices) / parts` words fit in a private cache gives each
//! partition a working set that stays resident for the whole local phase
//! — the fusion-blossom / GBBS recipe of solving per region first.
//!
//! Alongside the ranges the plan materializes each partition's **cut-arc
//! set**: every arc `v → u` whose endpoints live in different partitions,
//! grouped by the partition owning `v` (vertex ranges are contiguous, so
//! grouping by source vertex *is* grouping by source partition).  Local
//! kernels skip exactly these arcs — zero cross-partition traffic — and
//! the fusion tree of [`fuse`](crate::fuse) replays them where the two
//! sides first share an ancestor.  Because the stored graph is
//! undirected (every edge is two arcs), the cut-arc relation is
//! symmetric: `(v, u)` is in `v`'s partition's set iff `(u, v)` is in
//! `u`'s.
//!
//! Every buffer the plan owns — cuts, cut-arc offsets, the cut arcs
//! themselves — is checked out of the pool's
//! [`Workspace`](lopram_core::Workspace) arena, so replanning on the same
//! pool (the steady state of the partition benches) allocates nothing.
//!
//! # Fork accounting
//!
//! Planning runs five blocked passes over the `n = vertices` range —
//! weights ([`map_collect_in`](PalPool::map_collect_in), `C − 1` forks),
//! weight scan ([`scan_copy_in`](PalPool::scan_copy_in), `2(C − 1)`),
//! cut degrees (`C − 1`), cut-degree scan (`2(C − 1)`) and cut-arc
//! expansion ([`expand_in`](PalPool::expand_in), `2(C − 1)`) — for an
//! exact, schedule-independent total of `8 · (C − 1)` forks,
//! `C = pool.chunk_count(vertices)`; see [`plan_forks`].  The cut search
//! itself is a `parts + 1`-iteration binary-search loop, fork-free.

use lopram_core::{MetricsSnapshot, PalPool, WorkspaceGuard};

use crate::csr::CsrGraph;

/// A degree-balanced split of a graph into contiguous vertex ranges plus
/// the cut arcs crossing between them.  See the [module docs](self).
pub struct PartitionPlan<'p> {
    parts: usize,
    vertices: usize,
    arcs: usize,
    /// `cuts[k]..cuts[k + 1]` is partition `k`'s vertex range;
    /// `cuts.len() == parts + 1`, `cuts[0] == 0`, `cuts[parts] == n`.
    cuts: WorkspaceGuard<'p, usize>,
    /// `cut_arcs[cut_offsets[k]..cut_offsets[k + 1]]` are partition `k`'s
    /// outgoing cut arcs, ordered by source vertex.
    cut_offsets: WorkspaceGuard<'p, usize>,
    /// All cut arcs `(v, u)` with `owner(v) != owner(u)`, grouped by
    /// `owner(v)`.
    cut_arcs: WorkspaceGuard<'p, (usize, usize)>,
}

impl<'p> PartitionPlan<'p> {
    /// Plan a `parts`-way split of `graph` on `pool`.
    ///
    /// Empty partitions are legal (a graph with fewer heavy vertices than
    /// `parts` may leave trailing ranges empty); every vertex lands in
    /// exactly one partition regardless.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn new(graph: &CsrGraph, pool: &'p PalPool, parts: usize) -> Self {
        assert!(parts > 0, "a partition plan needs at least one partition");
        let n = graph.vertices();
        let ws = pool.workspace();

        // Pass 1 + 2: degree-plus-one weights, prefix-summed.
        let mut weights = ws.checkout::<usize>();
        pool.map_collect_in(0..n, |v| graph.degree(v) + 1, &mut weights);
        let mut prefix = ws.checkout::<usize>();
        let total = pool.scan_copy_in(&weights, 0usize, |a, b| a + b, &mut prefix);

        // Cut search: cut k is the first vertex whose exclusive prefix
        // weight reaches k/parts of the total (monotone in k, so the
        // ranges tile 0..n).
        let mut cuts = ws.checkout::<usize>();
        for k in 0..=parts {
            let target = (total / parts) * k + (total % parts) * k / parts;
            cuts.push(prefix.partition_point(|&w| w < target));
        }
        cuts[parts] = n;

        // Pass 3 + 4: per-vertex cut degrees (how many of v's arcs leave
        // v's partition), prefix-summed into per-partition offsets.
        // Neighbour lists are sorted, so the out-of-range neighbours are
        // the two tails around `[lo, hi)` — two binary searches per
        // vertex, no arc scan.
        let cuts_ref: &[usize] = &cuts;
        pool.map_collect_in(
            0..n,
            |v| {
                let (lo, hi) = owner_range(cuts_ref, v);
                let nb = graph.neighbors(v);
                let a = nb.partition_point(|&u| u < lo);
                let b = nb.partition_point(|&u| u < hi);
                a + (nb.len() - b)
            },
            &mut weights,
        );
        let cut_total = pool.scan_copy_in(&weights, 0usize, |a, b| a + b, &mut prefix);
        let mut cut_offsets = ws.checkout::<usize>();
        for k in 0..=parts {
            let v = cuts[k];
            cut_offsets.push(if v < n { prefix[v] } else { cut_total });
        }

        // Pass 5: expand every vertex's cut arcs into its slot.
        let mut cut_arcs = ws.checkout::<(usize, usize)>();
        pool.expand_in(
            &weights,
            (0usize, 0usize),
            |v, slot| {
                let (lo, hi) = owner_range(cuts_ref, v);
                let nb = graph.neighbors(v);
                let a = nb.partition_point(|&u| u < lo);
                let b = nb.partition_point(|&u| u < hi);
                for (s, &u) in slot.iter_mut().zip(nb[..a].iter().chain(&nb[b..])) {
                    *s = (v, u);
                }
            },
            &mut cut_arcs,
        );

        PartitionPlan {
            parts,
            vertices: n,
            arcs: graph.arcs(),
            cuts,
            cut_offsets,
            cut_arcs,
        }
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of vertices in the planned graph.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The cut array: `cuts()[k]..cuts()[k + 1]` is partition `k`'s
    /// vertex range (`parts + 1` entries, first `0`, last `vertices`).
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Partition `k`'s vertex range.
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.cuts[k]..self.cuts[k + 1]
    }

    /// The partition owning vertex `v`.  With empty partitions the owner
    /// is the *last* partition whose range starts at or before `v` — the
    /// unique one whose half-open range contains it.
    pub fn owner(&self, v: usize) -> usize {
        debug_assert!(v < self.vertices);
        self.cuts.partition_point(|&c| c <= v) - 1
    }

    /// Partition `k`'s outgoing cut arcs `(v, u)` (`v` owned by `k`, `u`
    /// owned elsewhere), ordered by source vertex.
    pub fn cut_arcs(&self, k: usize) -> &[(usize, usize)] {
        &self.cut_arcs[self.cut_offsets[k]..self.cut_offsets[k + 1]]
    }

    /// Every cut arc of the plan, grouped by source partition.
    pub fn cut_arcs_all(&self) -> &[(usize, usize)] {
        &self.cut_arcs
    }

    /// Fraction of stored arcs that cross a partition boundary, in
    /// `[0, 1]` (`0.0` for an arcless graph or `parts == 1`).  The E17
    /// locality headline: the local phase touches `1 − boundary_fraction`
    /// of the arcs with zero cross-partition traffic.
    pub fn boundary_fraction(&self) -> f64 {
        if self.arcs == 0 {
            0.0
        } else {
            self.cut_arcs.len() as f64 / self.arcs as f64
        }
    }
}

/// The half-open vertex range of the partition owning `v`, given the cut
/// array (free function so the planning closures can use it before the
/// plan exists).
fn owner_range(cuts: &[usize], v: usize) -> (usize, usize) {
    let k = cuts.partition_point(|&c| c <= v) - 1;
    (cuts[k], cuts[k + 1])
}

/// Exact fork count of [`PartitionPlan::new`] on `pool` for a graph with
/// `vertices` vertices: five blocked passes, `8 · (chunk_count − 1)`
/// forks, schedule-independent (see the [module docs](self)).
pub fn plan_forks(pool: &PalPool, vertices: usize) -> u64 {
    if vertices == 0 {
        return 0;
    }
    8 * (pool.chunk_count(vertices) as u64 - 1)
}

/// Per-phase metrics of a partitioned kernel run, attributed with
/// [`PalPool::scoped_metrics`]: the partition pass and the solve
/// (local kernels + fusion tree) separately.
#[derive(Debug, Clone, Copy)]
pub struct PartitionPhases {
    /// Metrics delta of [`PartitionPlan::new`].
    pub plan: MetricsSnapshot,
    /// Metrics delta of the local-kernel + fusion-tree phase.
    pub solve: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn check_invariants(g: &CsrGraph, plan: &PartitionPlan<'_>) {
        let n = g.vertices();
        let parts = plan.parts();
        // Ranges tile 0..n: every vertex in exactly one partition.
        assert_eq!(plan.cuts()[0], 0);
        assert_eq!(plan.cuts()[parts], n);
        assert!(plan.cuts().windows(2).all(|w| w[0] <= w[1]));
        for v in 0..n {
            let k = plan.owner(v);
            assert!(plan.range(k).contains(&v), "owner range must contain v");
        }
        // Cut-arc sets: complete (every crossing arc present exactly
        // once, in its source's group) and symmetric.
        let mut expected: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            for &u in g.neighbors(v) {
                if plan.owner(v) != plan.owner(u) {
                    expected.push((v, u));
                }
            }
        }
        let mut all: Vec<(usize, usize)> = plan.cut_arcs_all().to_vec();
        for k in 0..parts {
            for &(v, _) in plan.cut_arcs(k) {
                assert_eq!(plan.owner(v), k, "cut arc grouped under wrong partition");
            }
        }
        all.sort_unstable();
        expected.sort_unstable();
        assert_eq!(
            all, expected,
            "cut-arc set must be exactly the crossing arcs"
        );
        for &(v, u) in plan.cut_arcs_all() {
            assert!(
                plan.cut_arcs(plan.owner(u)).contains(&(u, v)),
                "cut arcs must be symmetric: ({v}, {u}) without ({u}, {v})"
            );
        }
    }

    #[test]
    fn plan_invariants_across_shapes_and_parts() {
        let pool = PalPool::new(2).unwrap();
        let shapes = [
            gen::gnm(120, 400, 9),
            gen::grid(8, 11),
            gen::star(90),
            gen::path(77),
            gen::binary_tree(63),
            CsrGraph::from_undirected_edges(10, &[]),
            CsrGraph::from_undirected_edges(0, &[]),
        ];
        for g in &shapes {
            for parts in [1, 2, 3, 4, 7] {
                let plan = PartitionPlan::new(g, &pool, parts);
                assert_eq!(plan.parts(), parts);
                check_invariants(g, &plan);
                if parts == 1 {
                    assert!(plan.cut_arcs_all().is_empty());
                    assert_eq!(plan.boundary_fraction(), 0.0);
                }
            }
        }
    }

    #[test]
    fn cuts_balance_degree_weight() {
        // On a path every vertex weighs ~3; a 4-way cut must quarter it.
        let g = gen::path(400);
        let pool = PalPool::new(1).unwrap();
        let plan = PartitionPlan::new(&g, &pool, 4);
        for k in 0..4 {
            let r = plan.range(k);
            let weight: usize = r.map(|v| g.degree(v) + 1).sum();
            assert!(
                (weight as i64 - 300).abs() <= 6,
                "partition {k} weight {weight} far from the 300 target"
            );
        }
    }

    #[test]
    fn plan_fork_count_is_exact() {
        let g = gen::gnm(3000, 9000, 3);
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            let ((), delta) = pool.scoped_metrics(|| {
                let _plan = PartitionPlan::new(&g, &pool, 4);
            });
            assert_eq!(
                delta.forks(),
                plan_forks(&pool, g.vertices()),
                "plan forks diverged at p = {p}"
            );
        }
    }

    #[test]
    fn replanning_is_allocation_free() {
        let g = gen::gnm(500, 2000, 1);
        let pool = PalPool::new(2).unwrap();
        // Warm the arena: same-typed shelf buffers shuffle between roles
        // across calls (LIFO), so capacities converge after a few calls.
        for _ in 0..3 {
            drop(PartitionPlan::new(&g, &pool, 4));
        }
        let before = pool.metrics().snapshot();
        drop(PartitionPlan::new(&g, &pool, 4));
        let delta = pool.metrics().snapshot().delta_since(&before);
        assert_eq!(delta.arena_bytes, 0, "replanning must not grow the arena");
    }
}
