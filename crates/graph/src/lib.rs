//! # lopram-graph
//!
//! Irregular graph workloads for the LoPRAM reproduction.
//!
//! The paper's thesis is that `p = O(log n)` pal-threads suffice for
//! optimal speedup on divide-and-conquer and dynamic-programming
//! workloads.  This crate stresses the runtime with the *irregular* third
//! family: graph algorithms, which — as Dhulipala, Blelloch and Shun's
//! GBBS and Tithi et al.'s level-synchronous BFS demonstrate — reduce to
//! exactly two data-parallel primitives, **scan** (prefix sum) and
//! **pack** (filter/compaction).  Those primitives live in `lopram-core`
//! ([`PalPool::scan`](lopram_core::PalPool::scan),
//! [`PalPool::pack`](lopram_core::PalPool::pack)) and are built on
//! `PalPool::join`, so every kernel here inherits the `⌈α·log₂ p⌉`
//! sequential cutoff of §3.1/Figure 2 and full `RunMetrics` fork
//! accounting.
//!
//! Contents:
//!
//! * [`csr`] — undirected compressed-sparse-row graphs;
//! * [`gen`] — deterministic generators: seeded `G(n, m)`, grid, star,
//!   path, complete binary tree;
//! * [`bfs`] — level-synchronous frontier BFS ([`bfs::bfs_par`]) and its
//!   sequential twin ([`bfs::bfs_seq`]);
//! * [`cc`] — connected components by parallel label propagation
//!   ([`cc::components_label_prop`]) and tree hooking
//!   ([`cc::components_hook`]), twin [`cc::components_seq`];
//! * [`uf`] — work-efficient connected components by sampled concurrent
//!   union-find ([`uf::components_union_find`]): CAS hooking, path
//!   splitting, Afforest-style edge sampling — constant blocked passes
//!   where the [`cc`] kernels pay O(diameter) rounds;
//! * [`kernels`] — degree histogram (via
//!   [`reduce_by_index`](lopram_core::PalPool::reduce_by_index)) and
//!   ordered triangle count, with twins;
//! * [`partition`] / [`fuse`] — the **partition-and-fuse execution
//!   engine**: degree-balanced contiguous vertex partitions with explicit
//!   cut-arc sets ([`partition::PartitionPlan`]), and a balanced binary
//!   fusion tree ([`fuse::fuse`]) that runs kernels locally per partition
//!   and merges boundary state pairwise — used by
//!   [`bfs::bfs_partitioned`] and [`cc::components_partitioned`].
//!
//! Every parallel kernel has a sequential twin producing bit-identical
//! output for any processor count; `tests/differential.rs` checks that
//! property over random graphs at `p ∈ {1, 2, 4}`, and the
//! `table_graph_speedup` experiment in `lopram-bench` measures the
//! speedups.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bfs;
pub mod cc;
pub mod csr;
pub mod fuse;
pub mod gen;
pub mod kernels;
pub mod partition;
pub mod uf;

pub use csr::CsrGraph;

/// Convenience prelude re-exporting the items most users need.
pub mod prelude {
    pub use crate::bfs::{bfs_cancellable, bfs_par, bfs_partitioned, bfs_seq, levels, UNREACHED};
    pub use crate::cc::{
        component_count, components_cancellable, components_hook, components_label_prop,
        components_partitioned, components_seq,
    };
    pub use crate::csr::CsrGraph;
    pub use crate::fuse::{fuse, FusionNode};
    pub use crate::gen::{binary_tree, gnm, gnm_streamed, grid, path, path_permuted, star};
    pub use crate::kernels::{
        degree_histogram, degree_histogram_seq, triangle_count, triangle_count_seq,
    };
    pub use crate::partition::{plan_forks, PartitionPhases, PartitionPlan};
    pub use crate::uf::{
        components_union_find, components_union_find_cancellable, components_union_find_metered,
        components_union_find_with, union_find_forks, UnionFindConfig, UnionFindPhases,
    };
}
