//! Breadth-first search: level-synchronous frontier BFS on the pal-thread
//! runtime, with a sequential twin.
//!
//! The parallel algorithm is the classic scan/pack formulation (Blelloch;
//! Tithi et al.'s level-synchronous BFS with optimal prefix-sum; GBBS's
//! `edgeMap`): per level, the frontier's degrees are prefix-summed with
//! [`PalPool::scan`] (inside [`PalPool::expand`]) to give every frontier
//! vertex its own region of the candidate buffer, candidates are claimed
//! with a compare-and-swap on the distance array, and the claimed
//! candidates are compacted into the next frontier with
//! [`PalPool::pack`].  All parallelism flows through `PalPool::join`, so
//! the kernel inherits the `⌈α·log₂ p⌉` sequential cutoff and full
//! `RunMetrics` fork accounting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use lopram_core::PalPool;

use crate::csr::CsrGraph;

/// Distance label of a vertex no BFS level reached.
pub const UNREACHED: usize = usize::MAX;

/// Sequential BFS distances from `src` (`UNREACHED` for vertices in other
/// components) — the differential twin of [`bfs_par`].
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph`.
pub fn bfs_seq(graph: &CsrGraph, src: usize) -> Vec<usize> {
    assert!(src < graph.vertices(), "source {src} out of range");
    let mut dist = vec![UNREACHED; graph.vertices()];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if dist[v] == UNREACHED {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Level-synchronous parallel BFS distances from `src`; identical output to
/// [`bfs_seq`] for every processor count.
///
/// Per level: one [`map_collect`](PalPool::map_collect) (frontier degrees),
/// one [`expand`](PalPool::expand) (scan the degrees, then gather-and-claim
/// neighbour candidates — duplicates are resolved by a compare-and-swap on
/// the distance array, so each vertex enters exactly one frontier), one
/// [`pack`](PalPool::pack) (compact the claimed candidates).  The set of
/// vertices per level is deterministic — distances are the level number —
/// even though which parent claims a shared candidate is not.
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph`.
pub fn bfs_par(graph: &CsrGraph, pool: &PalPool, src: usize) -> Vec<usize> {
    assert!(src < graph.vertices(), "source {src} out of range");
    let dist: Vec<AtomicUsize> = (0..graph.vertices())
        .map(|_| AtomicUsize::new(UNREACHED))
        .collect();
    dist[src].store(0, Ordering::Relaxed);

    let mut frontier = vec![src];
    let mut level = 0usize;
    while !frontier.is_empty() {
        level += 1;
        let frontier_ref = &frontier;
        let degrees = pool.map_collect(0..frontier.len(), |i| graph.degree(frontier_ref[i]));
        let candidates = pool.expand(&degrees, UNREACHED, |i, region| {
            for (slot, &v) in region.iter_mut().zip(graph.neighbors(frontier_ref[i])) {
                let claimed = dist[v]
                    .compare_exchange(UNREACHED, level, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok();
                *slot = if claimed { v } else { UNREACHED };
            }
        });
        frontier = pool.pack(&candidates, |_, &v| v != UNREACHED);
    }
    dist.into_iter().map(AtomicUsize::into_inner).collect()
}

/// Eccentricity of `src` (the number of BFS levels): the largest finite
/// distance in `distances`, or 0 when only `src` is reachable.
pub fn levels(distances: &[usize]) -> usize {
    distances
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn grid_distances_are_manhattan() {
        let g = gen::grid(5, 7);
        let d = bfs_seq(&g, 0);
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(d[r * 7 + c], r + c);
            }
        }
        assert_eq!(levels(&d), 5 + 7 - 2);
    }

    #[test]
    fn parallel_matches_sequential_on_every_shape() {
        let shapes = [
            gen::gnm(300, 900, 11),
            gen::grid(12, 25),
            gen::star(257),
            gen::path(301),
            gen::binary_tree(511),
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                assert_eq!(
                    bfs_par(g, &pool, 0),
                    bfs_seq(g, 0),
                    "shape {k} diverged at p = {p}"
                );
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (3, 4)]);
        let pool = PalPool::new(2).unwrap();
        let d = bfs_par(&g, &pool, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_undirected_edges(1, &[]);
        let pool = PalPool::new(2).unwrap();
        assert_eq!(bfs_par(&g, &pool, 0), vec![0]);
        assert_eq!(levels(&[0]), 0);
    }
}
