//! Breadth-first search: level-synchronous frontier BFS on the pal-thread
//! runtime, with a sequential twin.
//!
//! The parallel algorithm is the classic scan/pack formulation (Blelloch;
//! Tithi et al.'s level-synchronous BFS with optimal prefix-sum; GBBS's
//! `edgeMap`): per level, the frontier's degrees are block-summed inside
//! [`PalPool::expand_in`] to give every frontier vertex its own region of
//! the candidate buffer, candidates are claimed with a compare-and-swap
//! on the distance array, and the claimed candidates are compacted into
//! the next frontier with [`PalPool::pack_in`].  All parallelism flows
//! through `PalPool::join`, so the kernel inherits the `⌈α·log₂ p⌉`
//! sequential cutoff and full `RunMetrics` fork accounting.
//!
//! Every per-level buffer — frontier, degrees, candidates, and the
//! distance array itself — is checked out of the pool's
//! [`Workspace`](lopram_core::Workspace) arena and reused across levels
//! (and across BFS calls on the same pool), so a steady-state BFS level
//! performs **zero allocations**: the GBBS recipe of reusing scratch
//! rather than re-materializing it, which is where the ≥2× per-level
//! allocation reduction recorded in `BENCH_primitive_overhead.json` comes
//! from.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use lopram_core::runtime::cancel;
use lopram_core::{run_cancellable, CancelReason, CancelToken, PalPool};

use crate::csr::CsrGraph;
use crate::fuse::{fuse, FusionNode};
use crate::partition::{PartitionPhases, PartitionPlan};

/// Distance label of a vertex no BFS level reached.
pub const UNREACHED: usize = usize::MAX;

/// Sequential BFS distances from `src` (`UNREACHED` for vertices in other
/// components) — the differential twin of [`bfs_par`].
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph`.
pub fn bfs_seq(graph: &CsrGraph, src: usize) -> Vec<usize> {
    assert!(src < graph.vertices(), "source {src} out of range");
    let mut dist = vec![UNREACHED; graph.vertices()];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if dist[v] == UNREACHED {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Level-synchronous parallel BFS distances from `src`; identical output to
/// [`bfs_seq`] for every processor count.
///
/// Per level: one [`map_collect_in`](PalPool::map_collect_in) (frontier
/// degrees), one [`expand_in`](PalPool::expand_in) (block-sum the degrees,
/// then gather-and-claim neighbour candidates — duplicates are resolved by
/// a compare-and-swap on the distance array, so each vertex enters exactly
/// one frontier), one [`pack_in`](PalPool::pack_in) (compact the claimed
/// candidates).  The set of vertices per level is deterministic —
/// distances are the level number — even though which parent claims a
/// shared candidate is not.
///
/// All level buffers come from [`PalPool::workspace`] and are reused
/// across levels and calls: after the first level warms the arena, a
/// level allocates nothing (see the module docs).
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph`.
pub fn bfs_par(graph: &CsrGraph, pool: &PalPool, src: usize) -> Vec<usize> {
    assert!(src < graph.vertices(), "source {src} out of range");
    let ws = pool.workspace();
    let mut dist = ws.checkout::<AtomicUsize>();
    dist.resize_with(graph.vertices(), || AtomicUsize::new(UNREACHED));
    dist[src].store(0, Ordering::Relaxed);

    let mut frontier = ws.checkout::<usize>();
    let mut next = ws.checkout::<usize>();
    let mut degrees = ws.checkout::<usize>();
    let mut candidates = ws.checkout::<usize>();
    frontier.push(src);
    let mut level = 0usize;
    while !frontier.is_empty() {
        // Level boundary: the natural sequential point of the kernel.
        // Inside a cancellable region ([`bfs_cancellable`]) a fired token
        // stops the search here at the latest — the primitives below
        // checkpoint at their own fork and chunk boundaries too.
        cancel::checkpoint();
        level += 1;
        let frontier_ref: &[usize] = &frontier;
        let dist_ref: &[AtomicUsize] = &dist;
        pool.map_collect_in(
            0..frontier_ref.len(),
            |i| graph.degree(frontier_ref[i]),
            &mut degrees,
        );
        pool.expand_in(
            &degrees,
            UNREACHED,
            |i, region| {
                for (slot, &v) in region.iter_mut().zip(graph.neighbors(frontier_ref[i])) {
                    let claimed = dist_ref[v]
                        .compare_exchange(UNREACHED, level, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok();
                    *slot = if claimed { v } else { UNREACHED };
                }
            },
            &mut candidates,
        );
        pool.pack_in(&candidates, |_, &v| v != UNREACHED, &mut next);
        // Swap the guards themselves (not their contents) so each buffer
        // stays attributed to its own checkout in the arena accounting.
        std::mem::swap(&mut frontier, &mut next);
    }
    dist.iter().map(|d| d.load(Ordering::Relaxed)).collect()
}

/// Cancellable entry point for [`bfs_par`]: runs the search under
/// `token` and reports how it ended.
///
/// `Ok(distances)` when the search completes; `Err(reason)` when the
/// token fires first — [`CancelReason::Cancelled`] on an explicit
/// [`CancelToken::cancel`], [`CancelReason::DeadlineExceeded`] on a blown
/// deadline.  Cancellation is cooperative and prompt: the kernel
/// checkpoints at every level boundary and (through the primitives) at
/// every fork and chunk boundary, so a fired token unwinds in O(grain)
/// work.  The unwind releases every arena buffer the search had checked
/// out — the pool stays warm and fully reusable, which is what the
/// `lopram-serve` job service relies on when a client abandons a graph
/// job mid-flight.
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph`.
pub fn bfs_cancellable(
    graph: &CsrGraph,
    pool: &PalPool,
    src: usize,
    token: &CancelToken,
) -> Result<Vec<usize>, CancelReason> {
    run_cancellable(token, || bfs_par(graph, pool, src))
}

/// Per-partition level state of the partitioned BFS: the current and the
/// upcoming frontier, both arena-backed (capacities recorded at take so
/// check-in can account growth).
struct BfsPart {
    frontier: Vec<usize>,
    frontier_cap: usize,
    next: Vec<usize>,
    next_cap: usize,
}

/// Partitioned level-synchronous BFS: plans a `parts`-way
/// [`PartitionPlan`] and runs [`bfs_partitioned_with`] on it.  Output is
/// identical to [`bfs_seq`] (and hence [`bfs_par`]) for every processor
/// and partition count.
///
/// Exact fork cost, schedule-independent:
/// [`plan_forks`](crate::partition::plan_forks) for the plan plus
/// `(levels + 1) · (parts − 1)` for the solve — one
/// [`fuse`] tree per frontier round, where `levels` is
/// [`levels`]`(&dist)` (the source's eccentricity).
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph` or `parts == 0`.
pub fn bfs_partitioned(graph: &CsrGraph, pool: &PalPool, src: usize, parts: usize) -> Vec<usize> {
    let plan = PartitionPlan::new(graph, pool, parts);
    bfs_partitioned_with(graph, pool, &plan, src)
}

/// [`bfs_partitioned`] on a pre-built plan (amortize one plan over many
/// sources).
///
/// Per frontier round, one fusion tree (`parts − 1` forks, no blocked
/// passes):
///
/// * **leaf** — partition `k` drains its frontier with *plain* reads and
///   writes on its exclusive distance slice (the fusion tree's ownership
///   discipline replaces [`bfs_par`]'s compare-and-swap): an unreached
///   local neighbour is claimed into `next`; a neighbour across a cut
///   arc goes to an arena-backed outbox.
/// * **merge** — frontier handoff across cut edges: each side's outbox
///   entries owned by the other side are claimed there (first claim
///   wins, later duplicates see the written level) and pushed onto the
///   owner partition's `next`; entries leaving the subtree stay in the
///   surviving outbox.  The root's outbox is structurally empty.
///
/// Claims happen exactly once per vertex at its BFS level, so the result
/// is deterministic — identical to [`bfs_seq`] — and the steady-state
/// round allocates nothing: distances, frontiers and outboxes all come
/// from the pool's [`Workspace`](lopram_core::Workspace) arena.
///
/// # Panics
///
/// Panics if `src` is not a vertex of `graph` or the plan's vertex count
/// disagrees with the graph's.
pub fn bfs_partitioned_with(
    graph: &CsrGraph,
    pool: &PalPool,
    plan: &PartitionPlan<'_>,
    src: usize,
) -> Vec<usize> {
    let n = graph.vertices();
    assert!(src < n, "source {src} out of range");
    assert_eq!(plan.vertices(), n, "plan was built for a different graph");
    let ws = pool.workspace();
    let cuts = plan.cuts();
    let parts = plan.parts();

    let mut dist = ws.checkout::<usize>();
    dist.resize(n, UNREACHED);
    dist[src] = 0;

    let mut state: Vec<BfsPart> = (0..parts)
        .map(|_| {
            let frontier = ws.take_buffer::<usize>();
            let frontier_cap = frontier.capacity();
            let next = ws.take_buffer::<usize>();
            let next_cap = next.capacity();
            BfsPart {
                frontier,
                frontier_cap,
                next,
                next_cap,
            }
        })
        .collect();
    state[plan.owner(src)].frontier.push(src);

    let mut level = 0usize;
    while state.iter().any(|s| !s.frontier.is_empty()) {
        level += 1;
        let escaped = fuse(
            pool,
            cuts,
            &mut dist,
            &mut state,
            &|node: FusionNode<'_, usize, BfsPart>| {
                let FusionNode {
                    vertices,
                    data,
                    state,
                    ..
                } = node;
                let BfsPart { frontier, next, .. } = &mut state[0];
                let mut out = ws.checkout::<usize>();
                for &v in frontier.iter() {
                    for &u in graph.neighbors(v) {
                        if vertices.contains(&u) {
                            let d = &mut data[u - vertices.start];
                            if *d == UNREACHED {
                                *d = level;
                                next.push(u);
                            }
                        } else {
                            out.push(u);
                        }
                    }
                }
                out
            },
            &|node, mut out, other| {
                let FusionNode {
                    parts,
                    vertices,
                    data,
                    state,
                } = node;
                // A child's outbox never names vertices of that child's
                // own subtree, so anything inside this node's range came
                // from the opposite side: claim it here, at the lowest
                // common ancestor of the cut edge.
                let mut claim = |u: usize, state: &mut [BfsPart]| {
                    let d = &mut data[u - vertices.start];
                    if *d == UNREACHED {
                        *d = level;
                        let k = cuts.partition_point(|&c| c <= u) - 1;
                        state[k - parts.start].next.push(u);
                    }
                };
                let mut kept = 0;
                for i in 0..out.len() {
                    let u = out[i];
                    if vertices.contains(&u) {
                        claim(u, state);
                    } else {
                        out[kept] = u;
                        kept += 1;
                    }
                }
                out.truncate(kept);
                for &u in other.iter() {
                    if vertices.contains(&u) {
                        claim(u, state);
                    } else {
                        out.push(u);
                    }
                }
                // `other` drops here and returns to the arena.
                out
            },
        );
        debug_assert!(escaped.is_empty(), "the root outbox owns every vertex");
        drop(escaped);
        for s in &mut state {
            s.frontier.clear();
            std::mem::swap(&mut s.frontier, &mut s.next);
            std::mem::swap(&mut s.frontier_cap, &mut s.next_cap);
        }
    }

    let result = dist.as_slice().to_vec();
    for s in state {
        ws.put_buffer(s.frontier, s.frontier_cap);
        ws.put_buffer(s.next, s.next_cap);
    }
    result
}

/// [`bfs_partitioned`] with per-phase metrics attribution via
/// [`PalPool::scoped_metrics`]: returns the distances plus the plan and
/// solve deltas separately (single-client window — see
/// [`scoped_metrics`](PalPool::scoped_metrics)).
pub fn bfs_partitioned_metered(
    graph: &CsrGraph,
    pool: &PalPool,
    src: usize,
    parts: usize,
) -> (Vec<usize>, PartitionPhases) {
    let (plan, plan_delta) = pool.scoped_metrics(|| PartitionPlan::new(graph, pool, parts));
    let (dist, solve_delta) = pool.scoped_metrics(|| bfs_partitioned_with(graph, pool, &plan, src));
    (
        dist,
        PartitionPhases {
            plan: plan_delta,
            solve: solve_delta,
        },
    )
}

/// Eccentricity of `src` (the number of BFS levels): the largest finite
/// distance in `distances`, or 0 when only `src` is reachable.
pub fn levels(distances: &[usize]) -> usize {
    distances
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn grid_distances_are_manhattan() {
        let g = gen::grid(5, 7);
        let d = bfs_seq(&g, 0);
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(d[r * 7 + c], r + c);
            }
        }
        assert_eq!(levels(&d), 5 + 7 - 2);
    }

    #[test]
    fn parallel_matches_sequential_on_every_shape() {
        let shapes = [
            gen::gnm(300, 900, 11),
            gen::grid(12, 25),
            gen::star(257),
            gen::path(301),
            gen::binary_tree(511),
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                assert_eq!(
                    bfs_par(g, &pool, 0),
                    bfs_seq(g, 0),
                    "shape {k} diverged at p = {p}"
                );
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (3, 4)]);
        let pool = PalPool::new(2).unwrap();
        let d = bfs_par(&g, &pool, 0);
        assert_eq!(d, vec![0, 1, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::from_undirected_edges(1, &[]);
        let pool = PalPool::new(2).unwrap();
        assert_eq!(bfs_par(&g, &pool, 0), vec![0]);
        assert_eq!(levels(&[0]), 0);
    }
}
