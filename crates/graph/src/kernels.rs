//! Counting kernels: degree histogram and triangle count, each with a
//! sequential twin.

use lopram_core::PalPool;

use crate::csr::CsrGraph;

/// Sequential degree histogram: `hist[d]` is the number of vertices of
/// degree `d`; `hist.len() == max_degree + 1` (empty for the empty graph).
pub fn degree_histogram_seq(graph: &CsrGraph) -> Vec<u64> {
    if graph.vertices() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0u64; graph.max_degree() + 1];
    for v in 0..graph.vertices() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// Parallel degree histogram via
/// [`reduce_by_index`](PalPool::reduce_by_index): every vertex contributes
/// `1` to the bucket of its degree; identical output to
/// [`degree_histogram_seq`].
///
/// The per-block bucket scratch comes from the pool's workspace arena
/// (dense rows on bounded-degree shapes, `(bucket, count)` pairs when the
/// max degree dwarfs a block — a star's hub), so repeated histograms on
/// one pool allocate only the returned vector.
pub fn degree_histogram(graph: &CsrGraph, pool: &PalPool) -> Vec<u64> {
    if graph.vertices() == 0 {
        return Vec::new();
    }
    pool.reduce_by_index(
        0..graph.vertices(),
        graph.max_degree() + 1,
        0u64,
        |v| (graph.degree(v), 1),
        |a, b| a + b,
    )
}

/// Triangles incident to `u` whose vertices are ordered `u < v < w` — the
/// per-vertex work item of both triangle counters.  Relies on the CSR
/// adjacency slices being sorted (merge-style intersection).
fn triangles_above(graph: &CsrGraph, u: usize) -> u64 {
    let nu = graph.neighbors(u);
    let mut count = 0u64;
    for &v in nu.iter().filter(|&&v| v > u) {
        let nv = graph.neighbors(v);
        // Count w > v present in both sorted lists, entering each list
        // just past v (binary search) so a high-degree hub — a star's
        // centre — costs O(log deg) per low-degree partner instead of a
        // full merge restart.
        let mut i = nu.partition_point(|&w| w <= v);
        let mut j = nv.partition_point(|&w| w <= v);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
    }
    count
}

/// Sequential triangle count (each triangle counted once) — the
/// differential twin of [`triangle_count`].
pub fn triangle_count_seq(graph: &CsrGraph) -> u64 {
    (0..graph.vertices())
        .map(|u| triangles_above(graph, u))
        .sum()
}

/// Parallel triangle count via [`map_reduce`](PalPool::map_reduce) over
/// the ordered per-vertex counts; identical output to
/// [`triangle_count_seq`].
pub fn triangle_count(graph: &CsrGraph, pool: &PalPool) -> u64 {
    pool.map_reduce(
        0..graph.vertices(),
        0u64,
        |u| triangles_above(graph, u),
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn histogram_of_star_and_grid() {
        let s = gen::star(10);
        let hist = degree_histogram_seq(&s);
        // Nine leaves of degree 1, one hub of degree 9.
        assert_eq!(hist[1], 9);
        assert_eq!(hist[9], 1);
        assert_eq!(hist.iter().sum::<u64>(), 10);

        let g = gen::grid(4, 4);
        let hist = degree_histogram_seq(&g);
        assert_eq!(hist[2], 4); // corners
        assert_eq!(hist[3], 8); // edge-interior
        assert_eq!(hist[4], 4); // interior
    }

    #[test]
    fn parallel_kernels_match_sequential() {
        let shapes = [
            gen::gnm(150, 1200, 13),
            gen::grid(10, 10),
            gen::star(64),
            gen::binary_tree(127),
        ];
        for p in [1, 2, 4] {
            let pool = PalPool::new(p).unwrap();
            for (k, g) in shapes.iter().enumerate() {
                assert_eq!(
                    degree_histogram(g, &pool),
                    degree_histogram_seq(g),
                    "histogram diverged on shape {k} at p = {p}"
                );
                assert_eq!(
                    triangle_count(g, &pool),
                    triangle_count_seq(g),
                    "triangles diverged on shape {k} at p = {p}"
                );
            }
        }
    }

    #[test]
    fn triangle_count_on_known_graphs() {
        // K4 has exactly 4 triangles.
        let k4 = crate::csr::CsrGraph::from_undirected_edges(
            4,
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        );
        assert_eq!(triangle_count_seq(&k4), 4);

        // Trees and grids are triangle-free.
        assert_eq!(triangle_count_seq(&gen::binary_tree(63)), 0);
        assert_eq!(triangle_count_seq(&gen::grid(6, 6)), 0);

        // A triangle with a pendant vertex.
        let g = crate::csr::CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(triangle_count_seq(&g), 1);
        let pool = PalPool::new(3).unwrap();
        assert_eq!(triangle_count(&g, &pool), 1);
    }

    #[test]
    fn empty_graph_kernels() {
        let g = crate::csr::CsrGraph::from_undirected_edges(0, &[]);
        let pool = PalPool::new(2).unwrap();
        assert!(degree_histogram(&g, &pool).is_empty());
        assert!(degree_histogram_seq(&g).is_empty());
        assert_eq!(triangle_count(&g, &pool), 0);
    }
}
