//! Deterministic graph generators.
//!
//! Every generator is seeded (or shape-determined) and produces the same
//! [`CsrGraph`] on every run, so the differential suite and the
//! `table_graph_speedup` experiment can compare parallel and sequential
//! kernels on identical inputs across processor counts.

use rand::prelude::*;

use crate::csr::CsrGraph;

/// Erdős–Rényi-style `G(n, m)`: `m` edges drawn uniformly (with
/// replacement) over vertex pairs, seeded; self-loops and duplicates are
/// collapsed by CSR construction, so the realised edge count can be lower.
///
/// Returns the edgeless graph on `n` vertices when `n < 2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    if n < 2 {
        return CsrGraph::from_undirected_edges(n, &[]);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// [`gnm`] without the materialized edge list: the same seeded edge
/// stream is regenerated for each counting-sort pass of
/// [`CsrGraph::from_undirected_edges_streamed`], so peak extra memory is
/// `O(n)` instead of the `O(m)` edge vector plus `O(2m)` sort buffer.
/// Produces a graph *identical* to `gnm(n, m, seed)` — the partition
/// benches use this to reach ~10⁶ edges.
pub fn gnm_streamed(n: usize, m: usize, seed: u64) -> CsrGraph {
    if n < 2 {
        return CsrGraph::from_undirected_edges(n, &[]);
    }
    CsrGraph::from_undirected_edges_streamed(n, || {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m).map(move |_| (rng.gen_range(0..n), rng.gen_range(0..n)))
    })
}

/// A `rows × cols` 4-neighbour lattice — the diameter-heavy regular shape
/// (BFS runs `rows + cols − 2` levels, so the frontier loop dominates).
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let at = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    CsrGraph::from_undirected_edges(rows * cols, &edges)
}

/// A star: vertex 0 joined to every other vertex — maximal degree skew
/// (one frontier of size `n − 1`), the worst case for block balance.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// A path `0 − 1 − ⋯ − (n − 1)` — the no-parallelism extreme: every BFS
/// frontier has exactly one vertex, the graph analogue of the paper's
/// one-dimensional chain DP.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// A complete binary tree on `n` vertices (vertex `v`'s children are
/// `2v + 1` and `2v + 2`) — the shape of the paper's own Figure 1/2
/// recursion trees, with frontiers doubling per level.
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                edges.push((v, child));
            }
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_is_deterministic_per_seed() {
        assert_eq!(gnm(64, 256, 7), gnm(64, 256, 7));
        assert_ne!(gnm(64, 256, 7), gnm(64, 256, 8));
        assert_eq!(gnm(1, 10, 3).arcs(), 0);
    }

    #[test]
    fn gnm_streamed_equals_gnm() {
        for &(n, m, seed) in &[(2, 1, 0), (64, 256, 7), (100, 1000, 42), (1, 10, 3)] {
            assert_eq!(
                gnm_streamed(n, m, seed),
                gnm(n, m, seed),
                "G({n}, {m}) seed {seed}"
            );
        }
    }

    #[test]
    fn grid_has_lattice_structure() {
        let g = grid(3, 4);
        assert_eq!(g.vertices(), 12);
        // 3·(4−1) horizontal + (3−1)·4 vertical edges.
        assert_eq!(g.edges(), 9 + 8);
        // A corner has degree 2, an interior vertex degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn star_path_tree_shapes() {
        let s = star(10);
        assert_eq!(s.degree(0), 9);
        assert!((1..10).all(|v| s.degree(v) == 1));

        let p = path(5);
        assert_eq!(p.edges(), 4);
        assert_eq!(p.neighbors(2), &[1, 3]);

        let t = binary_tree(7);
        assert_eq!(t.edges(), 6);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0, 3, 4]);
    }
}
