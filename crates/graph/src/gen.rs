//! Deterministic graph generators.
//!
//! Every generator is seeded (or shape-determined) and produces the same
//! [`CsrGraph`] on every run, so the differential suite and the
//! `table_graph_speedup` experiment can compare parallel and sequential
//! kernels on identical inputs across processor counts.
//!
//! ## The `G(n, m)` contract
//!
//! [`gnm`] / [`gnm_streamed`] produce **exactly `min(m, n·(n−1)/2)`
//! distinct, loop-free undirected edges** — the requested count is
//! clamped to the simple graph's capacity, never silently undershot.
//! (The pre-clamp behaviour sampled `m` pairs *with* replacement,
//! including self-loops, so the realised edge count was both random-ish
//! and unbounded-request-unsafe: `gnm(1, 10, 3)` quietly yielded zero
//! arcs and a dense request could spin a rejection loop.)  Sampling is a
//! seeded [Feistel permutation](https://en.wikipedia.org/wiki/Format-preserving_encryption)
//! over the edge-index space `[0, n·(n−1)/2)` with cycle walking: every
//! index maps to a distinct pair, `O(1)` memory per edge, guaranteed
//! termination for any `(n, m)` — dense requests (`m ≥ n·(n−1)/2`)
//! return the complete graph.  The streamed variant regenerates the
//! identical stream per pass, so `gnm_streamed(n, m, s) ≡ gnm(n, m, s)`
//! on the clamped values.

use crate::csr::CsrGraph;

/// The splitmix64 finalizer: a cheap, well-mixed `u64 → u64` bijection
/// used to derive round keys and as the Feistel round function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded pseudorandom permutation of `[0, domain)`: a four-round
/// balanced Feistel network over the smallest even-bit-width power of
/// two ≥ `domain`, shrunk to the domain by cycle walking (re-applying
/// the network while the value lands outside).  Walking terminates
/// because the network permutes the power-of-two space — the orbit of an
/// in-domain value must revisit the domain — and the expected walk is
/// under four steps (the cover is at most 4× the domain).
#[derive(Debug, Clone, Copy)]
struct FeistelPerm {
    domain: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl FeistelPerm {
    fn new(domain: u64, seed: u64) -> Self {
        debug_assert!(domain >= 1);
        // Bits needed to cover domain − 1, rounded up to an even split.
        let needed = (64 - (domain - 1).leading_zeros()).max(2);
        let half_bits = needed.div_ceil(2);
        let keys = std::array::from_fn(|i| mix64(seed ^ mix64(i as u64 + 1)));
        FeistelPerm {
            domain,
            half_bits,
            keys,
        }
    }

    /// One pass of the network over the `2 · half_bits`-wide space.
    fn round_trip(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut l = x >> self.half_bits;
        let mut r = x & mask;
        for &k in &self.keys {
            (l, r) = (r, l ^ (mix64(r ^ k) & mask));
        }
        (l << self.half_bits) | r
    }

    /// The permutation image of `x ∈ [0, domain)`.
    fn permute(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain);
        let mut y = self.round_trip(x);
        while y >= self.domain {
            y = self.round_trip(y);
        }
        y
    }
}

/// Number of vertex pairs `{u, v}`, `u < v`, of a simple graph on `n`
/// vertices: the `G(n, m)` edge-index space.
fn pair_count(n: usize) -> u64 {
    let c = (n as u128) * (n as u128 - 1) / 2;
    debug_assert!(c <= u64::MAX as u128, "edge-index space exceeds u64");
    c as u64
}

/// Decode edge index `e` into the pair `(u, v)`, `u < v`: index blocks
/// are grouped by the larger endpoint, `v` owning `[v(v−1)/2, v(v+1)/2)`.
fn tri_decode(e: u64) -> (u64, u64) {
    let s = (8 * e as u128 + 1).isqrt() as u64;
    let mut v = s.div_ceil(2);
    // Integer-sqrt slop: nudge v onto the unique block containing e.
    while v * (v - 1) / 2 > e {
        v -= 1;
    }
    while v * (v + 1) / 2 <= e {
        v += 1;
    }
    (e - v * (v - 1) / 2, v)
}

/// The seeded `G(n, m)` edge stream: exactly `min(m, n·(n−1)/2)`
/// distinct loop-free pairs, `O(1)` memory per edge (see the
/// [module docs](self) for the clamping contract).
fn gnm_edges(n: usize, m: usize, seed: u64) -> impl Iterator<Item = (usize, usize)> {
    let count = if n < 2 { 0 } else { pair_count(n) };
    let target = (m as u64).min(count);
    let perm = FeistelPerm::new(count.max(1), seed);
    (0..target).map(move |i| {
        let (u, v) = tri_decode(perm.permute(i));
        (u as usize, v as usize)
    })
}

/// Erdős–Rényi-style `G(n, m)`: exactly `min(m, n·(n−1)/2)` distinct
/// undirected edges (no self-loops, no duplicates) drawn as a seeded
/// pseudorandom subset of the pair space — dense requests clamp to the
/// complete graph instead of spinning or undershooting.
///
/// Returns the edgeless graph on `n` vertices when `n < 2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let edges: Vec<(usize, usize)> = gnm_edges(n, m, seed).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// [`gnm`] without the materialized edge list: the same seeded edge
/// stream is regenerated for each counting-sort pass of
/// [`CsrGraph::from_undirected_edges_streamed`], so peak extra memory is
/// `O(n)` instead of the `O(m)` edge vector plus `O(2m)` sort buffer —
/// the Feistel edge sampler is `O(1)` state, which is what keeps the
/// whole build `O(n)` at 10⁶–10⁷ edges.  Produces a graph *identical*
/// to `gnm(n, m, seed)` (same clamping contract) — the partition and CC
/// benches use this to reach million-edge graphs.
pub fn gnm_streamed(n: usize, m: usize, seed: u64) -> CsrGraph {
    CsrGraph::from_undirected_edges_streamed(n, move || gnm_edges(n, m, seed))
}

/// A `rows × cols` 4-neighbour lattice — the diameter-heavy regular shape
/// (BFS runs `rows + cols − 2` levels, so the frontier loop dominates).
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let at = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    CsrGraph::from_undirected_edges(rows * cols, &edges)
}

/// A star: vertex 0 joined to every other vertex — maximal degree skew
/// (one frontier of size `n − 1`), the worst case for block balance.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// A path `0 − 1 − ⋯ − (n − 1)` — the no-parallelism extreme: every BFS
/// frontier has exactly one vertex, the graph analogue of the paper's
/// one-dimensional chain DP.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (v - 1, v)).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// A path whose vertex ids are a seeded permutation of the positions:
/// isomorphic to [`path`], but consecutive path neighbours land at
/// unrelated ids.  This is the adversarial shape for round-synchronous
/// label propagation — on [`path`] an ascending in-chunk scan zips the
/// minimum down the whole chain in one round, whereas here propagation
/// really pays about one hop per round, exposing the O(diameter) round
/// bound the union-find kernel ([`crate::uf`]) exists to beat.
pub fn path_permuted(n: usize, seed: u64) -> CsrGraph {
    if n < 2 {
        return CsrGraph::from_undirected_edges(n, &[]);
    }
    let perm = FeistelPerm::new(n as u64, seed);
    let id = |i: usize| perm.permute(i as u64) as usize;
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (id(i - 1), id(i))).collect();
    CsrGraph::from_undirected_edges(n, &edges)
}

/// A complete binary tree on `n` vertices (vertex `v`'s children are
/// `2v + 1` and `2v + 2`) — the shape of the paper's own Figure 1/2
/// recursion trees, with frontiers doubling per level.
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for v in 0..n {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < n {
                edges.push((v, child));
            }
        }
    }
    CsrGraph::from_undirected_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_is_deterministic_per_seed() {
        assert_eq!(gnm(64, 256, 7), gnm(64, 256, 7));
        assert_ne!(gnm(64, 256, 7), gnm(64, 256, 8));
        assert_eq!(gnm(1, 10, 3).arcs(), 0);
    }

    #[test]
    fn gnm_realises_exactly_the_clamped_edge_count() {
        // Regression for the silent undershoot: the old sampler drew
        // pairs with replacement (self-loops included), so the realised
        // count was below m even on easy requests.
        for &(n, m) in &[(2, 1), (64, 256), (100, 1000), (1000, 1), (513, 4096)] {
            let cap = n * (n - 1) / 2;
            assert_eq!(
                gnm(n, m, 42).edges(),
                m.min(cap),
                "G({n}, {m}) must realise min(m, {cap}) edges"
            );
        }
    }

    #[test]
    fn gnm_dense_requests_terminate_and_clamp_to_the_complete_graph() {
        // Regression: a request beyond the simple graph's capacity must
        // terminate (no rejection spinning) and produce the complete
        // graph — and further oversampling must not change the result.
        let complete = gnm(4, 100, 9);
        assert_eq!(complete.edges(), 6);
        for v in 0..4 {
            assert_eq!(complete.degree(v), 3, "K4 vertex {v}");
        }
        assert_eq!(
            complete,
            gnm(4, 6, 9),
            "clamped request equals exact request"
        );
        assert_eq!(gnm(5, usize::MAX, 3).edges(), 10);
    }

    #[test]
    fn gnm_streamed_equals_gnm() {
        for &(n, m, seed) in &[
            (2, 1, 0),
            (64, 256, 7),
            (100, 1000, 42),
            (1, 10, 3),
            (4, 100, 9), // dense: the clamp must agree across both builds
        ] {
            assert_eq!(
                gnm_streamed(n, m, seed),
                gnm(n, m, seed),
                "G({n}, {m}) seed {seed}"
            );
        }
    }

    #[test]
    fn feistel_is_a_permutation() {
        for &(domain, seed) in &[(1u64, 0u64), (2, 1), (37, 7), (256, 9), (1000, 3)] {
            let perm = FeistelPerm::new(domain, seed);
            let mut seen = vec![false; domain as usize];
            for x in 0..domain {
                let y = perm.permute(x);
                assert!(y < domain, "image out of domain");
                assert!(!seen[y as usize], "collision at {x} -> {y}");
                seen[y as usize] = true;
            }
        }
    }

    #[test]
    fn tri_decode_enumerates_all_pairs() {
        let n = 23u64;
        let mut seen = std::collections::HashSet::new();
        for e in 0..n * (n - 1) / 2 {
            let (u, v) = tri_decode(e);
            assert!(u < v && v < n, "decoded ({u}, {v}) out of range at {e}");
            assert!(seen.insert((u, v)), "pair ({u}, {v}) decoded twice");
        }
    }

    #[test]
    fn grid_has_lattice_structure() {
        let g = grid(3, 4);
        assert_eq!(g.vertices(), 12);
        // 3·(4−1) horizontal + (3−1)·4 vertical edges.
        assert_eq!(g.edges(), 9 + 8);
        // A corner has degree 2, an interior vertex degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn star_path_tree_shapes() {
        let s = star(10);
        assert_eq!(s.degree(0), 9);
        assert!((1..10).all(|v| s.degree(v) == 1));

        let p = path(5);
        assert_eq!(p.edges(), 4);
        assert_eq!(p.neighbors(2), &[1, 3]);

        let t = binary_tree(7);
        assert_eq!(t.edges(), 6);
        assert_eq!(t.neighbors(0), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0, 3, 4]);
    }

    #[test]
    fn permuted_path_is_a_path() {
        let n = 97;
        let g = path_permuted(n, 0xBEEF);
        assert_eq!(g.edges(), n - 1);
        let endpoints = (0..n).filter(|&v| g.degree(v) == 1).count();
        assert_eq!(endpoints, 2, "a path has exactly two endpoints");
        assert!((0..n).all(|v| g.degree(v) <= 2));
        // Connected: one component (degree profile + edge count already
        // force it, but check directly against the CC twin).
        assert_eq!(
            crate::cc::component_count(&crate::cc::components_seq(&g)),
            1
        );
        assert_eq!(path_permuted(1, 5).vertices(), 1);
    }
}
