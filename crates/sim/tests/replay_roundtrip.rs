//! Replay round-trip properties: a trace captured from a real `PalPool`
//! must (a) reproduce the pool's own `RunMetrics` accounting from the
//! event stream alone, (b) survive the text serialization losslessly,
//! (c) replay at the *capture* configuration to exactly the recorded
//! fork and steal totals, and (d) replay at `p = 1` to a steal-free,
//! fully elided prediction — ISSUE 6's property contract for the
//! trace/replay loop.
//!
//! Workloads are random mixes of binary join trees (non-pass forks, whose
//! call sites are configuration-independent) and blocked scans (pass
//! forks, which the replayer recounts per configuration) so both halves of
//! the fork-recount identity are exercised; cross-configuration fork
//! predictions are validated against fresh measured pools.
//!
//! Two further workload families extend the coverage beyond the balanced
//! shapes:
//!
//! * E12's **unbalanced divide-and-conquer tree** (each level joins a
//!   cheap leaf against the rest of the chain) — maximally skewed join
//!   structure, still configuration-independent, so cross-configuration
//!   fork prediction must stay exact;
//! * a **DP wavefront** (`PrefixChain` under `solve_wavefront`) — its
//!   forks are `for_each_index` scope spawns, which the replayer carries
//!   *as recorded*.  Spawn counts are a pure function of `(len, p)` but
//!   `p`-*dependent* (`index_chunk_count`), so replay exactness holds at
//!   the capture configuration (and against a fresh pool at the capture
//!   `p`), while cross-`p` prediction is deliberately out of contract
//!   for spawn-based workloads and excluded here.

use lopram_core::{DagTrace, PalPool, TraceConfig};
use lopram_dp::prelude::{solve_sequential, solve_wavefront, PrefixChain};
use lopram_sim::replay::{ReplayGrain, TraceReplay};
use proptest::prelude::*;

/// Processor counts every property is checked under.
const P_SWEEP: [usize; 3] = [1, 2, 4];

fn join_tree(pool: &PalPool, depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (a, b) = pool.join(|| join_tree(pool, depth - 1), || join_tree(pool, depth - 1));
    a + b
}

/// E12's unbalanced divide-and-conquer shape (without the sleeps): each
/// level forks a trivial leaf against the rest of the chain, so the tree
/// is a maximally skewed chain of `depth` joins — `depth` forks total,
/// configuration-independent.
fn unbalanced(pool: &PalPool, depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (leaf, rest) = pool.join(|| 1u64, || unbalanced(pool, depth - 1));
    leaf + rest
}

/// A traced pool builder at `p`.
fn traced_pool(p: usize) -> PalPool {
    PalPool::builder()
        .processors(p)
        .trace(TraceConfig::default())
        .build()
        .unwrap()
}

/// Assert the capture-fidelity half of the contract: lossless capture,
/// summary == RunMetrics, text round-trip.
#[track_caller]
fn assert_capture_fidelity(trace: &DagTrace, m: &lopram_core::MetricsSnapshot, p: usize) {
    assert!(trace.is_complete(), "p = {p}: capture dropped events");
    let s = trace.summary();
    assert_eq!(s.forks, m.forks(), "forks, p = {p}");
    assert_eq!(s.elided, m.elided, "elided, p = {p}");
    assert_eq!(s.spawned, m.spawned, "spawned, p = {p}");
    assert_eq!(s.inlined, m.inlined, "inlined, p = {p}");
    assert_eq!(s.steals, m.steals, "steals, p = {p}");
    assert_eq!(s.unclassified, 0, "quiesced capture, p = {p}");
    let roundtrip = DagTrace::from_text(&trace.to_text()).expect("own text parses");
    assert_eq!(&roundtrip, trace, "text round-trip, p = {p}");
}

/// Run `depth`-deep join trees and a scan over `len` elements on a traced
/// pool; return the drained capture plus the pool's final counters.
fn capture(p: usize, depth: u32, len: usize) -> (DagTrace, lopram_core::MetricsSnapshot) {
    let pool = PalPool::builder()
        .processors(p)
        .trace(TraceConfig::default())
        .build()
        .unwrap();
    let leaves = join_tree(&pool, depth);
    assert_eq!(leaves, 1u64 << depth);
    if len > 0 {
        let input: Vec<u64> = (0..len as u64).collect();
        let scan = pool.scan(&input, 0u64, |a, b| a + b);
        assert_eq!(scan.total, input.iter().sum::<u64>());
    }
    let metrics = pool.metrics().snapshot();
    let trace = pool.take_trace().expect("tracing was on");
    (trace, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // (a) + (b): the capture reproduces the pool's accounting and the
    // serialized format is lossless, at every p.
    #[test]
    fn capture_reproduces_run_metrics_and_roundtrips(
        depth in 0u32..7,
        len in 0usize..5000,
    ) {
        for p in P_SWEEP {
            let (trace, m) = capture(p, depth, len);
            prop_assert!(trace.is_complete(), "p = {}: capture dropped events", p);
            let s = trace.summary();
            prop_assert_eq!(s.forks, m.forks(), "forks, p = {}", p);
            prop_assert_eq!(s.elided, m.elided, "elided, p = {}", p);
            prop_assert_eq!(s.spawned, m.spawned, "spawned, p = {}", p);
            prop_assert_eq!(s.inlined, m.inlined, "inlined, p = {}", p);
            prop_assert_eq!(s.steals, m.steals, "steals, p = {}", p);
            prop_assert_eq!(s.unclassified, 0u64, "quiesced capture, p = {}", p);
            let roundtrip = DagTrace::from_text(&trace.to_text()).expect("own text parses");
            prop_assert_eq!(roundtrip, trace, "text round-trip, p = {}", p);
        }
    }

    // (c): replaying at the capture configuration is the identity on the
    // recorded fork and steal totals.
    #[test]
    fn replay_at_capture_config_is_the_identity(
        depth in 0u32..7,
        len in 0usize..5000,
    ) {
        for p in P_SWEEP {
            let (trace, _) = capture(p, depth, len);
            let replay = TraceReplay::from_trace(trace);
            let recorded = replay.recorded();
            let same = replay.predict(p, 2.0, ReplayGrain::Adaptive);
            prop_assert!(same.at_capture_config, "p = {}", p);
            prop_assert_eq!(same.forks, recorded.forks, "forks, p = {}", p);
            prop_assert_eq!(same.elided, recorded.elided, "elided, p = {}", p);
            prop_assert_eq!(same.scheduled, recorded.scheduled, "scheduled, p = {}", p);
            prop_assert_eq!(same.steals, recorded.steals, "steals, p = {}", p);
        }
    }

    // (d): a single-processor replay is steal-free and fully elided, no
    // matter what configuration the capture came from.
    #[test]
    fn replay_at_p1_is_steal_free(
        depth in 0u32..7,
        len in 0usize..5000,
    ) {
        for p in P_SWEEP {
            let (trace, _) = capture(p, depth, len);
            let replay = TraceReplay::from_trace(trace);
            let one = replay.predict(1, 2.0, ReplayGrain::Adaptive);
            prop_assert_eq!(one.steals, 0u64, "capture p = {}", p);
            prop_assert_eq!(one.cutoff, 0usize, "capture p = {}", p);
            prop_assert_eq!(one.elided, one.forks, "capture p = {}", p);
            prop_assert_eq!(one.scheduled, 0u64, "capture p = {}", p);
            prop_assert!(
                (one.speedup() - 1.0).abs() < 1e-12,
                "p = 1 replays sequentially (capture p = {})", p
            );
        }
    }

    // Cross-configuration fork prediction: join call sites are
    // configuration-independent and pass forks are recounted with the
    // pool's own grain policy, so a capture at any p predicts the fork
    // count of a fresh pool at any other (p', grain') exactly.
    #[test]
    fn cross_config_fork_prediction_matches_fresh_pools(
        depth in 0u32..6,
        len in 0usize..4000,
        capture_p_idx in 0usize..3,
    ) {
        let capture_p = P_SWEEP[capture_p_idx];
        let (trace, _) = capture(capture_p, depth, len);
        let replay = TraceReplay::from_trace(trace);
        for grain in [ReplayGrain::Adaptive, ReplayGrain::Fixed(32)] {
            for p in P_SWEEP {
                let predicted = replay.predict(p, 2.0, grain);
                let mut builder = PalPool::builder().processors(p);
                if let ReplayGrain::Fixed(min) = grain {
                    builder = builder.grain(min);
                }
                let pool = builder.build().unwrap();
                join_tree(&pool, depth);
                if len > 0 {
                    let input: Vec<u64> = (0..len as u64).collect();
                    pool.scan(&input, 0u64, |a, b| a + b);
                }
                prop_assert_eq!(
                    predicted.forks,
                    pool.metrics().forks(),
                    "capture p = {} -> (p = {}, {:?})", capture_p, p, grain
                );
            }
        }
    }

    // E12's unbalanced chain: the maximally skewed join tree must satisfy
    // the whole contract — capture fidelity, identity replay, steal-free
    // p = 1, and exact cross-configuration fork prediction (all its forks
    // are configuration-independent call sites: exactly `depth` at any
    // (p, grain)).
    #[test]
    fn unbalanced_tree_replay_is_exact_across_configs(
        depth in 0u32..24,
        capture_p_idx in 0usize..3,
    ) {
        let capture_p = P_SWEEP[capture_p_idx];
        let pool = traced_pool(capture_p);
        let leaves = unbalanced(&pool, depth);
        prop_assert_eq!(leaves, depth as u64 + 1);
        let m = pool.metrics().snapshot();
        prop_assert_eq!(m.forks(), depth as u64, "one fork per chain level");
        let trace = pool.take_trace().expect("tracing was on");
        assert_capture_fidelity(&trace, &m, capture_p);

        let replay = TraceReplay::from_trace(trace);
        let recorded = replay.recorded();
        let same = replay.predict(capture_p, 2.0, ReplayGrain::Adaptive);
        prop_assert!(same.at_capture_config);
        prop_assert_eq!(same.forks, recorded.forks);
        prop_assert_eq!(same.steals, recorded.steals);
        let one = replay.predict(1, 2.0, ReplayGrain::Adaptive);
        prop_assert_eq!(one.steals, 0u64);
        prop_assert_eq!(one.elided, one.forks);
        prop_assert_eq!(one.scheduled, 0u64);
        for p in P_SWEEP {
            let predicted = replay.predict(p, 2.0, ReplayGrain::Adaptive);
            let fresh = PalPool::new(p).unwrap();
            unbalanced(&fresh, depth);
            prop_assert_eq!(
                predicted.forks,
                fresh.metrics().forks(),
                "capture p = {} -> p = {}", capture_p, p
            );
            prop_assert_eq!(predicted.forks, depth as u64);
        }
    }

    // A DP wavefront (PrefixChain): every fork is a `for_each_index`
    // scope spawn the replayer carries as recorded.  Spawn counts are
    // pure in (len, p) but p-dependent, so the contract here is capture
    // fidelity, identity replay, steal-free p = 1, and fork exactness
    // against a fresh pool at the *capture* p — cross-p prediction is
    // out of contract for spawn-based workloads (see module docs).
    #[test]
    fn dp_wavefront_replay_is_exact_at_capture_config(
        len in 1usize..120,
        seed in 0i64..1000,
    ) {
        let values: Vec<i64> = (0..len as i64).map(|i| (i * 31 + seed) % 97 - 48).collect();
        let problem = PrefixChain::new(values);
        let expected = solve_sequential(&problem).goal;
        for p in P_SWEEP {
            let pool = traced_pool(p);
            let solution = solve_wavefront(&problem, &pool);
            prop_assert_eq!(solution.goal, expected, "wavefront diverged at p = {}", p);
            let m = pool.metrics().snapshot();
            let trace = pool.take_trace().expect("tracing was on");
            assert_capture_fidelity(&trace, &m, p);

            let replay = TraceReplay::from_trace(trace);
            let recorded = replay.recorded();
            let same = replay.predict(p, 2.0, ReplayGrain::Adaptive);
            prop_assert!(same.at_capture_config, "p = {}", p);
            prop_assert_eq!(same.forks, recorded.forks, "identity forks, p = {}", p);
            prop_assert_eq!(same.steals, recorded.steals, "identity steals, p = {}", p);
            let one = replay.predict(1, 2.0, ReplayGrain::Adaptive);
            prop_assert_eq!(one.steals, 0u64, "p = {}", p);
            prop_assert_eq!(one.scheduled, 0u64, "p = {}", p);
            prop_assert_eq!(one.elided, one.forks, "p = {}", p);
            // Replay exactness against a fresh measured pool at the
            // capture configuration: spawn counts are deterministic at
            // fixed p.
            let fresh = PalPool::new(p).unwrap();
            let fresh_solution = solve_wavefront(&problem, &fresh);
            prop_assert_eq!(fresh_solution.goal, expected);
            prop_assert_eq!(
                same.forks,
                fresh.metrics().forks(),
                "fresh pool at capture p = {}", p
            );
        }
    }
}
