//! Pal-thread execution trees.
//!
//! A divide-and-conquer computation on the LoPRAM unfolds into a tree of
//! pal-threads: every node is one recursive call, its children are the calls
//! created inside its `palthreads { … }` block, the work before the block is
//! the divide cost and the work after it is the merge cost (paper §3.1,
//! Figures 1 and 2).  [`TaskTree`] is that tree with explicit integer costs,
//! built either directly or from a recurrence-shaped [`CostSpec`].

/// One pal-thread (recursive call) in the execution tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Size of the subproblem this call works on (informational).
    pub size: usize,
    /// Steps of work performed before the children are created (for a leaf
    /// this is the whole cost of the call).
    pub divide_cost: u64,
    /// Steps of work performed after all children have completed.
    pub merge_cost: u64,
    /// Children, in creation order.
    pub children: Vec<usize>,
    /// Parent node, `None` for the root.
    pub parent: Option<usize>,
    /// Recursion depth (root = 0).
    pub depth: u32,
}

impl TreeNode {
    /// `true` when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Total work of this single node (divide + merge).
    pub fn work(&self) -> u64 {
        self.divide_cost + self.merge_cost
    }
}

/// Cost specification for building a divide-and-conquer execution tree from
/// a recurrence `T(n) = a·T(n/b) + f(n)`.
pub struct CostSpec {
    /// Work performed by an internal call of size `n` before spawning its
    /// children (the "divide" share of `f(n)`).
    pub divide: Box<dyn Fn(usize) -> u64>,
    /// Work performed by an internal call of size `n` after its children
    /// complete (the "merge" share of `f(n)`).
    pub merge: Box<dyn Fn(usize) -> u64>,
    /// Work performed by a base-case call of size `n`.
    pub base: Box<dyn Fn(usize) -> u64>,
}

impl CostSpec {
    /// Unit costs: one step to divide, one step per base case, free merges.
    /// With these costs the simulator reproduces the timing of Figure 1.
    pub fn unit() -> Self {
        CostSpec {
            divide: Box::new(|_| 1),
            merge: Box::new(|_| 0),
            base: Box::new(|_| 1),
        }
    }

    /// Merge-heavy costs `f(n)` applied entirely after the children finish,
    /// with one divide step — the shape used for the Master-theorem
    /// experiments (mergesort merges `n` elements, the Case-3 workload merges
    /// `n²` units, …).
    pub fn merge_dominated(f: impl Fn(usize) -> u64 + 'static) -> Self {
        CostSpec {
            divide: Box::new(|_| 1),
            merge: Box::new(f),
            base: Box::new(|_| 1),
        }
    }
}

impl std::fmt::Debug for CostSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostSpec").finish_non_exhaustive()
    }
}

/// A pal-thread execution tree.
#[derive(Debug, Clone, Default)]
pub struct TaskTree {
    nodes: Vec<TreeNode>,
    root: usize,
}

impl TaskTree {
    /// Build a tree with a single node.
    pub fn leaf(size: usize, cost: u64) -> Self {
        TaskTree {
            nodes: vec![TreeNode {
                size,
                divide_cost: cost,
                merge_cost: 0,
                children: Vec::new(),
                parent: None,
                depth: 0,
            }],
            root: 0,
        }
    }

    /// Build the execution tree of a divide-and-conquer recurrence with `a`
    /// children per call, division factor `b`, base-case threshold
    /// `base_size` and the given [`CostSpec`].
    ///
    /// Subproblem sizes are split as evenly as possible (`n/b` rounded), so
    /// the tree is well defined for sizes that are not powers of `b`.
    pub fn divide_and_conquer(
        n: usize,
        a: u32,
        b: u32,
        base_size: usize,
        costs: &CostSpec,
    ) -> Self {
        assert!(a >= 1, "a must be at least 1");
        assert!(b >= 2, "b must be at least 2");
        assert!(base_size >= 1, "base size must be at least 1");
        let mut tree = TaskTree {
            nodes: Vec::new(),
            root: 0,
        };
        tree.build_dnc(n, a, b, base_size, costs, None, 0);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build_dnc(
        &mut self,
        n: usize,
        a: u32,
        b: u32,
        base_size: usize,
        costs: &CostSpec,
        parent: Option<usize>,
        depth: u32,
    ) -> usize {
        let id = self.nodes.len();
        if n <= base_size {
            self.nodes.push(TreeNode {
                size: n,
                divide_cost: (costs.base)(n),
                merge_cost: 0,
                children: Vec::new(),
                parent,
                depth,
            });
            return id;
        }
        self.nodes.push(TreeNode {
            size: n,
            divide_cost: (costs.divide)(n),
            merge_cost: (costs.merge)(n),
            children: Vec::new(),
            parent,
            depth,
        });
        // Split n into a parts of size ~n/b each (for a = b this is an even
        // split; for a ≠ b it follows the recurrence's subproblem size).
        let child_size = (n as f64 / b as f64).ceil().max(1.0) as usize;
        let mut children = Vec::with_capacity(a as usize);
        for _ in 0..a {
            let c = self.build_dnc(child_size, a, b, base_size, costs, Some(id), depth + 1);
            children.push(c);
        }
        self.nodes[id].children = children;
        id
    }

    /// Build a tree from an explicit node list (ids are indices into
    /// `nodes`) with `root` as the root id.  This is how the trace replayer
    /// materialises a [`DagTrace`](lopram_core::DagTrace) capture as a
    /// simulatable tree.
    ///
    /// # Panics
    ///
    /// Panics when the node list is not a single well-formed tree: `root`
    /// out of bounds or with a parent, a non-root node without a parent, a
    /// child id out of bounds, a parent/child link recorded on one side
    /// only, or a child whose depth is not its parent's plus one.
    pub fn from_nodes(nodes: Vec<TreeNode>, root: usize) -> Self {
        assert!(root < nodes.len(), "root id {root} out of bounds");
        assert!(nodes[root].parent.is_none(), "root must have no parent");
        for (id, node) in nodes.iter().enumerate() {
            assert!(
                id == root || node.parent.is_some(),
                "non-root node {id} has no parent"
            );
            if let Some(p) = node.parent {
                assert!(p < nodes.len(), "parent id {p} of node {id} out of bounds");
                assert!(
                    nodes[p].children.contains(&id),
                    "parent {p} does not list {id} as a child"
                );
            }
            for &c in &node.children {
                assert!(c < nodes.len(), "child id {c} of node {id} out of bounds");
                assert_eq!(
                    nodes[c].parent,
                    Some(id),
                    "child {c} does not name {id} as its parent"
                );
                assert_eq!(
                    nodes[c].depth,
                    node.depth + 1,
                    "child {c} depth must be parent {id} depth + 1"
                );
            }
        }
        TaskTree { nodes, root }
    }

    /// The mergesort execution tree of Figure 1: `n` keys, binary splits,
    /// unit divide and base costs, free merges.
    pub fn mergesort_figure1(n: usize) -> Self {
        TaskTree::divide_and_conquer(n, 2, 2, 1, &CostSpec::unit())
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    pub fn node(&self, id: usize) -> &TreeNode {
        &self.nodes[id]
    }

    /// All nodes, indexed by id.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Total work of the tree (sum of all node costs): the sequential time
    /// `T_1` of the computation.
    pub fn total_work(&self) -> u64 {
        self.nodes.iter().map(|n| n.work()).sum()
    }

    /// Length of the critical path (divide costs down one root-to-leaf path
    /// plus merge costs back up), i.e. the time with unbounded processors.
    pub fn critical_path(&self) -> u64 {
        self.critical_path_of(self.root)
    }

    fn critical_path_of(&self, id: usize) -> u64 {
        let node = &self.nodes[id];
        let child_max = node
            .children
            .iter()
            .map(|&c| self.critical_path_of(c))
            .max()
            .unwrap_or(0);
        node.divide_cost + child_max + node.merge_cost
    }

    /// Maximum depth of the tree (root = 0).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Pre-order traversal of node ids (the paper's default activation
    /// order for pending pal-threads).
    pub fn preorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children in reverse so they pop in creation order.
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Nodes grouped by depth, each level in left-to-right order.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let height = self.height() as usize;
        let mut levels = vec![Vec::new(); height + 1];
        for id in self.preorder() {
            levels[self.nodes[id].depth as usize].push(id);
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_tree_shape() {
        let tree = TaskTree::mergesort_figure1(16);
        assert_eq!(tree.len(), 31);
        assert_eq!(tree.height(), 4);
        let levels = tree.levels();
        assert_eq!(
            levels.iter().map(|l| l.len()).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16]
        );
        assert!(tree.node(tree.root()).parent.is_none());
    }

    #[test]
    fn leaf_tree() {
        let tree = TaskTree::leaf(5, 7);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.total_work(), 7);
        assert_eq!(tree.critical_path(), 7);
        assert!(tree.node(0).is_leaf());
    }

    #[test]
    fn total_work_of_unit_mergesort_tree() {
        // 15 internal nodes at cost 1 + 16 leaves at cost 1 = 31.
        let tree = TaskTree::mergesort_figure1(16);
        assert_eq!(tree.total_work(), 31);
    }

    #[test]
    fn merge_dominated_costs() {
        let costs = CostSpec::merge_dominated(|n| (n * n) as u64);
        let tree = TaskTree::divide_and_conquer(8, 2, 2, 1, &costs);
        let root = tree.node(tree.root());
        assert_eq!(root.merge_cost, 64);
        assert_eq!(root.divide_cost, 1);
        let leaf = tree
            .nodes()
            .iter()
            .find(|n| n.is_leaf())
            .expect("tree has leaves");
        assert_eq!(leaf.divide_cost, 1);
    }

    #[test]
    fn ternary_tree_has_a_children_per_internal_node() {
        let tree = TaskTree::divide_and_conquer(27, 3, 3, 1, &CostSpec::unit());
        for node in tree.nodes() {
            assert!(node.children.len() == 3 || node.children.is_empty());
        }
        // 27 leaves, 13 internal (1 + 3 + 9).
        assert_eq!(tree.len(), 40);
    }

    #[test]
    fn karatsuba_shape_three_children_halving() {
        let tree = TaskTree::divide_and_conquer(16, 3, 2, 1, &CostSpec::unit());
        let root = tree.node(tree.root());
        assert_eq!(root.children.len(), 3);
        for &c in &root.children {
            assert_eq!(tree.node(c).size, 8);
        }
    }

    #[test]
    fn preorder_visits_every_node_once_parent_first() {
        let tree = TaskTree::mergesort_figure1(16);
        let order = tree.preorder();
        assert_eq!(order.len(), tree.len());
        let mut pos = vec![usize::MAX; tree.len()];
        for (i, &id) in order.iter().enumerate() {
            pos[id] = i;
        }
        for (id, node) in tree.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(pos[p] < pos[id], "parent must precede child in preorder");
            }
        }
    }

    #[test]
    fn critical_path_of_unit_binary_tree_is_depth_plus_one() {
        let tree = TaskTree::mergesort_figure1(16);
        // divide(1) at each of 4 internal levels + leaf(1) = 5 steps.
        assert_eq!(tree.critical_path(), 5);
    }

    #[test]
    fn non_power_of_two_sizes_are_handled() {
        let tree = TaskTree::divide_and_conquer(10, 2, 2, 1, &CostSpec::unit());
        assert!(tree.len() > 1);
        assert!(tree.nodes().iter().all(|n| n.size >= 1));
        assert!(tree.height() >= 3);
    }

    #[test]
    #[should_panic(expected = "b must be at least 2")]
    fn rejects_invalid_b() {
        let _ = TaskTree::divide_and_conquer(8, 2, 1, 1, &CostSpec::unit());
    }
}
