//! # lopram-sim
//!
//! A deterministic, step-accurate simulator of the LoPRAM machine of §3 of
//! the paper.  Where `lopram-core` runs pal-threads on real cores, this crate
//! models the abstract machine so that the *exact* quantities the theory
//! speaks about — wall-clock steps `T_p(n)`, activation times of pal-threads,
//! CREW memory conflicts — can be measured and compared against the
//! closed-form analysis (`lopram-analysis`) and against the figures of the
//! paper.
//!
//! * [`tree`] — pal-thread execution trees for divide-and-conquer programs
//!   (the object drawn in Figures 1 and 2);
//! * [`schedule`] — the pal-thread scheduler of §3.1: pending threads
//!   activated in creation order as processors free up, parents resuming on
//!   the processor of their last-finishing child;
//! * [`dagsim`] — a greedy `p`-processor schedule of a dependency DAG, the
//!   machine model behind Algorithm 1 (§4.4);
//! * [`memory`] — a CREW shared memory with conflict detection and the
//!   paper's transparently serialized cells;
//! * [`trace`] — execution-trace records and the ASCII rendering used to
//!   regenerate Figure 1;
//! * [`replay`] — deterministic replay of [`DagTrace`](lopram_core::DagTrace)
//!   captures recorded by the real `PalPool` tracer, predicting fork, steal
//!   and makespan numbers under arbitrary `(p, α, grain)`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dagsim;
pub mod memory;
pub mod replay;
pub mod schedule;
pub mod trace;
pub mod tree;

pub use dagsim::{simulate_dag_schedule, DagSimResult};
pub use memory::{AccessKind, CrewMemory, CrewViolation};
pub use replay::{ReplayGrain, ReplayPrediction, TraceReplay};
pub use schedule::{NodeRecord, SimResult, TreeSimulator};
pub use trace::{render_activation_tree, render_figure1_snapshot, NodeSnapshotState};
pub use tree::{CostSpec, TaskTree, TreeNode};

/// Convenience prelude for the simulator crate.
pub mod prelude {
    pub use crate::dagsim::{simulate_dag_schedule, DagSimResult};
    pub use crate::memory::CrewMemory;
    pub use crate::replay::{ReplayGrain, TraceReplay};
    pub use crate::schedule::{SimResult, TreeSimulator};
    pub use crate::trace::{render_activation_tree, render_figure1_snapshot};
    pub use crate::tree::{CostSpec, TaskTree};
}
