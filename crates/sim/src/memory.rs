//! A CREW shared memory with conflict detection.
//!
//! §3 of the paper: "The read and write model … can generally be assumed to
//! be Concurrent-Read Exclusive-Write (CREW). … If an unserialized variable
//! is concurrently written this has undefined arbitrary behaviour."  The
//! simulator makes that rule checkable: a [`CrewMemory`] records every access
//! performed within one parallel step and reports a [`CrewViolation`] when
//! two processors write the same address (or one writes while another reads)
//! in the same step.  The dynamic-programming executors use it in tests to
//! demonstrate that the wavefront and Algorithm 1 schedules are CREW-safe.

use std::collections::HashMap;

/// Kind of access performed on a memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// A CREW conflict detected within one parallel step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrewViolation {
    /// Address of the conflicting cell.
    pub address: usize,
    /// Step in which the conflict occurred.
    pub step: u64,
    /// Number of writers that touched the cell in that step.
    pub writers: usize,
    /// Number of readers that touched the cell in that step.
    pub readers: usize,
}

/// A word-addressable CREW shared memory with per-step conflict detection.
#[derive(Debug, Clone)]
pub struct CrewMemory {
    cells: Vec<i64>,
    step: u64,
    reads_this_step: HashMap<usize, usize>,
    writes_this_step: HashMap<usize, usize>,
    violations: Vec<CrewViolation>,
    reads_total: u64,
    writes_total: u64,
}

impl CrewMemory {
    /// Create a memory with `size` cells initialised to zero.
    pub fn new(size: usize) -> Self {
        CrewMemory {
            cells: vec![0; size],
            step: 1,
            reads_this_step: HashMap::new(),
            writes_this_step: HashMap::new(),
            violations: Vec::new(),
            reads_total: 0,
            writes_total: 0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current parallel step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Read the cell at `address` (a concurrent read is always legal).
    pub fn read(&mut self, address: usize) -> i64 {
        self.reads_total += 1;
        *self.reads_this_step.entry(address).or_insert(0) += 1;
        self.cells[address]
    }

    /// Write `value` to `address`.  The write is always performed (the paper
    /// calls the outcome of a conflicting write "undefined arbitrary
    /// behaviour"); the conflict, if any, is reported when the step ends.
    pub fn write(&mut self, address: usize, value: i64) {
        self.writes_total += 1;
        *self.writes_this_step.entry(address).or_insert(0) += 1;
        self.cells[address] = value;
    }

    /// Close the current parallel step: record CREW violations (multiple
    /// writers, or a writer racing readers, on one address) and advance the
    /// step counter.  Returns the violations detected in the closed step.
    pub fn end_step(&mut self) -> Vec<CrewViolation> {
        let mut new_violations = Vec::new();
        for (&address, &writers) in &self.writes_this_step {
            let readers = self.reads_this_step.get(&address).copied().unwrap_or(0);
            if writers > 1 || (writers == 1 && readers > 0) {
                new_violations.push(CrewViolation {
                    address,
                    step: self.step,
                    writers,
                    readers,
                });
            }
        }
        self.violations.extend(new_violations.iter().cloned());
        self.reads_this_step.clear();
        self.writes_this_step.clear();
        self.step += 1;
        new_violations
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[CrewViolation] {
        &self.violations
    }

    /// `true` when no violation has been recorded.
    pub fn is_crew_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total number of reads performed.
    pub fn reads_total(&self) -> u64 {
        self.reads_total
    }

    /// Total number of writes performed.
    pub fn writes_total(&self) -> u64 {
        self.writes_total
    }

    /// Direct snapshot of the memory contents.
    pub fn contents(&self) -> &[i64] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut mem = CrewMemory::new(8);
        mem.write(3, 42);
        assert_eq!(mem.read(3), 42);
        assert_eq!(mem.read(0), 0);
        assert_eq!(mem.len(), 8);
        assert!(!mem.is_empty());
    }

    #[test]
    fn concurrent_reads_are_legal() {
        let mut mem = CrewMemory::new(4);
        mem.write(1, 7);
        let _ = mem.end_step();
        for _ in 0..10 {
            let _ = mem.read(1);
        }
        let violations = mem.end_step();
        assert!(violations.is_empty());
        assert!(mem.is_crew_clean());
    }

    #[test]
    fn two_writes_same_step_are_a_violation() {
        let mut mem = CrewMemory::new(4);
        mem.write(2, 1);
        mem.write(2, 5);
        let violations = mem.end_step();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].address, 2);
        assert_eq!(violations[0].writers, 2);
        assert!(!mem.is_crew_clean());
    }

    #[test]
    fn read_write_race_same_step_is_a_violation() {
        let mut mem = CrewMemory::new(4);
        let _ = mem.read(1);
        mem.write(1, 9);
        let violations = mem.end_step();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].readers, 1);
        assert_eq!(violations[0].writers, 1);
    }

    #[test]
    fn writes_in_different_steps_do_not_conflict() {
        let mut mem = CrewMemory::new(4);
        mem.write(0, 1);
        assert!(mem.end_step().is_empty());
        mem.write(0, 2);
        assert!(mem.end_step().is_empty());
        assert_eq!(mem.read(0), 2);
        assert!(mem.is_crew_clean());
        assert_eq!(mem.step(), 3);
    }

    #[test]
    fn counters_accumulate() {
        let mut mem = CrewMemory::new(2);
        mem.write(0, 1);
        let _ = mem.read(0);
        let _ = mem.read(1);
        let _ = mem.end_step();
        assert_eq!(mem.writes_total(), 1);
        assert_eq!(mem.reads_total(), 2);
        assert_eq!(mem.contents(), &[1, 0]);
    }
}
