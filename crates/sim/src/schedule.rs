//! The pal-thread scheduler of §3.1, simulated step-accurately.
//!
//! Semantics implemented here (and recorded per node so Figure 1 can be
//! regenerated):
//!
//! 1. A call is **pal-requested** when its parent finishes the work that
//!    precedes its `palthreads { … }` block; all children of the block are
//!    requested together, in creation order.
//! 2. After issuing its children the parent enters a wait state and its
//!    processor is handed to its first pending child ("the processor is
//!    assigned sequentially to the children, in order of creation").
//! 3. A processor freed by a completing call is first offered to the next
//!    pending sibling of that call (same rule as above); when the completing
//!    call was the last child, "control is returned to the parent thread"
//!    and the parent resumes its merge phase on that processor.
//! 4. Any processor that is still idle after those rules picks up pending
//!    pal-threads in pre-order (creation-order) of the tree — the paper's
//!    default activation order.
//! 5. Once activated a pal-thread is never suspended.  Execution concludes
//!    when the root completes.
//!
//! With unit divide/leaf costs and free merges this reproduces the
//! activation times `1 / 2 2 / 3 3 3 3 / 4 7 … / 5 6 8 9 …` of Figure 1.

use std::collections::BTreeSet;

use crate::tree::TaskTree;

/// Per-node timing record produced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeRecord {
    /// Time step at which the call was pal-requested.
    pub requested_at: u64,
    /// Time step at which the call was activated (granted a processor).
    pub activated_at: u64,
    /// Time step at which the divide phase finished (children issued).
    pub divide_done_at: u64,
    /// Time step at which the merge phase started (equals `divide_done_at`
    /// for leaves).
    pub merge_started_at: u64,
    /// Time step at which the call completed.
    pub completed_at: u64,
    /// Processor (0-based) the call was activated on.  The divide phase
    /// runs here; the merge phase may run on a different processor (rule 3:
    /// control returns to the parent on the last-finishing child's
    /// processor).
    pub processor: usize,
}

/// Result of simulating a [`TaskTree`] on `p` processors.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Number of processors simulated.
    pub processors: usize,
    /// Wall-clock steps until the root completed (`T_p`).
    pub makespan: u64,
    /// Total work of the tree (`T_1`).
    pub total_work: u64,
    /// Critical path of the tree (`T_∞`).
    pub critical_path: u64,
    /// Per-node timing records, indexed by node id.
    pub records: Vec<NodeRecord>,
    /// Number of activations on a processor other than the one the node's
    /// parent was activated on — the simulator's analogue of the real
    /// pool's *steals*: a pending pal-thread picked up by a processor that
    /// did not create it.  Handoffs along rules 2–3 (parent → first child,
    /// completing child → next sibling on the *same* processor) are not
    /// migrations; `p = 1` therefore always yields 0.
    pub migrations: u64,
}

impl SimResult {
    /// Observed speedup `T_1 / T_p`.
    pub fn speedup(&self) -> f64 {
        self.total_work as f64 / self.makespan as f64
    }

    /// Parallel efficiency `speedup / p`.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.processors as f64
    }

    /// Processor utilisation `T_1 / (p · T_p)` (identical to efficiency for
    /// unit-cost work).
    pub fn utilization(&self) -> f64 {
        self.efficiency()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NotRequested,
    Pending,
    Divide,
    Waiting,
    Merge,
    Done,
}

/// Mutable state of one simulation run, threaded through the event loop.
#[derive(Debug)]
struct RunState {
    /// Idle processor ids, lowest first.
    free: BTreeSet<usize>,
    /// Pending pal-threads, ordered by creation (pre-order) rank.
    pending: BTreeSet<usize>,
    /// Future phase-completion events: (time, preorder rank of node).
    events: BTreeSet<(u64, usize)>,
    phase: Vec<Phase>,
    records: Vec<NodeRecord>,
    children_remaining: Vec<usize>,
    /// Processor each node is *currently* running on (activation processor
    /// during the divide phase, possibly a child's processor once the merge
    /// phase starts).
    proc_now: Vec<usize>,
    migrations: u64,
}

/// Step-accurate simulator of the pal-thread scheduler.
#[derive(Debug)]
pub struct TreeSimulator<'t> {
    tree: &'t TaskTree,
    preorder_rank: Vec<usize>,
    rank_to_node: Vec<usize>,
}

impl<'t> TreeSimulator<'t> {
    /// Create a simulator for `tree`.
    pub fn new(tree: &'t TaskTree) -> Self {
        let order = tree.preorder();
        let mut preorder_rank = vec![0usize; tree.len()];
        let mut rank_to_node = vec![0usize; tree.len()];
        for (rank, &id) in order.iter().enumerate() {
            preorder_rank[id] = rank;
            rank_to_node[rank] = id;
        }
        TreeSimulator {
            tree,
            preorder_rank,
            rank_to_node,
        }
    }

    /// Simulate the execution on `p ≥ 1` processors, starting the clock at
    /// time step 1 (as in Figure 1).
    pub fn run(&self, p: usize) -> SimResult {
        assert!(p >= 1, "at least one processor is required");
        let n = self.tree.len();
        let mut st = RunState {
            free: (0..p).collect(),
            pending: BTreeSet::new(),
            events: BTreeSet::new(),
            phase: vec![Phase::NotRequested; n],
            records: vec![NodeRecord::default(); n],
            children_remaining: vec![0usize; n],
            proc_now: vec![0usize; n],
            migrations: 0,
        };

        let root = self.tree.root();
        st.records[root].requested_at = 1;
        st.phase[root] = Phase::Pending;
        st.pending.insert(self.preorder_rank[root]);
        self.dispatch(1, &mut st);

        while let Some(&(time, rank)) = st.events.iter().next() {
            st.events.remove(&(time, rank));
            let id = self.rank_to_node[rank];
            match st.phase[id] {
                Phase::Divide => self.on_divide_done(id, time, &mut st),
                Phase::Merge => self.on_complete(id, time, &mut st),
                other => unreachable!("event for node in phase {other:?}"),
            }
        }

        // The clock starts at step 1 (as in Figure 1), so the number of
        // elapsed wall-clock steps is the root's completion time minus one.
        let makespan = st.records[root].completed_at.saturating_sub(1);
        SimResult {
            processors: p,
            makespan,
            total_work: self.tree.total_work(),
            critical_path: self.tree.critical_path(),
            records: st.records,
            migrations: st.migrations,
        }
    }

    /// Hand every idle processor (lowest id first) a pending pal-thread,
    /// in creation order — the paper's default activation rule.
    fn dispatch(&self, time: u64, st: &mut RunState) {
        while let (Some(&proc), Some(&rank)) = (st.free.iter().next(), st.pending.iter().next()) {
            st.free.remove(&proc);
            st.pending.remove(&rank);
            self.activate(self.rank_to_node[rank], time, proc, st);
        }
    }

    /// Grant `proc` to node `id` and start its divide phase.  An activation
    /// on a processor other than the parent's is counted as a migration.
    fn activate(&self, id: usize, time: u64, proc: usize, st: &mut RunState) {
        st.records[id].activated_at = time;
        st.records[id].processor = proc;
        st.proc_now[id] = proc;
        if let Some(parent) = self.tree.node(id).parent {
            if proc != st.records[parent].processor {
                st.migrations += 1;
            }
        }
        st.phase[id] = Phase::Divide;
        let cost = self.tree.node(id).divide_cost;
        if cost == 0 {
            self.on_divide_done(id, time, st);
        } else {
            st.events.insert((time + cost, self.preorder_rank[id]));
        }
    }

    fn on_divide_done(&self, id: usize, time: u64, st: &mut RunState) {
        st.records[id].divide_done_at = time;
        let node = self.tree.node(id);
        if node.is_leaf() {
            let proc = st.proc_now[id];
            self.start_merge(id, time, proc, st);
            return;
        }
        // Issue all children of the palthreads block, in creation order.
        st.phase[id] = Phase::Waiting;
        st.children_remaining[id] = node.children.len();
        for &c in &node.children {
            st.records[c].requested_at = time;
            st.phase[c] = Phase::Pending;
            st.pending.insert(self.preorder_rank[c]);
        }
        // The parent's processor is assigned to its first pending child; any
        // other idle processors pick up the remaining children (and other
        // pending pal-threads) in creation order.
        let proc = st.proc_now[id];
        if let Some(first) = self.earliest_pending_child(id, st) {
            st.pending.remove(&self.preorder_rank[first]);
            self.activate(first, time, proc, st);
        } else {
            st.free.insert(proc);
        }
        self.dispatch(time, st);
    }

    fn earliest_pending_child(&self, id: usize, st: &RunState) -> Option<usize> {
        self.tree
            .node(id)
            .children
            .iter()
            .copied()
            .find(|&c| st.phase[c] == Phase::Pending && st.pending.contains(&self.preorder_rank[c]))
    }

    /// Start the merge phase of `id` on processor `proc` (rule 3: control
    /// returns to the parent on the last-finishing child's processor).
    fn start_merge(&self, id: usize, time: u64, proc: usize, st: &mut RunState) {
        st.phase[id] = Phase::Merge;
        st.records[id].merge_started_at = time;
        st.proc_now[id] = proc;
        let cost = self.tree.node(id).merge_cost;
        if cost == 0 {
            self.on_complete(id, time, st);
        } else {
            st.events.insert((time + cost, self.preorder_rank[id]));
        }
    }

    fn on_complete(&self, id: usize, time: u64, st: &mut RunState) {
        st.phase[id] = Phase::Done;
        st.records[id].completed_at = time;
        let proc = st.proc_now[id];
        if let Some(parent) = self.tree.node(id).parent {
            st.children_remaining[parent] -= 1;
            if st.children_remaining[parent] == 0 {
                // Control returns to the parent on this processor.
                self.start_merge(parent, time, proc, st);
                return;
            }
            // Otherwise the processor serves the next pending sibling, in
            // creation order.
            if let Some(sibling) = self.earliest_pending_child(parent, st) {
                st.pending.remove(&self.preorder_rank[sibling]);
                self.activate(sibling, time, proc, st);
                return;
            }
        }
        // Processor becomes free and is offered to pending pal-threads.
        st.free.insert(proc);
        self.dispatch(time, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{CostSpec, TaskTree};

    fn activation_times_by_level(tree: &TaskTree, result: &SimResult) -> Vec<Vec<u64>> {
        tree.levels()
            .iter()
            .map(|level| {
                level
                    .iter()
                    .map(|&id| result.records[id].activated_at)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn figure1_activation_times_match_the_paper() {
        let tree = TaskTree::mergesort_figure1(16);
        let result = TreeSimulator::new(&tree).run(4);
        let levels = activation_times_by_level(&tree, &result);
        assert_eq!(levels[0], vec![1]);
        assert_eq!(levels[1], vec![2, 2]);
        assert_eq!(levels[2], vec![3, 3, 3, 3]);
        assert_eq!(levels[3], vec![4, 7, 4, 7, 4, 7, 4, 7]);
        assert_eq!(
            levels[4],
            vec![5, 6, 8, 9, 5, 6, 8, 9, 5, 6, 8, 9, 5, 6, 8, 9]
        );
    }

    #[test]
    fn one_processor_gives_sequential_makespan() {
        let tree = TaskTree::mergesort_figure1(64);
        let result = TreeSimulator::new(&tree).run(1);
        assert_eq!(result.makespan, result.total_work);
        assert!((result.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_processor_never_migrates() {
        // With a single processor every pal-thread runs where its parent
        // ran — structurally zero migrations, like a p = 1 PalPool.
        let tree = TaskTree::mergesort_figure1(64);
        let result = TreeSimulator::new(&tree).run(1);
        assert_eq!(result.migrations, 0);
        assert!(result.records.iter().all(|r| r.processor == 0));
    }

    #[test]
    fn migrations_count_cross_processor_activations() {
        let tree = TaskTree::mergesort_figure1(16);
        let result = TreeSimulator::new(&tree).run(4);
        // Figure 1: at step 2 the root's two children are activated, one on
        // the root's processor (handoff) and one on an idle processor (a
        // migration) — so migrations are nonzero at p = 4 ...
        assert!(result.migrations > 0);
        // ... bounded by the number of non-root nodes, and recomputable
        // from the per-node processor records.
        let recount: u64 = tree
            .nodes()
            .iter()
            .enumerate()
            .filter(|(id, node)| {
                node.parent
                    .is_some_and(|p| result.records[*id].processor != result.records[p].processor)
            })
            .count() as u64;
        assert_eq!(result.migrations, recount);
        assert!(result.migrations < tree.len() as u64);
        assert!(result.records.iter().all(|r| r.processor < 4));
    }

    #[test]
    fn makespan_never_below_critical_path_or_work_over_p() {
        for n in [16usize, 64, 256] {
            let costs = CostSpec::merge_dominated(|s| s as u64);
            let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
            for p in [1usize, 2, 4, 8] {
                let r = TreeSimulator::new(&tree).run(p);
                assert!(r.makespan >= r.critical_path);
                assert!(r.makespan >= r.total_work.div_ceil(p as u64));
                assert!(r.makespan <= r.total_work);
            }
        }
    }

    #[test]
    fn mergesort_speedup_is_near_linear_for_small_p() {
        // Case 2 of Theorem 1: T_p = O(T/p).  At finite n the merge terms of
        // Eq. 3 cost a constant fraction, so check a moderate efficiency for
        // small p and, more importantly, that the efficiency improves as n
        // grows (the asymptotic work-optimality claim).
        let costs = CostSpec::merge_dominated(|s| s as u64);
        let tree = TaskTree::divide_and_conquer(1 << 13, 2, 2, 1, &costs);
        for p in [2usize, 4] {
            let r = TreeSimulator::new(&tree).run(p);
            assert!(
                r.efficiency() > 0.7,
                "efficiency {} too low for p = {p}",
                r.efficiency()
            );
        }
        let costs_small = CostSpec::merge_dominated(|s| s as u64);
        let small = TaskTree::divide_and_conquer(1 << 9, 2, 2, 1, &costs_small);
        let eff_small = TreeSimulator::new(&small).run(8).efficiency();
        let eff_large = TreeSimulator::new(&tree).run(8).efficiency();
        assert!(
            eff_large > eff_small,
            "efficiency must improve with n ({eff_small} -> {eff_large})"
        );
    }

    #[test]
    fn case3_tree_has_constant_speedup_with_sequential_merge() {
        // T(n) = 2T(n/2) + n²: the root merge dominates, so extra processors
        // do not help (Theorem 1 case 3).
        let costs = CostSpec::merge_dominated(|s| (s as u64) * (s as u64));
        let tree = TaskTree::divide_and_conquer(1 << 8, 2, 2, 1, &costs);
        let r2 = TreeSimulator::new(&tree).run(2);
        let r8 = TreeSimulator::new(&tree).run(8);
        let improvement = r2.makespan as f64 / r8.makespan as f64;
        assert!(
            improvement < 1.35,
            "case 3 should not benefit from more processors (got {improvement})"
        );
        // And the makespan is dominated by f(n) = n² at the root.
        assert!(r8.makespan as f64 >= (1u64 << 16) as f64);
    }

    #[test]
    fn every_node_is_scheduled_exactly_once_and_in_order() {
        let tree = TaskTree::divide_and_conquer(64, 2, 2, 1, &CostSpec::unit());
        let result = TreeSimulator::new(&tree).run(3);
        for (id, rec) in result.records.iter().enumerate() {
            let node = tree.node(id);
            assert!(rec.requested_at >= 1, "node {id} never requested");
            assert!(rec.activated_at >= rec.requested_at);
            assert!(rec.divide_done_at >= rec.activated_at);
            assert!(rec.completed_at >= rec.divide_done_at);
            if let Some(parent) = node.parent {
                let prec = &result.records[parent];
                assert!(rec.requested_at >= prec.activated_at);
                assert!(prec.completed_at >= rec.completed_at);
            }
        }
    }

    #[test]
    fn processors_beyond_width_do_not_change_makespan() {
        let tree = TaskTree::mergesort_figure1(32);
        let r32 = TreeSimulator::new(&tree).run(32);
        let r1000 = TreeSimulator::new(&tree).run(1000);
        assert_eq!(r32.makespan, r1000.makespan);
        assert!(r1000.makespan >= tree.critical_path());
    }

    #[test]
    fn zero_cost_merges_do_not_hang() {
        let tree = TaskTree::divide_and_conquer(128, 2, 2, 1, &CostSpec::unit());
        let r = TreeSimulator::new(&tree).run(4);
        assert!(r.makespan > 0);
        assert_eq!(r.records[tree.root()].completed_at, r.makespan + 1);
    }

    #[test]
    fn single_leaf_tree() {
        let tree = TaskTree::leaf(1, 3);
        let r = TreeSimulator::new(&tree).run(4);
        assert_eq!(r.makespan, 3);
        assert_eq!(r.records[0].activated_at, 1);
        assert_eq!(r.records[0].completed_at, 4);
    }

    #[test]
    fn makespan_matches_eq3_for_power_of_a_processors() {
        // E7: the simulated schedule and the closed-form Eq. 3 agree for
        // mergesort-like costs when p is a power of a (up to the +1 divide
        // steps the analytic recurrence does not model).
        use lopram_analysis::recurrence::catalog;
        let n = 1usize << 10;
        let costs = CostSpec {
            divide: Box::new(|_| 0),
            merge: Box::new(|s| s as u64),
            base: Box::new(|_| 1),
        };
        let tree = TaskTree::divide_and_conquer(n, 2, 2, 1, &costs);
        let rec = catalog::mergesort();
        for p in [1usize, 2, 4, 8] {
            let sim = TreeSimulator::new(&tree).run(p);
            let analytic = rec.parallel_time_eq3(n, p);
            let ratio = sim.makespan as f64 / analytic;
            assert!(
                (0.8..1.2).contains(&ratio),
                "simulated {} vs Eq.3 {} (p = {p})",
                sim.makespan,
                analytic
            );
        }
    }
}
