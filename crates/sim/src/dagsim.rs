//! Greedy `p`-processor scheduling of a dependency DAG.
//!
//! This is the machine model behind the paper's Algorithm 1 (§4.4): every
//! cell of the dynamic-programming table is a vertex with a cost, a vertex
//! becomes *ready* once all the cells it depends on have been computed, and
//! ready vertices are assigned to idle processors in creation (vertex-id)
//! order.  The simulator returns the makespan, the schedule and the same
//! speedup/efficiency summary as the tree simulator, so DP experiments can
//! compare the measured wall-clock behaviour of `lopram-dp` with the ideal
//! schedule and with the antichain bound of `lopram-analysis`.

use std::collections::BTreeSet;

use lopram_analysis::dag::Dag;

/// Result of simulating a DAG schedule on `p` processors.
#[derive(Debug, Clone)]
pub struct DagSimResult {
    /// Number of processors simulated.
    pub processors: usize,
    /// Wall-clock steps until every vertex completed.
    pub makespan: u64,
    /// Sum of all vertex costs (`T_1`).
    pub total_work: u64,
    /// Start time of every vertex.
    pub start_times: Vec<u64>,
    /// Completion time of every vertex.
    pub finish_times: Vec<u64>,
}

impl DagSimResult {
    /// Observed speedup `T_1 / T_p`.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.total_work as f64 / self.makespan as f64
    }

    /// Parallel efficiency `speedup / p`.
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.processors as f64
    }
}

/// Simulate a greedy list schedule of `dag` on `p` processors, where vertex
/// `v` takes `costs[v]` steps (use cost 1 for the unit-cost model of §4.6).
///
/// Ready vertices are started in vertex-id order, which for the DP problems
/// in `lopram-dp` corresponds to the bottom-up creation order of the cells.
///
/// # Panics
///
/// Panics when `p == 0`, when `costs.len() != dag.len()` or when the graph
/// contains a cycle.
pub fn simulate_dag_schedule(dag: &Dag, costs: &[u64], p: usize) -> DagSimResult {
    assert!(p >= 1, "at least one processor is required");
    assert_eq!(
        costs.len(),
        dag.len(),
        "one cost per vertex is required ({} costs for {} vertices)",
        costs.len(),
        dag.len()
    );
    assert!(dag.is_acyclic(), "dependency graph must be acyclic");

    let n = dag.len();
    let total_work: u64 = costs.iter().sum();
    if n == 0 {
        return DagSimResult {
            processors: p,
            makespan: 0,
            total_work,
            start_times: Vec::new(),
            finish_times: Vec::new(),
        };
    }

    let mut indeg = dag.in_degrees();
    let mut ready: BTreeSet<usize> = indeg
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(v, _)| v)
        .collect();
    // Future completion events (finish_time, vertex).
    let mut running: BTreeSet<(u64, usize)> = BTreeSet::new();
    let mut start_times = vec![0u64; n];
    let mut finish_times = vec![0u64; n];
    let mut busy = 0usize;
    let mut now = 0u64;
    let mut completed = 0usize;

    while completed < n {
        while busy < p {
            let Some(&v) = ready.iter().next() else {
                break;
            };
            ready.remove(&v);
            start_times[v] = now;
            let finish = now + costs[v];
            running.insert((finish, v));
            busy += 1;
        }
        let (finish, v) = *running
            .iter()
            .next()
            .expect("ready work exists but nothing is running: cycle?");
        running.remove(&(finish, v));
        now = finish;
        finish_times[v] = finish;
        busy -= 1;
        completed += 1;
        for &w in dag.successors(v) {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.insert(w);
            }
        }
    }

    DagSimResult {
        processors: p,
        makespan: now,
        total_work,
        start_times,
        finish_times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_analysis::dag::{chain_dag, grid_dag, Dag};
    use proptest::prelude::*;

    #[test]
    fn empty_dag_has_zero_makespan() {
        let dag = Dag::new(0);
        let r = simulate_dag_schedule(&dag, &[], 4);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.speedup(), 1.0);
    }

    #[test]
    fn independent_unit_tasks_scale_linearly() {
        let dag = Dag::new(100);
        let costs = vec![1u64; 100];
        for p in [1usize, 2, 4, 10] {
            let r = simulate_dag_schedule(&dag, &costs, p);
            assert_eq!(r.makespan, (100usize.div_ceil(p)) as u64);
        }
    }

    #[test]
    fn chain_gets_no_speedup() {
        let dag = chain_dag(50);
        let costs = vec![2u64; 50];
        let r1 = simulate_dag_schedule(&dag, &costs, 1);
        let r8 = simulate_dag_schedule(&dag, &costs, 8);
        assert_eq!(r1.makespan, 100);
        assert_eq!(r8.makespan, 100);
        assert!((r8.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grid_dag_speedup_near_linear_for_small_p() {
        let dag = grid_dag(64, 64);
        let costs = vec![1u64; dag.len()];
        for p in [2usize, 4, 8] {
            let r = simulate_dag_schedule(&dag, &costs, p);
            assert!(
                r.efficiency() > 0.85,
                "efficiency {} too low for p = {p}",
                r.efficiency()
            );
        }
    }

    #[test]
    fn start_times_respect_dependencies() {
        let dag = grid_dag(10, 13);
        let costs: Vec<u64> = (0..dag.len()).map(|v| 1 + (v as u64 % 3)).collect();
        let r = simulate_dag_schedule(&dag, &costs, 3);
        for u in 0..dag.len() {
            for &v in dag.successors(u) {
                assert!(
                    r.start_times[v] >= r.finish_times[u],
                    "vertex {v} started before its dependency {u} finished"
                );
            }
        }
        for (v, &cost) in costs.iter().enumerate() {
            assert_eq!(r.finish_times[v], r.start_times[v] + cost);
        }
    }

    #[test]
    fn one_processor_schedule_equals_total_work() {
        let dag = grid_dag(16, 16);
        let costs: Vec<u64> = (0..dag.len()).map(|v| (v % 5 + 1) as u64).collect();
        let r = simulate_dag_schedule(&dag, &costs, 1);
        assert_eq!(r.makespan, r.total_work);
    }

    #[test]
    fn greedy_respects_brent_bound() {
        let dag = grid_dag(32, 48);
        let costs = vec![1u64; dag.len()];
        for p in [1usize, 2, 4, 8, 16] {
            let r = simulate_dag_schedule(&dag, &costs, p);
            let work = dag.work() as u64;
            let span = dag.longest_chain() as u64;
            assert!(r.makespan >= span);
            assert!(r.makespan >= work.div_ceil(p as u64));
            assert!(r.makespan <= work.div_ceil(p as u64) + span);
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_graph_is_rejected() {
        let mut dag = Dag::new(2);
        dag.add_edge(0, 1);
        dag.add_edge(1, 0);
        let _ = simulate_dag_schedule(&dag, &[1, 1], 2);
    }

    #[test]
    #[should_panic(expected = "one cost per vertex")]
    fn cost_length_mismatch_is_rejected() {
        let dag = Dag::new(3);
        let _ = simulate_dag_schedule(&dag, &[1, 1], 2);
    }

    proptest! {
        #[test]
        fn makespan_monotone_in_processors(
            rows in 1usize..12, cols in 1usize..12, p in 1usize..8
        ) {
            let dag = grid_dag(rows, cols);
            let costs = vec![1u64; dag.len()];
            let r_small = simulate_dag_schedule(&dag, &costs, p);
            let r_large = simulate_dag_schedule(&dag, &costs, p + 1);
            prop_assert!(r_large.makespan <= r_small.makespan);
        }

        #[test]
        fn every_vertex_scheduled_once(rows in 1usize..10, cols in 1usize..10) {
            let dag = grid_dag(rows, cols);
            let costs = vec![1u64; dag.len()];
            let r = simulate_dag_schedule(&dag, &costs, 3);
            prop_assert_eq!(r.start_times.len(), dag.len());
            for v in 0..dag.len() {
                prop_assert!(r.finish_times[v] > r.start_times[v]);
                prop_assert!(r.finish_times[v] <= r.makespan);
            }
        }
    }
}
